#!/bin/sh
# The full local CI gate. Run from the repository root before committing.
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> all checks passed"
