#!/bin/sh
# The full local CI gate. Run from the repository root before committing.
#
# Usage: ./ci.sh [--deny]
#   --deny  promote the bench-baseline comparison from warn-only to a hard
#           gate (release runs; the default tolerates machine-to-machine
#           performance noise).
set -eu

DENY=0
[ "${1:-}" = "--deny" ] && DENY=1

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> mosc-obs disabled-recorder overhead guard"
cargo test -q -p mosc-obs disabled_recorder_is_inert

echo "==> mosc-cli profile smoke (specs/smoke.json)"
profile_out=$(cargo run -q --bin mosc-cli -- profile specs/smoke.json --obs=json)
test -n "$profile_out" || { echo "profile emitted no telemetry" >&2; exit 1; }
echo "$profile_out" | grep -q '"type":"profile","solver":"Governor"' \
    || { echo "profile missing per-solver records" >&2; exit 1; }

echo "==> period-map scaling smoke (dense ops sublinear in m)"
pm_field() { # pm_field <m> <field>
    echo "$profile_out" | sed -n "s/.*\"type\":\"periodmap\",\"m\":$1,.*\"$2\":\([0-9]*\).*/\1/p"
}
fast_1=$(pm_field 1 fast_ops); fast_64=$(pm_field 64 fast_ops); fast_256=$(pm_field 256 fast_ops)
dense_64=$(pm_field 64 dense_ops); expm_fast_64=$(pm_field 64 fast_expm); expm_dense_64=$(pm_field 64 dense_expm)
test -n "$fast_1" && test -n "$fast_256" && test -n "$dense_64" \
    || { echo "profile missing periodmap records" >&2; exit 1; }
# The modal kernel's dense-op count must not grow with the oscillation
# factor (flat, not merely sublinear) ...
test "$fast_256" -le $((fast_1 * 4)) \
    || { echo "period_map dense ops grew with m: $fast_1 -> $fast_256" >&2; exit 1; }
# ... and must beat the interval-by-interval reference >= 5x at m = 64.
test $((dense_64 + expm_dense_64)) -ge $(((fast_64 + expm_fast_64) * 5)) \
    || { echo "period_map kernel not >=5x cheaper at m=64: fast $fast_64+$expm_fast_64 vs dense $dense_64+$expm_dense_64" >&2; exit 1; }

echo "==> period-map bench artifact (BENCH_periodmap.json)"
cargo run -q --release -p mosc-bench --bin periodmap -- --csv target/bench >/dev/null
# Record presence here; structure (schema-v2 meta, quantile ordering, rate
# sanity) is the M10x deny-mode analyze gate below.
grep -q '"type":"periodmap"' target/bench/BENCH_periodmap.json \
    || { echo "BENCH_periodmap.json missing periodmap records" >&2; exit 1; }

echo "==> mosc-serve smoke (daemon, cached solve, typed errors, drained shutdown)"
cargo build -q --release --bin mosc-cli
serve_log=target/bench/serve_smoke.log
mkdir -p target/bench
# Port 0: the kernel picks a free port, the daemon prints the real address.
./target/release/mosc-cli serve --obs=json --addr 127.0.0.1:0 >"$serve_log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 50); do
    grep -q 'mosc-serve listening on' "$serve_log" && break
    sleep 0.1
done
serve_addr=$(sed -n 's/^mosc-serve listening on //p' "$serve_log")
test -n "$serve_addr" || { echo "daemon never announced its address" >&2; exit 1; }
smoke_platform=$(tr -d ' \n' < specs/smoke.json | sed -e 's/^{"platform"://' -e 's/}$//')
serve_out=$(printf '%s\n' \
    "{\"id\":\"s1\",\"solver\":\"ao\",\"platform\":$smoke_platform}" \
    "{\"id\":\"s2\",\"solver\":\"ao\",\"platform\":$smoke_platform}" \
    'this is not json' \
    '{"id":"bye","op":"shutdown"}' \
    | ./target/release/mosc-cli client --addr "$serve_addr")
echo "$serve_out" | grep -q '"id":"s1","status":"ok".*"cached":false' \
    || { echo "serve smoke: first solve not a cold ok" >&2; echo "$serve_out" >&2; exit 1; }
echo "$serve_out" | grep -q '"id":"s2","status":"ok".*"cached":true' \
    || { echo "serve smoke: repeated solve missed the cache" >&2; echo "$serve_out" >&2; exit 1; }
echo "$serve_out" | grep -q '"status":"error","kind":"parse"' \
    || { echo "serve smoke: malformed request not answered with a parse error" >&2; echo "$serve_out" >&2; exit 1; }
echo "$serve_out" | grep -q '"shutting_down":true' \
    || { echo "serve smoke: shutdown op not acknowledged" >&2; echo "$serve_out" >&2; exit 1; }
wait "$serve_pid" || { echo "serve smoke: daemon exited non-zero" >&2; cat "$serve_log" >&2; exit 1; }
grep -q 'mosc-serve drained and stopped' "$serve_log" \
    || { echo "serve smoke: daemon did not drain cleanly" >&2; cat "$serve_log" >&2; exit 1; }
# The drained daemon's telemetry must pass the M060-M062 serve lints —
# in deny mode, so even warning-level findings fail the gate.
grep -v '^mosc-serve' "$serve_log" > target/bench/serve_smoke.jsonl
./target/release/mosc-cli analyze -D warnings target/bench/serve_smoke.jsonl \
    || { echo "serve smoke: telemetry failed the M06x lints" >&2; exit 1; }

echo "==> mosc-serve observability smoke (access log, metrics exposition, M07x lints)"
access_log=target/bench/serve_access.jsonl
obs_log=target/bench/serve_obs_smoke.log
# --obs=json arms the recorder (latency histograms and kernel counters only
# record while it is on); --slow-ms 0 makes every request a "slow" one so
# the governor entry must carry its span tree.
./target/release/mosc-cli serve --obs=json --addr 127.0.0.1:0 \
    --access-log "$access_log" --slow-ms 0 >"$obs_log" 2>&1 &
obs_pid=$!
for _ in $(seq 1 50); do
    grep -q 'mosc-serve listening on' "$obs_log" && break
    sleep 0.1
done
obs_addr=$(sed -n 's/^mosc-serve listening on //p' "$obs_log")
test -n "$obs_addr" || { echo "observability daemon never announced its address" >&2; exit 1; }
# 100 mixed solve requests: ao/pco alternating over 10 t_max_c variants
# (cold solves + cache hits), closed by one short-horizon governor solve —
# the only solver whose access-log entry can show a nonzero expm.calls delta.
awk 'BEGIN {
    for (i = 0; i < 99; i++) {
        solver = (i % 2 == 0) ? "ao" : "pco";
        printf "{\"id\":\"q%d\",\"solver\":\"%s\",\"platform\":{\"rows\":1,\"cols\":2,\"levels\":[0.6,1.3],\"t_max_c\":%d},\"options\":{\"max_m\":64,\"m_patience\":4,\"t_unit_divisor\":50}}\n", i, solver, 55 + i % 10;
    }
    printf "{\"id\":\"qgov\",\"solver\":\"governor\",\"platform\":{\"rows\":1,\"cols\":2,\"levels\":[0.6,1.3],\"t_max_c\":55},\"options\":{\"governor_horizon\":10.0,\"governor_warmup\":5.0,\"governor_control_period\":0.01}}\n";
}' | ./target/release/mosc-cli client --addr "$obs_addr" > target/bench/serve_obs_responses.txt
test "$(grep -c '"status":"ok"' target/bench/serve_obs_responses.txt)" -eq 100 \
    || { echo "observability smoke: not all 100 requests came back ok" >&2; exit 1; }
stats_out=$(./target/release/mosc-cli stats --addr "$obs_addr")
echo "$stats_out" | grep -q 'p50' \
    || { echo "observability smoke: stats summary missing latency quantiles" >&2; exit 1; }
echo "$stats_out" | grep -q 'p999' \
    || { echo "observability smoke: stats summary missing the p999 tail quantile" >&2; exit 1; }
echo "$stats_out" | grep -q 'queue' \
    || { echo "observability smoke: stats summary missing queue depth" >&2; exit 1; }
./target/release/mosc-cli metrics --addr "$obs_addr" > target/bench/serve_metrics.txt
# Every exposition line is a comment or `name[{labels}] value`, with an
# optional OpenMetrics exemplar suffix (` # {trace_id="..."} value`) on
# histogram buckets ...
awk '
    /^#/ { next }
    /^mosc_serve_[a-z0-9_]+(\{[^}]*\})? ([0-9eE+.-]+|\+Inf)( # \{trace_id="[0-9a-f]+"\} [0-9eE+.-]+)?$/ { ok++; next }
    { print "bad exposition line: " $0 > "/dev/stderr"; bad++ }
    END { exit (bad > 0 || ok == 0) }
' target/bench/serve_metrics.txt \
    || { echo "observability smoke: metrics exposition does not parse" >&2; exit 1; }
# ... and the solve-latency histogram counts sum to the served solve count.
hist_total=$(awk '/^mosc_serve_latency_seconds_count\{/ && /phase="total"/ && !/op="proto"/ { s += $2 } END { print s + 0 }' target/bench/serve_metrics.txt)
test "$hist_total" -eq 100 \
    || { echo "observability smoke: histogram counts sum to $hist_total, expected 100" >&2; exit 1; }
# The tail-quantile and queue-depth gauges parse as numbers, and the
# quantile chain read off the exposition is monotone: p50 <= p99 <= p999.
awk '
    /^mosc_serve_latency_p50_seconds /  { p50  = $2 + 0; seen++ }
    /^mosc_serve_latency_p99_seconds /  { p99  = $2 + 0; seen++ }
    /^mosc_serve_latency_p999_seconds / { p999 = $2 + 0; seen++ }
    /^mosc_serve_queue_depth /          { depth = $2 + 0; seen++ }
    END {
        if (seen != 4) { print "missing quantile/queue gauges (" seen "/4)" > "/dev/stderr"; exit 1 }
        if (p50 <= 0 || p99 < p50 || p999 < p99) {
            print "quantile gauges not monotone: " p50 " " p99 " " p999 > "/dev/stderr"; exit 1
        }
        if (depth < 0) { print "negative queue depth " depth > "/dev/stderr"; exit 1 }
    }
' target/bench/serve_metrics.txt \
    || { echo "observability smoke: p999/queue-depth gauges missing or inconsistent" >&2; exit 1; }
printf '%s\n' '{"id":"bye","op":"shutdown"}' \
    | ./target/release/mosc-cli client --addr "$obs_addr" >/dev/null
wait "$obs_pid" || { echo "observability smoke: daemon exited non-zero" >&2; cat "$obs_log" >&2; exit 1; }
# The slow-request entry for the governor solve carries its span tree and a
# nonzero expm.calls delta (the transient propagator cache at work).
grep '"id":"qgov"' "$access_log" | grep -q '"spans":.*reactive.simulate' \
    || { echo "observability smoke: governor access entry has no span tree" >&2; exit 1; }
gov_expm=$(sed -n 's/.*"id":"qgov".*"expm_calls":\([0-9]*\).*/\1/p' "$access_log")
test -n "$gov_expm" && test "$gov_expm" -gt 0 \
    || { echo "observability smoke: governor expm.calls delta is '$gov_expm', expected > 0" >&2; exit 1; }
# Every access line and the drain trailer must pass the M07x access lints
# and the M082/M09x cross-line joins — in deny mode.
./target/release/mosc-cli analyze -D warnings "$access_log" \
    || { echo "observability smoke: access log failed the M07x/M09x lints" >&2; exit 1; }

echo "==> serve bench artifact (BENCH_serve.json, closed-loop)"
cargo run -q --release -p mosc-bench --bin serve -- --csv target/bench >/dev/null
# Presence only; the quantile/metadata structure greps this section used to
# carry are now the M10x lints in the deny-mode analyze gate below.
grep -q '"type":"serve","mode":"closed","clients":8' target/bench/BENCH_serve.json \
    || { echo "BENCH_serve.json missing closed-loop serve records" >&2; exit 1; }

echo "==> open-loop loadgen smoke (live daemon, timeline, BENCH_loadgen.json)"
cargo build -q --release -p mosc-bench --bin loadgen
lg_log=target/bench/loadgen_daemon.log
lg_timeline=target/bench/serve_timeline.jsonl
./target/release/mosc-cli serve --obs=json --addr 127.0.0.1:0 \
    --timeline "$lg_timeline" --timeline-window-ms 250 >"$lg_log" 2>&1 &
lg_pid=$!
for _ in $(seq 1 50); do
    grep -q 'mosc-serve listening on' "$lg_log" && break
    sleep 0.1
done
lg_addr=$(sed -n 's/^mosc-serve listening on //p' "$lg_log")
test -n "$lg_addr" || { echo "loadgen smoke: daemon never announced its address" >&2; exit 1; }
./target/release/loadgen --addr "$lg_addr" --rate 150 --duration 1.2 --warmup 0.3 \
    --conns 2 --seed 42 --csv target/bench >/dev/null \
    || { echo "loadgen smoke: generator failed" >&2; exit 1; }
# Repeated-platform traffic: every arrival is a solve_batch against one
# platform, so the daemon answers from the interned registry (no --csv;
# the BENCH_loadgen.json baseline covers the default shape only).
./target/release/loadgen --addr "$lg_addr" --rate 150 --duration 0.8 --warmup 0.2 \
    --conns 2 --seed 7 --repeat-platform >/dev/null \
    || { echo "loadgen smoke: repeat-platform mode failed" >&2; exit 1; }
printf '%s\n' '{"id":"bye","op":"shutdown"}' \
    | ./target/release/mosc-cli client --addr "$lg_addr" >/dev/null
wait "$lg_pid" || { echo "loadgen smoke: daemon exited non-zero" >&2; cat "$lg_log" >&2; exit 1; }
grep -q '"type":"bench_meta","schema":2' target/bench/BENCH_loadgen.json \
    || { echo "loadgen smoke: artifact missing the schema-v2 meta header" >&2; exit 1; }
grep -q '"type":"bench","mode":"open"' target/bench/BENCH_loadgen.json \
    || { echo "loadgen smoke: artifact missing the open-loop summary" >&2; exit 1; }
grep -q '"type":"timeline"' "$lg_timeline" \
    || { echo "loadgen smoke: daemon produced no timeline windows" >&2; exit 1; }

echo "==> event-loop front end smoke (1k idle conns + mixed traffic, BENCH_evloop.json)"
ev_log=target/bench/evloop_daemon.log
ev_access=target/bench/evloop_access.jsonl
./target/release/mosc-cli serve --obs=json --addr 127.0.0.1:0 --frontend evloop \
    --access-log "$ev_access" >"$ev_log" 2>&1 &
ev_pid=$!
for _ in $(seq 1 50); do
    grep -q 'mosc-serve listening on' "$ev_log" && break
    sleep 0.1
done
ev_addr=$(sed -n 's/^mosc-serve listening on //p' "$ev_log")
test -n "$ev_addr" || { echo "evloop smoke: daemon never announced its address" >&2; exit 1; }
# 1000 connections held idle across the run, mixed solve traffic on top;
# the generator exits nonzero unless every held connection still answers
# a ping afterwards.
./target/release/loadgen --addr "$ev_addr" --rate 150 --duration 1.2 --warmup 0.3 \
    --conns 2 --seed 42 --idle-conns 1000 --csv target/bench \
    --artifact BENCH_evloop.json > target/bench/evloop_loadgen.txt \
    || { echo "evloop smoke: generator failed" >&2; cat target/bench/evloop_loadgen.txt >&2; exit 1; }
grep -q 'all 1000 idle connections survived' target/bench/evloop_loadgen.txt \
    || { echo "evloop smoke: idle connections were not verified" >&2; exit 1; }
printf '%s\n' '{"id":"bye","op":"shutdown"}' \
    | ./target/release/mosc-cli client --addr "$ev_addr" >/dev/null
wait "$ev_pid" || { echo "evloop smoke: daemon exited non-zero" >&2; cat "$ev_log" >&2; exit 1; }
grep -q 'mosc-serve drained and stopped' "$ev_log" \
    || { echo "evloop smoke: daemon did not drain cleanly" >&2; cat "$ev_log" >&2; exit 1; }
grep -q '"type":"bench","mode":"open"' target/bench/BENCH_evloop.json \
    || { echo "evloop smoke: artifact missing the open-loop summary" >&2; exit 1; }
grep -q '"idle_conns":1000' target/bench/BENCH_evloop.json \
    || { echo "evloop smoke: artifact does not record the held connections" >&2; exit 1; }
# Deny-mode M06x-M11x over the event loop's access log: the new front end
# must satisfy every serve/access/trace lint the threaded one does.
./target/release/mosc-cli analyze -D warnings "$ev_access" \
    || { echo "evloop smoke: access log failed the deny-mode lints" >&2; exit 1; }

echo "==> solve_batch smoke (client --batch, registry warm/cold, M110/M111 lints)"
bt_access=target/bench/batch_access.jsonl
bt_log=target/bench/batch_daemon.log
./target/release/mosc-cli serve --obs=json --addr 127.0.0.1:0 \
    --access-log "$bt_access" >"$bt_log" 2>&1 &
bt_pid=$!
for _ in $(seq 1 50); do
    grep -q 'mosc-serve listening on' "$bt_log" && break
    sleep 0.1
done
bt_addr=$(sed -n 's/^mosc-serve listening on //p' "$bt_log")
test -n "$bt_addr" || { echo "batch smoke: daemon never announced its address" >&2; exit 1; }
# Two solve lines over one platform: `client --batch` folds them into a
# single solve_batch dispatch whose resolve interns the platform.
batch_lines() {
    printf '%s\n' \
        "{\"id\":\"b1\",\"solver\":\"ao\",\"platform\":$smoke_platform,\"options\":{\"max_m\":64,\"m_patience\":4,\"t_unit_divisor\":50}}" \
        "{\"id\":\"b2\",\"solver\":\"ao\",\"platform\":$smoke_platform,\"options\":{\"max_m\":64,\"m_patience\":4,\"t_unit_divisor\":50,\"threads\":2}}"
}
bt_cold=$(batch_lines | ./target/release/mosc-cli client --batch --addr "$bt_addr" 2>&1)
echo "$bt_cold" | grep -q 'registry cold' \
    || { echo "batch smoke: first batch did not resolve cold" >&2; echo "$bt_cold" >&2; exit 1; }
test "$(echo "$bt_cold" | grep -c '"status":"ok"')" -eq 2 \
    || { echo "batch smoke: cold batch did not answer both variants" >&2; echo "$bt_cold" >&2; exit 1; }
bt_warm=$(batch_lines | ./target/release/mosc-cli client --batch --addr "$bt_addr" 2>&1)
echo "$bt_warm" | grep -q 'registry warm' \
    || { echo "batch smoke: repeated batch missed the registry" >&2; echo "$bt_warm" >&2; exit 1; }
echo "$bt_warm" | grep -q '"cached":true' \
    || { echo "batch smoke: repeated batch missed the solution cache" >&2; echo "$bt_warm" >&2; exit 1; }
printf '%s\n' '{"id":"bye","op":"shutdown"}' \
    | ./target/release/mosc-cli client --addr "$bt_addr" >/dev/null
wait "$bt_pid" || { echo "batch smoke: daemon exited non-zero" >&2; cat "$bt_log" >&2; exit 1; }
# The per-variant access entries carry registry attribution; the M110/M111
# joins (warm-recompute, resolve disagreement) must pass in deny mode.
./target/release/mosc-cli analyze -D warnings "$bt_access" \
    || { echo "batch smoke: access log failed the M110/M111 registry lints" >&2; exit 1; }

echo "==> batch bench artifact (BENCH_batch.json, registry amortization)"
cargo run -q --release -p mosc-bench --bin batch -- --csv target/bench >/dev/null
grep -q '"type":"batch","mode":"batch_warm"' target/bench/BENCH_batch.json \
    || { echo "BENCH_batch.json missing the batch_warm record" >&2; exit 1; }
# Sanity floor only — the checked-in baseline demonstrates the full warm
# speedup and the compare band below polices regressions against it.
bt_speedup=$(sed -n 's/.*"speedup_x":\([0-9.]*\).*/\1/p' target/bench/BENCH_batch.json)
test -n "$bt_speedup" || { echo "BENCH_batch.json missing speedup_x" >&2; exit 1; }
awk "BEGIN { exit !($bt_speedup >= 3.0) }" \
    || { echo "batch bench: warm speedup ${bt_speedup}x below the 3x sanity floor" >&2; exit 1; }

echo "==> distributed-tracing smoke (v1+v2 clients, flight dumps, exemplars, waterfall, M12x)"
tr_access=target/bench/trace_access.jsonl
tr_flight=target/bench/trace_flight.jsonl
tr_log=target/bench/trace_daemon.log
# Flight recorder armed (--flight-dump), every request "slow" so each one
# leaves a ring snapshot behind, access log on for the trace identities.
./target/release/mosc-cli serve --obs=json --addr 127.0.0.1:0 \
    --access-log "$tr_access" --flight-dump "$tr_flight" --slow-ms 0 >"$tr_log" 2>&1 &
tr_pid=$!
for _ in $(seq 1 50); do
    grep -q 'mosc-serve listening on' "$tr_log" && break
    sleep 0.1
done
tr_addr=$(sed -n 's/^mosc-serve listening on //p' "$tr_log")
test -n "$tr_addr" || { echo "trace smoke: daemon never announced its address" >&2; exit 1; }
# A v1 client first: no trace member on the wire, and the response must be
# byte-compatible with the pre-trace protocol.
v1_out=$(printf '%s\n' "{\"id\":\"v1req\",\"solver\":\"ao\",\"platform\":$smoke_platform}" \
    | ./target/release/mosc-cli client --addr "$tr_addr")
echo "$v1_out" | grep -q '"id":"v1req","status":"ok"' \
    || { echo "trace smoke: v1 client request failed" >&2; echo "$v1_out" >&2; exit 1; }
if echo "$v1_out" | grep -q '"trace"'; then
    echo "trace smoke: v1 response unexpectedly grew a trace member" >&2; exit 1
fi
# A v2 client: --trace originates a context per request and prints the
# minted trace id to stderr — the id this whole section follows around.
tr_err=target/bench/trace_client.err
printf '%s\n' "{\"id\":\"t1\",\"solver\":\"ao\",\"platform\":$smoke_platform}" \
    | ./target/release/mosc-cli client --addr "$tr_addr" --trace \
    > target/bench/trace_client.out 2>"$tr_err"
grep -q '"id":"t1","status":"ok"' target/bench/trace_client.out \
    || { echo "trace smoke: v2 client request failed" >&2; cat target/bench/trace_client.out >&2; exit 1; }
trace_id=$(sed -n 's/^trace \([0-9a-f]\{32\}\).*/\1/p' "$tr_err" | head -n 1)
test -n "$trace_id" || { echo "trace smoke: client printed no trace id" >&2; cat "$tr_err" >&2; exit 1; }
# The trace id must reach at least one histogram exemplar in the
# exposition before any later request can displace it from its bucket.
./target/release/mosc-cli metrics --addr "$tr_addr" > target/bench/trace_metrics.txt
grep -q "# {trace_id=\"$trace_id\"}" target/bench/trace_metrics.txt \
    || { echo "trace smoke: exposition has no exemplar for trace $trace_id" >&2; exit 1; }
# A traced solve_batch: every variant entry must continue one trace.
tb_err=target/bench/trace_batch.err
batch_lines | ./target/release/mosc-cli client --batch --addr "$tr_addr" --trace \
    > target/bench/trace_batch.out 2>"$tb_err"
test "$(grep -c '"status":"ok"' target/bench/trace_batch.out)" -eq 2 \
    || { echo "trace smoke: traced batch did not answer both variants" >&2; cat target/bench/trace_batch.out >&2; exit 1; }
batch_trace=$(sed -n 's/^trace \([0-9a-f]\{32\}\).*/\1/p' "$tb_err" | head -n 1)
test -n "$batch_trace" || { echo "trace smoke: batch client printed no trace id" >&2; cat "$tb_err" >&2; exit 1; }
# Force a deadline-exceeded anomaly: an already-expired deadline trips the
# queued-deadline check, which snapshots the flight ring with reason
# "deadline". The reader thread answers cache hits before the queue, so
# the request carries a threads value no earlier request used — threads is
# part of the cache key — guaranteeing a miss and a real enqueue.
printf '%s\n' "{\"id\":\"tdl\",\"solver\":\"ao\",\"platform\":$smoke_platform,\"options\":{\"deadline_ms\":0,\"threads\":777}}" \
    | ./target/release/mosc-cli client --addr "$tr_addr" --trace \
    > target/bench/trace_deadline.out 2>/dev/null
grep -q '"kind":"deadline"' target/bench/trace_deadline.out \
    || { echo "trace smoke: expired deadline not answered with a deadline error" >&2; cat target/bench/trace_deadline.out >&2; exit 1; }
printf '%s\n' '{"id":"bye","op":"shutdown"}' \
    | ./target/release/mosc-cli client --addr "$tr_addr" >/dev/null
wait "$tr_pid" || { echo "trace smoke: daemon exited non-zero" >&2; cat "$tr_log" >&2; exit 1; }
# The v2 trace id appears verbatim in the access log ...
grep -q "\"trace_id\":\"$trace_id\"" "$tr_access" \
    || { echo "trace smoke: trace $trace_id missing from the access log" >&2; exit 1; }
# ... in every variant entry of the batch dispatch, all sharing one parent
# (the dispatch span) ...
test "$(grep -c "\"trace_id\":\"$batch_trace\"" "$tr_access")" -ge 2 \
    || { echo "trace smoke: batch variants did not continue trace $batch_trace" >&2; exit 1; }
batch_parents=$(grep "\"trace_id\":\"$batch_trace\"" "$tr_access" \
    | sed -n 's/.*"parent_id":"\([0-9a-f]*\)".*/\1/p' | sort -u | wc -l)
test "$batch_parents" -eq 1 \
    || { echo "trace smoke: batch variants disagree on their dispatch parent" >&2; exit 1; }
# ... and in a flight dump, including the forced deadline dump.
grep -q '"type":"flight_dump"' "$tr_flight" \
    || { echo "trace smoke: no flight dump was written" >&2; exit 1; }
grep -q '"reason":"deadline"' "$tr_flight" \
    || { echo "trace smoke: the deadline anomaly left no flight dump" >&2; exit 1; }
grep -q "$trace_id" "$tr_flight" \
    || { echo "trace smoke: trace $trace_id missing from the flight dumps" >&2; exit 1; }
# The joined waterfall renders the trace from those artifacts ...
./target/release/mosc-cli trace "$tr_access" "$tr_flight" --trace-id "$trace_id" \
    > target/bench/trace_waterfall.txt
grep -q "trace $trace_id" target/bench/trace_waterfall.txt \
    || { echo "trace smoke: waterfall did not render trace $trace_id" >&2; cat target/bench/trace_waterfall.txt >&2; exit 1; }
grep -q 'span ' target/bench/trace_waterfall.txt \
    || { echo "trace smoke: waterfall has no span rows" >&2; exit 1; }
./target/release/mosc-cli trace "$tr_access" "$tr_flight" --format json \
    | grep -q "\"trace_id\":\"$batch_trace\"" \
    || { echo "trace smoke: JSON join lost the batch trace" >&2; exit 1; }
# ... and the whole story passes deny-mode M120-M124 (plus the M06x-M11x
# lints the artifacts already answer to).
./target/release/mosc-cli analyze -D warnings "$tr_access" "$tr_flight" \
    || { echo "trace smoke: artifacts failed the deny-mode M12x lints" >&2; exit 1; }

echo "==> tracing-overhead guard (BENCH_trace.json, traced vs untraced p50)"
# One arrival schedule replayed twice against an in-process daemon —
# tracing off, then on; the p50 ratio lands in the compare-gated artifact.
./target/release/loadgen --rate 150 --duration 1.2 --warmup 0.3 --conns 2 --seed 42 \
    --trace-overhead --csv target/bench --artifact BENCH_trace.json >/dev/null \
    || { echo "trace overhead: generator failed" >&2; exit 1; }
grep -q '"type":"trace_overhead"' target/bench/BENCH_trace.json \
    || { echo "BENCH_trace.json missing the trace_overhead record" >&2; exit 1; }
grep -q '"mode":"open_traced"' target/bench/BENCH_trace.json \
    || { echo "BENCH_trace.json missing the traced run" >&2; exit 1; }

echo "==> deny-mode analyze over every produced artifact (incl. M10x bench lints)"
for artifact in target/bench/BENCH_periodmap.json target/bench/BENCH_serve.json \
    target/bench/BENCH_loadgen.json target/bench/BENCH_evloop.json \
    target/bench/BENCH_batch.json target/bench/BENCH_trace.json "$lg_timeline"; do
    ./target/release/mosc-cli analyze -D warnings "$artifact" \
        || { echo "deny-mode analyze failed on $artifact" >&2; exit 1; }
done

echo "==> bench baseline comparison (benches/baseline, direction-aware)"
cargo build -q --release -p mosc-bench --bin compare
for bench in BENCH_loadgen.json BENCH_evloop.json BENCH_batch.json BENCH_trace.json; do
    if [ "$DENY" -eq 1 ]; then
        ./target/release/compare "benches/baseline/$bench" "target/bench/$bench" \
            || { echo "baseline compare: regression past threshold in $bench (deny mode)" >&2; exit 1; }
    else
        ./target/release/compare --warn-only \
            "benches/baseline/$bench" "target/bench/$bench" \
            || { echo "baseline compare: artifacts not comparable in $bench" >&2; exit 1; }
    fi
done

echo "==> solution-claim cross-check (solve --claim, M081 recompute, SARIF smoke)"
printf '%s\n' '{"platform": {"rows": 1, "cols": 2, "levels": [0.6, 1.3], "t_max_c": 55.0}}' \
    > target/bench/claim_spec.json
./target/release/mosc-cli solve --algo ao --rows 1 --cols 2 --levels 2 --tmax 55 \
    --claim target/bench/claim.json >/dev/null
./target/release/mosc-cli analyze -D warnings \
    target/bench/claim_spec.json target/bench/claim.json \
    || { echo "claim cross-check: M081 recompute rejected the solver's own claim" >&2; exit 1; }
./target/release/mosc-cli analyze --format sarif \
    target/bench/claim_spec.json target/bench/claim.json \
    | grep -q '"version":"2.1.0"' \
    || { echo "claim cross-check: SARIF output missing schema version" >&2; exit 1; }

# The sanitizer jobs need the nightly toolchain plus the miri / rust-src
# components. They gate gracefully: absent tooling skips with a notice
# rather than failing the whole pipeline (the container may be offline).
if rustup toolchain list 2>/dev/null | grep -q '^nightly'; then
    nightly_components=$(rustup component list --toolchain nightly --installed 2>/dev/null || true)

    echo "==> miri: mosc-obs unit tests under the interpreter"
    if echo "$nightly_components" | grep -q '^miri'; then
        MIRIFLAGS=-Zmiri-disable-isolation cargo +nightly miri test -q -p mosc-obs --lib \
            || { echo "miri found undefined behaviour in mosc-obs" >&2; exit 1; }
    else
        echo "    (skipped: miri component not installed for nightly)"
    fi

    echo "==> thread sanitizer: mosc-serve loopback smoke"
    if echo "$nightly_components" | grep -q '^rust-src'; then
        RUSTFLAGS=-Zsanitizer=thread cargo +nightly test -q -Zbuild-std \
            --target x86_64-unknown-linux-gnu -p mosc-serve --test loopback \
            || { echo "thread sanitizer flagged a data race in mosc-serve" >&2; exit 1; }
    else
        echo "    (skipped: rust-src component not installed for nightly)"
    fi
else
    echo "==> sanitizers skipped: no nightly toolchain installed"
fi

echo "==> all checks passed"
