#!/bin/sh
# The full local CI gate. Run from the repository root before committing.
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> mosc-obs disabled-recorder overhead guard"
cargo test -q -p mosc-obs disabled_recorder_is_inert

echo "==> mosc-cli profile smoke (specs/smoke.json)"
profile_out=$(cargo run -q --bin mosc-cli -- profile specs/smoke.json --obs=json)
test -n "$profile_out" || { echo "profile emitted no telemetry" >&2; exit 1; }
echo "$profile_out" | grep -q '"type":"profile","solver":"Governor"' \
    || { echo "profile missing per-solver records" >&2; exit 1; }

echo "==> all checks passed"
