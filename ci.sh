#!/bin/sh
# The full local CI gate. Run from the repository root before committing.
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> mosc-obs disabled-recorder overhead guard"
cargo test -q -p mosc-obs disabled_recorder_is_inert

echo "==> mosc-cli profile smoke (specs/smoke.json)"
profile_out=$(cargo run -q --bin mosc-cli -- profile specs/smoke.json --obs=json)
test -n "$profile_out" || { echo "profile emitted no telemetry" >&2; exit 1; }
echo "$profile_out" | grep -q '"type":"profile","solver":"Governor"' \
    || { echo "profile missing per-solver records" >&2; exit 1; }

echo "==> period-map scaling smoke (dense ops sublinear in m)"
pm_field() { # pm_field <m> <field>
    echo "$profile_out" | sed -n "s/.*\"type\":\"periodmap\",\"m\":$1,.*\"$2\":\([0-9]*\).*/\1/p"
}
fast_1=$(pm_field 1 fast_ops); fast_64=$(pm_field 64 fast_ops); fast_256=$(pm_field 256 fast_ops)
dense_64=$(pm_field 64 dense_ops); expm_fast_64=$(pm_field 64 fast_expm); expm_dense_64=$(pm_field 64 dense_expm)
test -n "$fast_1" && test -n "$fast_256" && test -n "$dense_64" \
    || { echo "profile missing periodmap records" >&2; exit 1; }
# The modal kernel's dense-op count must not grow with the oscillation
# factor (flat, not merely sublinear) ...
test "$fast_256" -le $((fast_1 * 4)) \
    || { echo "period_map dense ops grew with m: $fast_1 -> $fast_256" >&2; exit 1; }
# ... and must beat the interval-by-interval reference >= 5x at m = 64.
test $((dense_64 + expm_dense_64)) -ge $(((fast_64 + expm_fast_64) * 5)) \
    || { echo "period_map kernel not >=5x cheaper at m=64: fast $fast_64+$expm_fast_64 vs dense $dense_64+$expm_dense_64" >&2; exit 1; }

echo "==> period-map bench artifact (BENCH_periodmap.json)"
cargo run -q --release -p mosc-bench --bin periodmap -- --csv target/bench >/dev/null
grep -q '"type":"periodmap"' target/bench/BENCH_periodmap.json \
    || { echo "BENCH_periodmap.json missing periodmap records" >&2; exit 1; }

echo "==> all checks passed"
