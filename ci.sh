#!/bin/sh
# The full local CI gate. Run from the repository root before committing.
set -eu

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> mosc-obs disabled-recorder overhead guard"
cargo test -q -p mosc-obs disabled_recorder_is_inert

echo "==> mosc-cli profile smoke (specs/smoke.json)"
profile_out=$(cargo run -q --bin mosc-cli -- profile specs/smoke.json --obs=json)
test -n "$profile_out" || { echo "profile emitted no telemetry" >&2; exit 1; }
echo "$profile_out" | grep -q '"type":"profile","solver":"Governor"' \
    || { echo "profile missing per-solver records" >&2; exit 1; }

echo "==> period-map scaling smoke (dense ops sublinear in m)"
pm_field() { # pm_field <m> <field>
    echo "$profile_out" | sed -n "s/.*\"type\":\"periodmap\",\"m\":$1,.*\"$2\":\([0-9]*\).*/\1/p"
}
fast_1=$(pm_field 1 fast_ops); fast_64=$(pm_field 64 fast_ops); fast_256=$(pm_field 256 fast_ops)
dense_64=$(pm_field 64 dense_ops); expm_fast_64=$(pm_field 64 fast_expm); expm_dense_64=$(pm_field 64 dense_expm)
test -n "$fast_1" && test -n "$fast_256" && test -n "$dense_64" \
    || { echo "profile missing periodmap records" >&2; exit 1; }
# The modal kernel's dense-op count must not grow with the oscillation
# factor (flat, not merely sublinear) ...
test "$fast_256" -le $((fast_1 * 4)) \
    || { echo "period_map dense ops grew with m: $fast_1 -> $fast_256" >&2; exit 1; }
# ... and must beat the interval-by-interval reference >= 5x at m = 64.
test $((dense_64 + expm_dense_64)) -ge $(((fast_64 + expm_fast_64) * 5)) \
    || { echo "period_map kernel not >=5x cheaper at m=64: fast $fast_64+$expm_fast_64 vs dense $dense_64+$expm_dense_64" >&2; exit 1; }

echo "==> period-map bench artifact (BENCH_periodmap.json)"
cargo run -q --release -p mosc-bench --bin periodmap -- --csv target/bench >/dev/null
grep -q '"type":"periodmap"' target/bench/BENCH_periodmap.json \
    || { echo "BENCH_periodmap.json missing periodmap records" >&2; exit 1; }

echo "==> mosc-serve smoke (daemon, cached solve, typed errors, drained shutdown)"
cargo build -q --release --bin mosc-cli
serve_log=target/bench/serve_smoke.log
mkdir -p target/bench
# Port 0: the kernel picks a free port, the daemon prints the real address.
./target/release/mosc-cli serve --obs=json --addr 127.0.0.1:0 >"$serve_log" 2>&1 &
serve_pid=$!
for _ in $(seq 1 50); do
    grep -q 'mosc-serve listening on' "$serve_log" && break
    sleep 0.1
done
serve_addr=$(sed -n 's/^mosc-serve listening on //p' "$serve_log")
test -n "$serve_addr" || { echo "daemon never announced its address" >&2; exit 1; }
smoke_platform=$(tr -d ' \n' < specs/smoke.json | sed -e 's/^{"platform"://' -e 's/}$//')
serve_out=$(printf '%s\n' \
    "{\"id\":\"s1\",\"solver\":\"ao\",\"platform\":$smoke_platform}" \
    "{\"id\":\"s2\",\"solver\":\"ao\",\"platform\":$smoke_platform}" \
    'this is not json' \
    '{"id":"bye","op":"shutdown"}' \
    | ./target/release/mosc-cli client --addr "$serve_addr")
echo "$serve_out" | grep -q '"id":"s1","status":"ok".*"cached":false' \
    || { echo "serve smoke: first solve not a cold ok" >&2; echo "$serve_out" >&2; exit 1; }
echo "$serve_out" | grep -q '"id":"s2","status":"ok".*"cached":true' \
    || { echo "serve smoke: repeated solve missed the cache" >&2; echo "$serve_out" >&2; exit 1; }
echo "$serve_out" | grep -q '"status":"error","kind":"parse"' \
    || { echo "serve smoke: malformed request not answered with a parse error" >&2; echo "$serve_out" >&2; exit 1; }
echo "$serve_out" | grep -q '"shutting_down":true' \
    || { echo "serve smoke: shutdown op not acknowledged" >&2; echo "$serve_out" >&2; exit 1; }
wait "$serve_pid" || { echo "serve smoke: daemon exited non-zero" >&2; cat "$serve_log" >&2; exit 1; }
grep -q 'mosc-serve drained and stopped' "$serve_log" \
    || { echo "serve smoke: daemon did not drain cleanly" >&2; cat "$serve_log" >&2; exit 1; }
# The drained daemon's telemetry must pass the M060-M062 serve lints.
grep -v '^mosc-serve' "$serve_log" > target/bench/serve_smoke.jsonl
./target/release/mosc-cli analyze target/bench/serve_smoke.jsonl \
    || { echo "serve smoke: telemetry failed the M06x lints" >&2; exit 1; }

echo "==> serve bench artifact (BENCH_serve.json)"
cargo run -q --release -p mosc-bench --bin serve -- --csv target/bench >/dev/null
grep -q '"type":"serve","clients":8' target/bench/BENCH_serve.json \
    || { echo "BENCH_serve.json missing serve records" >&2; exit 1; }

echo "==> all checks passed"
