//! Lints over the `mosc-serve` access log (`M070`-series).
//!
//! The input is the JSONL that `mosc-cli serve --access-log` appends: one
//! `{"type":"access",...}` line per completed request (lifecycle phase
//! timings, deadline slack, kernel-counter deltas, span trees on slow
//! requests), plus the drain-time `hist_snapshot` and `serve_summary`
//! trailer lines. [`crate::telemetry::analyze_telemetry`] dispatches those
//! three record types here, so one `mosc-cli analyze` invocation covers
//! both a telemetry stream and an access log (or a concatenation).
//!
//! Every lint is per-line — the access log carries enough context on each
//! record that no cross-line state is needed:
//!
//! * `M070` — phase timings that cannot come from one monotone clock:
//!   a negative or missing phase, or `queue_wait + service > total`.
//! * `M071` — a successful (`status == "ok"`) response whose
//!   `deadline_slack_s` is ≤ 0: the deadline had already passed when the
//!   response was written. A warning, not an error — only the enumeration
//!   solvers (EXS, EXS-BnB) honor deadlines by contract; the polynomial
//!   solvers deliberately run to completion.
//! * `M072` — a `hist_snapshot` bucket series that is not a histogram:
//!   cumulative counts decrease, finite bucket bounds fail to increase, or
//!   the last bucket disagrees with the recorded sample count.
//! * `M073` — `serve_summary` cache counters that are mutually impossible:
//!   hits with zero misses (every cached entry was inserted after a miss),
//!   or more evictions than misses (misses bound insertions).

use crate::diag::{Code, Report};
use crate::json::Value;

/// Slack allowed between `queue_wait + service` and `total` before M070
/// fires: the phases are recorded from one `Instant` clock, so anything
/// beyond float noise is a real skew.
const PHASE_EPS: f64 = 1e-6;

/// Checks one `{"type":"access",...}` line (`M070`, `M071`).
pub(crate) fn check_access(value: &Value, lineno: usize, report: &mut Report) {
    let ctx = match value.get("id").and_then(Value::as_str) {
        Some(id) if !id.is_empty() => format!("line {lineno} (id {id})"),
        _ => format!("line {lineno}"),
    };
    let phase = |name: &str| value.get(name).and_then(Value::as_f64);
    let (qw, sv, total) = (phase("queue_wait_s"), phase("service_s"), phase("total_s"));
    match (qw, sv, total) {
        (Some(qw), Some(sv), Some(total)) => {
            if !(qw >= 0.0 && sv >= 0.0 && total >= 0.0) {
                report.push(
                    Code::AccessPhaseSkew,
                    ctx.clone(),
                    format!("negative phase timing (queue_wait {qw}, service {sv}, total {total})"),
                );
            } else if qw + sv > total + PHASE_EPS {
                report.push(
                    Code::AccessPhaseSkew,
                    ctx.clone(),
                    format!(
                        "queue_wait {qw} + service {sv} exceeds total {total} — the phases \
                         cannot come from one monotone clock"
                    ),
                );
            }
        }
        _ => report.push(
            Code::AccessPhaseSkew,
            ctx.clone(),
            "access line is missing queue_wait_s/service_s/total_s".to_owned(),
        ),
    }
    // M071: ok response after its own deadline. `deadline_slack_s` is null
    // for requests without a deadline, which as_f64 maps to None.
    if value.get("status").and_then(Value::as_str) == Some("ok") {
        if let Some(slack) = value.get("deadline_slack_s").and_then(Value::as_f64) {
            if slack <= 0.0 {
                report.push(
                    Code::AccessDeadlineMissed,
                    ctx,
                    format!(
                        "response succeeded {:.3} s after its deadline — only the \
                         enumeration solvers honor deadlines, but the client asked",
                        -slack
                    ),
                );
            }
        }
    }
}

/// Checks one `{"type":"hist_snapshot",...}` trailer line (`M072`).
pub(crate) fn check_hist_snapshot(value: &Value, lineno: usize, report: &mut Report) {
    let name = value.get("name").and_then(Value::as_str).unwrap_or("");
    let ctx = if name.is_empty() { format!("line {lineno}") } else { name.to_owned() };
    let count = value.get("count").and_then(Value::as_f64).unwrap_or(f64::NAN);
    let Some(Value::Array(buckets)) = value.get("buckets") else {
        report.push(
            Code::AccessHistogramBroken,
            ctx,
            "hist_snapshot line has no buckets array".to_owned(),
        );
        return;
    };
    let mut prev_cum = 0.0f64;
    let mut prev_le = f64::NEG_INFINITY;
    for (i, bucket) in buckets.iter().enumerate() {
        let Some(cum) = bucket.get("cum").and_then(Value::as_f64) else {
            report.push(
                Code::AccessHistogramBroken,
                ctx.clone(),
                format!("bucket {i} is missing its cumulative count"),
            );
            return;
        };
        if cum < prev_cum {
            report.push(
                Code::AccessHistogramBroken,
                ctx.clone(),
                format!("bucket {i} cumulative count {cum} drops below {prev_cum}"),
            );
            return;
        }
        prev_cum = cum;
        // `le` is a number for finite bounds and the string "+Inf" for the
        // final bucket (JSON has no infinity literal).
        if let Some(le) = bucket.get("le").and_then(Value::as_f64) {
            if le <= prev_le {
                report.push(
                    Code::AccessHistogramBroken,
                    ctx.clone(),
                    format!("bucket {i} bound {le} does not increase past {prev_le}"),
                );
                return;
            }
            prev_le = le;
        }
    }
    if prev_cum != count {
        report.push(
            Code::AccessHistogramBroken,
            ctx,
            format!("last cumulative bucket {prev_cum} disagrees with count {count}"),
        );
    }
}

/// Checks the `{"type":"serve_summary",...}` trailer line (`M073`).
pub(crate) fn check_serve_summary(value: &Value, lineno: usize, report: &mut Report) {
    let ctx = format!("line {lineno}");
    let counter = |name: &str| value.get(name).and_then(Value::as_f64).unwrap_or(0.0);
    let (hits, misses, evictions) =
        (counter("cache_hits"), counter("cache_misses"), counter("cache_evictions"));
    if hits > 0.0 && misses == 0.0 {
        report.push(
            Code::AccessCacheInconsistent,
            ctx,
            format!(
                "{hits} cache hit(s) with zero misses — every cached entry is inserted \
                 after a miss, so hits cannot precede the first miss"
            ),
        );
    } else if evictions > misses {
        report.push(
            Code::AccessCacheInconsistent,
            ctx,
            format!(
                "{evictions} eviction(s) exceed {misses} miss(es) — evictions are bounded \
                 by insertions, which are bounded by misses"
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::analyze_telemetry;

    #[test]
    fn healthy_access_log_is_clean() {
        let text = r#"{"type":"access","t_s":0.1,"id":"a1","op":"solve","solver":"ao","status":"ok","cached":false,"queue_wait_s":0.001,"service_s":0.01,"total_s":0.012,"deadline_slack_s":4.9,"expm_calls":0,"period_map_matmuls":120,"steady_state_calls":3,"linalg_matmuls":40}
{"type":"access","t_s":0.2,"id":"p1","op":"ping","solver":null,"status":"ok","cached":false,"queue_wait_s":0.0,"service_s":0.0001,"total_s":0.0001,"deadline_slack_s":null,"expm_calls":0,"period_map_matmuls":0,"steady_state_calls":0,"linalg_matmuls":0}
{"type":"hist_snapshot","name":"serve.latency.ao.total","count":2,"sum":0.03,"buckets":[{"le":0.01,"cum":1},{"le":0.02,"cum":2},{"le":"+Inf","cum":2}]}
{"type":"serve_summary","requests":2,"responses":2,"cache_hits":1,"cache_misses":1,"cache_evictions":0,"rejected":0,"deadline_exceeded":0,"malformed":0,"queue_peak":1,"uptime_s":0.3}
"#;
        let r = analyze_telemetry(text).unwrap();
        assert!(r.is_clean(), "findings:\n{r}");
    }

    #[test]
    fn skewed_phases_are_m070() {
        // Phase sum exceeding the total.
        let text = r#"{"type":"access","id":"x","status":"ok","queue_wait_s":0.5,"service_s":0.6,"total_s":1.0}
"#;
        let r = analyze_telemetry(text).unwrap();
        assert!(r.has_code(Code::AccessPhaseSkew), "findings:\n{r}");
        assert!(r.has_errors(), "M070 is an error:\n{r}");

        // Negative phase.
        let text = r#"{"type":"access","id":"x","status":"ok","queue_wait_s":-0.1,"service_s":0.1,"total_s":0.2}
"#;
        let r = analyze_telemetry(text).unwrap();
        assert!(r.has_code(Code::AccessPhaseSkew), "findings:\n{r}");

        // Missing phase member.
        let text = r#"{"type":"access","id":"x","status":"ok","total_s":0.2}
"#;
        let r = analyze_telemetry(text).unwrap();
        assert!(r.has_code(Code::AccessPhaseSkew), "findings:\n{r}");
    }

    #[test]
    fn ok_after_deadline_is_m071_warning() {
        let text = r#"{"type":"access","id":"x","status":"ok","queue_wait_s":0.1,"service_s":0.4,"total_s":0.5,"deadline_slack_s":-0.2}
"#;
        let r = analyze_telemetry(text).unwrap();
        assert!(r.has_code(Code::AccessDeadlineMissed), "findings:\n{r}");
        assert!(!r.has_errors(), "M071 is a warning:\n{r}");

        // Error responses after the deadline are the expected shape, not a
        // finding (that is what the deadline is for).
        let text = r#"{"type":"access","id":"x","status":"error","queue_wait_s":0.1,"service_s":0.4,"total_s":0.5,"deadline_slack_s":-0.2}
"#;
        let r = analyze_telemetry(text).unwrap();
        assert!(!r.has_code(Code::AccessDeadlineMissed), "findings:\n{r}");

        // Null slack (no deadline requested) is clean.
        let text = r#"{"type":"access","id":"x","status":"ok","queue_wait_s":0.1,"service_s":0.3,"total_s":0.5,"deadline_slack_s":null}
"#;
        let r = analyze_telemetry(text).unwrap();
        assert!(!r.has_code(Code::AccessDeadlineMissed), "findings:\n{r}");
    }

    #[test]
    fn broken_histograms_are_m072() {
        // Cumulative counts decreasing.
        let text = r#"{"type":"hist_snapshot","name":"h","count":2,"buckets":[{"le":0.01,"cum":2},{"le":"+Inf","cum":1}]}
"#;
        let r = analyze_telemetry(text).unwrap();
        assert!(r.has_code(Code::AccessHistogramBroken), "findings:\n{r}");
        assert!(r.has_errors(), "M072 is an error:\n{r}");

        // Last bucket disagrees with the count.
        let text = r#"{"type":"hist_snapshot","name":"h","count":5,"buckets":[{"le":0.01,"cum":1},{"le":"+Inf","cum":3}]}
"#;
        let r = analyze_telemetry(text).unwrap();
        assert!(r.has_code(Code::AccessHistogramBroken), "findings:\n{r}");

        // Bounds not increasing.
        let text = r#"{"type":"hist_snapshot","name":"h","count":2,"buckets":[{"le":0.02,"cum":1},{"le":0.01,"cum":2},{"le":"+Inf","cum":2}]}
"#;
        let r = analyze_telemetry(text).unwrap();
        assert!(r.has_code(Code::AccessHistogramBroken), "findings:\n{r}");
    }

    #[test]
    fn impossible_cache_counters_are_m073() {
        // Hits without a single miss.
        let text = r#"{"type":"serve_summary","cache_hits":4,"cache_misses":0,"cache_evictions":0}
"#;
        let r = analyze_telemetry(text).unwrap();
        assert!(r.has_code(Code::AccessCacheInconsistent), "findings:\n{r}");
        assert!(!r.has_errors(), "M073 is a warning:\n{r}");

        // More evictions than misses.
        let text = r#"{"type":"serve_summary","cache_hits":1,"cache_misses":2,"cache_evictions":5}
"#;
        let r = analyze_telemetry(text).unwrap();
        assert!(r.has_code(Code::AccessCacheInconsistent), "findings:\n{r}");

        // A believable summary is clean.
        let text = r#"{"type":"serve_summary","cache_hits":3,"cache_misses":5,"cache_evictions":2}
"#;
        let r = analyze_telemetry(text).unwrap();
        assert!(!r.has_code(Code::AccessCacheInconsistent), "findings:\n{r}");
    }
}
