//! The typed artifact model: every file `mosc-cli analyze` accepts, loaded
//! once into a shared structure that all lint passes read.
//!
//! Five artifact shapes are recognized:
//!
//! * **Spec** — a JSON object with a `"platform"` member (optionally
//!   `"schedule"` / `"solution"`), loaded through [`crate::spec::load_spec`]
//!   so the typed platform and schedule survive for cross-artifact lints.
//! * **Claim** — a JSON object with a `"throughput"` member: the
//!   `SolveResponse`-shaped summary a solve emits (`mosc-cli solve --claim`,
//!   or a captured serve response line). May embed its schedule as text.
//! * **Schedule** — the `mosc-sched` text format (`period …` / `core …`).
//! * **Stream** — JSONL telemetry / access logs: either a `.jsonl` file, a
//!   single object with a `"type"` discriminator, or a file of one object
//!   per line (the `BENCH_*.json` shape).
//!
//! Classification is by content first, extension as a hint: a file whose
//! whole text parses as a JSON object dispatches on its members; otherwise
//! the loader tries JSONL, then the schedule text format, and only then
//! reports a structural error.

use crate::json::Value;
use crate::spec::{load_spec, SpecArtifact, SpecError};
use crate::telemetry::{load_stream, StreamRecord};
use mosc_power::Params65nm;
use mosc_sched::{text, Platform, Schedule};

/// A solve claim: the headline numbers a solver (or the serve daemon)
/// reported for some platform, plus the schedule text when it was captured.
#[derive(Debug)]
pub struct ClaimArtifact {
    /// Solver id (`"ao"`, `"pco"`, …) when the claim names one.
    pub solver: Option<String>,
    /// Claimed eq. (5) throughput.
    pub throughput: f64,
    /// Claimed stable peak, relative to ambient (K); converted from
    /// `peak_c` when the claim used absolute degrees.
    pub peak: Option<f64>,
    /// Claimed feasibility verdict.
    pub feasible: Option<bool>,
    /// Claimed oscillation factor (defaults to 1).
    pub m: usize,
    /// The schedule the claim is about, when embedded as text.
    pub schedule: Option<Schedule>,
}

/// What one loaded file turned out to be.
#[derive(Debug)]
pub enum ArtifactKind {
    /// A platform/schedule/solution spec with its typed halves.
    Spec(Box<SpecArtifact>),
    /// A standalone schedule in the text format.
    Schedule(Box<Schedule>),
    /// A solve claim to verify.
    Claim(Box<ClaimArtifact>),
    /// A JSONL telemetry stream or access log.
    Stream(Vec<StreamRecord>),
}

impl ArtifactKind {
    /// A short human label for diagnostics and the JSON/SARIF outputs.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Spec(_) => "spec",
            Self::Schedule(_) => "schedule",
            Self::Claim(_) => "claim",
            Self::Stream(_) => "stream",
        }
    }
}

/// One loaded input file.
#[derive(Debug)]
pub struct ArtifactFile {
    /// The path the file was loaded from, used to stamp diagnostics.
    pub path: String,
    /// Its classified, typed content.
    pub kind: ArtifactKind,
}

/// Every artifact of one analysis run, loaded up front. Lint passes receive
/// this immutably and never re-read files.
#[derive(Debug, Default)]
pub struct Artifacts {
    /// The loaded files, in command-line order.
    pub files: Vec<ArtifactFile>,
}

impl Artifacts {
    /// Loads and classifies `(path, text)` pairs.
    ///
    /// # Errors
    /// [`SpecError`] (prefixed with the offending path) when any file is
    /// structurally unusable — malformed JSON, unknown shape, or a spec
    /// with missing required fields.
    pub fn load(inputs: &[(String, String)]) -> Result<Self, SpecError> {
        let mut files = Vec::with_capacity(inputs.len());
        for (path, text) in inputs {
            let kind = classify(path, text).map_err(|e| SpecError(format!("{path}: {}", e.0)))?;
            files.push(ArtifactFile { path: path.clone(), kind });
        }
        Ok(Self { files })
    }

    /// The first spec artifact's typed platform, if any spec built one —
    /// the reference platform cross-artifact lints join against.
    #[must_use]
    pub fn platform(&self) -> Option<&Platform> {
        self.files.iter().find_map(|f| match &f.kind {
            ArtifactKind::Spec(s) => s.platform.as_ref(),
            _ => None,
        })
    }

    /// A schedule usable as the fallback recompute target for claims that
    /// did not embed their own: the first spec schedule, else the first
    /// standalone schedule artifact.
    #[must_use]
    pub fn fallback_schedule(&self) -> Option<&Schedule> {
        self.files
            .iter()
            .find_map(|f| match &f.kind {
                ArtifactKind::Spec(s) => s.schedule.as_ref(),
                _ => None,
            })
            .or_else(|| {
                self.files.iter().find_map(|f| match &f.kind {
                    ArtifactKind::Schedule(s) => Some(s.as_ref()),
                    _ => None,
                })
            })
    }
}

/// Classifies one file's text and loads it into its typed artifact.
///
/// # Errors
/// [`SpecError`] when the content matches no artifact shape.
pub fn classify(path: &str, text: &str) -> Result<ArtifactKind, SpecError> {
    if path.ends_with(".jsonl") {
        return Ok(ArtifactKind::Stream(load_stream(text)?));
    }
    match Value::parse(text) {
        Ok(doc) if doc.is_object() => {
            if doc.get("platform").is_some() {
                Ok(ArtifactKind::Spec(Box::new(load_spec(text)?)))
            } else if doc.get("type").and_then(Value::as_str).is_some() {
                Ok(ArtifactKind::Stream(load_stream(text)?))
            } else if doc.get("throughput").is_some() {
                Ok(ArtifactKind::Claim(Box::new(load_claim(&doc)?)))
            } else {
                Err(SpecError(
                    "unrecognized artifact: a JSON object needs a 'platform', 'type', \
                     or 'throughput' member"
                        .into(),
                ))
            }
        }
        Ok(_) => Err(SpecError("top level must be a JSON object".into())),
        Err(json_err) => {
            // Not a single JSON document: try JSONL (the BENCH_*.json
            // shape), then the schedule text format.
            if let Ok(records) = load_stream(text) {
                if !records.is_empty() {
                    return Ok(ArtifactKind::Stream(records));
                }
            }
            match text::from_text(text) {
                Ok(s) => Ok(ArtifactKind::Schedule(Box::new(s))),
                Err(_) => Err(SpecError(format!(
                    "unrecognized artifact: not JSON ({json_err}), not JSONL, \
                     and not a schedule in the text format"
                ))),
            }
        }
    }
}

fn load_claim(doc: &Value) -> Result<ClaimArtifact, SpecError> {
    if let Some(status) = doc.get("status") {
        let status =
            status.as_str().ok_or_else(|| SpecError("claim status must be a string".into()))?;
        if status != "ok" {
            return Err(SpecError(format!(
                "claim status is '{status}', not 'ok' — there is no solution to verify"
            )));
        }
    }
    let throughput = doc
        .get("throughput")
        .and_then(Value::as_f64)
        .ok_or_else(|| SpecError("claim.throughput must be a number".into()))?;
    let ambient = Params65nm::params().t_ambient_c;
    let peak = match (doc.get("peak_c"), doc.get("peak")) {
        (Some(v), _) => Some(
            v.as_f64().ok_or_else(|| SpecError("claim.peak_c must be a number".into()))? - ambient,
        ),
        (None, Some(v)) => {
            Some(v.as_f64().ok_or_else(|| SpecError("claim.peak must be a number".into()))?)
        }
        (None, None) => None,
    };
    let feasible = match doc.get("feasible") {
        None => None,
        Some(v) => {
            Some(v.as_bool().ok_or_else(|| SpecError("claim.feasible must be a boolean".into()))?)
        }
    };
    let m = match doc.get("m") {
        None => 1,
        Some(v) => v
            .as_usize()
            .ok_or_else(|| SpecError("claim.m must be a non-negative integer".into()))?,
    };
    let solver = match doc.get("solver") {
        None | Some(Value::Null) => None,
        Some(v) => Some(
            v.as_str().ok_or_else(|| SpecError("claim.solver must be a string".into()))?.to_owned(),
        ),
    };
    let schedule = match doc.get("schedule") {
        None => None,
        Some(v) => {
            let txt = v
                .as_str()
                .ok_or_else(|| SpecError("claim.schedule must be schedule text".into()))?;
            Some(text::from_text(txt).map_err(|e| SpecError(format!("claim.schedule: {e}")))?)
        }
    };
    Ok(ClaimArtifact { solver, throughput, peak, feasible, m, schedule })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"{
        "platform": {"rows": 1, "cols": 2, "levels": [0.6, 1.3], "t_max_c": 55.0},
        "schedule": {"period": 0.1,
                     "cores": [[[0.6, 0.06], [1.3, 0.04]], [[0.6, 0.07], [1.3, 0.03]]]}
    }"#;

    #[test]
    fn classification_covers_all_shapes() {
        assert!(matches!(classify("s.json", SPEC), Ok(ArtifactKind::Spec(_))));
        let claim = r#"{"status":"ok","solver":"ao","throughput":1.0,"peak_c":50.0,
                        "feasible":true,"m":2}"#;
        assert!(matches!(classify("c.json", claim), Ok(ArtifactKind::Claim(_))));
        let stream = "{\"type\":\"counter\",\"name\":\"x\",\"value\":1}\n\
                      {\"type\":\"counter\",\"name\":\"y\",\"value\":2}\n";
        match classify("b.json", stream) {
            Ok(ArtifactKind::Stream(records)) => assert_eq!(records.len(), 2),
            other => panic!("BENCH shape misclassified: {other:?}"),
        }
        let sched = "period 0.1\ncore 0: 0.6 x 0.06, 1.3 x 0.04\n";
        assert!(matches!(classify("s.txt", sched), Ok(ArtifactKind::Schedule(_))));
        // A .jsonl extension forces stream classification even for a single
        // object that would otherwise look like a claim.
        let line = r#"{"type":"access","throughput":1.0}"#;
        assert!(matches!(classify("log.jsonl", line), Ok(ArtifactKind::Stream(_))));
    }

    #[test]
    fn unrecognized_inputs_are_structural_errors() {
        assert!(classify("x", "definitely not anything").is_err());
        assert!(classify("x", "[1,2,3]").is_err());
        assert!(classify("x", r#"{"mystery": 1}"#).is_err());
        let err_claim = r#"{"status":"error","throughput":0.0}"#;
        assert!(classify("x", err_claim).is_err());
    }

    #[test]
    fn artifacts_expose_platform_and_fallback_schedule() {
        let inputs = vec![
            ("spec.json".to_owned(), SPEC.to_owned()),
            ("sched.txt".to_owned(), "period 0.1\ncore 0: 0.6 x 0.1\n".to_owned()),
        ];
        let arts = Artifacts::load(&inputs).unwrap();
        assert_eq!(arts.files.len(), 2);
        assert!(arts.platform().is_some());
        // The spec's own schedule wins over the standalone one.
        assert_eq!(arts.fallback_schedule().unwrap().n_cores(), 2);

        let inputs = vec![("sched.txt".to_owned(), "period 0.1\ncore 0: 0.6 x 0.1\n".to_owned())];
        let arts = Artifacts::load(&inputs).unwrap();
        assert!(arts.platform().is_none());
        assert_eq!(arts.fallback_schedule().unwrap().n_cores(), 1);
    }

    #[test]
    fn claim_peak_c_converts_to_kelvin_above_ambient() {
        let claim = r#"{"throughput":1.0,"peak_c":55.0}"#;
        match classify("c.json", claim).unwrap() {
            ArtifactKind::Claim(c) => {
                let ambient = Params65nm::params().t_ambient_c;
                assert!((c.peak.unwrap() - (55.0 - ambient)).abs() < 1e-12);
                assert_eq!(c.m, 1);
                assert!(c.solver.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn load_errors_carry_the_path() {
        let inputs = vec![("bad.json".to_owned(), "nope".to_owned())];
        let err = Artifacts::load(&inputs).unwrap_err();
        assert!(err.0.starts_with("bad.json: "), "{err}");
    }
}
