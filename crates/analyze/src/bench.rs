//! Lints over bench artifacts (`M100`-series): the `BENCH_*.json` JSONL
//! streams the `mosc-bench` binaries emit through the schema-v2 recorder.
//!
//! PR 7 made bench artifacts first-class: every emitting binary stamps one
//! `{"type":"bench_meta","schema":2,...}` header (git sha, host, thread
//! count, options) ahead of its records, the open-loop load generator
//! writes `{"type":"bench",...}` summaries plus `{"type":"timeline",...}`
//! windows, rate sweeps write `{"type":"sweep",...}` points, and the
//! legacy closed-loop harness keeps `{"type":"serve",...}` (now labelled
//! `"mode":"closed"`). These lints replace the `grep -q '"p99_ms":'`-style
//! CI checks with structural ones:
//!
//! * `M100` — bench records with no schema-v2 meta header, a meta header
//!   missing its stamps, or a record missing the fields its type requires.
//! * `M101` — latency quantiles out of order (`p50 ≤ p90 ≤ p99 ≤ p999 ≤
//!   max` must hold; they are read off one histogram).
//! * `M102` — an empty measurement window: a summary with zero measured
//!   samples, or a timeline whose windows are all empty.
//! * `M103` — achieved-rate collapse: an open-loop summary achieving less
//!   than half its offered rate (the latency figures describe saturation).
//! * `M104` — sweep sanity: offered rates must strictly increase and the
//!   achieved rate must not collapse far below its running maximum.
//!
//! All lints are inert on streams without bench-family records, so access
//! logs and solver telemetry are unaffected.

use crate::diag::{Code, Report, Severity};
use crate::json::Value;
use crate::telemetry::StreamRecord;

/// Record types that make a stream a bench artifact (and so require the
/// schema-v2 meta header). `timeline` is deliberately absent: the serve
/// daemon's `--timeline` stream carries the same records as live
/// telemetry, with no bench run to stamp — timelines still get the
/// field, quantile and emptiness checks, just not the meta requirement.
const BENCH_TYPES: [&str; 5] = ["bench", "serve", "sweep", "periodmap", "batch"];

/// Open-loop achieved/offered ratio below which the offered rate was
/// unserious (`M103`).
const COLLAPSE_RATIO: f64 = 0.5;

/// Fields every schema-v2 `bench_meta` header must stamp.
const META_FIELDS: [&str; 4] = ["bench", "git_sha", "host", "threads"];

/// Required fields per bench record type.
fn required_fields(ty: &str) -> &'static [&'static str] {
    match ty {
        "bench" => &[
            "mode",
            "offered_req_per_s",
            "achieved_req_per_s",
            "count",
            "p50_ms",
            "p90_ms",
            "p99_ms",
            "p999_ms",
            "max_ms",
        ],
        "serve" => &["mode", "clients", "requests", "req_per_s", "p50_ms", "p99_ms"],
        "timeline" => &["window", "start_s", "len_s", "count", "req_per_s", "p50_ms", "p999_ms"],
        "sweep" => &["offered_req_per_s", "achieved_req_per_s", "p99_ms"],
        "periodmap" => &["m", "fast_wall_s", "dense_wall_s", "fast_ops", "dense_ops"],
        "batch" => &["mode", "variants", "count", "p50_ms", "max_ms"],
        _ => &[],
    }
}

/// One parsed sweep point, in stream order.
struct SweepPoint {
    lineno: usize,
    offered: f64,
    achieved: f64,
}

/// Runs the `M100`–`M104` bench lints over pre-parsed stream records.
pub fn bench_lints(records: &[StreamRecord], report: &mut Report) {
    let mut saw_bench_record = false;
    let mut saw_meta = false;
    let mut sweep: Vec<SweepPoint> = Vec::new();
    let mut timeline_windows = 0usize;
    let mut timeline_nonempty = 0usize;
    let mut first_timeline_line = 0usize;

    for rec in records {
        let (value, lineno) = (&rec.value, rec.lineno);
        let Some(ty) = value.get("type").and_then(Value::as_str) else { continue };
        if ty == "bench_meta" {
            saw_meta = true;
            check_meta(value, lineno, report);
            continue;
        }
        let is_bench = BENCH_TYPES.contains(&ty);
        if !is_bench && ty != "timeline" {
            continue;
        }
        saw_bench_record |= is_bench;
        check_required(ty, value, lineno, report);
        check_quantile_order(ty, value, lineno, report);
        match ty {
            "bench" => {
                let count = field(value, "count").unwrap_or(f64::NAN);
                if count == 0.0 {
                    report.push(
                        Code::BenchWindowEmpty,
                        format!("line {lineno}"),
                        "bench summary measured zero samples — the measurement window \
                         is empty, its quantiles are meaningless",
                    );
                }
                check_rate_collapse(value, lineno, report);
            }
            "timeline" => {
                if timeline_windows == 0 {
                    first_timeline_line = lineno;
                }
                timeline_windows += 1;
                if field(value, "count").unwrap_or(0.0) > 0.0 {
                    timeline_nonempty += 1;
                }
            }
            "sweep" => {
                if let (Some(offered), Some(achieved)) =
                    (field(value, "offered_req_per_s"), field(value, "achieved_req_per_s"))
                {
                    sweep.push(SweepPoint { lineno, offered, achieved });
                }
            }
            _ => {}
        }
    }

    if saw_bench_record && !saw_meta {
        report.push(
            Code::BenchMetaMissing,
            "",
            "bench records with no schema-v2 bench_meta header — run metadata \
             (git sha, host, threads) is unrecoverable, the artifact cannot be \
             compared across runs",
        );
    }
    if timeline_windows > 0 && timeline_nonempty == 0 {
        report.push_with(
            Severity::Warning,
            Code::BenchWindowEmpty,
            format!("line {first_timeline_line}"),
            format!(
                "all {timeline_windows} timeline window(s) are empty — the run \
                 completed no requests inside the sampled span"
            ),
        );
    }
    check_sweep(&sweep, report);
}

/// Numeric field accessor.
fn field(value: &Value, key: &str) -> Option<f64> {
    value.get(key).and_then(Value::as_f64)
}

/// `M100` on the meta header itself: schema ≥ 2 and the stamps present.
fn check_meta(value: &Value, lineno: usize, report: &mut Report) {
    let schema = field(value, "schema").unwrap_or(0.0);
    if schema < 2.0 {
        report.push(
            Code::BenchMetaMissing,
            format!("line {lineno}"),
            format!("bench_meta declares schema {schema}, expected 2 or newer"),
        );
    }
    let missing: Vec<&str> =
        META_FIELDS.iter().copied().filter(|f| value.get(f).is_none()).collect();
    if !missing.is_empty() {
        report.push(
            Code::BenchMetaMissing,
            format!("line {lineno}"),
            format!("bench_meta is missing required stamp(s): {}", missing.join(", ")),
        );
    }
}

/// `M100` on a bench record: every field its type requires is present.
fn check_required(ty: &str, value: &Value, lineno: usize, report: &mut Report) {
    let missing: Vec<&str> =
        required_fields(ty).iter().copied().filter(|f| value.get(f).is_none()).collect();
    if !missing.is_empty() {
        report.push(
            Code::BenchMetaMissing,
            format!("line {lineno}"),
            format!("'{ty}' record is missing required field(s): {}", missing.join(", ")),
        );
    }
}

/// `M101`: the present members of `p50 ≤ p90 ≤ p99 ≤ p999 ≤ max` hold.
fn check_quantile_order(ty: &str, value: &Value, lineno: usize, report: &mut Report) {
    let chain = ["p50_ms", "p90_ms", "p99_ms", "p999_ms", "max_ms"];
    let present: Vec<(&str, f64)> =
        chain.iter().filter_map(|&k| field(value, k).map(|v| (k, v))).collect();
    for pair in present.windows(2) {
        let ((lo_name, lo), (hi_name, hi)) = (pair[0], pair[1]);
        // One histogram produced these; only float formatting can separate
        // equal bucket bounds, so the tolerance is tiny and relative.
        if lo > hi * (1.0 + 1e-9) + 1e-12 {
            report.push(
                Code::BenchQuantileOrder,
                format!("line {lineno}"),
                format!(
                    "'{ty}' record reports {lo_name} = {lo} above {hi_name} = {hi} — \
                     quantiles of one histogram cannot decrease"
                ),
            );
        }
    }
}

/// `M103`: open-loop summaries achieving under half their offered rate.
fn check_rate_collapse(value: &Value, lineno: usize, report: &mut Report) {
    if value.get("mode").and_then(Value::as_str) != Some("open") {
        return;
    }
    let (Some(offered), Some(achieved)) =
        (field(value, "offered_req_per_s"), field(value, "achieved_req_per_s"))
    else {
        return;
    };
    if offered > 0.0 && achieved < COLLAPSE_RATIO * offered {
        report.push(
            Code::BenchRateCollapse,
            format!("line {lineno}"),
            format!(
                "open-loop run achieved {achieved:.1} req/s of {offered:.1} offered \
                 ({:.0}%) — the generator outran the server, latency quantiles \
                 describe saturation, not service",
                100.0 * achieved / offered
            ),
        );
    }
}

/// `M104`: offered rates strictly increase; achieved never collapses far
/// below its running maximum.
fn check_sweep(points: &[SweepPoint], report: &mut Report) {
    let mut best_achieved = f64::NEG_INFINITY;
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            let prev = &points[i - 1];
            if p.offered <= prev.offered {
                report.push(
                    Code::BenchSweepNonMonotone,
                    format!("line {}", p.lineno),
                    format!(
                        "sweep offered rate {:.1} does not increase past the previous \
                         point's {:.1} — the sweep schedule is out of order",
                        p.offered, prev.offered
                    ),
                );
            }
        }
        if p.achieved < COLLAPSE_RATIO * best_achieved {
            report.push(
                Code::BenchSweepNonMonotone,
                format!("line {}", p.lineno),
                format!(
                    "sweep point at {:.1} req/s offered achieved {:.1} req/s, under \
                     half the {best_achieved:.1} an earlier point sustained — the \
                     server collapsed mid-sweep instead of plateauing at capacity",
                    p.offered, p.achieved
                ),
            );
        }
        best_achieved = best_achieved.max(p.achieved);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::analyze_telemetry;

    const META: &str = r#"{"type":"bench_meta","schema":2,"bench":"loadgen","git_sha":"abc1234","host":"ci","threads":8,"options":{"rate":"300"}}"#;

    fn bench_line(extra: &str) -> String {
        format!(
            "{{\"type\":\"bench\",\"mode\":\"open\",\"process\":\"poisson\",\
             \"offered_req_per_s\":300.0,\"achieved_req_per_s\":298.5,\"count\":597,\
             \"p50_ms\":1.0,\"p90_ms\":2.0,\"p99_ms\":3.0,\"p999_ms\":4.0,\
             \"max_ms\":5.0{extra}}}"
        )
    }

    #[test]
    fn healthy_v2_artifact_is_clean() {
        let text = format!(
            "{META}\n{}\n\
             {{\"type\":\"timeline\",\"window\":0,\"start_s\":0.0,\"len_s\":0.5,\
             \"count\":150,\"req_per_s\":300.0,\"hits\":140,\"cache_hit_rate\":0.93,\
             \"queue_depth_peak\":2,\"p50_ms\":1.0,\"p90_ms\":2.0,\"p99_ms\":3.0,\
             \"p999_ms\":4.0,\"max_ms\":5.0}}\n",
            bench_line("")
        );
        let r = analyze_telemetry(&text).unwrap();
        assert!(r.is_clean(), "findings:\n{r}");
    }

    #[test]
    fn serve_daemon_timeline_stream_needs_no_meta() {
        // `mosc-cli serve --timeline` emits bare timeline records — live
        // telemetry, not a bench artifact; M100 must stay quiet.
        let text = "{\"type\":\"timeline\",\"window\":0,\"start_s\":0.0,\"len_s\":1.0,\
                    \"count\":12,\"req_per_s\":12.0,\"hits\":10,\"cache_hit_rate\":0.83,\
                    \"queue_depth_peak\":1,\"p50_ms\":1.0,\"p90_ms\":2.0,\"p99_ms\":3.0,\
                    \"p999_ms\":4.0,\"max_ms\":5.0}\n";
        let r = analyze_telemetry(text).unwrap();
        assert!(r.is_clean(), "findings:\n{r}");
    }

    #[test]
    fn missing_meta_is_m100() {
        let r = analyze_telemetry(&format!("{}\n", bench_line(""))).unwrap();
        assert!(r.has_code(Code::BenchMetaMissing), "findings:\n{r}");
        assert!(r.has_errors());
    }

    #[test]
    fn stale_schema_and_missing_stamps_are_m100() {
        let stale =
            r#"{"type":"bench_meta","schema":1,"bench":"x","git_sha":"a","host":"h","threads":1}"#;
        let r = analyze_telemetry(&format!("{stale}\n{}\n", bench_line(""))).unwrap();
        assert!(r.has_code(Code::BenchMetaMissing), "findings:\n{r}");

        let gutted = r#"{"type":"bench_meta","schema":2,"bench":"x"}"#;
        let r = analyze_telemetry(&format!("{gutted}\n{}\n", bench_line(""))).unwrap();
        assert!(r.has_code(Code::BenchMetaMissing), "findings:\n{r}");
    }

    #[test]
    fn missing_required_fields_are_m100() {
        let gutted = r#"{"type":"serve","clients":8,"p50_ms":1.0}"#;
        let r = analyze_telemetry(&format!("{META}\n{gutted}\n")).unwrap();
        let m100: Vec<_> =
            r.diagnostics().iter().filter(|d| d.code == Code::BenchMetaMissing).collect();
        assert_eq!(m100.len(), 1, "findings:\n{r}");
        assert!(m100[0].message.contains("mode"), "{r}");
        assert!(m100[0].message.contains("p99_ms"), "{r}");
    }

    #[test]
    fn quantile_disorder_is_m101() {
        let bad = bench_line("").replace("\"p99_ms\":3.0", "\"p99_ms\":1.5");
        let r = analyze_telemetry(&format!("{META}\n{bad}\n")).unwrap();
        assert!(r.has_code(Code::BenchQuantileOrder), "findings:\n{r}");
        assert!(r.has_errors());

        // Equal quantiles (coarse buckets) are legal.
        let flat = bench_line("")
            .replace("\"p90_ms\":2.0", "\"p90_ms\":1.0")
            .replace("\"p99_ms\":3.0", "\"p99_ms\":1.0");
        let r = analyze_telemetry(&format!("{META}\n{flat}\n")).unwrap();
        assert!(!r.has_code(Code::BenchQuantileOrder), "findings:\n{r}");
    }

    #[test]
    fn empty_measurement_window_is_m102() {
        let empty = bench_line("").replace("\"count\":597", "\"count\":0");
        let r = analyze_telemetry(&format!("{META}\n{empty}\n")).unwrap();
        assert!(r.has_code(Code::BenchWindowEmpty), "findings:\n{r}");
        assert!(r.has_errors());
    }

    #[test]
    fn all_empty_timeline_is_m102_warning() {
        let window = r#"{"type":"timeline","window":0,"start_s":0.0,"len_s":0.5,"count":0,"req_per_s":0.0,"hits":0,"cache_hit_rate":0.0,"queue_depth_peak":0,"p50_ms":0.0,"p90_ms":0.0,"p99_ms":0.0,"p999_ms":0.0,"max_ms":0.0}"#;
        let r = analyze_telemetry(&format!("{META}\n{window}\n{window}\n")).unwrap();
        assert!(r.has_code(Code::BenchWindowEmpty), "findings:\n{r}");
        assert!(!r.has_errors(), "all-empty timeline is a warning:\n{r}");
    }

    #[test]
    fn achieved_rate_collapse_is_m103() {
        let collapsed =
            bench_line("").replace("\"achieved_req_per_s\":298.5", "\"achieved_req_per_s\":100.0");
        let r = analyze_telemetry(&format!("{META}\n{collapsed}\n")).unwrap();
        assert!(r.has_code(Code::BenchRateCollapse), "findings:\n{r}");
        assert!(!r.has_errors(), "M103 is a warning:\n{r}");

        // A closed-loop record has no offered rate to collapse from.
        let closed = r#"{"type":"serve","mode":"closed","clients":8,"requests":320,"req_per_s":40000.0,"p50_ms":1.0,"p99_ms":3.0}"#;
        let r = analyze_telemetry(&format!("{META}\n{closed}\n")).unwrap();
        assert!(!r.has_code(Code::BenchRateCollapse), "findings:\n{r}");
    }

    #[test]
    fn sweep_sanity_is_m104() {
        let point = |offered: f64, achieved: f64| {
            format!(
                "{{\"type\":\"sweep\",\"offered_req_per_s\":{offered:?},\
                 \"achieved_req_per_s\":{achieved:?},\"p99_ms\":2.0}}"
            )
        };
        // A healthy sweep plateaus at capacity past the knee.
        let good = format!(
            "{META}\n{}\n{}\n{}\n{}\n",
            point(100.0, 99.0),
            point(200.0, 198.0),
            point(400.0, 310.0),
            point(800.0, 305.0)
        );
        let r = analyze_telemetry(&good).unwrap();
        assert!(!r.has_code(Code::BenchSweepNonMonotone), "findings:\n{r}");

        // Offered rates out of order.
        let unordered = format!("{META}\n{}\n{}\n", point(200.0, 198.0), point(100.0, 99.0));
        let r = analyze_telemetry(&unordered).unwrap();
        assert!(r.has_code(Code::BenchSweepNonMonotone), "findings:\n{r}");
        assert!(!r.has_errors(), "M104 is a warning:\n{r}");

        // Achieved collapse far below the running maximum.
        let collapsed = format!(
            "{META}\n{}\n{}\n{}\n",
            point(100.0, 99.0),
            point(200.0, 198.0),
            point(400.0, 50.0)
        );
        let r = analyze_telemetry(&collapsed).unwrap();
        assert!(r.has_code(Code::BenchSweepNonMonotone), "findings:\n{r}");
    }

    #[test]
    fn batch_records_are_first_class_bench_records() {
        let batch = r#"{"type":"batch","mode":"batch_warm","variants":6,"count":48,"wall_s":0.01,"p50_ms":0.2,"p90_ms":0.3,"p99_ms":0.4,"max_ms":0.5,"speedup_x":12.5}"#;
        let r = analyze_telemetry(&format!("{META}\n{batch}\n")).unwrap();
        assert!(r.is_clean(), "findings:\n{r}");

        // No meta header: a bare batch record is a bench artifact too.
        let r = analyze_telemetry(&format!("{batch}\n")).unwrap();
        assert!(r.has_code(Code::BenchMetaMissing), "findings:\n{r}");

        // Missing its typed fields.
        let gutted = r#"{"type":"batch","mode":"batch_warm","p50_ms":0.2}"#;
        let r = analyze_telemetry(&format!("{META}\n{gutted}\n")).unwrap();
        let m100: Vec<_> =
            r.diagnostics().iter().filter(|d| d.code == Code::BenchMetaMissing).collect();
        assert_eq!(m100.len(), 1, "findings:\n{r}");
        assert!(m100[0].message.contains("variants"), "{r}");
    }

    #[test]
    fn non_bench_streams_are_unaffected() {
        let text = r#"{"type":"counter","name":"expm.calls","value":123}
{"type":"profile","solver":"AO","wall_s":0.1}
"#;
        let r = analyze_telemetry(text).unwrap();
        assert!(r.is_clean(), "findings:\n{r}");
    }
}
