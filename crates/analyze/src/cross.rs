//! Cross-artifact consistency lints (`M080`-series): findings that only
//! exist when two artifacts are joined.
//!
//! * `M080` — a standalone schedule does not fit the platform artifact it
//!   was analyzed with: wrong core count, or a segment voltage that is not
//!   in the platform's DVFS table. (Inside a spec file the same defects are
//!   M018/M016; across files they are errors, because the user explicitly
//!   asked for the pair to be checked together.)
//! * `M081` — a solve claim's throughput/peak/feasibility fail to recompute
//!   from the referenced platform + schedule. Tolerances are
//!   [`Tolerances::default`], which floor well above `ACCEPT_EPS` — the
//!   solvers' own accept threshold — so a truthful claim emitted by this
//!   workspace recomputes cleanly. A claim with no platform or schedule to
//!   recompute from is *unverifiable*, reported as a warning.
//! * `M082` — an access-log `cached: true` entry whose cache key no
//!   non-cached successful solve ever announced, or one key served under
//!   two different solver ids: the canonical-key derivation and the cache
//!   disagree. Order-insensitive, since worker concurrency legally reorders
//!   the filler's miss line after its first hit.
//! * `M083` — a per-solve `KernelDelta` is inconsistent with the solver
//!   kind: a non-cached successful solve that moved no kernel counter at
//!   all, or an AO/PCO solve with zero period-map work. Gated on recorder
//!   evidence (some entry with a nonzero counter), so logs from builds
//!   without kernel accounting stay silent.

use crate::artifact::ClaimArtifact;
use crate::diag::{Code, Report, Severity};
use crate::json::Value;
use crate::solution::Tolerances;
use crate::telemetry::StreamRecord;
use mosc_sched::{Platform, Schedule};
use std::collections::HashMap;

/// Voltages closer than this to a table level are that level (matches the
/// in-spec M016 tolerance).
const LEVEL_TOL: f64 = 1e-9;

/// M080: checks a standalone schedule against the reference platform.
pub fn check_cross_schedule(schedule: &Schedule, platform: &Platform, report: &mut Report) {
    if schedule.n_cores() != platform.n_cores() {
        report.push(
            Code::CrossScheduleMismatch,
            "cores",
            format!(
                "schedule has {} cores but the platform artifact has {}",
                schedule.n_cores(),
                platform.n_cores()
            ),
        );
        return;
    }
    let levels = platform.modes().levels();
    for (c, core) in schedule.cores().iter().enumerate() {
        for (i, seg) in core.segments().iter().enumerate() {
            if !levels.iter().any(|&l| (l - seg.voltage).abs() <= LEVEL_TOL) {
                report.push(
                    Code::CrossScheduleMismatch,
                    format!("cores[{c}].segments[{i}]"),
                    format!(
                        "segment voltage {} V is not in the platform artifact's DVFS \
                         table {levels:?}",
                        seg.voltage
                    ),
                );
            }
        }
    }
}

/// M081: recomputes a claim's headline numbers from the platform and the
/// claim's own schedule (falling back to `fallback_schedule` when the claim
/// did not embed one).
pub fn check_claim(
    claim: &ClaimArtifact,
    platform: Option<&Platform>,
    fallback_schedule: Option<&Schedule>,
    report: &mut Report,
) {
    let schedule = claim.schedule.as_ref().or(fallback_schedule);
    let (Some(p), Some(s)) = (platform, schedule) else {
        let missing = match (platform, schedule) {
            (None, None) => "platform and schedule artifacts",
            (None, _) => "a platform artifact",
            _ => "a schedule (embedded or as an artifact)",
        };
        report.push_with(
            Severity::Warning,
            Code::ClaimDivergence,
            "",
            format!("claim cannot be verified: {missing} to recompute from are missing"),
        );
        return;
    };
    if s.n_cores() != p.n_cores() {
        report.push(
            Code::ClaimDivergence,
            "schedule",
            format!(
                "claim's schedule has {} cores but the platform has {} — the claim \
                 references a different platform",
                s.n_cores(),
                p.n_cores()
            ),
        );
        return;
    }
    let tol = Tolerances::default();
    let throughput = s.throughput_with_overhead(p.overhead());
    if (throughput - claim.throughput).abs() > tol.throughput_rel * throughput.abs().max(1.0) {
        report.push(
            Code::ClaimDivergence,
            "throughput",
            format!(
                "claimed throughput {} but the platform+schedule recompute {throughput}",
                claim.throughput
            ),
        );
    }
    match p.peak(s) {
        Ok(peak) => {
            if let Some(claimed) = claim.peak {
                if (peak.temp - claimed).abs() > tol.peak_abs {
                    report.push(
                        Code::ClaimDivergence,
                        "peak",
                        format!(
                            "claimed peak {claimed} K above ambient but recomputation \
                             finds {} K",
                            peak.temp
                        ),
                    );
                }
            }
            if let Some(feasible) = claim.feasible {
                let t_max = p.t_max();
                let slack = tol.peak_abs.max(mosc_sched::FEASIBILITY_EPS);
                if feasible && peak.temp > t_max + slack {
                    report.push(
                        Code::ClaimDivergence,
                        "feasible",
                        format!(
                            "claimed feasible but recomputed peak {} K exceeds T_max \
                             {t_max} K",
                            peak.temp
                        ),
                    );
                } else if !feasible && peak.temp <= t_max - tol.peak_abs {
                    report.push(
                        Code::ClaimDivergence,
                        "feasible",
                        format!(
                            "claimed infeasible but recomputed peak {} K respects T_max \
                             {t_max} K",
                            peak.temp
                        ),
                    );
                }
            }
        }
        Err(e) => {
            report.push(Code::ClaimDivergence, "peak", format!("peak recomputation failed: {e}"));
        }
    }
}

/// The cache-key and kernel-counter fields of one access-log solve entry.
struct SolveEntry<'a> {
    lineno: usize,
    id: &'a str,
    solver: &'a str,
    cached: bool,
    key: Option<&'a str>,
    counters: Option<[f64; 4]>,
}

fn solve_entries(records: &[StreamRecord]) -> Vec<SolveEntry<'_>> {
    records
        .iter()
        .filter_map(|rec| {
            let v = &rec.value;
            if v.get("type").and_then(Value::as_str) != Some("access")
                || v.get("op").and_then(Value::as_str) != Some("solve")
                || v.get("status").and_then(Value::as_str) != Some("ok")
            {
                return None;
            }
            let counters = [
                v.get("expm_calls"),
                v.get("period_map_matmuls"),
                v.get("steady_state_calls"),
                v.get("linalg_matmuls"),
            ];
            let counters = if counters.iter().all(|c| c.and_then(Value::as_f64).is_some()) {
                let mut out = [0.0; 4];
                for (slot, c) in out.iter_mut().zip(counters) {
                    *slot = c.and_then(Value::as_f64).unwrap_or(0.0);
                }
                Some(out)
            } else {
                None
            };
            Some(SolveEntry {
                lineno: rec.lineno,
                id: v.get("id").and_then(Value::as_str).unwrap_or("?"),
                solver: v.get("solver").and_then(Value::as_str).unwrap_or(""),
                cached: v.get("cached").and_then(Value::as_bool) == Some(true),
                key: v.get("key").and_then(Value::as_str),
                counters,
            })
        })
        .collect()
}

/// One access-log entry that belongs to a `solve_batch` dispatch: the
/// batch id it rode in on plus the registry attribution and the
/// eigendecomposition count its kernel delta reported. Any status counts —
/// an errored variant still shares the batch's single platform resolve.
struct BatchEntry<'a> {
    lineno: usize,
    id: &'a str,
    batch: &'a str,
    /// Connection the dispatch arrived on (-1 when the log predates the
    /// field). Batch ids are only unique per dispatch, and a dispatch
    /// lives on one connection — so (conn, batch) scopes the M111 join.
    conn: i64,
    registry_hits: f64,
    registry_misses: f64,
    eigen_calls: f64,
}

fn batch_entries(records: &[StreamRecord]) -> Vec<BatchEntry<'_>> {
    records
        .iter()
        .filter_map(|rec| {
            let v = &rec.value;
            if v.get("type").and_then(Value::as_str) != Some("access") {
                return None;
            }
            let batch = v.get("batch").and_then(Value::as_str)?;
            Some(BatchEntry {
                lineno: rec.lineno,
                id: v.get("id").and_then(Value::as_str).unwrap_or("?"),
                batch,
                conn: v.get("conn").and_then(Value::as_f64).map_or(-1, |c| c as i64),
                registry_hits: v.get("registry_hits").and_then(Value::as_f64)?,
                registry_misses: v.get("registry_misses").and_then(Value::as_f64)?,
                eigen_calls: v.get("eigen_calls").and_then(Value::as_f64)?,
            })
        })
        .collect()
}

/// M110 + M111 over an access log's batch entries. Inert when no entry
/// carries the `batch` + registry fields (single solves, older logs).
fn registry_lints(records: &[StreamRecord], report: &mut Report) {
    let entries = batch_entries(records);

    // --- M110: a warm registry resolve must not rebuild -------------------
    // Eigendecompositions happen only in `Platform::build`; a variant that
    // reports the batch's resolve as a hit while its delta shows eigen work
    // means the registry handed out an interned platform *and* rebuilt it.
    for e in &entries {
        if e.registry_hits > 0.0 && e.eigen_calls > 0.0 {
            report.push(
                Code::RegistryWarmRecompute,
                format!("line {} (id {})", e.lineno, e.id),
                format!(
                    "warm-registry solve (registry_hits {}) reports {} \
                     eigendecomposition(s) — an interned platform is already \
                     built, so a warm resolve must do zero eigen work",
                    e.registry_hits, e.eigen_calls
                ),
            );
        }
    }

    // --- M111: one batch dispatch is one resolve --------------------------
    // Keyed by (conn, batch): clients may reuse a batch id across
    // dispatches (ids are theirs to choose), but one dispatch's variants
    // all ride one connection and share exactly one resolve.
    let mut outcome_by_batch: HashMap<(i64, &str), (usize, bool)> = HashMap::new();
    for e in &entries {
        if e.registry_hits + e.registry_misses != 1.0 {
            report.push(
                Code::BatchRegistryDisagreement,
                format!("line {} (id {})", e.lineno, e.id),
                format!(
                    "batch variant reports registry_hits {} / registry_misses {} — \
                     each variant shares exactly one platform resolve, so the \
                     attribution must be one hit xor one miss",
                    e.registry_hits, e.registry_misses
                ),
            );
            continue;
        }
        let warm = e.registry_hits > 0.0;
        match outcome_by_batch.get(&(e.conn, e.batch)) {
            None => {
                outcome_by_batch.insert((e.conn, e.batch), (e.lineno, warm));
            }
            Some(&(first_lineno, first_warm)) if first_warm != warm => report.push(
                Code::BatchRegistryDisagreement,
                format!("line {} (id {})", e.lineno, e.id),
                format!(
                    "batch '{}' variants disagree about the shared resolve: this \
                     entry says {} but line {first_lineno} said {} — one batch \
                     resolves its platform exactly once",
                    e.batch,
                    if warm { "warm" } else { "cold" },
                    if first_warm { "warm" } else { "cold" },
                ),
            ),
            Some(_) => {}
        }
    }
}

/// M082 + M083 over an access log's solve entries, plus the batch/registry
/// joins M110 + M111. Inert when the log predates the `key`/counter fields.
pub fn access_log_lints(records: &[StreamRecord], report: &mut Report) {
    registry_lints(records, report);
    let entries = solve_entries(records);

    // --- M082: cache hits must agree with canonical-key derivation -------
    let mut announced: HashMap<&str, &str> = HashMap::new();
    for e in entries.iter().filter(|e| !e.cached) {
        if let Some(key) = e.key {
            match announced.get(key) {
                Some(&solver) if solver != e.solver => report.push(
                    Code::AccessCacheKeyMismatch,
                    format!("line {} (id {})", e.lineno, e.id),
                    format!(
                        "cache key {key} was solved by '{}' here but by '{solver}' \
                         elsewhere — one canonical key maps to two solvers",
                        e.solver
                    ),
                ),
                _ => {
                    announced.entry(key).or_insert(e.solver);
                }
            }
        }
    }
    for e in entries.iter().filter(|e| e.cached) {
        let Some(key) = e.key else { continue };
        match announced.get(key) {
            None => report.push(
                Code::AccessCacheKeyMismatch,
                format!("line {} (id {})", e.lineno, e.id),
                format!(
                    "cache-hit entry's key {key} was never announced by a non-cached \
                     successful solve — the hit cannot have been filled under this \
                     canonical key"
                ),
            ),
            Some(&solver) if solver != e.solver => report.push(
                Code::AccessCacheKeyMismatch,
                format!("line {} (id {})", e.lineno, e.id),
                format!(
                    "cache-hit entry for key {key} reports solver '{}' but the filling \
                     solve used '{solver}'",
                    e.solver
                ),
            ),
            Some(_) => {}
        }
    }

    // --- M083: KernelDelta vs solver kind ---------------------------------
    // Only meaningful when the recorder demonstrably populates counters.
    let evidence = entries.iter().any(|e| e.counters.is_some_and(|c| c.iter().any(|&x| x > 0.0)));
    if !evidence {
        return;
    }
    for e in entries.iter().filter(|e| !e.cached) {
        let Some(c) = e.counters else { continue };
        let ctx = format!("line {} (id {})", e.lineno, e.id);
        if c.iter().all(|&x| x == 0.0) {
            report.push(
                Code::KernelDeltaInconsistent,
                ctx,
                format!(
                    "non-cache-hit '{}' solve moved no kernel counter at all — a real \
                     solve must evaluate at least one schedule",
                    e.solver
                ),
            );
        } else if matches!(e.solver, "ao" | "pco") && c[1] == 0.0 && c[2] == 0.0 {
            report.push(
                Code::KernelDeltaInconsistent,
                ctx,
                format!(
                    "'{}' solve reports zero period_map.matmuls and zero \
                     steady_state.calls — AO/PCO evaluate through the modal \
                     period-map kernel",
                    e.solver
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::load_stream;
    use mosc_sched::PlatformSpec;

    fn platform() -> Platform {
        Platform::build(&PlatformSpec::paper(1, 2, 2, 55.0)).unwrap()
    }

    #[test]
    fn cross_schedule_flags_core_count_and_off_table_voltage() {
        let p = platform();
        let mut r = Report::new();
        let short = Schedule::constant(&[0.6], 0.1).unwrap();
        check_cross_schedule(&short, &p, &mut r);
        assert!(r.has_code(Code::CrossScheduleMismatch) && r.has_errors(), "{r}");

        let mut r = Report::new();
        let off = Schedule::constant(&[0.6, 0.9], 0.1).unwrap();
        check_cross_schedule(&off, &p, &mut r);
        assert!(r.has_code(Code::CrossScheduleMismatch), "{r}");

        let mut r = Report::new();
        let good = Schedule::two_mode(&[0.6, 0.6], &[1.3, 1.3], &[0.3, 0.5], 0.1).unwrap();
        check_cross_schedule(&good, &p, &mut r);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn truthful_claim_recomputes_clean_and_mutations_fire() {
        let p = platform();
        let s = Schedule::two_mode(&[0.6, 0.6], &[1.3, 1.3], &[0.3, 0.5], 0.1).unwrap();
        let peak = p.peak(&s).unwrap().temp;
        let truthful = ClaimArtifact {
            solver: Some("ao".into()),
            throughput: s.throughput_with_overhead(p.overhead()),
            peak: Some(peak),
            feasible: Some(peak <= p.t_max() + mosc_sched::FEASIBILITY_EPS),
            m: 1,
            schedule: Some(s.clone()),
        };
        let mut r = Report::new();
        check_claim(&truthful, Some(&p), None, &mut r);
        assert!(r.is_clean(), "truthful claim flagged:\n{r}");

        // Each corrupted field fires on its own.
        let mut r = Report::new();
        let lied =
            ClaimArtifact { throughput: truthful.throughput * 1.01, ..claim_like(&truthful) };
        check_claim(&lied, Some(&p), Some(&s), &mut r);
        assert!(r.has_code(Code::ClaimDivergence) && r.has_errors(), "{r}");

        let mut r = Report::new();
        let lied = ClaimArtifact { peak: Some(peak + 1.0), ..claim_like(&truthful) };
        check_claim(&lied, Some(&p), Some(&s), &mut r);
        assert!(r.has_code(Code::ClaimDivergence), "{r}");
    }

    fn claim_like(c: &ClaimArtifact) -> ClaimArtifact {
        ClaimArtifact {
            solver: c.solver.clone(),
            throughput: c.throughput,
            peak: c.peak,
            feasible: c.feasible,
            m: c.m,
            schedule: None,
        }
    }

    #[test]
    fn unverifiable_claim_is_a_warning() {
        let c = ClaimArtifact {
            solver: None,
            throughput: 1.0,
            peak: None,
            feasible: None,
            m: 1,
            schedule: None,
        };
        let mut r = Report::new();
        check_claim(&c, None, None, &mut r);
        assert!(r.has_code(Code::ClaimDivergence), "{r}");
        assert!(!r.has_errors(), "unverifiable must be a warning:\n{r}");
    }

    const HIT_AND_FILL: &str = concat!(
        r#"{"type":"access","id":"s1","op":"solve","solver":"ao","status":"ok","cached":false,"key":"00000000deadbeef","expm_calls":0,"period_map_matmuls":40,"steady_state_calls":4,"linalg_matmuls":100}"#,
        "\n",
        r#"{"type":"access","id":"s2","op":"solve","solver":"ao","status":"ok","cached":true,"key":"00000000deadbeef","expm_calls":0,"period_map_matmuls":0,"steady_state_calls":0,"linalg_matmuls":0}"#,
        "\n",
    );

    #[test]
    fn cache_hits_with_announced_keys_are_clean_in_any_order() {
        let records = load_stream(HIT_AND_FILL).unwrap();
        let mut r = Report::new();
        access_log_lints(&records, &mut r);
        assert!(r.is_clean(), "{r}");

        // Concurrency may log the hit before the fill: still clean.
        let mut lines: Vec<&str> = HIT_AND_FILL.lines().collect();
        lines.reverse();
        let records = load_stream(&lines.join("\n")).unwrap();
        let mut r = Report::new();
        access_log_lints(&records, &mut r);
        assert!(r.is_clean(), "reversed order flagged:\n{r}");
    }

    #[test]
    fn unannounced_hit_and_solver_conflict_are_m082() {
        let orphan = HIT_AND_FILL.lines().nth(1).unwrap();
        let records = load_stream(orphan).unwrap();
        let mut r = Report::new();
        access_log_lints(&records, &mut r);
        assert!(r.has_code(Code::AccessCacheKeyMismatch), "{r}");

        let conflicted = HIT_AND_FILL
            .replace(r#""s2","op":"solve","solver":"ao""#, r#""s2","op":"solve","solver":"pco""#);
        let records = load_stream(&conflicted).unwrap();
        let mut r = Report::new();
        access_log_lints(&records, &mut r);
        assert!(r.has_code(Code::AccessCacheKeyMismatch), "{r}");
    }

    #[test]
    fn zero_counter_uncached_solve_is_m083() {
        let dead = HIT_AND_FILL.replace(r#""period_map_matmuls":40"#, r#""period_map_matmuls":0"#);
        // Fill now has pm=0, ss=4 -> AO rule does not fire (ss moved), and
        // all-zero rule does not fire either. Seed evidence + a dead solve:
        let dead = dead.replace(r#""steady_state_calls":4"#, r#""steady_state_calls":0"#);
        let with_evidence = format!(
            "{dead}{}\n",
            r#"{"type":"access","id":"s3","op":"solve","solver":"lns","status":"ok","cached":false,"key":"0000000000000001","expm_calls":9,"period_map_matmuls":0,"steady_state_calls":0,"linalg_matmuls":20}"#
        );
        let records = load_stream(&with_evidence).unwrap();
        let mut r = Report::new();
        access_log_lints(&records, &mut r);
        // s1 is an ao solve with pm=0 and ss=0 but linalg evidence -> M083.
        assert!(r.has_code(Code::KernelDeltaInconsistent), "{r}");
        assert!(!r.has_errors(), "M083 is a warning:\n{r}");

        // Without any counter evidence anywhere the lint stays silent.
        let all_zero = with_evidence
            .replace(r#""expm_calls":9"#, r#""expm_calls":0"#)
            .replace(r#""linalg_matmuls":100"#, r#""linalg_matmuls":0"#)
            .replace(r#""linalg_matmuls":20"#, r#""linalg_matmuls":0"#);
        let records = load_stream(&all_zero).unwrap();
        let mut r = Report::new();
        access_log_lints(&records, &mut r);
        assert!(!r.has_code(Code::KernelDeltaInconsistent), "{r}");
    }

    /// A healthy two-variant batch: cold resolve (variant 0 carries the
    /// build's eigen work), then the identical warm batch with zero eigen.
    const BATCH_COLD_WARM: &str = concat!(
        r#"{"type":"access","id":"b0#0","op":"solve","solver":"ao","status":"ok","cached":false,"key":"000000000000aaaa","expm_calls":0,"period_map_matmuls":40,"steady_state_calls":4,"linalg_matmuls":100,"eigen_calls":1,"registry_hits":0,"registry_misses":1,"batch":"b0"}"#,
        "\n",
        r#"{"type":"access","id":"b0#1","op":"solve","solver":"lns","status":"ok","cached":false,"key":"000000000000bbbb","expm_calls":6,"period_map_matmuls":0,"steady_state_calls":0,"linalg_matmuls":20,"eigen_calls":0,"registry_hits":0,"registry_misses":1,"batch":"b0"}"#,
        "\n",
        r#"{"type":"access","id":"b1#0","op":"solve","solver":"ao","status":"ok","cached":true,"key":"000000000000aaaa","expm_calls":0,"period_map_matmuls":0,"steady_state_calls":0,"linalg_matmuls":0,"eigen_calls":0,"registry_hits":1,"registry_misses":0,"batch":"b1"}"#,
        "\n",
        r#"{"type":"access","id":"b1#1","op":"solve","solver":"lns","status":"ok","cached":true,"key":"000000000000bbbb","expm_calls":0,"period_map_matmuls":0,"steady_state_calls":0,"linalg_matmuls":0,"eigen_calls":0,"registry_hits":1,"registry_misses":0,"batch":"b1"}"#,
        "\n",
    );

    #[test]
    fn cold_then_warm_batch_is_clean() {
        let records = load_stream(BATCH_COLD_WARM).unwrap();
        let mut r = Report::new();
        access_log_lints(&records, &mut r);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn warm_batch_with_eigen_work_is_m110() {
        // The warm batch's first variant suddenly reports a rebuild.
        let lying = BATCH_COLD_WARM.replace(
            r#""b1#0","op":"solve","solver":"ao","status":"ok","cached":true,"key":"000000000000aaaa","expm_calls":0,"period_map_matmuls":0,"steady_state_calls":0,"linalg_matmuls":0,"eigen_calls":0"#,
            r#""b1#0","op":"solve","solver":"ao","status":"ok","cached":true,"key":"000000000000aaaa","expm_calls":0,"period_map_matmuls":0,"steady_state_calls":0,"linalg_matmuls":0,"eigen_calls":1"#,
        );
        assert_ne!(lying, BATCH_COLD_WARM, "replacement must apply");
        let records = load_stream(&lying).unwrap();
        let mut r = Report::new();
        access_log_lints(&records, &mut r);
        assert!(r.has_code(Code::RegistryWarmRecompute), "{r}");
        assert!(r.has_errors(), "M110 is an error:\n{r}");
        // A *cold* batch doing eigen work is the normal case — no M110.
        let records = load_stream(BATCH_COLD_WARM).unwrap();
        let mut r = Report::new();
        access_log_lints(&records, &mut r);
        assert!(!r.has_code(Code::RegistryWarmRecompute), "{r}");
    }

    #[test]
    fn batch_variants_disagreeing_on_the_resolve_is_m111() {
        // Variant b0#1 claims the shared resolve was warm while b0#0 says
        // cold: impossible, the batch resolves its platform exactly once.
        let split = BATCH_COLD_WARM.replace(
            r#""linalg_matmuls":20,"eigen_calls":0,"registry_hits":0,"registry_misses":1,"batch":"b0""#,
            r#""linalg_matmuls":20,"eigen_calls":0,"registry_hits":1,"registry_misses":0,"batch":"b0""#,
        );
        assert_ne!(split, BATCH_COLD_WARM, "replacement must apply");
        let records = load_stream(&split).unwrap();
        let mut r = Report::new();
        access_log_lints(&records, &mut r);
        assert!(r.has_code(Code::BatchRegistryDisagreement), "{r}");
        assert!(!r.has_errors(), "M111 is a warning:\n{r}");

        // Attribution that is not exactly one hit xor one miss also fires.
        let double = BATCH_COLD_WARM.replace(
            r#""registry_hits":1,"registry_misses":0,"batch":"b1""#,
            r#""registry_hits":1,"registry_misses":1,"batch":"b1""#,
        );
        let records = load_stream(&double).unwrap();
        let mut r = Report::new();
        access_log_lints(&records, &mut r);
        assert!(r.has_code(Code::BatchRegistryDisagreement), "{r}");
    }

    #[test]
    fn a_batch_id_reused_across_connections_is_not_a_disagreement() {
        // Batch ids are the client's to choose: two dispatches on different
        // connections may reuse one id (e.g. the same stdin piped through
        // `client --batch` twice, cold then warm). The M111 join is scoped
        // to (conn, batch), so this must stay clean.
        let reused = BATCH_COLD_WARM
            .replace(
                r#""registry_misses":1,"batch":"b0""#,
                r#""registry_misses":1,"batch":"q","conn":1"#,
            )
            .replace(
                r#""registry_misses":0,"batch":"b1""#,
                r#""registry_misses":0,"batch":"q","conn":2"#,
            );
        assert_ne!(reused, BATCH_COLD_WARM, "replacement must apply");
        let records = load_stream(&reused).unwrap();
        let mut r = Report::new();
        access_log_lints(&records, &mut r);
        assert!(!r.has_code(Code::BatchRegistryDisagreement), "{r}");
    }

    #[test]
    fn registry_lints_are_inert_without_batch_entries() {
        // Single-solve logs (no `batch` member) never trip M110/M111.
        let records = load_stream(HIT_AND_FILL).unwrap();
        let mut r = Report::new();
        access_log_lints(&records, &mut r);
        assert!(!r.has_code(Code::RegistryWarmRecompute), "{r}");
        assert!(!r.has_code(Code::BatchRegistryDisagreement), "{r}");
    }
}
