//! Diagnostic plumbing: stable codes, severities, and rustc-style rendering.
//!
//! Every lint in this crate reports through a [`Report`] instead of
//! panicking, so callers (the CLI, the `debug_assert` hooks in `mosc-core`,
//! property tests) can decide what to do with the findings. Codes are
//! stable: `M0xx` strings never change meaning once released, which lets
//! tests and downstream tooling match on them.

use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not necessarily wrong; never fails an analysis run.
    Warning,
    /// A genuine violation of a paper invariant or structural rule.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Warning => write!(f, "warning"),
            Self::Error => write!(f, "error"),
        }
    }
}

/// Stable diagnostic codes. The numeric ranges group the lints:
/// `M001`–`M009` platform, `M011`–`M018` schedule, `M020`–`M024` solution,
/// `M050`–`M054` telemetry, `M060`–`M062` serve telemetry, `M070`–`M073`
/// serve access log, `M080`–`M083` cross-artifact consistency,
/// `M090`–`M093` concurrency/trace invariants, `M100`–`M104` bench
/// artifacts, `M110`–`M111` platform-registry/batch consistency,
/// `M120`–`M124` distributed tracing (wire trace ids, flight dumps,
/// exemplars).
///
/// DESIGN.md §7 maps each code to the paper theorem or equation it enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Code {
    /// M001 — DVFS levels are not strictly increasing (duplicates included).
    LevelsNotSorted,
    /// M002 — a DVFS level is non-finite or non-positive.
    LevelInvalid,
    /// M003 — fewer than two DVFS levels (oscillation needs a pair).
    TooFewLevels,
    /// M004 — `T_max` does not exceed the ambient temperature.
    TmaxNotAboveAmbient,
    /// M005 — the conductance matrix `G` is not symmetric.
    ConductanceAsymmetric,
    /// M006 — `G` is not (weakly) diagonally dominant.
    NotDiagonallyDominant,
    /// M007 — the state matrix `A = C⁻¹(βE − G)` is not Hurwitz-stable.
    NotHurwitz,
    /// M008 — the power model is not strictly increasing over the levels.
    PowerNotMonotone,
    /// M009 — the DVFS transition overhead `τ` is negative or non-finite.
    OverheadInvalid,
    /// M011 — a segment duration is non-positive or non-finite.
    DurationInvalid,
    /// M012 — a segment voltage is negative or non-finite.
    VoltageInvalid,
    /// M013 — a core's segment durations do not sum to the common period.
    PeriodMismatch,
    /// M014 — the schedule is not step-up (voltages must be non-decreasing
    /// over each period for the exact Theorem-1 peak evaluation).
    NotStepUp,
    /// M015 — the schedule has no cores, or a core has no segments.
    EmptySchedule,
    /// M016 — a segment voltage is not one of the platform's DVFS levels.
    VoltageNotALevel,
    /// M017 — the oscillation violates the overhead budget `m ≤ M`
    /// (equivalently: a low-voltage dwell is shorter than `τ`).
    OscillationOverBudget,
    /// M018 — schedule core count differs from the platform's.
    CoreCountMismatch,
    /// M020 — the claimed throughput diverges from the eq. (5) recompute.
    ThroughputMismatch,
    /// M021 — the claimed peak diverges from the recomputed stable peak.
    PeakMismatch,
    /// M022 — claimed feasible but the recomputed peak exceeds `T_max`.
    InfeasibleMarkedFeasible,
    /// M023 — claimed infeasible but the recomputed peak respects `T_max`.
    FeasibleMarkedInfeasible,
    /// M024 — the claimed oscillation factor `m` is inconsistent with the
    /// schedule's DVFS transition count.
    TransitionsInconsistent,
    /// M050 — the telemetry stream contains no records at all (was the
    /// recorder enabled?).
    TelemetryEmpty,
    /// M051 — AO's m-sweep stopped at the overhead cap `m == M` without
    /// converging, so the oscillation is overhead-limited, not converged.
    AoSweepSaturated,
    /// M052 — a sizeable EXS-BnB search pruned no subtree: both bounds were
    /// inert, suggesting a mis-set threshold or an unconstrained platform
    /// profiled as constrained.
    BnbNoPrunes,
    /// M053 — a span record's timing is inconsistent (negative totals,
    /// `self > total`, or zero calls with nonzero time).
    SpanTimingInvalid,
    /// M054 — a solver span is present but the matrix-exponential kernel
    /// counter never moved, i.e. solver and kernel instrumentation disagree.
    KernelCountersMissing,
    /// M060 — the serve stream shows repeated requests with identical cache
    /// keys yet `serve.cache_hits` stayed at zero: the solution cache is
    /// inert (disabled, mis-keyed, or evicting pathologically).
    ServeCacheInert,
    /// M061 — `serve.rejected` counted backpressure rejections but the queue
    /// depth never left zero: the daemon shed load while idle, so the
    /// metrics (or the queue accounting) are inconsistent.
    ServeRejectedIdle,
    /// M062 — a `serve.response` event carries a request-id hash that no
    /// `serve.request` event announced: a response was fabricated, double-
    /// sent, or the request-side instrumentation was skipped.
    ServeResponseOrphaned,
    /// M070 — an access-log line's phase timings are clock-skewed: a phase
    /// is negative/missing, or `queue_wait + service` exceeds `total` even
    /// though all three derive from one monotone clock.
    AccessPhaseSkew,
    /// M071 — a successful response with deadline slack ≤ 0: the request's
    /// deadline had already passed when the response was written. Only the
    /// enumeration solvers honor deadlines by contract, so this is
    /// suspicious rather than wrong.
    AccessDeadlineMissed,
    /// M072 — a `hist_snapshot` line's bucket series is broken: cumulative
    /// counts decrease, bucket bounds do not increase, or the final bucket
    /// disagrees with the recorded count.
    AccessHistogramBroken,
    /// M073 — the `serve_summary` cache counters are mutually impossible:
    /// hits without a single miss (every entry is inserted after a miss),
    /// or more evictions than insertions (misses bound insertions).
    AccessCacheInconsistent,
    /// M080 — a standalone schedule artifact does not fit the platform
    /// artifact it was analyzed against: wrong core count, or a segment
    /// voltage absent from the platform's DVFS table.
    CrossScheduleMismatch,
    /// M081 — a solve claim's throughput, peak, or feasibility verdict fails
    /// to recompute from the referenced platform + schedule within
    /// tolerance, or the claim cannot be verified at all (no platform or no
    /// schedule to recompute from — reported as a warning).
    ClaimDivergence,
    /// M082 — the access log's cache-hit entries disagree with canonical-key
    /// derivation: a `cached: true` entry's key was never announced by any
    /// non-cached successful solve, or one key was served by two different
    /// solvers.
    AccessCacheKeyMismatch,
    /// M083 — a per-solve `KernelDelta` is inconsistent with the solver
    /// kind: a non-cache-hit successful solve moved no kernel counter at
    /// all, or an AO/PCO solve did zero period-map work.
    KernelDeltaInconsistent,
    /// M090 — a request's phase timestamps are out of order: the monotone
    /// pipeline requires `recv ≤ enqueue ≤ dequeue ≤ done`.
    TimestampOrder,
    /// M091 — a slow-request span tree is malformed: a child path has no
    /// parent span, a child's total exceeds its parent's, a path appears
    /// twice, or the recorded depth disagrees with the path.
    SpanTreeMalformed,
    /// M092 — queue-wait accounting does not sum: `queue_wait`, `service`,
    /// or `total` disagree with the differences of the phase timestamps.
    PhaseAccounting,
    /// M093 — per-connection sequence numbers are not monotonic: a sequence
    /// number repeats, or receive timestamps decrease as sequence numbers
    /// increase.
    SeqNonMonotonic,
    /// M100 — a bench stream is malformed: bench records with no
    /// schema-v2 `bench_meta` header (git sha, host, threads), a meta line
    /// missing its required stamps, or a bench record missing the fields
    /// its type requires (mode, rates, latency quantiles).
    BenchMetaMissing,
    /// M101 — a bench record's latency quantiles are out of order: the
    /// report must satisfy `p50 ≤ p90 ≤ p99 ≤ p999 ≤ max` (a shared
    /// histogram cannot produce anything else, so disorder means the
    /// emitter mixed up fields or merged incompatible snapshots).
    BenchQuantileOrder,
    /// M102 — an empty measurement window: a bench summary whose measured
    /// sample count is zero (latency quantiles of nothing), or a timeline
    /// whose windows are all empty.
    BenchWindowEmpty,
    /// M103 — achieved-rate collapse: an open-loop run achieved less than
    /// half its offered rate, so the generator outran the server and the
    /// latency figures describe saturation, not service. Legitimate for
    /// sweep points past the knee, hence a warning.
    BenchRateCollapse,
    /// M104 — a rate sweep is not sane: offered rates do not strictly
    /// increase, or the achieved rate collapses far below its running
    /// maximum mid-sweep (the server fell over and never recovered).
    BenchSweepNonMonotone,
    /// M110 — a warm-registry batch solve did eigendecomposition work: an
    /// access entry claims `registry_hits > 0` (the platform was served
    /// interned) yet `eigen_calls > 0`. Eigendecompositions happen only in
    /// `Platform::build`, so a warm resolve that rebuilt is lying about one
    /// side or the other.
    RegistryWarmRecompute,
    /// M111 — the variants of one batch disagree about the shared platform
    /// resolve: registry hit/miss attribution differs between variants, or
    /// an entry reports anything other than exactly one hit xor one miss.
    /// One batch is one resolve, so disagreement means the attribution (or
    /// the batching) is broken.
    BatchRegistryDisagreement,
    /// M120 — an access entry's trace identity is malformed: `trace_id` is
    /// not 32 lowercase hex digits (or is zero), `span_id`/`parent_id` are
    /// not 16 lowercase hex digits (or the span id is zero), or only part
    /// of the identity triple is present.
    TraceFieldMalformed,
    /// M121 — span identity conflicts within one trace: a span id appears
    /// on two different access entries of the same trace, or an entry
    /// claims to be its own parent.
    TraceSpanConflict,
    /// M122 — the variants of one `solve_batch` disagree about their trace:
    /// every variant of a batch is a child of one dispatch span, so all of
    /// them must share one `trace_id` and one `parent_id`.
    BatchTraceDisagreement,
    /// M123 — a `flight_dump` line's ring accounting is broken: entry
    /// sequence numbers are not strictly increasing, a sequence number is
    /// at or past `head`, `dropped` differs from `max(0, head − capacity)`,
    /// or the dump holds more entries than `min(head, capacity)`.
    FlightDumpBroken,
    /// M124 — a histogram exemplar does not join: a `hist_snapshot`
    /// exemplar's trace id matches no access entry in the same log, so the
    /// metric points at a request the log never saw. Exemplars are
    /// last-writer-wins and logs can rotate, hence a warning.
    ExemplarUnjoined,
}

impl Code {
    /// The stable `M0xx` string for this code.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::LevelsNotSorted => "M001",
            Self::LevelInvalid => "M002",
            Self::TooFewLevels => "M003",
            Self::TmaxNotAboveAmbient => "M004",
            Self::ConductanceAsymmetric => "M005",
            Self::NotDiagonallyDominant => "M006",
            Self::NotHurwitz => "M007",
            Self::PowerNotMonotone => "M008",
            Self::OverheadInvalid => "M009",
            Self::DurationInvalid => "M011",
            Self::VoltageInvalid => "M012",
            Self::PeriodMismatch => "M013",
            Self::NotStepUp => "M014",
            Self::EmptySchedule => "M015",
            Self::VoltageNotALevel => "M016",
            Self::OscillationOverBudget => "M017",
            Self::CoreCountMismatch => "M018",
            Self::ThroughputMismatch => "M020",
            Self::PeakMismatch => "M021",
            Self::InfeasibleMarkedFeasible => "M022",
            Self::FeasibleMarkedInfeasible => "M023",
            Self::TransitionsInconsistent => "M024",
            Self::TelemetryEmpty => "M050",
            Self::AoSweepSaturated => "M051",
            Self::BnbNoPrunes => "M052",
            Self::SpanTimingInvalid => "M053",
            Self::KernelCountersMissing => "M054",
            Self::ServeCacheInert => "M060",
            Self::ServeRejectedIdle => "M061",
            Self::ServeResponseOrphaned => "M062",
            Self::AccessPhaseSkew => "M070",
            Self::AccessDeadlineMissed => "M071",
            Self::AccessHistogramBroken => "M072",
            Self::AccessCacheInconsistent => "M073",
            Self::CrossScheduleMismatch => "M080",
            Self::ClaimDivergence => "M081",
            Self::AccessCacheKeyMismatch => "M082",
            Self::KernelDeltaInconsistent => "M083",
            Self::TimestampOrder => "M090",
            Self::SpanTreeMalformed => "M091",
            Self::PhaseAccounting => "M092",
            Self::SeqNonMonotonic => "M093",
            Self::BenchMetaMissing => "M100",
            Self::BenchQuantileOrder => "M101",
            Self::BenchWindowEmpty => "M102",
            Self::BenchRateCollapse => "M103",
            Self::BenchSweepNonMonotone => "M104",
            Self::RegistryWarmRecompute => "M110",
            Self::BatchRegistryDisagreement => "M111",
            Self::TraceFieldMalformed => "M120",
            Self::TraceSpanConflict => "M121",
            Self::BatchTraceDisagreement => "M122",
            Self::FlightDumpBroken => "M123",
            Self::ExemplarUnjoined => "M124",
        }
    }

    /// Every released code, in numeric order. Severity configuration and the
    /// SARIF rule table iterate this instead of hand-maintaining their own
    /// lists.
    pub const ALL: &'static [Self] = &[
        Self::LevelsNotSorted,
        Self::LevelInvalid,
        Self::TooFewLevels,
        Self::TmaxNotAboveAmbient,
        Self::ConductanceAsymmetric,
        Self::NotDiagonallyDominant,
        Self::NotHurwitz,
        Self::PowerNotMonotone,
        Self::OverheadInvalid,
        Self::DurationInvalid,
        Self::VoltageInvalid,
        Self::PeriodMismatch,
        Self::NotStepUp,
        Self::EmptySchedule,
        Self::VoltageNotALevel,
        Self::OscillationOverBudget,
        Self::CoreCountMismatch,
        Self::ThroughputMismatch,
        Self::PeakMismatch,
        Self::InfeasibleMarkedFeasible,
        Self::FeasibleMarkedInfeasible,
        Self::TransitionsInconsistent,
        Self::TelemetryEmpty,
        Self::AoSweepSaturated,
        Self::BnbNoPrunes,
        Self::SpanTimingInvalid,
        Self::KernelCountersMissing,
        Self::ServeCacheInert,
        Self::ServeRejectedIdle,
        Self::ServeResponseOrphaned,
        Self::AccessPhaseSkew,
        Self::AccessDeadlineMissed,
        Self::AccessHistogramBroken,
        Self::AccessCacheInconsistent,
        Self::CrossScheduleMismatch,
        Self::ClaimDivergence,
        Self::AccessCacheKeyMismatch,
        Self::KernelDeltaInconsistent,
        Self::TimestampOrder,
        Self::SpanTreeMalformed,
        Self::PhaseAccounting,
        Self::SeqNonMonotonic,
        Self::BenchMetaMissing,
        Self::BenchQuantileOrder,
        Self::BenchWindowEmpty,
        Self::BenchRateCollapse,
        Self::BenchSweepNonMonotone,
        Self::RegistryWarmRecompute,
        Self::BatchRegistryDisagreement,
        Self::TraceFieldMalformed,
        Self::TraceSpanConflict,
        Self::BatchTraceDisagreement,
        Self::FlightDumpBroken,
        Self::ExemplarUnjoined,
    ];

    /// Parses a stable `M0xx` string back into its code.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|c| c.as_str() == s)
    }

    /// The severity a lint of this code carries unless the caller overrides
    /// it (e.g. [`NotStepUp`](Self::NotStepUp) escalates to an error when a
    /// spec declares the schedule as step-up pipeline input).
    #[must_use]
    pub fn default_severity(self) -> Severity {
        match self {
            Self::NotDiagonallyDominant
            | Self::PowerNotMonotone
            | Self::NotStepUp
            | Self::VoltageNotALevel
            | Self::OscillationOverBudget
            | Self::FeasibleMarkedInfeasible
            | Self::TransitionsInconsistent
            | Self::AoSweepSaturated
            | Self::BnbNoPrunes
            | Self::KernelCountersMissing
            | Self::ServeCacheInert
            | Self::ServeRejectedIdle
            | Self::ServeResponseOrphaned
            | Self::AccessDeadlineMissed
            | Self::AccessCacheInconsistent
            | Self::KernelDeltaInconsistent
            | Self::BenchRateCollapse
            | Self::BenchSweepNonMonotone
            | Self::BatchRegistryDisagreement
            | Self::ExemplarUnjoined => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One finding: a severity, a stable code, a human-readable message, and a
/// context path into the analyzed artifact (e.g. `cores[3].segments[1]`).
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Whether this finding fails the analysis.
    pub severity: Severity,
    /// Stable machine-matchable code.
    pub code: Code,
    /// Human-readable description including the offending values.
    pub message: String,
    /// Where in the artifact the finding anchors (empty for global findings).
    pub path: String,
    /// Which artifact file the finding is about (empty when analyzing a
    /// single unnamed input; the pass manager stamps this).
    pub file: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        match (self.file.is_empty(), self.path.is_empty()) {
            (true, true) => Ok(()),
            (true, false) => write!(f, " (at {})", self.path),
            (false, true) => write!(f, " (in {})", self.file),
            (false, false) => write!(f, " (at {}: {})", self.file, self.path),
        }
    }
}

/// An ordered collection of diagnostics from one analysis run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a finding with the code's default severity.
    pub fn push(&mut self, code: Code, path: impl Into<String>, message: impl Into<String>) {
        self.push_with(code.default_severity(), code, path, message);
    }

    /// Adds a finding with an explicit severity.
    pub fn push_with(
        &mut self,
        severity: Severity,
        code: Code,
        path: impl Into<String>,
        message: impl Into<String>,
    ) {
        self.diagnostics.push(Diagnostic {
            severity,
            code,
            message: message.into(),
            path: path.into(),
            file: String::new(),
        });
    }

    /// Appends a fully-formed diagnostic (severity, file and all) — the
    /// pass manager uses this to rebuild reports after severity mapping.
    pub fn push_diagnostic(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    /// Appends every finding of `other`.
    pub fn merge(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Attributes every finding that has no file yet to `file`. The pass
    /// manager calls this after running a lint over one artifact, so lints
    /// themselves stay file-agnostic.
    pub fn stamp_file(&mut self, file: &str) {
        for d in &mut self.diagnostics {
            if d.file.is_empty() {
                d.file = file.to_owned();
            }
        }
    }

    /// All findings, in emission order.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// `true` when no findings at all were emitted.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// `true` when at least one error-severity finding exists.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// `true` when some finding carries `code` (any severity).
    #[must_use]
    pub fn has_code(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Number of error-severity findings.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of warning-severity findings.
    #[must_use]
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Renders every finding rustc-style, one per line, followed by a
    /// summary line. Returns `"ok: no findings\n"` for a clean report.
    #[must_use]
    pub fn render(&self) -> String {
        if self.is_clean() {
            return "ok: no findings\n".into();
        }
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        let (e, w) = (self.error_count(), self.warning_count());
        out.push_str(&format!("{e} error(s), {w} warning(s)\n"));
        out
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        assert_eq!(Code::ALL.len(), 54);
        let mut seen = std::collections::HashSet::new();
        for &c in Code::ALL {
            assert!(seen.insert(c.as_str()), "duplicate code string {c}");
            assert!(c.as_str().starts_with('M'));
            assert_eq!(c.as_str().len(), 4);
            assert_eq!(Code::parse(c.as_str()), Some(c), "parse round-trip for {c}");
        }
        // Spot-check the new families sit in their documented ranges.
        assert_eq!(Code::CrossScheduleMismatch.as_str(), "M080");
        assert_eq!(Code::ClaimDivergence.as_str(), "M081");
        assert_eq!(Code::AccessCacheKeyMismatch.as_str(), "M082");
        assert_eq!(Code::KernelDeltaInconsistent.as_str(), "M083");
        assert_eq!(Code::TimestampOrder.as_str(), "M090");
        assert_eq!(Code::SpanTreeMalformed.as_str(), "M091");
        assert_eq!(Code::PhaseAccounting.as_str(), "M092");
        assert_eq!(Code::SeqNonMonotonic.as_str(), "M093");
        assert_eq!(Code::BenchMetaMissing.as_str(), "M100");
        assert_eq!(Code::BenchSweepNonMonotone.as_str(), "M104");
        assert_eq!(Code::RegistryWarmRecompute.as_str(), "M110");
        assert_eq!(Code::BatchRegistryDisagreement.as_str(), "M111");
        assert_eq!(Code::TraceFieldMalformed.as_str(), "M120");
        assert_eq!(Code::TraceSpanConflict.as_str(), "M121");
        assert_eq!(Code::BatchTraceDisagreement.as_str(), "M122");
        assert_eq!(Code::FlightDumpBroken.as_str(), "M123");
        assert_eq!(Code::ExemplarUnjoined.as_str(), "M124");
        assert_eq!(Code::parse("M999"), None);
    }

    #[test]
    fn rendering_matches_rustc_shape() {
        let mut r = Report::new();
        r.push(Code::VoltageInvalid, "cores[3].segments[1]", "segment voltage is NaN");
        r.push(Code::NotStepUp, "", "voltages decrease mid-period");
        let text = r.render();
        assert!(text.contains("error[M012]: segment voltage is NaN (at cores[3].segments[1])"));
        assert!(text.contains("warning[M014]: voltages decrease mid-period"));
        assert!(text.contains("1 error(s), 1 warning(s)"));
        assert!(r.has_errors());
        assert!(r.has_code(Code::NotStepUp));
        assert!(!r.has_code(Code::NotHurwitz));
    }

    #[test]
    fn clean_report_renders_ok() {
        let r = Report::new();
        assert!(r.is_clean());
        assert!(!r.has_errors());
        assert_eq!(r.render(), "ok: no findings\n");
    }

    #[test]
    fn file_stamping_changes_rendering_but_not_existing_files() {
        let mut r = Report::new();
        r.push(Code::VoltageInvalid, "cores[0].segments[0]", "segment voltage is NaN");
        r.push(Code::TelemetryEmpty, "", "no records");
        r.stamp_file("spec.json");
        r.push(Code::NotStepUp, "", "late finding");
        r.stamp_file("other.json");
        let text = r.render();
        assert!(
            text.contains("(at spec.json: cores[0].segments[0])"),
            "file+path rendering: {text}"
        );
        assert!(text.contains("(in spec.json)"), "file-only rendering: {text}");
        assert!(text.contains("(in other.json)"), "second stamp: {text}");
        assert_eq!(r.diagnostics()[0].file, "spec.json", "first stamp must stick");
    }

    #[test]
    fn severity_override_and_merge() {
        let mut a = Report::new();
        a.push_with(Severity::Error, Code::NotStepUp, "cores[0]", "declared step-up");
        let mut b = Report::new();
        b.push(Code::PowerNotMonotone, "", "flat psi");
        a.merge(b);
        assert_eq!(a.diagnostics().len(), 2);
        assert_eq!(a.error_count(), 1);
        assert_eq!(a.warning_count(), 1);
        assert!(a.has_errors());
    }
}
