//! A minimal JSON parser *and* serializer (pure `std`).
//!
//! The workspace builds without any crates.io dependency, so the `mosc
//! analyze` spec files are parsed by this ~200-line reader instead of a
//! serialization framework. It accepts standard JSON (RFC 8259): objects,
//! arrays, strings with escapes, numbers, `true`/`false`/`null`. Numbers are
//! held as `f64`, which is exact for every value the specs carry.
//!
//! The write side lives here too, so the whole workspace shares one
//! parse+serialize module (the serve wire protocol re-exports these):
//!
//! * [`value_to_json`] — order-preserving serialization for documents that
//!   are *built* as [`Value`] trees, where construction order is the
//!   intended wire order.
//! * [`canonical_json`] — key-sorted serialization; structurally equal
//!   documents always serialize identically, which makes it a usable
//!   cache-key preimage.
//! * [`json_string`] — string quoting with the standard escapes.
//!
//! Both serializers format numbers via Rust's shortest-round-trip `{:?}`,
//! so `parse(value_to_json(v))` reproduces `v` exactly (the round-trip
//! property test in `crates/analyze/tests` pins this).

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Parses `text` as a single JSON document (trailing garbage rejected).
    ///
    /// # Errors
    /// [`ParseError`] with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the JSON document"));
        }
        Ok(v)
    }

    /// Object member lookup (`None` for non-objects or missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Self::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number payload, if any.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The number payload as a non-negative integer, if it is one exactly.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        let x = self.as_f64()?;
        if x >= 0.0 && x.fract() == 0.0 && x <= 2f64.powi(53) {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Some(x as usize)
        } else {
            None
        }
    }

    /// The bool payload, if any.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string payload, if any.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if any.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Self::Array(items) => Some(items),
            _ => None,
        }
    }

    /// `true` for `Value::Object`.
    #[must_use]
    pub fn is_object(&self) -> bool {
        matches!(self, Self::Object(_))
    }
}

/// A JSON syntax error with the byte offset where parsing stopped.
#[derive(Debug, Clone)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub what: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.what)
    }
}

impl std::error::Error for ParseError {}

/// Nesting depth cap — specs are shallow; this only guards the stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, what: impl Into<String>) -> ParseError {
        ParseError { offset: self.pos, what: what.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            members.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
        self.depth -= 1;
        Ok(Value::Object(members))
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    break;
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
        self.depth -= 1;
        Ok(Value::Array(items))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        other => {
                            return Err(self.err(format!("invalid escape '\\{}'", other as char)))
                        }
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries
                    // are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, ParseError> {
        let hex4 = |p: &mut Self| -> Result<u32, ParseError> {
            if p.pos + 4 > p.bytes.len() {
                return Err(p.err("truncated \\u escape"));
            }
            let s = std::str::from_utf8(&p.bytes[p.pos..p.pos + 4])
                .map_err(|_| p.err("invalid \\u escape"))?;
            let v = u32::from_str_radix(s, 16).map_err(|_| p.err("invalid \\u escape"))?;
            p.pos += 4;
            Ok(v)
        };
        let hi = hex4(self)?;
        // Surrogate pair handling for completeness.
        let code = if (0xD800..0xDC00).contains(&hi) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = hex4(self)?;
                if !(0xDC00..0xE000).contains(&lo) {
                    return Err(self.err("invalid low surrogate"));
                }
                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
            } else {
                return Err(self.err("lone high surrogate"));
            }
        } else {
            hi
        };
        char::from_u32(code).ok_or_else(|| self.err("invalid unicode scalar"))
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        s.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| ParseError { offset: start, what: format!("invalid number '{s}'") })
    }
}

/// Serializes `v` preserving object member order — the writer for response
/// payloads and access-log lines that are *built* as [`Value`] trees, where
/// the construction order is the intended wire order. Numbers and strings
/// format exactly as in [`canonical_json`]; only the member ordering
/// differs (canonicalization would scramble e.g. `id` away from the front
/// of a response line).
#[must_use]
pub fn value_to_json(v: &Value) -> String {
    match v {
        Value::Null => "null".to_owned(),
        Value::Bool(b) => b.to_string(),
        Value::Number(n) => {
            if n.is_finite() {
                format!("{n:?}")
            } else {
                "null".to_owned()
            }
        }
        Value::String(s) => json_string(s),
        Value::Array(items) => {
            let inner: Vec<String> = items.iter().map(value_to_json).collect();
            format!("[{}]", inner.join(","))
        }
        Value::Object(members) => {
            let inner: Vec<String> = members
                .iter()
                .map(|(k, v)| format!("{}:{}", json_string(k), value_to_json(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

/// Serializes `v` canonically: object members sorted by key at every level,
/// numbers via shortest-round-trip formatting, no whitespace. Two
/// structurally equal documents always serialize identically, which is what
/// makes this the `mosc-serve` cache-key preimage.
#[must_use]
pub fn canonical_json(v: &Value) -> String {
    match v {
        Value::Null => "null".to_owned(),
        Value::Bool(b) => b.to_string(),
        Value::Number(n) => {
            if n.is_finite() {
                format!("{n:?}")
            } else {
                // JSON has no non-finite literals; the parser never produces
                // them, so this only defends hand-built values.
                "null".to_owned()
            }
        }
        Value::String(s) => json_string(s),
        Value::Array(items) => {
            let inner: Vec<String> = items.iter().map(canonical_json).collect();
            format!("[{}]", inner.join(","))
        }
        Value::Object(members) => {
            let mut sorted: Vec<&(String, Value)> = members.iter().collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            let inner: Vec<String> = sorted
                .iter()
                .map(|(k, v)| format!("{}:{}", json_string(k), canonical_json(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

/// JSON string quoting with the standard escapes.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_spec_shaped_document() {
        let text = r#"{
            "platform": {"rows": 2, "cols": 3, "levels": [0.6, 1.3],
                         "t_max_c": 55.0, "tau": 5e-6, "cooler": "default"},
            "schedule": {"period": 0.1,
                         "cores": [[[0.6, 0.06], [1.3, 0.04]], [[1.3, 0.1]]]},
            "solution": {"throughput": 0.88, "feasible": true, "m": 4}
        }"#;
        let v = Value::parse(text).unwrap();
        let platform = v.get("platform").unwrap();
        assert_eq!(platform.get("rows").unwrap().as_usize(), Some(2));
        assert_eq!(platform.get("tau").unwrap().as_f64(), Some(5e-6));
        assert_eq!(platform.get("cooler").unwrap().as_str(), Some("default"));
        let levels = platform.get("levels").unwrap().as_array().unwrap();
        assert_eq!(levels.len(), 2);
        let cores = v.get("schedule").unwrap().get("cores").unwrap().as_array().unwrap();
        assert_eq!(cores[0].as_array().unwrap().len(), 2);
        assert_eq!(v.get("solution").unwrap().get("feasible").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn scalar_forms() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse("false").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("-12.5e2").unwrap(), Value::Number(-1250.0));
        assert_eq!(Value::parse("0").unwrap(), Value::Number(0.0));
        assert_eq!(
            Value::parse(r#""a\nb\u0041\u00e9""#).unwrap(),
            Value::String("a\nbA\u{e9}".into())
        );
        assert_eq!(Value::parse("[]").unwrap(), Value::Array(vec![]));
        assert_eq!(Value::parse("{}").unwrap(), Value::Object(vec![]));
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(Value::parse(r#""\ud83d\ude00""#).unwrap(), Value::String("\u{1F600}".into()));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"unterminated",
            "[1] extra",
            "{\"a\":1,}",
            "nan",
            "+1",
            "\"\\q\"",
            "\"\\ud800\"",
            "01e",
        ] {
            assert!(Value::parse(bad).is_err(), "should reject {bad:?}");
        }
        let err = Value::parse("[1, }").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn usize_conversion_guards() {
        assert_eq!(Value::parse("3").unwrap().as_usize(), Some(3));
        assert_eq!(Value::parse("3.5").unwrap().as_usize(), None);
        assert_eq!(Value::parse("-1").unwrap().as_usize(), None);
        assert_eq!(Value::parse("\"3\"").unwrap().as_usize(), None);
    }

    #[test]
    fn deep_nesting_is_capped() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Value::parse(&deep).is_err());
    }

    #[test]
    fn canonical_json_sorts_keys_at_every_level() {
        let a = Value::parse(r#"{"b":{"y":1,"x":2},"a":[1,2]}"#).unwrap();
        let b = Value::parse(r#"{"a":[1,2],"b":{"x":2,"y":1}}"#).unwrap();
        assert_eq!(canonical_json(&a), canonical_json(&b));
        assert_eq!(canonical_json(&a), r#"{"a":[1.0,2.0],"b":{"x":2.0,"y":1.0}}"#);
    }

    #[test]
    fn value_to_json_preserves_member_order() {
        let doc = Value::Object(vec![
            ("z".to_owned(), Value::Number(1.0)),
            ("a".to_owned(), Value::String("x\"y".to_owned())),
            ("nested".to_owned(), Value::Object(vec![("b".to_owned(), Value::Bool(true))])),
        ]);
        assert_eq!(value_to_json(&doc), r#"{"z":1.0,"a":"x\"y","nested":{"b":true}}"#);
        // Round-trips through the parser with values intact.
        let back = Value::parse(&value_to_json(&doc)).unwrap();
        assert_eq!(canonical_json(&back), canonical_json(&doc));
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(value_to_json(&Value::Number(f64::NAN)), "null");
        assert_eq!(canonical_json(&Value::Number(f64::INFINITY)), "null");
    }
}
