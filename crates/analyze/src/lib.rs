//! Static analysis for the mosc workspace: lint platforms, schedules, and
//! claimed solutions against the invariants of Sha et al., "Performance
//! Maximization via Frequency Oscillation on Temperature Constrained
//! Multi-core Processors" (ICPP 2016) — reporting typed [`Diagnostic`]
//! values with stable `M0xx` codes instead of panicking.
//!
//! Three artifact kinds, three lint groups:
//!
//! * **platform** ([`platform`]) — the DVFS level set is strictly sorted and
//!   usable (M001–M003), `T_max` exceeds ambient (M004), the conductance
//!   matrix is symmetric and diagonally dominant (M005–M006), the state
//!   matrix `A = C⁻¹(βE − G)` is Hurwitz-stable — the spectrum assumption
//!   behind Theorems 1–5 — (M007), the power model is monotone over the
//!   levels (M008), and the transition overhead is valid (M009).
//! * **schedule** ([`schedule`]) — segments are finite and positive
//!   (M011–M012), cores share one period (M013, Definition 1), the timeline
//!   is step-up (M014, Definition 2 / Theorem 1), and voltages are DVFS
//!   levels of the platform (M016).
//! * **solution** ([`solution`]) — the claimed throughput and peak are
//!   recomputed from scratch (eq. (5) net of overhead; Theorem-1 exact or
//!   sampled peak) and divergence is flagged (M020–M021), feasibility flags
//!   are cross-checked against `T_max` (M022–M023), and the oscillation
//!   factor is checked against the Theorem-5 overhead budget `m ≤ M`
//!   (M017) and the transition count (M024).
//! * **telemetry** ([`telemetry`]) — a recorded `mosc-obs` JSONL stream is
//!   checked for instrumentation and solver anomalies: empty streams
//!   (M050), the AO m-sweep saturating its overhead cap (M051), pruneless
//!   branch-and-bound runs (M052), inconsistent span timing (M053), and
//!   solver spans without kernel counter movement (M054).
//! * **cross-artifact** ([`cross`]) — joins between artifacts: standalone
//!   schedules against the platform's DVFS table (M080), solve claims
//!   recomputed from the referenced platform + schedule (M081), access-log
//!   cache hits against canonical-key derivation (M082), and per-solve
//!   kernel counters against the solver kind (M083).
//! * **concurrency/trace** ([`trace`]) — the serve access log's lifecycle
//!   invariants: timestamp ordering (M090), span-tree well-formedness
//!   (M091), queue-wait accounting (M092), and per-connection sequence
//!   monotonicity (M093).
//! * **bench artifacts** ([`bench`]) — structural checks over the
//!   `BENCH_*.json` streams: schema-v2 metadata presence (M100), latency
//!   quantile ordering (M101), empty measurement windows (M102),
//!   achieved-rate collapse (M103), and rate-sweep sanity (M104).
//!
//! Entry points:
//!
//! * [`pass::run_passes`] — the pass-manager engine behind
//!   `mosc-cli analyze`: load every file once into a typed
//!   [`artifact::Artifacts`] model, run the registered [`pass::Lint`]
//!   passes, then apply severity configuration and a baseline.
//! * [`analyze_spec`] / [`analyze_telemetry`] — the single-file pipelines,
//!   also reachable through the engine.
//! * [`check_platform`] / [`check_schedule`] / [`check_solution`] — typed
//!   checks used by the `debug_assert` hooks in `mosc-core`'s solvers.
//!
//! DESIGN.md §7 tabulates every code with the paper statement it enforces;
//! §13 documents the pass manager and artifact model.

mod access;
pub mod artifact;
pub mod bench;
pub mod cross;
pub mod diag;
pub mod json;
pub mod output;
pub mod pass;
pub mod platform;
pub mod schedule;
pub mod solution;
pub mod spec;
pub mod telemetry;
pub mod trace;

pub use diag::{Code, Diagnostic, Report, Severity};
pub use platform::{check_levels, check_platform, check_t_max_c, check_tau};
pub use schedule::{check_raw_schedule, check_schedule};
pub use solution::{check_solution, SolutionClaim, Tolerances};
pub use spec::{analyze_spec, load_spec, platform_from_doc, platform_from_spec, SpecError};
pub use telemetry::analyze_telemetry;
