//! Machine-readable renderings of a [`Report`]: a compact JSON findings
//! document and SARIF 2.1.0 for code-scanning UIs.
//!
//! Both are built as [`Value`] trees and serialized through
//! [`crate::json::value_to_json`], so the output is valid JSON by
//! construction — the same guarantee the serve wire format relies on. The
//! human-readable text format stays [`Report::render`].

use crate::diag::{Report, Severity};
use crate::json::{value_to_json, Value};

fn obj(members: Vec<(&str, Value)>) -> Value {
    Value::Object(members.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn s(text: &str) -> Value {
    Value::String(text.to_owned())
}

#[allow(clippy::cast_precision_loss)]
fn n(x: usize) -> Value {
    Value::Number(x as f64)
}

/// Renders the findings as a JSON document:
/// `{"version":1,"errors":E,"warnings":W,"findings":[{code,severity,message,file,path}…]}`.
#[must_use]
pub fn render_json(report: &Report) -> String {
    let findings: Vec<Value> = report
        .diagnostics()
        .iter()
        .map(|d| {
            obj(vec![
                ("code", s(d.code.as_str())),
                ("severity", s(&d.severity.to_string())),
                ("message", s(&d.message)),
                ("file", s(&d.file)),
                ("path", s(&d.path)),
            ])
        })
        .collect();
    let doc = obj(vec![
        ("version", n(1)),
        ("errors", n(report.error_count())),
        ("warnings", n(report.warning_count())),
        ("findings", Value::Array(findings)),
    ]);
    let mut out = value_to_json(&doc);
    out.push('\n');
    out
}

/// Renders the findings as a minimal SARIF 2.1.0 log: one run, one rule per
/// distinct code, one result per finding. `level` maps error → `"error"`,
/// warning → `"warning"`; the artifact file (when stamped) becomes the
/// result's `artifactLocation.uri`.
#[must_use]
pub fn render_sarif(report: &Report) -> String {
    let mut rule_ids: Vec<&str> = report.diagnostics().iter().map(|d| d.code.as_str()).collect();
    rule_ids.sort_unstable();
    rule_ids.dedup();
    let rules: Vec<Value> = rule_ids.into_iter().map(|id| obj(vec![("id", s(id))])).collect();

    let results: Vec<Value> = report
        .diagnostics()
        .iter()
        .map(|d| {
            let level = match d.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            };
            let message = if d.path.is_empty() {
                d.message.clone()
            } else {
                format!("{} (at {})", d.message, d.path)
            };
            let mut members = vec![
                ("ruleId", s(d.code.as_str())),
                ("level", s(level)),
                ("message", obj(vec![("text", s(&message))])),
            ];
            if !d.file.is_empty() {
                members.push((
                    "locations",
                    Value::Array(vec![obj(vec![(
                        "physicalLocation",
                        obj(vec![("artifactLocation", obj(vec![("uri", s(&d.file))]))]),
                    )])]),
                ));
            }
            obj(members)
        })
        .collect();

    let doc = obj(vec![
        ("$schema", s("https://json.schemastore.org/sarif-2.1.0.json")),
        ("version", s("2.1.0")),
        (
            "runs",
            Value::Array(vec![obj(vec![
                (
                    "tool",
                    obj(vec![(
                        "driver",
                        obj(vec![
                            ("name", s("mosc-analyze")),
                            ("version", s(env!("CARGO_PKG_VERSION"))),
                            ("informationUri", s("https://github.com/mosc/mosc")),
                            ("rules", Value::Array(rules)),
                        ]),
                    )]),
                ),
                ("results", Value::Array(results)),
            ])]),
        ),
    ]);
    let mut out = value_to_json(&doc);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Code;

    fn sample() -> Report {
        let mut r = Report::new();
        r.push(Code::ClaimDivergence, "throughput", "claimed 1 but recomputes \"2\"");
        r.stamp_file("claim.json");
        r.push(Code::NotStepUp, "", "voltages decrease");
        r
    }

    #[test]
    fn json_output_parses_and_carries_every_finding() {
        let text = render_json(&sample());
        let doc = Value::parse(&text).expect("render_json must emit valid JSON");
        assert_eq!(doc.get("errors").and_then(Value::as_usize), Some(1));
        assert_eq!(doc.get("warnings").and_then(Value::as_usize), Some(1));
        let findings = doc.get("findings").and_then(Value::as_array).unwrap();
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].get("code").and_then(Value::as_str), Some("M081"));
        assert_eq!(findings[0].get("file").and_then(Value::as_str), Some("claim.json"));
        assert_eq!(findings[1].get("severity").and_then(Value::as_str), Some("warning"));
    }

    #[test]
    fn sarif_output_is_schema_shaped() {
        let text = render_sarif(&sample());
        let doc = Value::parse(&text).expect("render_sarif must emit valid JSON");
        assert_eq!(doc.get("version").and_then(Value::as_str), Some("2.1.0"));
        let runs = doc.get("runs").and_then(Value::as_array).unwrap();
        assert_eq!(runs.len(), 1);
        let driver = runs[0].get("tool").and_then(|t| t.get("driver")).unwrap();
        assert_eq!(driver.get("name").and_then(Value::as_str), Some("mosc-analyze"));
        let rules = driver.get("rules").and_then(Value::as_array).unwrap();
        assert_eq!(rules.len(), 2, "one rule per distinct code");
        let results = runs[0].get("results").and_then(Value::as_array).unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].get("ruleId").and_then(Value::as_str), Some("M081"));
        assert_eq!(results[0].get("level").and_then(Value::as_str), Some("error"));
        let uri = results[0]
            .get("locations")
            .and_then(Value::as_array)
            .and_then(|l| l[0].get("physicalLocation"))
            .and_then(|p| p.get("artifactLocation"))
            .and_then(|a| a.get("uri"))
            .and_then(Value::as_str);
        assert_eq!(uri, Some("claim.json"));
        // The file-less finding has no locations member at all.
        assert!(results[1].get("locations").is_none());
    }

    #[test]
    fn empty_report_renders_empty_but_valid_documents() {
        let r = Report::new();
        let doc = Value::parse(&render_json(&r)).unwrap();
        assert_eq!(doc.get("findings").and_then(Value::as_array).map(<[Value]>::len), Some(0));
        let doc = Value::parse(&render_sarif(&r)).unwrap();
        let runs = doc.get("runs").and_then(Value::as_array).unwrap();
        assert_eq!(runs[0].get("results").and_then(Value::as_array).map(<[Value]>::len), Some(0));
    }
}
