//! The pass manager: a [`Lint`] trait, a registry of passes, per-code
//! severity configuration (CLI flags + `analyze.toml`), and a baseline so
//! CI can ratchet.
//!
//! The engine runs in three stages. First every input file is loaded once
//! into the typed [`Artifacts`] model. Then each registered pass runs over
//! the whole model and its findings are stamped with the file they belong
//! to. Finally [`Config::apply`] maps each finding through the configured
//! [`LintLevel`] — `allow` drops it, `warn`/`deny` force its severity —
//! and [`apply_baseline`] removes findings already acknowledged in a
//! baseline file, so only *new* findings fail CI.
//!
//! `analyze.toml` is a small TOML subset (sections, `key = value`, `#`
//! comments — no tables-in-tables, no arrays):
//!
//! ```toml
//! [lints]
//! M014 = "allow"        # phase-shifted schedules are fine here
//! M083 = "deny"
//!
//! [analyze]
//! deny_warnings = true
//! baseline = "analyze-baseline.txt"
//! ```
//!
//! A baseline file holds one fingerprint (`CODE FILE PATH`) per line;
//! `mosc-cli analyze --write-baseline` emits it and `--baseline` applies it.

use crate::artifact::{ArtifactKind, Artifacts};
use crate::diag::{Code, Diagnostic, Report, Severity};
use crate::spec::SpecError;
use std::collections::BTreeSet;

/// One analysis pass over the loaded artifact model.
pub trait Lint {
    /// Short machine-friendly pass name (shows up in `--list-passes`).
    fn name(&self) -> &'static str;
    /// One-line description of what the pass checks.
    fn description(&self) -> &'static str;
    /// Runs the pass, pushing findings (already stamped with their file)
    /// into `report`.
    fn run(&self, artifacts: &Artifacts, report: &mut Report);
}

/// Runs every file-scoped sub-report through `f` and stamps the findings.
fn per_file<F: FnMut(&ArtifactKind, &mut Report)>(
    artifacts: &Artifacts,
    report: &mut Report,
    mut f: F,
) {
    for file in &artifacts.files {
        let mut sub = Report::new();
        f(&file.kind, &mut sub);
        sub.stamp_file(&file.path);
        report.merge(sub);
    }
}

/// Replays each spec artifact's load-time findings (M00x/M01x/M02x).
struct SpecPass;

impl Lint for SpecPass {
    fn name(&self) -> &'static str {
        "spec"
    }
    fn description(&self) -> &'static str {
        "platform/schedule/solution lints recorded while loading spec files"
    }
    fn run(&self, artifacts: &Artifacts, report: &mut Report) {
        per_file(artifacts, report, |kind, sub| {
            if let ArtifactKind::Spec(s) = kind {
                sub.merge(s.report.clone());
            }
        });
    }
}

/// Value-level lints on standalone schedule artifacts.
struct SchedulePass;

impl Lint for SchedulePass {
    fn name(&self) -> &'static str {
        "schedule"
    }
    fn description(&self) -> &'static str {
        "segment/period/step-up lints on standalone schedule files"
    }
    fn run(&self, artifacts: &Artifacts, report: &mut Report) {
        per_file(artifacts, report, |kind, sub| {
            if let ArtifactKind::Schedule(s) = kind {
                // A standalone schedule declares no step-up intent, so M014
                // stays a warning; platform joins are the cross pass's job.
                sub.merge(crate::schedule::check_schedule(s, None, Severity::Warning));
            }
        });
    }
}

/// The M05x–M07x stream lints.
struct StreamPass;

impl Lint for StreamPass {
    fn name(&self) -> &'static str {
        "stream"
    }
    fn description(&self) -> &'static str {
        "telemetry and access-log stream lints (M050–M073)"
    }
    fn run(&self, artifacts: &Artifacts, report: &mut Report) {
        per_file(artifacts, report, |kind, sub| {
            if let ArtifactKind::Stream(records) = kind {
                crate::telemetry::stream_lints(records, sub);
            }
        });
    }
}

/// The M08x cross-artifact consistency lints.
struct CrossPass;

impl Lint for CrossPass {
    fn name(&self) -> &'static str {
        "cross"
    }
    fn description(&self) -> &'static str {
        "cross-artifact consistency: schedule×platform, claims, cache keys (M080–M083)"
    }
    fn run(&self, artifacts: &Artifacts, report: &mut Report) {
        let platform = artifacts.platform();
        let fallback = artifacts.fallback_schedule();
        per_file(artifacts, report, |kind, sub| match kind {
            ArtifactKind::Schedule(s) => {
                if let Some(p) = platform {
                    crate::cross::check_cross_schedule(s, p, sub);
                }
            }
            ArtifactKind::Claim(c) => {
                crate::cross::check_claim(c, platform, fallback, sub);
            }
            ArtifactKind::Stream(records) => {
                crate::cross::access_log_lints(records, sub);
            }
            ArtifactKind::Spec(_) => {}
        });
    }
}

/// The M09x concurrency/trace lints.
struct TracePass;

impl Lint for TracePass {
    fn name(&self) -> &'static str {
        "trace"
    }
    fn description(&self) -> &'static str {
        "concurrency and distributed-trace invariants over access logs (M090–M093, M120–M124)"
    }
    fn run(&self, artifacts: &Artifacts, report: &mut Report) {
        per_file(artifacts, report, |kind, sub| {
            if let ArtifactKind::Stream(records) = kind {
                crate::trace::trace_lints(records, sub);
            }
        });
    }
}

/// The M10x bench-artifact lints.
struct BenchPass;

impl Lint for BenchPass {
    fn name(&self) -> &'static str {
        "bench"
    }
    fn description(&self) -> &'static str {
        "bench artifact structure: schema-v2 metadata, quantile ordering, rate sanity (M100–M104)"
    }
    fn run(&self, artifacts: &Artifacts, report: &mut Report) {
        per_file(artifacts, report, |kind, sub| {
            if let ArtifactKind::Stream(records) = kind {
                crate::bench::bench_lints(records, sub);
            }
        });
    }
}

/// The registered passes, in execution order.
#[must_use]
pub fn registry() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(SpecPass),
        Box::new(SchedulePass),
        Box::new(StreamPass),
        Box::new(CrossPass),
        Box::new(TracePass),
        Box::new(BenchPass),
    ]
}

/// Runs every registered pass over the artifact model and returns the raw
/// (pre-configuration) report.
#[must_use]
pub fn run_passes(artifacts: &Artifacts) -> Report {
    let mut report = Report::new();
    for pass in registry() {
        pass.run(artifacts, &mut report);
    }
    report
}

/// What to do with a lint code's findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintLevel {
    /// Drop the findings entirely.
    Allow,
    /// Keep them at warning severity (never fails the run).
    Warn,
    /// Force them to error severity (fails the run).
    Deny,
}

impl LintLevel {
    /// Parses `"allow"` / `"warn"` / `"deny"`.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "allow" => Some(Self::Allow),
            "warn" => Some(Self::Warn),
            "deny" => Some(Self::Deny),
            _ => None,
        }
    }
}

/// Per-code severity configuration, assembled from `analyze.toml` and then
/// CLI flags (later [`Config::set_level`] calls win).
#[derive(Debug, Clone, Default)]
pub struct Config {
    overrides: Vec<(Code, LintLevel)>,
    /// Promote every warning that survives the overrides to an error
    /// (`--deny warnings` / `deny_warnings = true`).
    pub deny_warnings: bool,
    /// Baseline file path configured in `analyze.toml` (CLI `--baseline`
    /// overrides it).
    pub baseline: Option<String>,
}

impl Config {
    /// An empty configuration: every code at its default severity.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `code` to `level`, overriding earlier settings for it.
    pub fn set_level(&mut self, code: Code, level: LintLevel) {
        self.overrides.push((code, level));
    }

    /// The effective level for `code`: the last explicit override, else the
    /// code's default severity, with `deny_warnings` promoting a resulting
    /// `Warn` to `Deny`.
    #[must_use]
    pub fn level_for(&self, code: Code) -> LintLevel {
        let base = self.overrides.iter().rev().find(|(c, _)| *c == code).map_or_else(
            || match code.default_severity() {
                Severity::Warning => LintLevel::Warn,
                Severity::Error => LintLevel::Deny,
            },
            |&(_, level)| level,
        );
        if self.deny_warnings && base == LintLevel::Warn {
            LintLevel::Deny
        } else {
            base
        }
    }

    /// Maps a raw report through the configuration: allowed findings drop,
    /// the rest take their configured severity. A lint that escalated its
    /// own severity (e.g. M014 under a `step_up` declaration) is still
    /// capped/raised by an explicit override.
    #[must_use]
    pub fn apply(&self, report: &Report) -> Report {
        let mut out = Report::new();
        for d in report.diagnostics() {
            let has_override = self.overrides.iter().any(|(c, _)| *c == d.code);
            let severity = if has_override || self.deny_warnings {
                match self.level_for(d.code) {
                    LintLevel::Allow => continue,
                    LintLevel::Warn => Severity::Warning,
                    LintLevel::Deny => Severity::Error,
                }
            } else {
                d.severity // keep per-finding escalations intact
            };
            out.push_diagnostic(Diagnostic { severity, ..d.clone() });
        }
        out
    }

    /// Parses an `analyze.toml` document (the subset documented in the
    /// module header).
    ///
    /// # Errors
    /// [`SpecError`] on syntax errors, unknown sections, unknown keys,
    /// unknown lint codes, or invalid level strings.
    pub fn from_toml(text: &str) -> Result<Self, SpecError> {
        let mut cfg = Self::new();
        let mut section: Option<String> = None;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_owned();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                if !matches!(name, "lints" | "analyze") {
                    return Err(SpecError(format!(
                        "analyze.toml line {lineno}: unknown section [{name}] \
                         (expected [lints] or [analyze])"
                    )));
                }
                section = Some(name.to_owned());
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(SpecError(format!(
                    "analyze.toml line {lineno}: expected 'key = value'"
                )));
            };
            let (key, value) = (key.trim(), unquote(value.trim()));
            match section.as_deref() {
                Some("lints") => {
                    let code = Code::parse(key).ok_or_else(|| {
                        SpecError(format!("analyze.toml line {lineno}: unknown lint code {key}"))
                    })?;
                    let level = LintLevel::parse(&value).ok_or_else(|| {
                        SpecError(format!(
                            "analyze.toml line {lineno}: level must be \
                             \"allow\", \"warn\" or \"deny\", got '{value}'"
                        ))
                    })?;
                    cfg.set_level(code, level);
                }
                Some("analyze") => match key {
                    "deny_warnings" => match value.as_str() {
                        "true" => cfg.deny_warnings = true,
                        "false" => cfg.deny_warnings = false,
                        other => {
                            return Err(SpecError(format!(
                                "analyze.toml line {lineno}: deny_warnings must be \
                                 true or false, got '{other}'"
                            )))
                        }
                    },
                    "baseline" => cfg.baseline = Some(value),
                    other => {
                        return Err(SpecError(format!(
                            "analyze.toml line {lineno}: unknown key '{other}' in [analyze]"
                        )))
                    }
                },
                _ => {
                    return Err(SpecError(format!(
                        "analyze.toml line {lineno}: key outside a section"
                    )))
                }
            }
        }
        Ok(cfg)
    }
}

fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn unquote(s: &str) -> String {
    s.strip_prefix('"').and_then(|s| s.strip_suffix('"')).unwrap_or(s).to_owned()
}

/// The stable identity of a finding for baseline matching: code, file, and
/// artifact path — deliberately *not* the message, which carries volatile
/// recomputed numbers.
#[must_use]
pub fn fingerprint(d: &Diagnostic) -> String {
    format!("{} {} {}", d.code, d.file, d.path)
}

/// Parses a baseline file: one fingerprint per line, `#` comments allowed.
#[must_use]
pub fn parse_baseline(text: &str) -> BTreeSet<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_owned)
        .collect()
}

/// Renders the baseline that would suppress every finding in `report`.
#[must_use]
pub fn render_baseline(report: &Report) -> String {
    let set: BTreeSet<String> = report.diagnostics().iter().map(fingerprint).collect();
    let mut out = String::from("# mosc-analyze baseline: acknowledged findings, one per line\n");
    for fp in set {
        out.push_str(&fp);
        out.push('\n');
    }
    out
}

/// Drops findings whose fingerprint the baseline acknowledges.
#[must_use]
pub fn apply_baseline(report: &Report, baseline: &BTreeSet<String>) -> Report {
    let mut out = Report::new();
    for d in report.diagnostics() {
        if !baseline.contains(&fingerprint(d)) {
            out.push_diagnostic(d.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"{
        "platform": {"rows": 1, "cols": 2, "levels": [0.6, 1.3], "t_max_c": 55.0},
        "schedule": {"period": 0.1,
                     "cores": [[[0.6, 0.06], [1.3, 0.04]], [[0.6, 0.07], [1.3, 0.03]]]}
    }"#;

    fn load(inputs: &[(&str, &str)]) -> Artifacts {
        let owned: Vec<(String, String)> =
            inputs.iter().map(|(p, t)| ((*p).to_owned(), (*t).to_owned())).collect();
        Artifacts::load(&owned).unwrap()
    }

    #[test]
    fn passes_stamp_findings_with_their_file() {
        let arts = load(&[
            ("spec.json", SPEC),
            // One core instead of two, off-table voltage: M080 twice over.
            ("sched.txt", "period 0.1\ncore 0: 0.9 x 0.1\n"),
        ]);
        let report = run_passes(&arts);
        let m080: Vec<_> =
            report.diagnostics().iter().filter(|d| d.code == Code::CrossScheduleMismatch).collect();
        assert!(!m080.is_empty(), "expected M080:\n{report}");
        assert!(m080.iter().all(|d| d.file == "sched.txt"), "{report}");
    }

    #[test]
    fn clean_pair_of_artifacts_runs_clean() {
        let arts = load(&[
            ("spec.json", SPEC),
            (
                "sched.txt",
                "period 0.1\ncore 0: 0.6 x 0.06, 1.3 x 0.04\ncore 1: 0.6 x 0.07, 1.3 x 0.03\n",
            ),
        ]);
        let report = run_passes(&arts);
        assert!(!report.has_errors(), "{report}");
    }

    #[test]
    fn registry_names_are_unique_and_described() {
        let passes = registry();
        let mut names = BTreeSet::new();
        for p in &passes {
            assert!(names.insert(p.name()), "duplicate pass {}", p.name());
            assert!(!p.description().is_empty());
        }
        assert_eq!(passes.len(), 6);
    }

    #[test]
    fn config_levels_allow_warn_deny() {
        let mut report = Report::new();
        report.push(Code::NotStepUp, "cores[0]", "not step up"); // warning by default
        report.push(Code::VoltageInvalid, "cores[1]", "NaN"); // error by default

        let mut cfg = Config::new();
        cfg.set_level(Code::NotStepUp, LintLevel::Deny);
        cfg.set_level(Code::VoltageInvalid, LintLevel::Allow);
        let out = cfg.apply(&report);
        assert_eq!(out.diagnostics().len(), 1);
        assert_eq!(out.error_count(), 1, "{out}");

        // Last set_level wins.
        cfg.set_level(Code::NotStepUp, LintLevel::Allow);
        let out = cfg.apply(&report);
        assert_eq!(out.diagnostics().len(), 0, "{out}");

        // deny_warnings promotes defaults but not explicit allows.
        let mut cfg = Config::new();
        cfg.deny_warnings = true;
        cfg.set_level(Code::VoltageInvalid, LintLevel::Allow);
        let out = cfg.apply(&report);
        assert_eq!(out.diagnostics().len(), 1);
        assert_eq!(out.error_count(), 1, "promoted warning:\n{out}");
    }

    #[test]
    fn unconfigured_codes_keep_per_finding_escalations() {
        // M014 pushed at error severity (spec declared step_up): a config
        // with no M014 override must not downgrade it back to warning.
        let mut report = Report::new();
        report.push_with(Severity::Error, Code::NotStepUp, "", "declared step-up");
        let out = Config::new().apply(&report);
        assert!(out.has_errors(), "{out}");
    }

    #[test]
    fn toml_subset_round_trips_and_rejects_garbage() {
        let cfg = Config::from_toml(
            "# comment\n[lints]\nM014 = \"allow\" # trailing\nM083 = \"deny\"\n\n\
             [analyze]\ndeny_warnings = true\nbaseline = \"base.txt\"\n",
        )
        .unwrap();
        assert_eq!(cfg.level_for(Code::NotStepUp), LintLevel::Allow);
        assert_eq!(cfg.level_for(Code::KernelDeltaInconsistent), LintLevel::Deny);
        assert!(cfg.deny_warnings);
        assert_eq!(cfg.baseline.as_deref(), Some("base.txt"));
        // deny_warnings promotes untouched warning-default codes.
        assert_eq!(cfg.level_for(Code::PowerNotMonotone), LintLevel::Deny);

        for bad in [
            "[mystery]\n",
            "[lints]\nM999 = \"deny\"\n",
            "[lints]\nM014 = \"fatal\"\n",
            "[analyze]\nunknown_key = 1\n",
            "M014 = \"allow\"\n", // key outside a section
            "[analyze]\ndeny_warnings = yes\n",
            "[lints]\njust a line\n",
        ] {
            assert!(Config::from_toml(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn baseline_suppresses_only_acknowledged_findings() {
        let mut report = Report::new();
        report.push(Code::NotStepUp, "cores[0]", "not step up");
        report.stamp_file("spec.json");
        report.push(Code::VoltageInvalid, "cores[1]", "NaN");
        report.stamp_file("other.json");

        let baseline_text = render_baseline(&report);
        let baseline = parse_baseline(&baseline_text);
        assert_eq!(baseline.len(), 2);
        let out = apply_baseline(&report, &baseline);
        assert!(out.is_clean(), "{out}");

        // A new finding is not suppressed.
        report.push(Code::PeakMismatch, "solution.peak", "diverged");
        let out = apply_baseline(&report, &baseline);
        assert_eq!(out.diagnostics().len(), 1);
        assert_eq!(out.diagnostics()[0].code, Code::PeakMismatch);
    }
}
