//! Platform lints: DVFS level sets, thermal-network structure, stability of
//! the state matrix, and power-model monotonicity.
//!
//! The raw-value checks (`check_levels`, `check_tau`, `check_t_max_c`) run
//! on numbers exactly as a spec file states them — *before* typed
//! construction, because `ModeTable::from_levels` silently sorts and
//! deduplicates and would mask M001. The typed check (`check_platform`)
//! verifies the assembled [`Platform`] against the paper's model
//! assumptions: `G` symmetric and diagonally dominant, `A = C⁻¹(βE − G)`
//! Hurwitz-stable (the spectrum assumption behind Theorems 1–5), and
//! `ψ(v)` strictly increasing over the level set (Theorems 3–4 trade time
//! between levels assuming higher voltage costs more power).

use crate::diag::{Code, Report};
use mosc_sched::Platform;

/// Relative tolerance for the `G` symmetry check.
const SYM_TOL: f64 = 1e-9;
/// Slack for the diagonal-dominance row sums (they carry ambient legs and
/// should be strictly positive; tiny negative values are rounding).
const DOM_TOL: f64 = 1e-9;

/// Lints a raw DVFS level list: M003 (fewer than two levels), M002
/// (non-finite / non-positive entries), M001 (not strictly increasing).
#[must_use]
pub fn check_levels(levels: &[f64]) -> Report {
    let mut report = Report::new();
    if levels.len() < 2 {
        report.push(
            Code::TooFewLevels,
            "platform.levels",
            format!("need at least 2 DVFS levels, got {}", levels.len()),
        );
    }
    for (i, &v) in levels.iter().enumerate() {
        if !(v.is_finite() && v > 0.0) {
            report.push(
                Code::LevelInvalid,
                format!("platform.levels[{i}]"),
                format!("level must be a finite positive voltage, got {v}"),
            );
        }
    }
    for (i, pair) in levels.windows(2).enumerate() {
        if pair[1] <= pair[0] {
            report.push(
                Code::LevelsNotSorted,
                format!("platform.levels[{}]", i + 1),
                format!("levels must be strictly increasing, but {} follows {}", pair[1], pair[0]),
            );
        }
    }
    report
}

/// Lints a raw DVFS transition overhead: M009 for negative or non-finite τ.
#[must_use]
pub fn check_tau(tau: f64) -> Report {
    let mut report = Report::new();
    if !(tau.is_finite() && tau >= 0.0) {
        report.push(
            Code::OverheadInvalid,
            "platform.tau",
            format!("transition overhead must be finite and non-negative, got {tau}"),
        );
    }
    report
}

/// Lints a raw temperature threshold against the ambient: M004 when the
/// constraint is vacuous or unsatisfiable (`T_max ≤ T_ambient`).
#[must_use]
pub fn check_t_max_c(t_max_c: f64, t_ambient_c: f64) -> Report {
    let mut report = Report::new();
    if !(t_max_c.is_finite() && t_max_c > t_ambient_c) {
        report.push(
            Code::TmaxNotAboveAmbient,
            "platform.t_max_c",
            format!("T_max = {t_max_c} °C must exceed the ambient {t_ambient_c} °C"),
        );
    }
    report
}

/// Lints an assembled [`Platform`]: level set, `T_max`, τ, conductance
/// symmetry (M005) and diagonal dominance (M006), Hurwitz stability of the
/// state matrix (M007), and power-model monotonicity over the level range
/// (M008).
#[must_use]
pub fn check_platform(platform: &Platform) -> Report {
    let mut report = check_levels(platform.modes().levels());
    report.merge(check_t_max_c(platform.t_max_c(), platform.t_ambient_c()));
    report.merge(check_tau(platform.overhead().tau));

    // Conductance structure. `G` is a graph Laplacian plus ambient legs:
    // symmetric (heat flow is reciprocal) and diagonally dominant (every
    // node leaks at least as much as it exchanges).
    let g = platform.thermal().network().conductance();
    let n = g.rows();
    let mut asym = 0usize;
    let mut first_asym = None;
    for i in 0..n {
        for j in (i + 1)..n {
            let (a, b) = (g[(i, j)], g[(j, i)]);
            if (a - b).abs() > SYM_TOL * a.abs().max(b.abs()).max(1.0) {
                asym += 1;
                if first_asym.is_none() {
                    first_asym = Some((i, j, a, b));
                }
            }
        }
    }
    if let Some((i, j, a, b)) = first_asym {
        report.push(
            Code::ConductanceAsymmetric,
            format!("platform.thermal.G[{i}][{j}]"),
            format!("G[{i}][{j}] = {a} but G[{j}][{i}] = {b} ({asym} asymmetric pair(s))"),
        );
    }
    for i in 0..n {
        let row_sum: f64 = (0..n).map(|j| g[(i, j)]).sum();
        let offdiag: f64 = (0..n).filter(|&j| j != i).map(|j| g[(i, j)].abs()).sum();
        if row_sum < -DOM_TOL * offdiag.max(1.0) {
            report.push(
                Code::NotDiagonallyDominant,
                format!("platform.thermal.G[{i}]"),
                format!(
                    "row {i} is not diagonally dominant: diagonal {} vs off-diagonal mass {offdiag}",
                    g[(i, i)]
                ),
            );
        }
    }

    // Hurwitz stability: every eigenvalue of A strictly negative.
    let eigs = platform.thermal().eigenvalues();
    let max_eig = eigs.max();
    if max_eig >= 0.0 || max_eig.is_nan() {
        report.push(
            Code::NotHurwitz,
            "platform.thermal.A",
            format!("state matrix is not Hurwitz-stable: max eigenvalue {max_eig:e} >= 0"),
        );
    }

    // Power monotonicity over the level set.
    let levels = platform.modes().levels();
    for (i, pair) in levels.windows(2).enumerate() {
        let (lo, hi) = (platform.power().psi(pair[0]), platform.power().psi(pair[1]));
        if hi <= lo {
            report.push(
                Code::PowerNotMonotone,
                format!("platform.levels[{}]", i + 1),
                format!(
                    "psi({hi_level}) = {hi} does not exceed psi({lo_level}) = {lo}, so \
                     raising voltage gains speed for free and the level pair is degenerate",
                    lo_level = pair[0],
                    hi_level = pair[1],
                ),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosc_sched::PlatformSpec;

    #[test]
    fn paper_platform_is_clean() {
        let p = Platform::build(&PlatformSpec::paper(2, 3, 5, 55.0)).unwrap();
        let r = check_platform(&p);
        assert!(r.is_clean(), "unexpected findings:\n{r}");
    }

    #[test]
    fn raw_level_lints_fire() {
        assert!(check_levels(&[0.6]).has_code(Code::TooFewLevels));
        assert!(check_levels(&[0.6, 0.6]).has_code(Code::LevelsNotSorted));
        assert!(check_levels(&[1.3, 0.6]).has_code(Code::LevelsNotSorted));
        assert!(check_levels(&[0.6, f64::NAN]).has_code(Code::LevelInvalid));
        assert!(check_levels(&[-0.5, 0.6]).has_code(Code::LevelInvalid));
        assert!(check_levels(&[0.6, 1.3]).is_clean());
    }

    #[test]
    fn raw_tau_and_tmax_lints_fire() {
        assert!(check_tau(-1e-6).has_code(Code::OverheadInvalid));
        assert!(check_tau(f64::INFINITY).has_code(Code::OverheadInvalid));
        assert!(check_tau(0.0).is_clean());
        assert!(check_t_max_c(35.0, 35.0).has_code(Code::TmaxNotAboveAmbient));
        assert!(check_t_max_c(20.0, 35.0).has_code(Code::TmaxNotAboveAmbient));
        assert!(check_t_max_c(55.0, 35.0).is_clean());
    }

    #[test]
    fn every_builtin_substrate_passes() {
        use mosc_thermal::RcConfig;
        for rc in [RcConfig::default(), RcConfig::budget_cooler(), RcConfig::responsive_package()] {
            let mut spec = PlatformSpec::paper(1, 3, 2, 65.0);
            spec.rc = rc;
            let p = Platform::build(&spec).unwrap();
            let r = check_platform(&p);
            assert!(r.is_clean(), "findings:\n{r}");
        }
    }
}
