//! Schedule lints, in two layers.
//!
//! * [`check_raw_schedule`] runs on `(voltage, duration)` pairs exactly as a
//!   spec states them — the typed [`Schedule`] constructors reject or
//!   silently repair (drop, merge, rescale) most of these defects, so
//!   linting after construction would miss them.
//! * [`check_schedule`] runs on a typed [`Schedule`] and verifies the
//!   paper-level invariants: the step-up property (Definition 2, which
//!   Theorem 1 needs for the exact peak evaluation), a common period across
//!   cores (Definition 1), and — given a platform — that every voltage is
//!   one of the discrete DVFS levels.

use crate::diag::{Code, Report, Severity};
use mosc_sched::{Platform, Schedule};

/// Relative slack when comparing a core's duration sum to the period.
const PERIOD_TOL: f64 = 1e-6;
/// Absolute slack when matching voltages against table levels.
const LEVEL_TOL: f64 = 1e-9;

/// Lints raw schedule data: `cores[i]` is the segment list of core `i` as
/// `(voltage, duration)` pairs and `period` the declared common period.
///
/// Emits M015 (no cores / empty core), M011 (bad durations), M012 (bad
/// voltages), and M013 (durations that do not sum to the period).
#[must_use]
pub fn check_raw_schedule(period: f64, cores: &[Vec<(f64, f64)>]) -> Report {
    let mut report = Report::new();
    if cores.is_empty() {
        report.push(Code::EmptySchedule, "schedule.cores", "schedule has no cores");
    }
    if !(period.is_finite() && period > 0.0) {
        report.push(
            Code::PeriodMismatch,
            "schedule.period",
            format!("period must be finite and positive, got {period}"),
        );
    }
    for (c, segments) in cores.iter().enumerate() {
        if segments.is_empty() {
            report.push(Code::EmptySchedule, format!("cores[{c}]"), "core has no segments");
            continue;
        }
        let mut sum = 0.0;
        for (s, &(voltage, duration)) in segments.iter().enumerate() {
            if !(duration.is_finite() && duration > 0.0) {
                report.push(
                    Code::DurationInvalid,
                    format!("cores[{c}].segments[{s}]"),
                    format!("segment duration must be finite and positive, got {duration}"),
                );
            } else {
                sum += duration;
            }
            if !(voltage.is_finite() && voltage >= 0.0) {
                report.push(
                    Code::VoltageInvalid,
                    format!("cores[{c}].segments[{s}]"),
                    format!("segment voltage must be finite and non-negative, got {voltage}"),
                );
            }
        }
        if period.is_finite() && period > 0.0 && (sum - period).abs() > PERIOD_TOL * period.max(1.0)
        {
            report.push(
                Code::PeriodMismatch,
                format!("cores[{c}]"),
                format!("segment durations sum to {sum} but the declared period is {period}"),
            );
        }
    }
    report
}

/// Lints a typed [`Schedule`].
///
/// `step_up_severity` sets how a non-step-up timeline is reported (M014):
/// the m-Oscillating pipeline treats it as an error (Theorem 1's exact peak
/// evaluation needs it), while phase-shifted PCO schedules legitimately
/// break it and only warn. With a `platform`, also checks the core count
/// (M018) and that every voltage is a DVFS table level (M016).
#[must_use]
pub fn check_schedule(
    schedule: &Schedule,
    platform: Option<&Platform>,
    step_up_severity: Severity,
) -> Report {
    let mut report = Report::new();
    // Core timelines span one repeating block; the full period is the block
    // times the repetition factor, so M013 compares against the block.
    let period = schedule.block_period();

    for (c, core) in schedule.cores().iter().enumerate() {
        // The constructors enforce these; re-verify cheaply so hand-built
        // or mutated schedules cannot sneak through the debug hooks.
        for (s, seg) in core.segments().iter().enumerate() {
            if !(seg.duration.is_finite() && seg.duration > 0.0) {
                report.push(
                    Code::DurationInvalid,
                    format!("cores[{c}].segments[{s}]"),
                    format!("segment duration must be finite and positive, got {}", seg.duration),
                );
            }
            if !(seg.voltage.is_finite() && seg.voltage >= 0.0) {
                report.push(
                    Code::VoltageInvalid,
                    format!("cores[{c}].segments[{s}]"),
                    format!("segment voltage must be finite and non-negative, got {}", seg.voltage),
                );
            }
        }
        if (core.period() - period).abs() > PERIOD_TOL * period.max(1.0) {
            report.push(
                Code::PeriodMismatch,
                format!("cores[{c}]"),
                format!("core period {} differs from the schedule period {period}", core.period()),
            );
        }
        if !core.is_non_decreasing() {
            report.push_with(
                step_up_severity,
                Code::NotStepUp,
                format!("cores[{c}]"),
                "voltages are not non-decreasing over the period (Definition 2)",
            );
        }
    }

    if let Some(p) = platform {
        if schedule.n_cores() != p.n_cores() {
            report.push(
                Code::CoreCountMismatch,
                "schedule.cores",
                format!(
                    "schedule has {} cores but the platform has {}",
                    schedule.n_cores(),
                    p.n_cores()
                ),
            );
        }
        let levels = p.modes().levels();
        for (c, core) in schedule.cores().iter().enumerate() {
            for (s, seg) in core.segments().iter().enumerate() {
                if !levels.iter().any(|&l| (l - seg.voltage).abs() <= LEVEL_TOL) {
                    report.push(
                        Code::VoltageNotALevel,
                        format!("cores[{c}].segments[{s}]"),
                        format!("voltage {} is not one of the platform's DVFS levels", seg.voltage),
                    );
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosc_sched::{CoreSchedule, PlatformSpec, Segment};

    #[test]
    fn raw_lints_fire_on_each_defect() {
        // Clean two-core schedule.
        let ok = vec![vec![(0.6, 0.06), (1.3, 0.04)], vec![(1.3, 0.1)]];
        assert!(check_raw_schedule(0.1, &ok).is_clean());

        assert!(check_raw_schedule(0.1, &[]).has_code(Code::EmptySchedule));
        assert!(check_raw_schedule(0.1, &[vec![]]).has_code(Code::EmptySchedule));
        let bad_dur = vec![vec![(0.6, -0.05), (1.3, 0.15)]];
        assert!(check_raw_schedule(0.1, &bad_dur).has_code(Code::DurationInvalid));
        let bad_v = vec![vec![(f64::NAN, 0.1)]];
        assert!(check_raw_schedule(0.1, &bad_v).has_code(Code::VoltageInvalid));
        let short = vec![vec![(0.6, 0.05)]];
        assert!(check_raw_schedule(0.1, &short).has_code(Code::PeriodMismatch));
        assert!(check_raw_schedule(0.0, &ok).has_code(Code::PeriodMismatch));
    }

    #[test]
    fn typed_step_up_schedule_is_clean() {
        let s = Schedule::two_mode(&[0.6, 0.6], &[1.3, 1.3], &[0.4, 0.7], 0.1).unwrap();
        let r = check_schedule(&s, None, Severity::Error);
        assert!(r.is_clean(), "findings:\n{r}");
    }

    #[test]
    fn non_step_up_schedule_reports_m014_with_chosen_severity() {
        let core =
            CoreSchedule::new(vec![Segment::new(1.3, 0.04), Segment::new(0.6, 0.06)]).unwrap();
        let s = Schedule::new(vec![core]).unwrap();
        let strict = check_schedule(&s, None, Severity::Error);
        assert!(strict.has_errors());
        assert!(strict.has_code(Code::NotStepUp));
        let lax = check_schedule(&s, None, Severity::Warning);
        assert!(!lax.has_errors());
        assert!(lax.has_code(Code::NotStepUp));
    }

    #[test]
    fn platform_aware_lints() {
        let p = Platform::build(&PlatformSpec::paper(1, 2, 2, 55.0)).unwrap();
        // Wrong core count.
        let s1 = Schedule::constant(&[0.6], 0.1).unwrap();
        assert!(check_schedule(&s1, Some(&p), Severity::Error).has_code(Code::CoreCountMismatch));
        // Voltage off the table.
        let s2 = Schedule::constant(&[0.6, 0.9], 0.1).unwrap();
        let r = check_schedule(&s2, Some(&p), Severity::Error);
        assert!(r.has_code(Code::VoltageNotALevel));
        assert!(!r.has_errors(), "M016 is a warning");
        // Clean.
        let s3 = Schedule::two_mode(&[0.6, 0.6], &[1.3, 1.3], &[0.3, 0.6], 0.1).unwrap();
        assert!(check_schedule(&s3, Some(&p), Severity::Error).is_clean());
    }
}
