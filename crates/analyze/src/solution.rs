//! Solution lints: recompute the claimed headline numbers from scratch and
//! flag divergence.
//!
//! A "solution" here is the plain claim an algorithm makes about its
//! schedule — throughput, stable peak, feasibility, oscillation factor —
//! decoupled from `mosc-core`'s `Solution` struct so this crate stays below
//! the algorithms in the dependency graph. The lints recompute the eq. (5)
//! throughput (net of DVFS stall overhead) and the stable-status peak
//! (Theorem 1 fast path for step-up schedules, sampled otherwise) and
//! compare against the claims, plus the Theorem-5 overhead-budget and
//! transition-count consistency checks.

use crate::diag::{Code, Report};
use mosc_sched::{Platform, Schedule};

/// The headline numbers an algorithm claims for a schedule.
#[derive(Debug, Clone, Copy)]
pub struct SolutionClaim {
    /// Chip-wide eq. (5) throughput, net of DVFS stall overhead.
    pub throughput: f64,
    /// Stable-status peak temperature, relative to ambient (K).
    pub peak: f64,
    /// Whether the claim says the peak respects `T_max`.
    pub feasible: bool,
    /// Oscillation factor (1 for constant-speed schedules).
    pub m: usize,
}

/// Divergence tolerances for the recompute lints.
#[derive(Debug, Clone, Copy)]
pub struct Tolerances {
    /// Relative tolerance on throughput (against `max(1, |recomputed|)`).
    pub throughput_rel: f64,
    /// Absolute tolerance on peak temperature (K). Also used as the slack on
    /// the feasibility cross-checks; sampled-peak paths at different
    /// resolutions legitimately differ by a few millikelvin.
    pub peak_abs: f64,
}

impl Default for Tolerances {
    fn default() -> Self {
        Self { throughput_rel: 1e-4, peak_abs: 1e-2 }
    }
}

/// Voltages closer than this are the same level.
const V_EPS: f64 = 1e-12;

/// Lints a claim against its schedule on `platform`.
///
/// Emits M018 (core-count mismatch — remaining lints are skipped), M020
/// (throughput divergence), M021 (peak divergence), M022/M023 (feasibility
/// contradictions), M017 (overhead budget), and M024 (transition count
/// inconsistent with `m`).
#[must_use]
pub fn check_solution(
    platform: &Platform,
    schedule: &Schedule,
    claim: &SolutionClaim,
    tol: &Tolerances,
) -> Report {
    let mut report = Report::new();
    if schedule.n_cores() != platform.n_cores() {
        report.push(
            Code::CoreCountMismatch,
            "schedule.cores",
            format!(
                "schedule has {} cores but the platform has {}",
                schedule.n_cores(),
                platform.n_cores()
            ),
        );
        return report;
    }

    // Throughput: eq. (5) net of the per-transition stall (v0+v1)·τ/2.
    let throughput = schedule.throughput_with_overhead(platform.overhead());
    if (throughput - claim.throughput).abs() > tol.throughput_rel * throughput.abs().max(1.0) {
        report.push(
            Code::ThroughputMismatch,
            "solution.throughput",
            format!("claimed throughput {} but eq. (5) recomputes {throughput}", claim.throughput),
        );
    }

    // Peak: exact Theorem-1 path for step-up schedules, sampled otherwise.
    match platform.peak(schedule) {
        Ok(peak) => {
            if (peak.temp - claim.peak).abs() > tol.peak_abs {
                report.push(
                    Code::PeakMismatch,
                    "solution.peak",
                    format!(
                        "claimed peak {} K but recomputation finds {} K ({})",
                        claim.peak,
                        peak.temp,
                        if peak.exact { "exact, Theorem 1" } else { "sampled" }
                    ),
                );
            }
            let t_max = platform.t_max();
            // Solvers stamp feasibility at FEASIBILITY_EPS, so the audit
            // slack must never be tighter — otherwise a solution every
            // solver legitimately accepted would be flagged M022.
            let feas_slack = tol.peak_abs.max(mosc_sched::FEASIBILITY_EPS);
            if claim.feasible && peak.temp > t_max + feas_slack {
                report.push(
                    Code::InfeasibleMarkedFeasible,
                    "solution.feasible",
                    format!(
                        "claimed feasible but recomputed peak {} K exceeds T_max {t_max} K",
                        peak.temp
                    ),
                );
            }
            if !claim.feasible && peak.temp <= t_max - tol.peak_abs {
                report.push(
                    Code::FeasibleMarkedInfeasible,
                    "solution.feasible",
                    format!(
                        "claimed infeasible but recomputed peak {} K respects T_max {t_max} K",
                        peak.temp
                    ),
                );
            }
        }
        Err(e) => {
            report.push(
                Code::PeakMismatch,
                "solution.peak",
                format!("peak recomputation failed: {e}"),
            );
        }
    }

    check_oscillation(platform, schedule, claim, &mut report);
    report
}

/// The Theorem-5 overhead-budget lint (M017) and the transition-count
/// consistency lint (M024).
///
/// With base period `t_p = m·t_c`, the budget `m ≤ M = ⌊t_L/(δ+τ)⌋`
/// (`δ = (v_H+v_L)τ/(v_H−v_L)`) is equivalent — after the δ compensation the
/// pipeline applies — to every oscillating core's low-voltage dwell in the
/// compressed period being at least `τ`: any shorter and the core would
/// still be mid-transition when its low interval ends.
fn check_oscillation(
    platform: &Platform,
    schedule: &Schedule,
    claim: &SolutionClaim,
    report: &mut Report,
) {
    if claim.m == 0 {
        report.push(
            Code::OscillationOverBudget,
            "solution.m",
            "oscillation factor m must be at least 1",
        );
        return;
    }
    let tau = platform.overhead().tau;
    let mut any_oscillates = false;
    let mut max_transitions = 0usize;
    for (c, core) in schedule.cores().iter().enumerate() {
        max_transitions = max_transitions.max(core.transitions_per_period());
        let segs = core.segments();
        let v_min = segs.iter().map(|s| s.voltage).fold(f64::INFINITY, f64::min);
        let v_max = segs.iter().map(|s| s.voltage).fold(f64::NEG_INFINITY, f64::max);
        if v_max <= v_min + V_EPS {
            continue; // constant core: no oscillation, no budget
        }
        any_oscillates = true;
        // The schedule only respects the budget if it is step-up-shaped
        // two-level output of the oscillation pipeline; for richer shapes
        // (arbitrary spec schedules) the per-dwell check still applies to
        // the shortest low dwell.
        let low_dwell: f64 =
            segs.iter().filter(|s| (s.voltage - v_min).abs() <= V_EPS).map(|s| s.duration).sum();
        if tau > 0.0 && low_dwell + 1e-12 < tau {
            report.push(
                Code::OscillationOverBudget,
                format!("cores[{c}]"),
                format!(
                    "low-voltage dwell {low_dwell} s is shorter than the transition \
                     latency tau = {tau} s, so m = {} exceeds the Theorem-5 budget",
                    claim.m
                ),
            );
        }
    }
    if claim.m > 1 && !any_oscillates {
        report.push(
            Code::TransitionsInconsistent,
            "solution.m",
            format!("claimed oscillation factor m = {} but every core is constant", claim.m),
        );
    }
    if max_transitions > 2 * claim.m {
        report.push(
            Code::TransitionsInconsistent,
            "solution.m",
            format!(
                "a core makes {max_transitions} DVFS transitions per period, more than the \
                 2m = {} an m-Oscillating schedule performs",
                2 * claim.m
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosc_sched::PlatformSpec;

    fn platform() -> Platform {
        Platform::build(&PlatformSpec::paper(1, 2, 2, 55.0)).unwrap()
    }

    fn claim_for(platform: &Platform, schedule: &Schedule, m: usize) -> SolutionClaim {
        let peak = platform.peak(schedule).unwrap().temp;
        SolutionClaim {
            throughput: schedule.throughput_with_overhead(platform.overhead()),
            peak,
            feasible: peak <= platform.t_max() + mosc_sched::FEASIBILITY_EPS,
            m,
        }
    }

    #[test]
    fn truthful_claim_is_clean() {
        let p = platform();
        let s = Schedule::two_mode(&[0.6, 0.6], &[1.3, 1.3], &[0.3, 0.5], 0.1).unwrap();
        let claim = claim_for(&p, &s, 1);
        let r = check_solution(&p, &s, &claim, &Tolerances::default());
        assert!(r.is_clean(), "findings:\n{r}");
    }

    #[test]
    fn throughput_and_peak_divergence_flagged() {
        let p = platform();
        let s = Schedule::two_mode(&[0.6, 0.6], &[1.3, 1.3], &[0.3, 0.5], 0.1).unwrap();
        let mut claim = claim_for(&p, &s, 1);
        claim.throughput += 0.05;
        let r = check_solution(&p, &s, &claim, &Tolerances::default());
        assert!(r.has_code(Code::ThroughputMismatch));

        let mut claim = claim_for(&p, &s, 1);
        claim.peak += 1.0;
        let r = check_solution(&p, &s, &claim, &Tolerances::default());
        assert!(r.has_code(Code::PeakMismatch));
    }

    #[test]
    fn feasibility_contradictions_flagged() {
        // All-max on the 9-core grid at 55 °C is far over T_max (the ideal
        // point sits near 0.85 V): genuinely infeasible.
        let p = Platform::build(&PlatformSpec::paper(3, 3, 2, 55.0)).unwrap();
        let hot = Schedule::constant(&[1.3; 9], 0.1).unwrap();
        let mut claim = claim_for(&p, &hot, 1);
        assert!(!claim.feasible);
        claim.feasible = true;
        let r = check_solution(&p, &hot, &claim, &Tolerances::default());
        assert!(r.has_code(Code::InfeasibleMarkedFeasible));

        let cool = Schedule::constant(&[0.6; 9], 0.1).unwrap();
        let mut claim = claim_for(&p, &cool, 1);
        claim.feasible = false;
        let r = check_solution(&p, &cool, &claim, &Tolerances::default());
        assert!(r.has_code(Code::FeasibleMarkedInfeasible));
        assert!(!r.has_errors(), "M023 is a warning");
    }

    #[test]
    fn oscillation_budget_and_transition_lints() {
        let p = platform(); // tau = 5 µs (paper default)
                            // Low dwell of 1 µs < tau: over budget.
        let s = Schedule::two_mode(&[0.6, 0.6], &[1.3, 1.3], &[1.0 - 1e-4, 0.5], 1e-2).unwrap();
        let claim = claim_for(&p, &s, 4);
        let r = check_solution(&p, &s, &claim, &Tolerances::default());
        assert!(r.has_code(Code::OscillationOverBudget), "findings:\n{r}");

        // m > 1 with an all-constant schedule is inconsistent.
        let c = Schedule::constant(&[0.6, 0.6], 0.1).unwrap();
        let claim = claim_for(&p, &c, 3);
        let r = check_solution(&p, &c, &claim, &Tolerances::default());
        assert!(r.has_code(Code::TransitionsInconsistent));

        // m = 0 is rejected outright.
        let claim = SolutionClaim { m: 0, ..claim_for(&p, &c, 1) };
        let r = check_solution(&p, &c, &claim, &Tolerances::default());
        assert!(r.has_code(Code::OscillationOverBudget));
    }

    #[test]
    fn core_count_mismatch_short_circuits() {
        let p = platform();
        let s = Schedule::constant(&[0.6], 0.1).unwrap();
        let claim = SolutionClaim { throughput: 0.6, peak: 1.0, feasible: true, m: 1 };
        let r = check_solution(&p, &s, &claim, &Tolerances::default());
        assert!(r.has_code(Code::CoreCountMismatch));
        assert_eq!(r.diagnostics().len(), 1);
    }
}
