//! Spec files: a JSON description of a platform (and optionally a schedule
//! and a claimed solution) that `mosc-cli analyze` lints end to end.
//!
//! ```json
//! {
//!   "platform": {
//!     "rows": 2, "cols": 3, "layers": 1,
//!     "levels": [0.6, 0.8, 1.0, 1.2, 1.3],
//!     "t_max_c": 55.0, "tau": 5e-6, "cooler": "default",
//!     "beta": 0.03
//!   },
//!   "schedule": {
//!     "period": 0.1, "step_up": true,
//!     "cores": [[[0.6, 0.06], [1.3, 0.04]], [[1.3, 0.1]], ...]
//!   },
//!   "solution": {"throughput": 0.88, "peak_c": 54.9, "feasible": true, "m": 4}
//! }
//! ```
//!
//! `platform` is required. `layers` defaults to 1, `tau` to the paper's
//! 5 µs, `cooler` to `"default"` (also: `"budget"`, `"responsive"`), and
//! `alpha`/`beta`/`gamma` to the 65 nm preset's power coefficients — an
//! oversized `beta` is the spec-level way to produce a non-Hurwitz state
//! matrix (thermal runaway, M007). `schedule.step_up` defaults to `true`,
//! making a non-step-up timeline an error (M014); set it to `false` for
//! phase-shifted schedules, which downgrades M014 to a warning. `solution`
//! needs `schedule`; its peak may be given as `peak_c` (°C) or `peak`
//! (K above ambient).
//!
//! Structural problems (malformed JSON, missing required fields, unknown
//! cooler names) surface as [`SpecError`]; everything value-level goes into
//! the returned [`Report`] as `M0xx` diagnostics.

use crate::diag::{Code, Report, Severity};
use crate::json::Value;
use crate::solution::{check_solution, SolutionClaim, Tolerances};
use crate::{platform as plat, schedule as sched};
use mosc_power::{ModeTable, Params65nm, PowerModel, TransitionOverhead};
use mosc_sched::{CoreSchedule, Platform, Schedule, Segment};
use mosc_thermal::{Floorplan, RcConfig, RcNetwork, ThermalError, ThermalModel};

/// A structural problem with a spec (as opposed to a lint finding).
#[derive(Debug, Clone)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "spec error: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

fn structural(what: impl Into<String>) -> SpecError {
    SpecError(what.into())
}

fn req_f64(obj: &Value, key: &str, ctx: &str) -> Result<f64, SpecError> {
    obj.get(key)
        .ok_or_else(|| structural(format!("{ctx}.{key} is required")))?
        .as_f64()
        .ok_or_else(|| structural(format!("{ctx}.{key} must be a number")))
}

fn opt_f64(obj: &Value, key: &str, default: f64, ctx: &str) -> Result<f64, SpecError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v.as_f64().ok_or_else(|| structural(format!("{ctx}.{key} must be a number"))),
    }
}

fn req_usize(obj: &Value, key: &str, ctx: &str) -> Result<usize, SpecError> {
    obj.get(key)
        .ok_or_else(|| structural(format!("{ctx}.{key} is required")))?
        .as_usize()
        .ok_or_else(|| structural(format!("{ctx}.{key} must be a non-negative integer")))
}

fn opt_usize(obj: &Value, key: &str, default: usize, ctx: &str) -> Result<usize, SpecError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_usize()
            .ok_or_else(|| structural(format!("{ctx}.{key} must be a non-negative integer"))),
    }
}

/// The raw values of a spec's `platform` section, parsed and defaulted but
/// not yet lint-checked or built into a typed [`Platform`].
struct PlatformParams {
    rows: usize,
    cols: usize,
    layers: usize,
    levels: Vec<f64>,
    t_max_c: f64,
    tau: f64,
    alpha: f64,
    beta: f64,
    gamma: f64,
    rc: RcConfig,
}

fn parse_platform_section(doc: &Value) -> Result<PlatformParams, SpecError> {
    let pspec = doc.get("platform").ok_or_else(|| structural("'platform' section is required"))?;
    if !pspec.is_object() {
        return Err(structural("'platform' must be an object"));
    }
    let params = Params65nm::params();
    let levels: Vec<f64> = pspec
        .get("levels")
        .ok_or_else(|| structural("platform.levels is required"))?
        .as_array()
        .ok_or_else(|| structural("platform.levels must be an array of numbers"))?
        .iter()
        .map(|v| v.as_f64().ok_or_else(|| structural("platform.levels must be numbers")))
        .collect::<Result<_, _>>()?;
    let rc = match pspec.get("cooler").map(|v| v.as_str()) {
        None => RcConfig::default(),
        Some(Some("default")) => RcConfig::default(),
        Some(Some("budget")) => RcConfig::budget_cooler(),
        Some(Some("responsive")) => RcConfig::responsive_package(),
        Some(Some(other)) => return Err(structural(format!("unknown cooler '{other}'"))),
        Some(None) => return Err(structural("platform.cooler must be a string")),
    };
    Ok(PlatformParams {
        rows: req_usize(pspec, "rows", "platform")?,
        cols: req_usize(pspec, "cols", "platform")?,
        layers: opt_usize(pspec, "layers", 1, "platform")?,
        levels,
        t_max_c: req_f64(pspec, "t_max_c", "platform")?,
        tau: opt_f64(pspec, "tau", TransitionOverhead::paper_default().tau, "platform")?,
        alpha: opt_f64(pspec, "alpha", params.power.alpha, "platform")?,
        beta: opt_f64(pspec, "beta", params.power.beta, "platform")?,
        gamma: opt_f64(pspec, "gamma", params.power.gamma, "platform")?,
        rc,
    })
}

fn raw_platform_lints(p: &PlatformParams) -> Report {
    let mut report = Report::new();
    report.merge(plat::check_levels(&p.levels));
    report.merge(plat::check_tau(p.tau));
    report.merge(plat::check_t_max_c(p.t_max_c, Params65nm::params().t_ambient_c));
    report
}

/// Builds the typed [`Platform`] a spec describes, without running the full
/// lint pipeline. `mosc-cli profile` uses this: it needs the platform (not a
/// report) to run the solvers against. Value-level defects that
/// [`analyze_spec`] would report as diagnostics surface here as
/// [`SpecError`]s, since there is no report to carry them.
///
/// # Errors
/// [`SpecError`] for malformed JSON, missing or mistyped fields, platform
/// values that fail the raw lints, or a platform whose thermal model cannot
/// be constructed (e.g. a non-Hurwitz state matrix).
pub fn platform_from_spec(text: &str) -> Result<Platform, SpecError> {
    let doc = Value::parse(text).map_err(|e| structural(e.to_string()))?;
    platform_from_doc(&doc)
}

/// Builds the typed [`Platform`] from an already-parsed spec document (a
/// JSON object holding a `"platform"` member). The `mosc-serve` wire
/// protocol parses each request line once and hands the document here, so
/// the daemon and the file-based [`platform_from_spec`] share one platform
/// decoder.
///
/// # Errors
/// Same contract as [`platform_from_spec`], minus the JSON parse step.
pub fn platform_from_doc(doc: &Value) -> Result<Platform, SpecError> {
    if !doc.is_object() {
        return Err(structural("top level must be a JSON object"));
    }
    let p = parse_platform_section(doc)?;
    let raw = raw_platform_lints(&p);
    if raw.has_errors() {
        return Err(structural(format!("platform values fail lints:\n{raw}")));
    }
    let mut report = Report::new();
    build_platform(&p, &mut report)?
        .ok_or_else(|| structural(format!("platform construction failed:\n{report}")))
}

/// A spec artifact after loading: the typed platform and schedule it
/// described (when they could be built) plus every diagnostic the load
/// produced. The pass manager hands the typed halves to cross-artifact
/// lints (M08x) so they never re-parse the file.
#[derive(Debug)]
pub struct SpecArtifact {
    /// The typed platform, `None` when its raw values failed lints or the
    /// thermal model could not be constructed (the report says why).
    pub platform: Option<Platform>,
    /// The typed schedule from the spec's `schedule` section, `None` when
    /// absent or unbuildable.
    pub schedule: Option<Schedule>,
    /// Everything the single-file spec pipeline found (M00x/M01x/M02x).
    pub report: Report,
}

/// Analyzes a spec document. Returns the lint report, or a [`SpecError`]
/// when the document is structurally unusable.
///
/// # Errors
/// [`SpecError`] for malformed JSON, missing required fields, wrong types,
/// or unknown cooler names.
pub fn analyze_spec(text: &str) -> Result<Report, SpecError> {
    load_spec(text).map(|a| a.report)
}

/// Loads a spec and returns the typed artifact alongside the lint report.
/// [`analyze_spec`] is this function with the typed halves dropped.
///
/// # Errors
/// Same contract as [`analyze_spec`].
pub fn load_spec(text: &str) -> Result<SpecArtifact, SpecError> {
    let doc = Value::parse(text).map_err(|e| structural(e.to_string()))?;
    if !doc.is_object() {
        return Err(structural("top level must be a JSON object"));
    }
    let mut report = Report::new();
    let params = Params65nm::params();

    // --- platform: raw lints first, construction second -----------------
    let pp = parse_platform_section(&doc)?;
    report.merge(raw_platform_lints(&pp));

    let platform = if report.has_errors() {
        None // raw platform values are broken; typed construction would mask them
    } else {
        build_platform(&pp, &mut report)?
    };
    if let Some(p) = &platform {
        report.merge(plat::check_platform(p));
    }

    // --- schedule -------------------------------------------------------
    let mut typed_schedule = None;
    let mut step_up_severity = Severity::Error;
    if let Some(sspec) = doc.get("schedule") {
        if !sspec.is_object() {
            return Err(structural("'schedule' must be an object"));
        }
        if let Some(flag) = sspec.get("step_up") {
            let declared =
                flag.as_bool().ok_or_else(|| structural("schedule.step_up must be a boolean"))?;
            if !declared {
                step_up_severity = Severity::Warning;
            }
        }
        let period = req_f64(sspec, "period", "schedule")?;
        let cores = parse_cores(sspec)?;
        let raw = sched::check_raw_schedule(period, &cores);
        let raw_ok = !raw.has_errors();
        report.merge(raw);
        if raw_ok {
            match build_schedule(&cores) {
                Ok(s) => {
                    report.merge(sched::check_schedule(&s, platform.as_ref(), step_up_severity));
                    typed_schedule = Some(s);
                }
                Err(e) => report.push(
                    Code::EmptySchedule,
                    "schedule",
                    format!("schedule construction failed: {e}"),
                ),
            }
        }
    }

    // --- solution -------------------------------------------------------
    if let Some(claim) = doc.get("solution") {
        if !claim.is_object() {
            return Err(structural("'solution' must be an object"));
        }
        let (Some(p), Some(s)) = (platform.as_ref(), typed_schedule.as_ref()) else {
            if !report.has_errors() {
                return Err(structural("'solution' requires a 'schedule' section"));
            }
            // can't recompute against broken inputs
            return Ok(SpecArtifact { platform, schedule: typed_schedule, report });
        };
        let peak = match (claim.get("peak_c"), claim.get("peak")) {
            (Some(v), _) => {
                v.as_f64().ok_or_else(|| structural("solution.peak_c must be a number"))?
                    - params.t_ambient_c
            }
            (None, Some(v)) => {
                v.as_f64().ok_or_else(|| structural("solution.peak must be a number"))?
            }
            (None, None) => return Err(structural("solution needs 'peak_c' or 'peak'")),
        };
        let claim = SolutionClaim {
            throughput: req_f64(claim, "throughput", "solution")?,
            peak,
            feasible: claim
                .get("feasible")
                .ok_or_else(|| structural("solution.feasible is required"))?
                .as_bool()
                .ok_or_else(|| structural("solution.feasible must be a boolean"))?,
            m: opt_usize(claim, "m", 1, "solution")?,
        };
        report.merge(check_solution(p, s, &claim, &Tolerances::default()));
    }

    Ok(SpecArtifact { platform, schedule: typed_schedule, report })
}

fn build_platform(p: &PlatformParams, report: &mut Report) -> Result<Option<Platform>, SpecError> {
    let modes = ModeTable::from_levels(&p.levels).map_err(|e| structural(e.to_string()))?;
    let overhead = TransitionOverhead::new(p.tau).map_err(|e| structural(e.to_string()))?;
    let power = PowerModel::new(p.alpha, p.beta, p.gamma).map_err(|e| structural(e.to_string()))?;
    let floorplan = if p.layers <= 1 {
        Floorplan::grid(p.rows, p.cols, 4.0e-3, 4.0e-3)
    } else {
        Floorplan::stack3d(p.layers, p.rows, p.cols, 4.0e-3, 4.0e-3)
    }
    .map_err(|e| structural(e.to_string()))?;
    let network = RcNetwork::build(&floorplan, &p.rc).map_err(|e| structural(e.to_string()))?;
    match ThermalModel::new(network, p.beta) {
        Ok(thermal) => Ok(Some(Platform::from_parts(
            thermal,
            power,
            modes,
            overhead,
            p.t_max_c,
            Params65nm::params().t_ambient_c,
        ))),
        Err(ThermalError::Unstable { max_eigenvalue }) => {
            report.push(
                Code::NotHurwitz,
                "platform.thermal.A",
                format!(
                    "state matrix is not Hurwitz-stable (thermal runaway): max eigenvalue \
                     {max_eigenvalue:e} >= 0 — is beta = {} too large for this package?",
                    p.beta
                ),
            );
            Ok(None)
        }
        Err(e) => Err(structural(e.to_string())),
    }
}

fn parse_cores(sspec: &Value) -> Result<Vec<Vec<(f64, f64)>>, SpecError> {
    sspec
        .get("cores")
        .ok_or_else(|| structural("schedule.cores is required"))?
        .as_array()
        .ok_or_else(|| structural("schedule.cores must be an array"))?
        .iter()
        .map(|core| {
            core.as_array()
                .ok_or_else(|| structural("each core must be an array of segments"))?
                .iter()
                .map(|seg| {
                    let pair = seg
                        .as_array()
                        .ok_or_else(|| structural("each segment must be [voltage, duration]"))?;
                    if pair.len() != 2 {
                        return Err(structural("each segment must be [voltage, duration]"));
                    }
                    let v = pair[0]
                        .as_f64()
                        .ok_or_else(|| structural("segment voltage must be a number"))?;
                    let d = pair[1]
                        .as_f64()
                        .ok_or_else(|| structural("segment duration must be a number"))?;
                    Ok((v, d))
                })
                .collect()
        })
        .collect()
}

fn build_schedule(cores: &[Vec<(f64, f64)>]) -> mosc_sched::Result<Schedule> {
    let typed: Vec<CoreSchedule> = cores
        .iter()
        .map(|segs| CoreSchedule::new(segs.iter().map(|&(v, d)| Segment::new(v, d)).collect()))
        .collect::<mosc_sched::Result<_>>()?;
    Schedule::new(typed)
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{
        "platform": {"rows": 1, "cols": 2, "levels": [0.6, 1.3], "t_max_c": 55.0},
        "schedule": {"period": 0.1,
                     "cores": [[[0.6, 0.06], [1.3, 0.04]], [[0.6, 0.07], [1.3, 0.03]]]}
    }"#;

    #[test]
    fn good_spec_is_clean() {
        let r = analyze_spec(GOOD).unwrap();
        assert!(!r.has_errors(), "findings:\n{r}");
    }

    #[test]
    fn unsorted_levels_report_m001_and_skip_typed_build() {
        let text = r#"{
            "platform": {"rows": 1, "cols": 2, "levels": [1.3, 0.6], "t_max_c": 55.0}
        }"#;
        let r = analyze_spec(text).unwrap();
        assert!(r.has_errors());
        assert!(r.has_code(Code::LevelsNotSorted));
        assert!(!r.has_code(Code::NotHurwitz));
    }

    #[test]
    fn runaway_beta_reports_m007() {
        let text = r#"{
            "platform": {"rows": 1, "cols": 2, "levels": [0.6, 1.3], "t_max_c": 55.0,
                         "beta": 1000.0}
        }"#;
        let r = analyze_spec(text).unwrap();
        assert!(r.has_errors());
        assert!(r.has_code(Code::NotHurwitz));
    }

    #[test]
    fn non_step_up_schedule_errors_by_default_and_warns_when_declared() {
        let strict = r#"{
            "platform": {"rows": 1, "cols": 1, "levels": [0.6, 1.3], "t_max_c": 65.0},
            "schedule": {"period": 0.1, "cores": [[[1.3, 0.04], [0.6, 0.06]]]}
        }"#;
        let r = analyze_spec(strict).unwrap();
        assert!(r.has_errors());
        assert!(r.has_code(Code::NotStepUp));

        let lax = r#"{
            "platform": {"rows": 1, "cols": 1, "levels": [0.6, 1.3], "t_max_c": 65.0},
            "schedule": {"period": 0.1, "step_up": false,
                         "cores": [[[1.3, 0.04], [0.6, 0.06]]]}
        }"#;
        let r = analyze_spec(lax).unwrap();
        assert!(!r.has_errors());
        assert!(r.has_code(Code::NotStepUp));
    }

    #[test]
    fn solution_section_is_recomputed() {
        let text = r#"{
            "platform": {"rows": 1, "cols": 2, "levels": [0.6, 1.3], "t_max_c": 65.0},
            "schedule": {"period": 0.1, "cores": [[[0.6, 0.1]], [[0.6, 0.1]]]},
            "solution": {"throughput": 0.6, "peak_c": 120.0, "feasible": true, "m": 1}
        }"#;
        let r = analyze_spec(text).unwrap();
        assert!(r.has_code(Code::PeakMismatch), "findings:\n{r}");
    }

    #[test]
    fn structural_problems_are_spec_errors() {
        assert!(analyze_spec("not json").is_err());
        assert!(analyze_spec("[]").is_err());
        assert!(analyze_spec("{}").is_err());
        assert!(analyze_spec(r#"{"platform": {"rows": 1}}"#).is_err());
        let bad_cooler = r#"{
            "platform": {"rows": 1, "cols": 1, "levels": [0.6, 1.3], "t_max_c": 55.0,
                         "cooler": "cryogenic"}
        }"#;
        assert!(analyze_spec(bad_cooler).is_err());
        let orphan_solution = r#"{
            "platform": {"rows": 1, "cols": 1, "levels": [0.6, 1.3], "t_max_c": 55.0},
            "solution": {"throughput": 1.0, "peak": 1.0, "feasible": true}
        }"#;
        assert!(analyze_spec(orphan_solution).is_err());
    }

    #[test]
    fn raw_schedule_defects_reach_the_report() {
        let text = r#"{
            "platform": {"rows": 1, "cols": 1, "levels": [0.6, 1.3], "t_max_c": 55.0},
            "schedule": {"period": 0.1, "cores": [[[0.6, -0.05], [1.3, 0.15]]]}
        }"#;
        let r = analyze_spec(text).unwrap();
        assert!(r.has_code(Code::DurationInvalid));
    }
}
