//! Lints over a recorded `mosc-obs` telemetry stream (`M050`-series).
//!
//! The input is the JSONL that `mosc-cli --obs=json` / `mosc-cli profile
//! --obs=json` print and the bench harness writes to `BENCH_obs.json`: one
//! JSON object per line with a `"type"` discriminator (`span`, `counter`,
//! `gauge`, `hist`, `event`, `meta`, plus the CLI's `profile` headers).
//! Unknown types are skipped so the format can grow without breaking old
//! analyzers.
//!
//! These lints look for *instrumentation and solver anomalies* that the
//! value-level `M0xx` checks cannot see:
//!
//! * `M050` — the stream holds no records at all, which almost always means
//!   the recorder was never enabled (or `reset()` ran before the snapshot).
//! * `M051` — an `ao.m_selected` event with `stop == "cap"`: the m-sweep
//!   ran into the Theorem-5 overhead budget `m == M` instead of converging,
//!   so the reported schedule is overhead-limited.
//! * `M052` — an `exs_bnb.done` event with a sizeable visit count but zero
//!   prunes from either bound.
//! * `M053` — span timing that cannot come from a healthy recorder
//!   (negative totals, `self > total`, calls = 0 with nonzero time).
//! * `M054` — a solver span (`ao.solve` / `pco.solve`) recorded while every
//!   kernel counter (`expm.calls`, `period_map.matmuls`,
//!   `steady_state.calls`) stayed at zero: the solver and kernel layers
//!   disagree about what ran. Since the period-map kernel landed, a healthy
//!   solver run can legitimately show `expm.calls == 0` — the modal
//!   counters move instead. A stream whose successful solves were *all*
//!   cache hits (per the access-log `cached` flag) is exempt: a cache hit
//!   legitimately moves no kernel counter.
//!
//! The `M060`-series covers streams from the `mosc-serve` daemon
//! (`mosc-cli serve --obs=json`), which emits `serve.request` /
//! `serve.response` events (with 32-bit `id`/`key` hashes — event fields
//! travel as JSON numbers, so full 64-bit hashes would not survive the f64
//! round-trip) plus the `serve.*` counters and queue gauges:
//!
//! * `M060` — at least one cache key recurs across `serve.request` events
//!   but `serve.cache_hits` is zero: repeated identical specs never hit the
//!   solution cache.
//! * `M061` — `serve.rejected` counted backpressure rejections while the
//!   `serve.queue_peak` gauge stayed at zero: load was shed from an idle
//!   queue.
//! * `M062` — a `serve.response` event's `id` hash matches no
//!   `serve.request` event in the stream.
//!
//! Lines of type `access`, `hist_snapshot` and `serve_summary` — the
//! daemon's `--access-log` JSONL — dispatch to the [`crate::access`]
//! module's `M070`-series lints, so telemetry streams and access logs run
//! through the same `analyze` entry point.

use crate::diag::{Code, Report};
use crate::json::Value;
use crate::spec::SpecError;

/// Minimum `exs_bnb.done` visit count before zero prunes is suspicious: a
/// search this small can legitimately accept every node.
const BNB_PRUNE_FLOOR: u64 = 50;

/// One parsed line of a JSONL stream: its 1-based line number and the
/// parsed object. The artifact model loads a stream once into these and
/// every stream lint (`M05x`–`M09x`) runs over the same records.
#[derive(Debug, Clone)]
pub struct StreamRecord {
    /// 1-based line number in the source file.
    pub lineno: usize,
    /// The parsed JSON object on that line.
    pub value: Value,
}

/// Parses a JSONL document into stream records, skipping blank lines.
///
/// # Errors
/// [`SpecError`] when a line is not valid JSON or not an object — a
/// truncated or corrupted stream is a structural problem, not a finding.
pub fn load_stream(text: &str) -> Result<Vec<StreamRecord>, SpecError> {
    let mut records = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let lineno = idx + 1;
        let value =
            Value::parse(line).map_err(|e| SpecError(format!("telemetry line {lineno}: {e}")))?;
        if !value.is_object() {
            return Err(SpecError(format!("telemetry line {lineno}: each line must be an object")));
        }
        records.push(StreamRecord { lineno, value });
    }
    Ok(records)
}

/// Analyzes one telemetry JSONL document: the `M05x`–`M07x` stream lints
/// plus the cross-artifact (`M08x`), concurrency/trace (`M09x`) and bench
/// artifact (`M10x`) families, which stay inert on streams lacking the
/// fields they read.
///
/// # Errors
/// [`SpecError`] when a line is not valid JSON or not an object.
pub fn analyze_telemetry(text: &str) -> Result<Report, SpecError> {
    let records = load_stream(text)?;
    let mut report = Report::new();
    stream_lints(&records, &mut report);
    crate::cross::access_log_lints(&records, &mut report);
    crate::trace::trace_lints(&records, &mut report);
    crate::bench::bench_lints(&records, &mut report);
    Ok(report)
}

/// Runs the `M050`–`M073` lints over pre-parsed stream records.
pub fn stream_lints(records: &[StreamRecord], report: &mut Report) {
    let mut kernel_calls: u64 = 0;
    let mut solver_spans: Vec<String> = Vec::new();
    let mut ok_solves = 0usize;
    let mut cached_ok_solves = 0usize;
    let mut serve = ServeStream::default();
    /// Counters whose movement proves the evaluation kernel ran: the dense
    /// `expm` path or the modal period-map path.
    const KERNEL_COUNTERS: [&str; 3] = ["expm.calls", "period_map.matmuls", "steady_state.calls"];

    for rec in records {
        let (value, lineno) = (&rec.value, rec.lineno);
        match value.get("type").and_then(Value::as_str) {
            Some("span") => check_span(value, lineno, report, &mut solver_spans),
            Some("counter")
                if value
                    .get("name")
                    .and_then(Value::as_str)
                    .is_some_and(|n| KERNEL_COUNTERS.contains(&n)) =>
            {
                if let Some(v) = value.get("value").and_then(Value::as_f64) {
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    {
                        kernel_calls += v.max(0.0) as u64;
                    }
                }
            }
            Some("counter") => serve.note_counter(value),
            Some("gauge") => serve.note_gauge(value),
            Some("event") => {
                serve.note_event(value, lineno);
                check_event(value, lineno, report);
            }
            Some("access") => {
                if value.get("op").and_then(Value::as_str) == Some("solve")
                    && value.get("status").and_then(Value::as_str) == Some("ok")
                {
                    ok_solves += 1;
                    if value.get("cached").and_then(Value::as_bool) == Some(true) {
                        cached_ok_solves += 1;
                    }
                }
                crate::access::check_access(value, lineno, report);
            }
            Some("hist_snapshot") => {
                crate::access::check_hist_snapshot(value, lineno, report);
            }
            Some("serve_summary") => {
                crate::access::check_serve_summary(value, lineno, report);
            }
            _ => {} // hist, meta, profile, future types
        }
    }
    serve.finish(report);

    // M054 exemption: if the access log shows every successful solve was a
    // cache hit, zero kernel counters are the expected outcome, not an
    // instrumentation disagreement.
    let all_solves_cached = ok_solves > 0 && ok_solves == cached_ok_solves;
    if records.is_empty() {
        report.push(
            Code::TelemetryEmpty,
            "",
            "telemetry stream holds no records — was the recorder enabled?",
        );
    } else if kernel_calls == 0 && !solver_spans.is_empty() && !all_solves_cached {
        report.push(
            Code::KernelCountersMissing,
            solver_spans[0].clone(),
            format!(
                "solver span '{}' recorded but no kernel counter (expm.calls, \
                 period_map.matmuls, steady_state.calls) ever moved — kernel \
                 instrumentation and solver instrumentation disagree",
                solver_spans[0]
            ),
        );
    }
}

/// Accumulated `serve.*` state for the `M060`-series lints. All fields stay
/// empty/zero for non-serve streams, which keeps the lints inert there.
#[derive(Default)]
struct ServeStream {
    /// `serve.cache_hits` counter value (last wins, the snapshot is final).
    cache_hits: f64,
    /// `serve.rejected` counter value.
    rejected: f64,
    /// `serve.queue_peak` gauge value.
    queue_peak: f64,
    /// Whether the queue-peak gauge appeared at all (a stream without it
    /// cannot support the idle-rejection lint).
    saw_queue_peak: bool,
    /// Cache-key hashes announced by `serve.request` events.
    request_keys: Vec<f64>,
    /// Request-id hashes announced by `serve.request` events.
    request_ids: Vec<f64>,
    /// `(lineno, id hash)` of every `serve.response` event.
    responses: Vec<(usize, f64)>,
}

impl ServeStream {
    fn note_counter(&mut self, value: &Value) {
        let Some(name) = value.get("name").and_then(Value::as_str) else { return };
        let v = value.get("value").and_then(Value::as_f64).unwrap_or(0.0);
        match name {
            "serve.cache_hits" => self.cache_hits = v,
            "serve.rejected" => self.rejected = v,
            _ => {}
        }
    }

    fn note_gauge(&mut self, value: &Value) {
        if value.get("name").and_then(Value::as_str) == Some("serve.queue_peak") {
            self.saw_queue_peak = true;
            self.queue_peak = value.get("value").and_then(Value::as_f64).unwrap_or(0.0);
        }
    }

    fn note_event(&mut self, value: &Value, lineno: usize) {
        let name = value.get("name").and_then(Value::as_str).unwrap_or("");
        let Some(fields) = value.get("fields") else { return };
        match name {
            "serve.request" => {
                if let Some(key) = fields.get("key").and_then(Value::as_f64) {
                    self.request_keys.push(key);
                }
                if let Some(id) = fields.get("id").and_then(Value::as_f64) {
                    self.request_ids.push(id);
                }
            }
            "serve.response" => {
                if let Some(id) = fields.get("id").and_then(Value::as_f64) {
                    self.responses.push((lineno, id));
                }
            }
            _ => {}
        }
    }

    /// Emits the `M060`–`M062` findings accumulated over the stream.
    fn finish(&self, report: &mut Report) {
        // M060: some cache key recurs but the hit counter never moved.
        let mut keys = self.request_keys.clone();
        keys.sort_by(f64::total_cmp);
        let repeated = keys.windows(2).any(|w| w[0].to_bits() == w[1].to_bits());
        if repeated && self.cache_hits == 0.0 {
            report.push(
                Code::ServeCacheInert,
                "",
                "repeated requests with identical cache keys but serve.cache_hits \
                 is zero — the solution cache never fired",
            );
        }
        // M061: rejections counted while the queue-depth peak stayed zero.
        if self.rejected > 0.0 && self.saw_queue_peak && self.queue_peak == 0.0 {
            report.push(
                Code::ServeRejectedIdle,
                "",
                format!(
                    "serve.rejected counted {} backpressure rejection(s) but \
                     serve.queue_peak never left zero — load was shed from an \
                     idle queue",
                    self.rejected
                ),
            );
        }
        // M062: a response id no request ever announced.
        for &(lineno, id) in &self.responses {
            if !self.request_ids.iter().any(|r| r.to_bits() == id.to_bits()) {
                report.push(
                    Code::ServeResponseOrphaned,
                    format!("line {lineno}"),
                    format!(
                        "serve.response event carries id hash {id} that no \
                         serve.request event announced"
                    ),
                );
            }
        }
    }
}

fn check_span(value: &Value, lineno: usize, report: &mut Report, solver_spans: &mut Vec<String>) {
    let path = value.get("path").and_then(Value::as_str).unwrap_or("").to_owned();
    let name = value.get("name").and_then(Value::as_str).unwrap_or("");
    if matches!(name, "ao.solve" | "pco.solve") {
        solver_spans.push(path.clone());
    }
    let total = value.get("total_s").and_then(Value::as_f64);
    let self_time = value.get("self_s").and_then(Value::as_f64);
    let calls = value.get("calls").and_then(Value::as_f64);
    let ctx = if path.is_empty() { format!("line {lineno}") } else { path };
    match (total, self_time, calls) {
        (Some(t), Some(s), Some(c)) => {
            if !(t >= 0.0 && s >= 0.0) {
                report.push(
                    Code::SpanTimingInvalid,
                    ctx,
                    format!("span '{name}' has negative timing (total {t}, self {s})"),
                );
            } else if s > t + 1e-9 {
                report.push(
                    Code::SpanTimingInvalid,
                    ctx,
                    format!("span '{name}' self time {s} exceeds total {t}"),
                );
            } else if c == 0.0 && t > 0.0 {
                report.push(
                    Code::SpanTimingInvalid,
                    ctx,
                    format!("span '{name}' reports zero calls but {t} s of time"),
                );
            }
        }
        _ => report.push(
            Code::SpanTimingInvalid,
            ctx,
            format!("span '{name}' is missing total_s/self_s/calls"),
        ),
    }
}

fn check_event(value: &Value, lineno: usize, report: &mut Report) {
    let name = value.get("name").and_then(Value::as_str).unwrap_or("");
    let Some(fields) = value.get("fields") else {
        return;
    };
    match name {
        "ao.m_selected" => {
            let stop = fields.get("stop").and_then(Value::as_str).unwrap_or("");
            if stop == "cap" {
                let m = fields.get("m").and_then(Value::as_f64).unwrap_or(f64::NAN);
                report.push(
                    Code::AoSweepSaturated,
                    format!("line {lineno}"),
                    format!(
                        "AO stopped its m-sweep at the overhead cap (m = {m}) without \
                         converging — throughput is limited by tau, not by the search"
                    ),
                );
            }
        }
        "exs_bnb.done" => {
            let visited = fields.get("visited").and_then(Value::as_f64).unwrap_or(0.0);
            let prunes = fields.get("thermal_prunes").and_then(Value::as_f64).unwrap_or(0.0)
                + fields.get("throughput_prunes").and_then(Value::as_f64).unwrap_or(0.0);
            #[allow(clippy::cast_precision_loss)]
            if visited >= BNB_PRUNE_FLOOR as f64 && prunes == 0.0 {
                report.push(
                    Code::BnbNoPrunes,
                    format!("line {lineno}"),
                    format!(
                        "EXS-BnB visited {visited} nodes without a single prune — both \
                         bounds were inert on this platform"
                    ),
                );
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stream_is_m050() {
        let r = analyze_telemetry("").unwrap();
        assert!(r.has_code(Code::TelemetryEmpty));
        assert!(r.has_errors());

        let r = analyze_telemetry("\n  \n").unwrap();
        assert!(r.has_code(Code::TelemetryEmpty));
    }

    #[test]
    fn healthy_stream_is_clean() {
        let text = r#"{"type":"span","path":"ao.solve","name":"ao.solve","depth":0,"calls":1,"total_s":0.5,"self_s":0.1}
{"type":"span","path":"ao.solve/ao.sweep_m","name":"ao.sweep_m","depth":1,"calls":1,"total_s":0.4,"self_s":0.4}
{"type":"counter","name":"expm.calls","value":123}
{"type":"counter","name":"ao.tpt_rounds","value":9}
{"type":"event","name":"ao.m_selected","fields":{"m":12,"m_cap":99,"peak":21.5,"stop":"patience"}}
"#;
        let r = analyze_telemetry(text).unwrap();
        assert!(r.is_clean(), "findings:\n{r}");
    }

    #[test]
    fn cap_stop_is_m051() {
        let text = r#"{"type":"counter","name":"expm.calls","value":5}
{"type":"event","name":"ao.m_selected","fields":{"m":99,"m_cap":99,"peak":21.5,"stop":"cap"}}
"#;
        let r = analyze_telemetry(text).unwrap();
        assert!(r.has_code(Code::AoSweepSaturated), "findings:\n{r}");
        assert!(!r.has_errors(), "M051 is a warning:\n{r}");
    }

    #[test]
    fn pruneless_bnb_is_m052_above_the_floor_only() {
        let big = r#"{"type":"event","name":"exs_bnb.done","fields":{"visited":5000,"thermal_prunes":0,"throughput_prunes":0}}
"#;
        let r = analyze_telemetry(big).unwrap();
        assert!(r.has_code(Code::BnbNoPrunes), "findings:\n{r}");

        let small = r#"{"type":"event","name":"exs_bnb.done","fields":{"visited":7,"thermal_prunes":0,"throughput_prunes":0}}
"#;
        let r = analyze_telemetry(small).unwrap();
        assert!(!r.has_code(Code::BnbNoPrunes), "findings:\n{r}");

        let pruned = r#"{"type":"event","name":"exs_bnb.done","fields":{"visited":5000,"thermal_prunes":120,"throughput_prunes":0}}
"#;
        let r = analyze_telemetry(pruned).unwrap();
        assert!(!r.has_code(Code::BnbNoPrunes), "findings:\n{r}");
    }

    #[test]
    fn broken_span_timing_is_m053() {
        for line in [
            r#"{"type":"span","path":"x","name":"x","depth":0,"calls":1,"total_s":0.1,"self_s":0.2}"#,
            r#"{"type":"span","path":"x","name":"x","depth":0,"calls":1,"total_s":-0.1,"self_s":0.0}"#,
            r#"{"type":"span","path":"x","name":"x","depth":0,"calls":0,"total_s":0.1,"self_s":0.1}"#,
            r#"{"type":"span","path":"x","name":"x","depth":0}"#,
        ] {
            let r = analyze_telemetry(line).unwrap();
            assert!(r.has_code(Code::SpanTimingInvalid), "{line} ->\n{r}");
        }
    }

    #[test]
    fn solver_span_without_expm_is_m054() {
        let text = r#"{"type":"span","path":"ao.solve","name":"ao.solve","depth":0,"calls":1,"total_s":0.5,"self_s":0.5}
{"type":"counter","name":"expm.calls","value":0}
"#;
        let r = analyze_telemetry(text).unwrap();
        assert!(r.has_code(Code::KernelCountersMissing), "findings:\n{r}");

        // A non-solver span without expm activity is fine (EXS evaluates
        // through the cached response matrix).
        let text = r#"{"type":"span","path":"exs.solve","name":"exs.solve","depth":0,"calls":1,"total_s":0.5,"self_s":0.5}
"#;
        let r = analyze_telemetry(text).unwrap();
        assert!(!r.has_code(Code::KernelCountersMissing), "findings:\n{r}");

        // A solver whose work runs through the modal period-map kernel
        // legitimately leaves expm.calls at zero — the modal counters count.
        let text = r#"{"type":"span","path":"ao.solve","name":"ao.solve","depth":0,"calls":1,"total_s":0.5,"self_s":0.5}
{"type":"counter","name":"expm.calls","value":0}
{"type":"counter","name":"period_map.matmuls","value":42}
"#;
        let r = analyze_telemetry(text).unwrap();
        assert!(!r.has_code(Code::KernelCountersMissing), "findings:\n{r}");
    }

    #[test]
    fn all_cached_solves_suppress_m054() {
        // A solver span with zero kernel counters, but the access log shows
        // the only successful solve was a cache hit: no M054.
        let cached = r#"{"type":"span","path":"ao.solve","name":"ao.solve","depth":0,"calls":1,"total_s":0.5,"self_s":0.5}
{"type":"counter","name":"expm.calls","value":0}
{"type":"access","t_s":1.0,"id":"s1","op":"solve","solver":"ao","status":"ok","cached":true,"queue_wait_s":0.0,"service_s":0.001,"total_s":0.001,"deadline_slack_s":null,"expm_calls":0,"period_map_matmuls":0,"steady_state_calls":0,"linalg_matmuls":0}
"#;
        let r = analyze_telemetry(cached).unwrap();
        assert!(!r.has_code(Code::KernelCountersMissing), "findings:\n{r}");

        // The same stream with the solve *not* cached keeps the finding.
        let uncached = cached.replace(r#""cached":true"#, r#""cached":false"#);
        let r = analyze_telemetry(&uncached).unwrap();
        assert!(r.has_code(Code::KernelCountersMissing), "findings:\n{r}");
    }

    #[test]
    fn inert_serve_cache_is_m060() {
        // Two requests with the same key, zero hits -> M060.
        let text = r#"{"type":"counter","name":"serve.cache_hits","value":0}
{"type":"event","name":"serve.request","fields":{"id":1,"key":77}}
{"type":"event","name":"serve.request","fields":{"id":2,"key":77}}
{"type":"event","name":"serve.response","fields":{"id":1}}
{"type":"event","name":"serve.response","fields":{"id":2}}
"#;
        let r = analyze_telemetry(text).unwrap();
        assert!(r.has_code(Code::ServeCacheInert), "findings:\n{r}");
        assert!(!r.has_errors(), "M060 is a warning:\n{r}");

        // Same stream with a hit counted is clean.
        let text =
            text.replace(r#""serve.cache_hits","value":0"#, r#""serve.cache_hits","value":1"#);
        let r = analyze_telemetry(&text).unwrap();
        assert!(!r.has_code(Code::ServeCacheInert), "findings:\n{r}");

        // Distinct keys with zero hits: nothing to hit, clean.
        let text = r#"{"type":"counter","name":"serve.cache_hits","value":0}
{"type":"event","name":"serve.request","fields":{"id":1,"key":77}}
{"type":"event","name":"serve.request","fields":{"id":2,"key":78}}
"#;
        let r = analyze_telemetry(text).unwrap();
        assert!(!r.has_code(Code::ServeCacheInert), "findings:\n{r}");
    }

    #[test]
    fn rejections_from_an_idle_queue_are_m061() {
        let text = r#"{"type":"counter","name":"serve.rejected","value":3}
{"type":"gauge","name":"serve.queue_peak","value":0}
"#;
        let r = analyze_telemetry(text).unwrap();
        assert!(r.has_code(Code::ServeRejectedIdle), "findings:\n{r}");

        // Rejections with a nonzero peak are legitimate backpressure.
        let text = r#"{"type":"counter","name":"serve.rejected","value":3}
{"type":"gauge","name":"serve.queue_peak","value":4}
"#;
        let r = analyze_telemetry(text).unwrap();
        assert!(!r.has_code(Code::ServeRejectedIdle), "findings:\n{r}");

        // No queue gauge at all: the lint cannot conclude anything.
        let text = r#"{"type":"counter","name":"serve.rejected","value":3}
"#;
        let r = analyze_telemetry(text).unwrap();
        assert!(!r.has_code(Code::ServeRejectedIdle), "findings:\n{r}");
    }

    #[test]
    fn orphaned_responses_are_m062() {
        let text = r#"{"type":"event","name":"serve.request","fields":{"id":10,"key":1}}
{"type":"event","name":"serve.response","fields":{"id":10}}
{"type":"event","name":"serve.response","fields":{"id":99}}
"#;
        let r = analyze_telemetry(text).unwrap();
        assert!(r.has_code(Code::ServeResponseOrphaned), "findings:\n{r}");
        // Exactly one finding: the matched response is fine.
        let orphans =
            r.diagnostics().iter().filter(|d| d.code == Code::ServeResponseOrphaned).count();
        assert_eq!(orphans, 1, "findings:\n{r}");
    }

    #[test]
    fn unknown_types_are_skipped_and_garbage_is_structural() {
        let text = r#"{"type":"profile","solver":"AO","wall_s":0.1}
{"type":"flamegraph","someday":true}
"#;
        let r = analyze_telemetry(text).unwrap();
        assert!(r.is_clean(), "findings:\n{r}");

        assert!(analyze_telemetry("not json\n").is_err());
        assert!(analyze_telemetry("[1,2,3]\n").is_err());
    }
}
