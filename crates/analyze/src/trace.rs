//! Concurrency and trace invariants (`M090`- and `M120`-series) over the
//! serve access log's per-request lifecycle fields and the distributed-
//! tracing artifacts that join against it.
//!
//! The daemon stamps every access line with the four phase timestamps
//! (`t_recv_s`, `t_enqueue_s`, `t_dequeue_s`, `t_done_s`, all relative to
//! server start on one monotone clock), the connection id and per-connection
//! sequence number (`conn`, `seq`), and — for slow requests — a span tree
//! with depths. These lints check what single-line `M070` checks cannot:
//!
//! * `M090` — the pipeline order `recv ≤ enqueue ≤ dequeue ≤ done` is
//!   violated. All four derive from one monotone clock, so no epsilon.
//! * `M091` — a span tree is malformed: a nested path with no parent span,
//!   a child whose total exceeds its parent's, a duplicated path, or a
//!   recorded depth disagreeing with the path's nesting. Entries carrying
//!   `spans_truncated` skip the orphan check — the parent may be in the cut.
//! * `M092` — phase accounting does not sum: `queue_wait_s`, `service_s`,
//!   or `total_s` disagree with the corresponding timestamp differences.
//! * `M093` — per-connection sequence numbers repeat, or receive times go
//!   backwards as sequence numbers increase: one connection's lines are
//!   read sequentially by one reader thread, so both are monotone.
//!
//! The `M120`-series checks the distributed-trace identity the v2 protocol
//! threads through every artifact:
//!
//! * `M120` — a trace identity triple is malformed or partial (`trace_id`
//!   must be 32 nonzero lowercase hex digits, `span_id` 16, `parent_id`
//!   null or 16).
//! * `M121` — one span id appears on two entries of the same trace, or an
//!   entry is its own parent.
//! * `M122` — the variants of one `solve_batch` do not share one
//!   `trace_id` and one dispatch-span `parent_id`.
//! * `M123` — a `flight_dump` ring snapshot's accounting is broken
//!   (non-monotone entry seqs, seq at or past `head`, wrong `dropped`,
//!   more entries than the ring could hold).
//! * `M124` — a `hist_snapshot` exemplar's trace id joins no access entry
//!   in the same log (warning: exemplars are last-writer-wins).
//!
//! Every lint is inert on records lacking the fields it reads, so logs from
//! older builds analyze cleanly.

use crate::diag::{Code, Report};
use crate::json::Value;
use crate::telemetry::StreamRecord;
use std::collections::{HashMap, HashSet};

/// Slack on phase-accounting sums: the daemon computes the durations from
/// the same Instants it logs, so only f64 rounding can separate them.
const PHASE_SUM_EPS: f64 = 1e-6;

/// Per-dispatch bookkeeping for M122: each distinct `(trace_id,
/// parent_id)` identity seen on a batch's variant entries, keyed to the
/// first line that carried it.
type BatchIdentities = HashMap<(String, Option<String>), usize>;

/// Runs the `M090`–`M093` and `M120`–`M124` lints over pre-parsed stream
/// records.
pub fn trace_lints(records: &[StreamRecord], report: &mut Report) {
    // conn -> [(seq, t_recv_s, lineno)]
    let mut conns: HashMap<u64, Vec<(u64, f64, usize)>> = HashMap::new();
    // trace_id -> span_id -> first lineno (M121 duplicate-span detection).
    let mut spans_by_trace: HashMap<String, HashMap<String, usize>> = HashMap::new();
    // (conn, batch id) -> distinct (trace_id, parent_id) -> first lineno.
    let mut batches: HashMap<(u64, String), BatchIdentities> = HashMap::new();
    // Trace ids seen on well-formed access entries (the M124 join target).
    let mut access_traces: HashSet<String> = HashSet::new();
    // (exemplar trace id, histogram name, lineno) awaiting the join check.
    let mut exemplars: Vec<(String, String, usize)> = Vec::new();

    for rec in records {
        let v = &rec.value;
        match v.get("type").and_then(Value::as_str) {
            Some("access") => {}
            Some("flight_dump") => {
                check_flight_dump(v, &format!("line {}", rec.lineno), report);
                continue;
            }
            Some("hist_snapshot") => {
                let name = v.get("name").and_then(Value::as_str).unwrap_or("?");
                for e in v.get("exemplars").and_then(Value::as_array).unwrap_or(&[]) {
                    if let Some(t) = e.get("trace_id").and_then(Value::as_str) {
                        exemplars.push((t.to_owned(), name.to_owned(), rec.lineno));
                    }
                }
                continue;
            }
            _ => continue,
        }
        let id = v.get("id").and_then(Value::as_str).unwrap_or("?");
        let ctx = format!("line {} (id {id})", rec.lineno);

        // --- M120/M121/M122 bookkeeping: trace identity --------------------
        if let Some((trace_id, span_id, parent_id)) = check_trace_identity(v, &ctx, report) {
            access_traces.insert(trace_id.clone());
            if parent_id.as_deref() == Some(span_id.as_str()) {
                report.push(
                    Code::TraceSpanConflict,
                    ctx.clone(),
                    format!("span {span_id} of trace {trace_id} claims to be its own parent"),
                );
            }
            let trace_spans = spans_by_trace.entry(trace_id.clone()).or_default();
            if let Some(&first) = trace_spans.get(&span_id) {
                report.push(
                    Code::TraceSpanConflict,
                    ctx.clone(),
                    format!(
                        "span id {span_id} of trace {trace_id} already appeared on \
                         line {first} — server spans are minted fresh per request"
                    ),
                );
            } else {
                trace_spans.insert(span_id, rec.lineno);
            }
            if let Some(batch) = v.get("batch").and_then(Value::as_str) {
                let conn = v.get("conn").and_then(Value::as_usize).unwrap_or(0) as u64;
                batches
                    .entry((conn, batch.to_owned()))
                    .or_default()
                    .entry((trace_id, parent_id))
                    .or_insert(rec.lineno);
            }
        }
        let ts = |key: &str| v.get(key).and_then(Value::as_f64);
        let (recv, enq, deq, done) =
            (ts("t_recv_s"), ts("t_enqueue_s"), ts("t_dequeue_s"), ts("t_done_s"));

        // --- M090: timestamp ordering --------------------------------------
        if let (Some(recv), Some(enq), Some(deq), Some(done)) = (recv, enq, deq, done) {
            let phases = [("recv", recv), ("enqueue", enq), ("dequeue", deq), ("done", done)];
            for w in phases.windows(2) {
                if w[0].1 > w[1].1 {
                    report.push(
                        Code::TimestampOrder,
                        ctx.clone(),
                        format!(
                            "t_{}_s = {} comes after t_{}_s = {} — the request pipeline \
                             is recv ≤ enqueue ≤ dequeue ≤ done on one monotone clock",
                            w[0].0, w[0].1, w[1].0, w[1].1
                        ),
                    );
                }
            }

            // --- M092: phase accounting sums to the timestamp deltas -------
            let sums =
                [("queue_wait_s", deq - enq), ("service_s", done - deq), ("total_s", done - recv)];
            for (field, expect) in sums {
                if let Some(got) = ts(field) {
                    if (got - expect).abs() > PHASE_SUM_EPS {
                        report.push(
                            Code::PhaseAccounting,
                            ctx.clone(),
                            format!(
                                "{field} = {got} but the phase timestamps imply {expect} — \
                                 queue-wait accounting does not sum"
                            ),
                        );
                    }
                }
            }
        }

        // --- M093 bookkeeping ---------------------------------------------
        if let (Some(conn), Some(seq), Some(recv)) =
            (v.get("conn").and_then(Value::as_usize), v.get("seq").and_then(Value::as_usize), recv)
        {
            conns.entry(conn as u64).or_default().push((seq as u64, recv, rec.lineno));
        }

        // --- M091: span-tree well-formedness -------------------------------
        if let Some(spans) = v.get("spans").and_then(Value::as_array) {
            let truncated =
                v.get("spans_truncated").and_then(Value::as_f64).is_some_and(|n| n > 0.0);
            check_span_tree(spans, truncated, &ctx, report);
        }
    }

    // --- M093: per-connection monotonicity --------------------------------
    for (conn, mut entries) in conns {
        entries.sort_by_key(|&(seq, _, _)| seq);
        for w in entries.windows(2) {
            let ((s0, t0, _), (s1, t1, l1)) = (w[0], w[1]);
            if s0 == s1 {
                report.push(
                    Code::SeqNonMonotonic,
                    format!("line {l1}"),
                    format!("connection {conn} logged sequence number {s1} twice"),
                );
            } else if t1 < t0 {
                report.push(
                    Code::SeqNonMonotonic,
                    format!("line {l1}"),
                    format!(
                        "connection {conn}: seq {s1} was received at {t1} s, before \
                         seq {s0} at {t0} s — one reader thread reads a connection \
                         in order"
                    ),
                );
            }
        }
    }

    // --- M122: batch variants share one dispatch trace --------------------
    for ((conn, batch), traces) in batches {
        if traces.len() > 1 {
            let mut where_seen: Vec<String> = traces
                .iter()
                .map(|((t, p), line)| {
                    format!("line {line}: trace {t} parent {}", p.as_deref().unwrap_or("null"))
                })
                .collect();
            where_seen.sort();
            report.push(
                Code::BatchTraceDisagreement,
                format!("batch {batch} (conn {conn})"),
                format!(
                    "the variants of one solve_batch must share one trace id and one \
                     dispatch-span parent, but {} distinct identities appear: {}",
                    traces.len(),
                    where_seen.join("; ")
                ),
            );
        }
    }

    // --- M124: exemplars join the access log ------------------------------
    // Only meaningful when the log carries traced access entries at all; a
    // histogram-only artifact has nothing to join against.
    if !access_traces.is_empty() {
        for (trace_id, name, lineno) in exemplars {
            if !access_traces.contains(&trace_id) {
                report.push(
                    Code::ExemplarUnjoined,
                    format!("line {lineno}"),
                    format!(
                        "histogram '{name}' exemplar points at trace {trace_id}, which \
                         no access entry in this log carries"
                    ),
                );
            }
        }
    }
}

/// Validates one access entry's trace identity triple (`M120`) and returns
/// it when well-formed. Entries with none of the three members are legacy
/// logs and stay inert.
fn check_trace_identity(
    v: &Value,
    ctx: &str,
    report: &mut Report,
) -> Option<(String, String, Option<String>)> {
    let (t, s, p) = (v.get("trace_id"), v.get("span_id"), v.get("parent_id"));
    if t.is_none() && s.is_none() && p.is_none() {
        return None;
    }
    let mut ok = true;
    let mut id_of = |member: Option<&Value>, name: &str, digits: usize| -> Option<String> {
        match member {
            Some(Value::String(hex)) if well_formed_hex(hex, digits) => Some(hex.clone()),
            Some(Value::String(hex)) => {
                ok = false;
                report.push(
                    Code::TraceFieldMalformed,
                    ctx.to_owned(),
                    format!("{name} '{hex}' is not {digits} nonzero lowercase hex digits"),
                );
                None
            }
            Some(_) => {
                ok = false;
                report.push(
                    Code::TraceFieldMalformed,
                    ctx.to_owned(),
                    format!("{name} must be a hex string"),
                );
                None
            }
            None => {
                ok = false;
                report.push(
                    Code::TraceFieldMalformed,
                    ctx.to_owned(),
                    format!("trace identity is partial: '{name}' is missing"),
                );
                None
            }
        }
    };
    let trace_id = id_of(t, "trace_id", 32);
    let span_id = id_of(s, "span_id", 16);
    let parent_id = match p {
        Some(Value::Null) => None,
        other => id_of(other, "parent_id", 16),
    };
    match (trace_id, span_id) {
        (Some(t), Some(s)) if ok => Some((t, s, parent_id)),
        _ => None,
    }
}

/// `true` when `hex` is exactly `digits` lowercase hex digits and nonzero.
fn well_formed_hex(hex: &str, digits: usize) -> bool {
    hex.len() == digits
        && hex.bytes().all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
        && hex.bytes().any(|b| b != b'0')
}

/// Checks one `flight_dump` line's ring accounting (`M123`): the snapshot
/// protocol guarantees strictly increasing sequence numbers below `head`,
/// `dropped == max(0, head − capacity)`, and no more entries than the ring
/// could hold.
fn check_flight_dump(v: &Value, ctx: &str, report: &mut Report) {
    let num = |key: &str| v.get(key).and_then(Value::as_f64);
    let (Some(head), Some(capacity), Some(dropped)) =
        (num("head"), num("capacity"), num("dropped"))
    else {
        report.push(
            Code::FlightDumpBroken,
            ctx.to_owned(),
            "flight dump lacks head/capacity/dropped accounting",
        );
        return;
    };
    let expect_dropped = (head - capacity).max(0.0);
    if (dropped - expect_dropped).abs() > 0.5 {
        report.push(
            Code::FlightDumpBroken,
            ctx.to_owned(),
            format!(
                "dropped = {dropped} but head {head} over capacity {capacity} \
                 implies {expect_dropped}"
            ),
        );
    }
    let entries = v.get("entries").and_then(Value::as_array).unwrap_or(&[]);
    let torn = num("torn").unwrap_or(0.0);
    #[allow(clippy::cast_precision_loss)]
    let held = entries.len() as f64 + torn;
    if held > head.min(capacity) + 0.5 {
        report.push(
            Code::FlightDumpBroken,
            ctx.to_owned(),
            format!(
                "{} entries plus {torn} torn exceed the {} slots the ring \
                 could hold (head {head}, capacity {capacity})",
                entries.len(),
                head.min(capacity)
            ),
        );
    }
    let mut prev: Option<f64> = None;
    for e in entries {
        let Some(seq) = e.get("seq").and_then(Value::as_f64) else {
            report.push(Code::FlightDumpBroken, ctx.to_owned(), "flight entry lacks a seq");
            continue;
        };
        if seq >= head {
            report.push(
                Code::FlightDumpBroken,
                ctx.to_owned(),
                format!("flight entry seq {seq} is at or past head {head}"),
            );
        }
        if prev.is_some_and(|p| seq <= p) {
            report.push(
                Code::FlightDumpBroken,
                ctx.to_owned(),
                format!(
                    "flight entry seqs must strictly increase, got {seq} after {}",
                    prev.unwrap_or(0.0)
                ),
            );
        }
        prev = Some(seq);
    }
}

fn check_span_tree(spans: &[Value], truncated: bool, ctx: &str, report: &mut Report) {
    let mut totals: HashMap<&str, f64> = HashMap::new();
    for s in spans {
        let Some(path) = s.get("path").and_then(Value::as_str) else { continue };
        let total = s.get("total_s").and_then(Value::as_f64).unwrap_or(0.0);
        if totals.insert(path, total).is_some() {
            report.push(
                Code::SpanTreeMalformed,
                ctx.to_owned(),
                format!("span path '{path}' appears twice in one trace"),
            );
        }
        if let Some(depth) = s.get("depth").and_then(Value::as_usize) {
            let nesting = path.matches('/').count();
            if depth != nesting {
                report.push(
                    Code::SpanTreeMalformed,
                    ctx.to_owned(),
                    format!(
                        "span '{path}' records depth {depth} but its path nests \
                         {nesting} level(s)"
                    ),
                );
            }
        }
    }
    for s in spans {
        let Some(path) = s.get("path").and_then(Value::as_str) else { continue };
        let Some((parent, _)) = path.rsplit_once('/') else { continue };
        match totals.get(parent) {
            // A truncated span list may have cut the parent: the orphan
            // check only holds on complete trees.
            None if truncated => {}
            None => report.push(
                Code::SpanTreeMalformed,
                ctx.to_owned(),
                format!("span '{path}' has no parent span '{parent}' in the trace"),
            ),
            Some(&parent_total) => {
                let child_total = s.get("total_s").and_then(Value::as_f64).unwrap_or(0.0);
                if child_total > parent_total + 1e-9 {
                    report.push(
                        Code::SpanTreeMalformed,
                        ctx.to_owned(),
                        format!(
                            "span '{path}' total {child_total} s exceeds its parent \
                             '{parent}' total {parent_total} s"
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::load_stream;

    /// A pristine access line with the full v2 lifecycle and trace fields.
    const PRISTINE: &str = r#"{"type":"access","t_s":2.0,"id":"s1","op":"solve","solver":"ao","status":"ok","cached":false,"conn":1,"seq":0,"key":"00000000deadbeef","trace_id":"0123456789abcdef0123456789abcdef","span_id":"00000000000000a1","parent_id":null,"t_recv_s":1.0,"t_enqueue_s":1.001,"t_dequeue_s":1.005,"t_done_s":1.105,"queue_wait_s":0.004,"service_s":0.1,"total_s":0.105,"spans":[{"path":"ao.solve","calls":1,"total_s":0.09,"self_s":0.01,"depth":0},{"path":"ao.solve/ao.sweep_m","calls":1,"total_s":0.08,"self_s":0.08,"depth":1}]}"#;

    fn lint(text: &str) -> Report {
        let mut r = Report::new();
        trace_lints(&load_stream(text).unwrap(), &mut r);
        r
    }

    #[test]
    fn pristine_line_is_clean() {
        let r = lint(PRISTINE);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn timestamp_inversion_is_m090() {
        // dequeue before enqueue
        let bad = PRISTINE.replace(r#""t_dequeue_s":1.005"#, r#""t_dequeue_s":0.9"#);
        let r = lint(&bad);
        assert!(r.has_code(Code::TimestampOrder), "{r}");
        assert!(r.has_errors());

        // done before recv
        let bad = PRISTINE.replace(r#""t_done_s":1.105"#, r#""t_done_s":0.5"#);
        assert!(lint(&bad).has_code(Code::TimestampOrder));
    }

    #[test]
    fn accounting_mismatch_is_m092() {
        for (field, forged) in [
            (r#""queue_wait_s":0.004"#, r#""queue_wait_s":0.4"#),
            (r#""service_s":0.1"#, r#""service_s":0.9"#),
            (r#""total_s":0.105"#, r#""total_s":9.0"#),
        ] {
            let bad = PRISTINE.replace(field, forged);
            let r = lint(&bad);
            assert!(r.has_code(Code::PhaseAccounting), "{field}:\n{r}");
        }
    }

    #[test]
    fn span_tree_defects_are_m091() {
        // Orphan child: rename the root away.
        let bad = PRISTINE.replace(
            r#""path":"ao.solve","calls":1,"total_s":0.09"#,
            r#""path":"other.root","calls":1,"total_s":0.09"#,
        );
        assert!(lint(&bad).has_code(Code::SpanTreeMalformed), "orphan");

        // Child total exceeding the parent's.
        let bad = PRISTINE.replace(r#""total_s":0.08"#, r#""total_s":0.5"#);
        assert!(lint(&bad).has_code(Code::SpanTreeMalformed), "child > parent");

        // Duplicate path.
        let bad = PRISTINE.replace(
            r#"{"path":"ao.solve/ao.sweep_m","calls":1,"total_s":0.08,"self_s":0.08,"depth":1}"#,
            r#"{"path":"ao.solve","calls":1,"total_s":0.01,"self_s":0.01,"depth":0}"#,
        );
        assert!(lint(&bad).has_code(Code::SpanTreeMalformed), "duplicate");

        // Depth disagreeing with the path.
        let bad = PRISTINE.replace(r#""self_s":0.08,"depth":1"#, r#""self_s":0.08,"depth":3"#);
        assert!(lint(&bad).has_code(Code::SpanTreeMalformed), "depth");
    }

    #[test]
    fn per_connection_seq_defects_are_m093() {
        let second = PRISTINE
            .replace(r#""seq":0"#, r#""seq":1"#)
            .replace(r#""id":"s1""#, r#""id":"s2""#)
            .replace(r#""span_id":"00000000000000a1""#, r#""span_id":"00000000000000a2""#)
            .replace(r#""t_recv_s":1.0"#, r#""t_recv_s":1.2"#)
            .replace(r#""t_enqueue_s":1.001"#, r#""t_enqueue_s":1.201"#)
            .replace(r#""t_dequeue_s":1.005"#, r#""t_dequeue_s":1.205"#)
            .replace(r#""t_done_s":1.105"#, r#""t_done_s":1.305"#);
        let good = format!("{PRISTINE}\n{second}\n");
        assert!(lint(&good).is_clean(), "{}", lint(&good));

        // Duplicate seq on one connection.
        let dup = second.replace(r#""seq":1"#, r#""seq":0"#);
        let r = lint(&format!("{PRISTINE}\n{dup}\n"));
        assert!(r.has_code(Code::SeqNonMonotonic), "{r}");

        // Receive time regressing as seq increases.
        let regress = second.replace(r#""t_recv_s":1.2"#, r#""t_recv_s":0.2"#);
        let r = lint(&format!("{PRISTINE}\n{regress}\n"));
        assert!(r.has_code(Code::SeqNonMonotonic), "{r}");

        // Same seq on a *different* connection is fine.
        let other_conn = second.replace(r#""conn":1,"seq":1"#, r#""conn":2,"seq":0"#);
        let r = lint(&format!("{PRISTINE}\n{other_conn}\n"));
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn old_logs_without_lifecycle_fields_are_inert() {
        let legacy = r#"{"type":"access","t_s":1.0,"id":"s1","op":"solve","solver":"ao","status":"ok","cached":false,"queue_wait_s":0.0,"service_s":0.1,"total_s":0.1}"#;
        let r = lint(legacy);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn malformed_trace_identity_is_m120() {
        // Uppercase hex.
        let bad = PRISTINE
            .replace("0123456789abcdef0123456789abcdef", "0123456789ABCDEF0123456789ABCDEF");
        assert!(lint(&bad).has_code(Code::TraceFieldMalformed), "uppercase");

        // All-zero trace id.
        let bad = PRISTINE
            .replace("0123456789abcdef0123456789abcdef", "00000000000000000000000000000000");
        assert!(lint(&bad).has_code(Code::TraceFieldMalformed), "zero");

        // Wrong width.
        let bad = PRISTINE.replace(r#""span_id":"00000000000000a1""#, r#""span_id":"a1""#);
        assert!(lint(&bad).has_code(Code::TraceFieldMalformed), "width");

        // Partial identity: span_id present without trace_id.
        let bad = PRISTINE.replace(r#""trace_id":"0123456789abcdef0123456789abcdef","#, "");
        assert!(lint(&bad).has_code(Code::TraceFieldMalformed), "partial");

        // Wrong JSON type.
        let bad = PRISTINE.replace(r#""span_id":"00000000000000a1""#, r#""span_id":161"#);
        assert!(lint(&bad).has_code(Code::TraceFieldMalformed), "type");
    }

    #[test]
    fn span_conflicts_are_m121() {
        // Two entries of one trace reusing one span id.
        let second =
            PRISTINE.replace(r#""id":"s1""#, r#""id":"s2""#).replace(r#""seq":0"#, r#""seq":1"#);
        let r = lint(&format!("{PRISTINE}\n{second}\n"));
        assert!(r.has_code(Code::TraceSpanConflict), "{r}");

        // An entry that is its own parent.
        let own = PRISTINE.replace(r#""parent_id":null"#, r#""parent_id":"00000000000000a1""#);
        let r = lint(&own);
        assert!(r.has_code(Code::TraceSpanConflict), "{r}");

        // The same span id on a *different* trace is fine.
        let other_trace = PRISTINE
            .replace(r#""id":"s1""#, r#""id":"s2""#)
            .replace(r#""seq":0"#, r#""seq":1"#)
            .replace("0123456789abcdef0123456789abcdef", "fedcba9876543210fedcba9876543210");
        let r = lint(&format!("{PRISTINE}\n{other_trace}\n"));
        assert!(r.is_clean(), "{r}");
    }

    /// A batch access entry: one variant of batch `b1` on conn 1.
    fn batch_line(id: &str, seq: u64, trace: &str, span: &str, parent: &str) -> String {
        format!(
            r#"{{"type":"access","t_s":2.0,"id":"{id}","op":"solve_batch","solver":"ao","status":"ok","cached":false,"conn":1,"seq":{seq},"batch":"b1","trace_id":"{trace}","span_id":"{span}","parent_id":"{parent}","t_recv_s":1.0,"t_enqueue_s":1.001,"t_dequeue_s":1.005,"t_done_s":1.105,"queue_wait_s":0.004,"service_s":0.1,"total_s":0.105}}"#
        )
    }

    #[test]
    fn batch_trace_disagreement_is_m122() {
        const T1: &str = "0123456789abcdef0123456789abcdef";
        const T2: &str = "fedcba9876543210fedcba9876543210";
        // Two variants sharing the dispatch span: clean.
        let agree = format!(
            "{}\n{}\n",
            batch_line("b1#0", 0, T1, "00000000000000b1", "00000000000000d1"),
            batch_line("b1#1", 1, T1, "00000000000000b2", "00000000000000d1"),
        );
        assert!(lint(&agree).is_clean(), "{}", lint(&agree));

        // A variant on a different trace id: M122.
        let disagree = format!(
            "{}\n{}\n",
            batch_line("b1#0", 0, T1, "00000000000000b1", "00000000000000d1"),
            batch_line("b1#1", 1, T2, "00000000000000b2", "00000000000000d1"),
        );
        assert!(lint(&disagree).has_code(Code::BatchTraceDisagreement), "{}", lint(&disagree));

        // A variant hanging off a different dispatch span: M122.
        let forked = format!(
            "{}\n{}\n",
            batch_line("b1#0", 0, T1, "00000000000000b1", "00000000000000d1"),
            batch_line("b1#1", 1, T1, "00000000000000b2", "00000000000000d2"),
        );
        assert!(lint(&forked).has_code(Code::BatchTraceDisagreement), "{}", lint(&forked));
    }

    #[test]
    fn broken_flight_dumps_are_m123() {
        const DUMP: &str = r#"{"type":"flight_dump","reason":"deadline","t_s":3.0,"head":6,"capacity":4,"dropped":2,"torn":0,"entries":[{"seq":2,"t_us":10,"kind":"recv","trace_id":"0123456789abcdef0123456789abcdef","span_id":"00000000000000a1","value":0},{"seq":3,"t_us":20,"kind":"done","trace_id":"0123456789abcdef0123456789abcdef","span_id":"00000000000000a1","value":5}]}"#;
        assert!(lint(DUMP).is_clean(), "{}", lint(DUMP));

        // Wrong dropped accounting.
        let bad = DUMP.replace(r#""dropped":2"#, r#""dropped":0"#);
        assert!(lint(&bad).has_code(Code::FlightDumpBroken), "dropped");

        // Non-increasing entry seqs.
        let bad = DUMP.replace(r#""seq":3"#, r#""seq":2"#);
        assert!(lint(&bad).has_code(Code::FlightDumpBroken), "seq order");

        // Entry seq at or past head.
        let bad = DUMP.replace(r#""seq":3"#, r#""seq":6"#);
        assert!(lint(&bad).has_code(Code::FlightDumpBroken), "seq >= head");

        // More entries than the ring holds.
        let bad = DUMP.replace(r#""torn":0"#, r#""torn":9"#);
        assert!(lint(&bad).has_code(Code::FlightDumpBroken), "overfull");

        // Missing accounting members entirely.
        let bad = DUMP.replace(r#""head":6,"capacity":4,"dropped":2,"#, "");
        assert!(lint(&bad).has_code(Code::FlightDumpBroken), "missing accounting");
    }

    #[test]
    fn unjoined_exemplars_are_m124_warnings() {
        const SNAP: &str = r#"{"type":"hist_snapshot","t_s":4.0,"name":"solve_total","exemplars":[{"le":0.25,"trace_id":"0123456789abcdef0123456789abcdef","value":0.2}]}"#;
        // Exemplar joins the pristine access line's trace: clean.
        let joined = format!("{PRISTINE}\n{SNAP}\n");
        assert!(lint(&joined).is_clean(), "{}", lint(&joined));

        // Exemplar pointing at a trace no access entry carries: M124 warning.
        let orphan =
            SNAP.replace("0123456789abcdef0123456789abcdef", "fedcba9876543210fedcba9876543210");
        let r = lint(&format!("{PRISTINE}\n{orphan}\n"));
        assert!(r.has_code(Code::ExemplarUnjoined), "{r}");
        assert!(!r.has_errors(), "M124 is a warning:\n{r}");

        // A histogram-only artifact has nothing to join against: inert.
        let alone = lint(&orphan);
        assert!(alone.is_clean(), "{alone}");
    }

    #[test]
    fn truncated_span_lists_skip_the_orphan_check() {
        // Drop the root span and mark the list truncated: the parent may be
        // in the cut, so no M091.
        let cut = PRISTINE
            .replace(r#"{"path":"ao.solve","calls":1,"total_s":0.09,"self_s":0.01,"depth":0},"#, "")
            .replace(r#""spans":["#, r#""spans_truncated":3,"spans":["#);
        let r = lint(&cut);
        assert!(r.is_clean(), "{r}");

        // Without the marker the same cut is an orphan.
        let orphan = cut.replace(r#""spans_truncated":3,"#, "");
        assert!(lint(&orphan).has_code(Code::SpanTreeMalformed));
    }
}
