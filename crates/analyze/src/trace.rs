//! Concurrency and trace invariants (`M090`-series) over the serve access
//! log's per-request lifecycle fields.
//!
//! The daemon stamps every access line with the four phase timestamps
//! (`t_recv_s`, `t_enqueue_s`, `t_dequeue_s`, `t_done_s`, all relative to
//! server start on one monotone clock), the connection id and per-connection
//! sequence number (`conn`, `seq`), and — for slow requests — a span tree
//! with depths. These lints check what single-line `M070` checks cannot:
//!
//! * `M090` — the pipeline order `recv ≤ enqueue ≤ dequeue ≤ done` is
//!   violated. All four derive from one monotone clock, so no epsilon.
//! * `M091` — a span tree is malformed: a nested path with no parent span,
//!   a child whose total exceeds its parent's, a duplicated path, or a
//!   recorded depth disagreeing with the path's nesting.
//! * `M092` — phase accounting does not sum: `queue_wait_s`, `service_s`,
//!   or `total_s` disagree with the corresponding timestamp differences.
//! * `M093` — per-connection sequence numbers repeat, or receive times go
//!   backwards as sequence numbers increase: one connection's lines are
//!   read sequentially by one reader thread, so both are monotone.
//!
//! Every lint is inert on records lacking the fields it reads, so logs from
//! older builds analyze cleanly.

use crate::diag::{Code, Report};
use crate::json::Value;
use crate::telemetry::StreamRecord;
use std::collections::HashMap;

/// Slack on phase-accounting sums: the daemon computes the durations from
/// the same Instants it logs, so only f64 rounding can separate them.
const PHASE_SUM_EPS: f64 = 1e-6;

/// Runs the `M090`–`M093` lints over pre-parsed stream records.
pub fn trace_lints(records: &[StreamRecord], report: &mut Report) {
    // conn -> [(seq, t_recv_s, lineno)]
    let mut conns: HashMap<u64, Vec<(u64, f64, usize)>> = HashMap::new();

    for rec in records {
        let v = &rec.value;
        if v.get("type").and_then(Value::as_str) != Some("access") {
            continue;
        }
        let id = v.get("id").and_then(Value::as_str).unwrap_or("?");
        let ctx = format!("line {} (id {id})", rec.lineno);
        let ts = |key: &str| v.get(key).and_then(Value::as_f64);
        let (recv, enq, deq, done) =
            (ts("t_recv_s"), ts("t_enqueue_s"), ts("t_dequeue_s"), ts("t_done_s"));

        // --- M090: timestamp ordering --------------------------------------
        if let (Some(recv), Some(enq), Some(deq), Some(done)) = (recv, enq, deq, done) {
            let phases = [("recv", recv), ("enqueue", enq), ("dequeue", deq), ("done", done)];
            for w in phases.windows(2) {
                if w[0].1 > w[1].1 {
                    report.push(
                        Code::TimestampOrder,
                        ctx.clone(),
                        format!(
                            "t_{}_s = {} comes after t_{}_s = {} — the request pipeline \
                             is recv ≤ enqueue ≤ dequeue ≤ done on one monotone clock",
                            w[0].0, w[0].1, w[1].0, w[1].1
                        ),
                    );
                }
            }

            // --- M092: phase accounting sums to the timestamp deltas -------
            let sums =
                [("queue_wait_s", deq - enq), ("service_s", done - deq), ("total_s", done - recv)];
            for (field, expect) in sums {
                if let Some(got) = ts(field) {
                    if (got - expect).abs() > PHASE_SUM_EPS {
                        report.push(
                            Code::PhaseAccounting,
                            ctx.clone(),
                            format!(
                                "{field} = {got} but the phase timestamps imply {expect} — \
                                 queue-wait accounting does not sum"
                            ),
                        );
                    }
                }
            }
        }

        // --- M093 bookkeeping ---------------------------------------------
        if let (Some(conn), Some(seq), Some(recv)) =
            (v.get("conn").and_then(Value::as_usize), v.get("seq").and_then(Value::as_usize), recv)
        {
            conns.entry(conn as u64).or_default().push((seq as u64, recv, rec.lineno));
        }

        // --- M091: span-tree well-formedness -------------------------------
        if let Some(spans) = v.get("spans").and_then(Value::as_array) {
            check_span_tree(spans, &ctx, report);
        }
    }

    // --- M093: per-connection monotonicity --------------------------------
    for (conn, mut entries) in conns {
        entries.sort_by_key(|&(seq, _, _)| seq);
        for w in entries.windows(2) {
            let ((s0, t0, _), (s1, t1, l1)) = (w[0], w[1]);
            if s0 == s1 {
                report.push(
                    Code::SeqNonMonotonic,
                    format!("line {l1}"),
                    format!("connection {conn} logged sequence number {s1} twice"),
                );
            } else if t1 < t0 {
                report.push(
                    Code::SeqNonMonotonic,
                    format!("line {l1}"),
                    format!(
                        "connection {conn}: seq {s1} was received at {t1} s, before \
                         seq {s0} at {t0} s — one reader thread reads a connection \
                         in order"
                    ),
                );
            }
        }
    }
}

fn check_span_tree(spans: &[Value], ctx: &str, report: &mut Report) {
    let mut totals: HashMap<&str, f64> = HashMap::new();
    for s in spans {
        let Some(path) = s.get("path").and_then(Value::as_str) else { continue };
        let total = s.get("total_s").and_then(Value::as_f64).unwrap_or(0.0);
        if totals.insert(path, total).is_some() {
            report.push(
                Code::SpanTreeMalformed,
                ctx.to_owned(),
                format!("span path '{path}' appears twice in one trace"),
            );
        }
        if let Some(depth) = s.get("depth").and_then(Value::as_usize) {
            let nesting = path.matches('/').count();
            if depth != nesting {
                report.push(
                    Code::SpanTreeMalformed,
                    ctx.to_owned(),
                    format!(
                        "span '{path}' records depth {depth} but its path nests \
                         {nesting} level(s)"
                    ),
                );
            }
        }
    }
    for s in spans {
        let Some(path) = s.get("path").and_then(Value::as_str) else { continue };
        let Some((parent, _)) = path.rsplit_once('/') else { continue };
        match totals.get(parent) {
            None => report.push(
                Code::SpanTreeMalformed,
                ctx.to_owned(),
                format!("span '{path}' has no parent span '{parent}' in the trace"),
            ),
            Some(&parent_total) => {
                let child_total = s.get("total_s").and_then(Value::as_f64).unwrap_or(0.0);
                if child_total > parent_total + 1e-9 {
                    report.push(
                        Code::SpanTreeMalformed,
                        ctx.to_owned(),
                        format!(
                            "span '{path}' total {child_total} s exceeds its parent \
                             '{parent}' total {parent_total} s"
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::load_stream;

    /// A pristine access line with the full v2 lifecycle fields.
    const PRISTINE: &str = r#"{"type":"access","t_s":2.0,"id":"s1","op":"solve","solver":"ao","status":"ok","cached":false,"conn":1,"seq":0,"key":"00000000deadbeef","t_recv_s":1.0,"t_enqueue_s":1.001,"t_dequeue_s":1.005,"t_done_s":1.105,"queue_wait_s":0.004,"service_s":0.1,"total_s":0.105,"spans":[{"path":"ao.solve","calls":1,"total_s":0.09,"self_s":0.01,"depth":0},{"path":"ao.solve/ao.sweep_m","calls":1,"total_s":0.08,"self_s":0.08,"depth":1}]}"#;

    fn lint(text: &str) -> Report {
        let mut r = Report::new();
        trace_lints(&load_stream(text).unwrap(), &mut r);
        r
    }

    #[test]
    fn pristine_line_is_clean() {
        let r = lint(PRISTINE);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn timestamp_inversion_is_m090() {
        // dequeue before enqueue
        let bad = PRISTINE.replace(r#""t_dequeue_s":1.005"#, r#""t_dequeue_s":0.9"#);
        let r = lint(&bad);
        assert!(r.has_code(Code::TimestampOrder), "{r}");
        assert!(r.has_errors());

        // done before recv
        let bad = PRISTINE.replace(r#""t_done_s":1.105"#, r#""t_done_s":0.5"#);
        assert!(lint(&bad).has_code(Code::TimestampOrder));
    }

    #[test]
    fn accounting_mismatch_is_m092() {
        for (field, forged) in [
            (r#""queue_wait_s":0.004"#, r#""queue_wait_s":0.4"#),
            (r#""service_s":0.1"#, r#""service_s":0.9"#),
            (r#""total_s":0.105"#, r#""total_s":9.0"#),
        ] {
            let bad = PRISTINE.replace(field, forged);
            let r = lint(&bad);
            assert!(r.has_code(Code::PhaseAccounting), "{field}:\n{r}");
        }
    }

    #[test]
    fn span_tree_defects_are_m091() {
        // Orphan child: rename the root away.
        let bad = PRISTINE.replace(
            r#""path":"ao.solve","calls":1,"total_s":0.09"#,
            r#""path":"other.root","calls":1,"total_s":0.09"#,
        );
        assert!(lint(&bad).has_code(Code::SpanTreeMalformed), "orphan");

        // Child total exceeding the parent's.
        let bad = PRISTINE.replace(r#""total_s":0.08"#, r#""total_s":0.5"#);
        assert!(lint(&bad).has_code(Code::SpanTreeMalformed), "child > parent");

        // Duplicate path.
        let bad = PRISTINE.replace(
            r#"{"path":"ao.solve/ao.sweep_m","calls":1,"total_s":0.08,"self_s":0.08,"depth":1}"#,
            r#"{"path":"ao.solve","calls":1,"total_s":0.01,"self_s":0.01,"depth":0}"#,
        );
        assert!(lint(&bad).has_code(Code::SpanTreeMalformed), "duplicate");

        // Depth disagreeing with the path.
        let bad = PRISTINE.replace(r#""self_s":0.08,"depth":1"#, r#""self_s":0.08,"depth":3"#);
        assert!(lint(&bad).has_code(Code::SpanTreeMalformed), "depth");
    }

    #[test]
    fn per_connection_seq_defects_are_m093() {
        let second = PRISTINE
            .replace(r#""seq":0"#, r#""seq":1"#)
            .replace(r#""id":"s1""#, r#""id":"s2""#)
            .replace(r#""t_recv_s":1.0"#, r#""t_recv_s":1.2"#)
            .replace(r#""t_enqueue_s":1.001"#, r#""t_enqueue_s":1.201"#)
            .replace(r#""t_dequeue_s":1.005"#, r#""t_dequeue_s":1.205"#)
            .replace(r#""t_done_s":1.105"#, r#""t_done_s":1.305"#);
        let good = format!("{PRISTINE}\n{second}\n");
        assert!(lint(&good).is_clean(), "{}", lint(&good));

        // Duplicate seq on one connection.
        let dup = second.replace(r#""seq":1"#, r#""seq":0"#);
        let r = lint(&format!("{PRISTINE}\n{dup}\n"));
        assert!(r.has_code(Code::SeqNonMonotonic), "{r}");

        // Receive time regressing as seq increases.
        let regress = second.replace(r#""t_recv_s":1.2"#, r#""t_recv_s":0.2"#);
        let r = lint(&format!("{PRISTINE}\n{regress}\n"));
        assert!(r.has_code(Code::SeqNonMonotonic), "{r}");

        // Same seq on a *different* connection is fine.
        let other_conn = second.replace(r#""conn":1,"seq":1"#, r#""conn":2,"seq":0"#);
        let r = lint(&format!("{PRISTINE}\n{other_conn}\n"));
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn old_logs_without_lifecycle_fields_are_inert() {
        let legacy = r#"{"type":"access","t_s":1.0,"id":"s1","op":"solve","solver":"ao","status":"ok","cached":false,"queue_wait_s":0.0,"service_s":0.1,"total_s":0.1}"#;
        let r = lint(legacy);
        assert!(r.is_clean(), "{r}");
    }
}
