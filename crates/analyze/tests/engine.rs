//! Engine-level tests: golden snapshots of the three output formats and
//! mutation tests that corrupt each field the M08x/M09x lints read.
//!
//! The golden files live in `tests/golden/`; regenerate them with
//! `BLESS=1 cargo test -p mosc-analyze --test engine` after an intentional
//! output change, then review the diff like any other code change.

use mosc_analyze::artifact::Artifacts;
use mosc_analyze::json::Value;
use mosc_analyze::output::{render_json, render_sarif};
use mosc_analyze::pass::run_passes;
use mosc_analyze::{Code, Report};
use mosc_sched::{Platform, PlatformSpec};

/// A 1×2 paper platform spec (levels 0.6/1.3 V, `T_max` 55 °C).
const SPEC: &str = r#"{"platform": {"rows": 1, "cols": 2, "levels": [0.6, 1.3], "t_max_c": 55.0}}"#;

/// A schedule that fits the platform above exactly.
const GOOD_SCHED: &str =
    "period 0.1\ncore 0: 0.6 x 0.06, 1.3 x 0.04\ncore 1: 0.6 x 0.07, 1.3 x 0.03\n";

/// A pristine two-line access log: one non-cached AO fill announcing key
/// `…aa` with kernel-counter evidence and a span tree, then the cache hit it
/// fills, on one connection with ascending seq and consistent timestamps.
const PRISTINE_LOG: &str = concat!(
    r#"{"type":"access","t_s":2.0,"id":"s1","op":"solve","solver":"ao","status":"ok","cached":false,"queue_wait_s":0.004,"service_s":0.1,"total_s":0.105,"deadline_slack_s":null,"expm_calls":0,"period_map_matmuls":40,"steady_state_calls":4,"linalg_matmuls":100,"conn":1,"seq":0,"key":"00000000000000aa","t_recv_s":1.0,"t_enqueue_s":1.001,"t_dequeue_s":1.005,"t_done_s":1.105,"spans":[{"path":"ao.solve","depth":0,"calls":1,"total_s":0.09,"self_s":0.01},{"path":"ao.solve/ao.sweep_m","depth":1,"calls":1,"total_s":0.08,"self_s":0.08}]}"#,
    "\n",
    r#"{"type":"access","t_s":2.1,"id":"s2","op":"solve","solver":"ao","status":"ok","cached":true,"queue_wait_s":0.0,"service_s":0.0005,"total_s":0.0005,"deadline_slack_s":null,"expm_calls":0,"period_map_matmuls":0,"steady_state_calls":0,"linalg_matmuls":0,"conn":1,"seq":1,"key":"00000000000000aa","t_recv_s":1.2,"t_enqueue_s":1.2,"t_dequeue_s":1.2,"t_done_s":1.2005}"#,
    "\n",
);

fn run(inputs: &[(&str, &str)]) -> Report {
    let owned: Vec<(String, String)> =
        inputs.iter().map(|(p, t)| ((*p).to_owned(), (*t).to_owned())).collect();
    run_passes(&Artifacts::load(&owned).expect("artifacts must load"))
}

/// A truthful claim document for the spec platform + `GOOD_SCHED`, built by
/// recomputing the numbers the same way the lint does.
fn truthful_claim() -> String {
    let p = Platform::build(&PlatformSpec::paper(1, 2, 2, 55.0)).unwrap();
    let s = mosc_sched::text::from_text(GOOD_SCHED).unwrap();
    let throughput = s.throughput_with_overhead(p.overhead());
    let peak_c = p.to_celsius(p.peak(&s).unwrap().temp);
    let feasible = p.peak(&s).unwrap().temp <= p.t_max();
    format!(
        r#"{{"status":"ok","solver":"ao","throughput":{throughput:?},"peak_c":{peak_c:?},"feasible":{feasible},"m":1,"schedule":"{}"}}"#,
        GOOD_SCHED.replace('\n', "\\n")
    )
}

#[test]
fn pristine_artifact_set_is_fully_clean() {
    let claim = truthful_claim();
    let report = run(&[
        ("spec.json", SPEC),
        ("sched.txt", GOOD_SCHED),
        ("claim.json", &claim),
        ("log.jsonl", PRISTINE_LOG),
    ]);
    assert!(report.is_clean(), "pristine set produced findings:\n{report}");
}

// --- M08x mutation tests: corrupt each field the lints read ---------------

#[test]
fn mutated_schedule_voltage_fires_m080() {
    let bad = GOOD_SCHED.replace("0.6 x 0.06", "0.9 x 0.06");
    let report = run(&[("spec.json", SPEC), ("sched.txt", &bad)]);
    assert!(report.has_code(Code::CrossScheduleMismatch), "{report}");
    assert!(report.has_errors());
    // The finding carries the offending file.
    assert!(
        report
            .diagnostics()
            .iter()
            .any(|d| d.code == Code::CrossScheduleMismatch && d.file == "sched.txt"),
        "{report}"
    );
}

#[test]
fn mutated_claim_fields_fire_m081() {
    let claim = truthful_claim();
    let doc = Value::parse(&claim).unwrap();
    let throughput = doc.get("throughput").and_then(Value::as_f64).unwrap();
    let peak_c = doc.get("peak_c").and_then(Value::as_f64).unwrap();

    // Each corrupted field fires on its own.
    for (field, forged) in [
        (
            format!("\"throughput\":{throughput:?}"),
            format!("\"throughput\":{:?}", throughput * 1.01),
        ),
        (format!("\"peak_c\":{peak_c:?}"), format!("\"peak_c\":{:?}", peak_c + 1.0)),
    ] {
        let lied = claim.replace(&field, &forged);
        assert_ne!(lied, claim, "mutation did not apply: {field}");
        let report = run(&[("spec.json", SPEC), ("claim.json", &lied)]);
        assert!(report.has_code(Code::ClaimDivergence), "{field}:\n{report}");
        assert!(report.has_errors(), "{field}:\n{report}");
    }

    // Feasibility contradiction: this schedule runs well under T_max.
    let lied = claim.replace("\"feasible\":true", "\"feasible\":false");
    let report = run(&[("spec.json", SPEC), ("claim.json", &lied)]);
    assert!(report.has_code(Code::ClaimDivergence), "feasible:\n{report}");

    // Without a platform artifact the claim is unverifiable: warning only.
    let report = run(&[("claim.json", &claim)]);
    assert!(report.has_code(Code::ClaimDivergence), "{report}");
    assert!(!report.has_errors(), "unverifiable claim must be a warning:\n{report}");
}

#[test]
fn mutated_cache_key_and_solver_fire_m082() {
    // Hit whose key was never announced by a fill.
    let bad = PRISTINE_LOG.replace(
        r#""cached":true,"queue_wait_s":0.0,"service_s":0.0005,"total_s":0.0005,"deadline_slack_s":null,"expm_calls":0,"period_map_matmuls":0,"steady_state_calls":0,"linalg_matmuls":0,"conn":1,"seq":1,"key":"00000000000000aa""#,
        r#""cached":true,"queue_wait_s":0.0,"service_s":0.0005,"total_s":0.0005,"deadline_slack_s":null,"expm_calls":0,"period_map_matmuls":0,"steady_state_calls":0,"linalg_matmuls":0,"conn":1,"seq":1,"key":"00000000000000bb""#,
    );
    assert_ne!(bad, PRISTINE_LOG);
    let report = run(&[("log.jsonl", &bad)]);
    assert!(report.has_code(Code::AccessCacheKeyMismatch), "{report}");
    assert!(report.has_errors());

    // Hit reporting a different solver than the fill.
    let bad = PRISTINE_LOG.replace(
        r#""id":"s2","op":"solve","solver":"ao""#,
        r#""id":"s2","op":"solve","solver":"pco""#,
    );
    assert_ne!(bad, PRISTINE_LOG);
    let report = run(&[("log.jsonl", &bad)]);
    assert!(report.has_code(Code::AccessCacheKeyMismatch), "{report}");
}

#[test]
fn mutated_kernel_counters_fire_m083() {
    // The AO fill stops moving the period-map counters; linalg evidence on
    // the same line keeps the recorder-evidence gate open.
    let bad = PRISTINE_LOG
        .replace(r#""period_map_matmuls":40"#, r#""period_map_matmuls":0"#)
        .replace(r#""steady_state_calls":4"#, r#""steady_state_calls":0"#);
    assert_ne!(bad, PRISTINE_LOG);
    let report = run(&[("log.jsonl", &bad)]);
    assert!(report.has_code(Code::KernelDeltaInconsistent), "{report}");
    assert!(!report.has_errors(), "M083 defaults to warning:\n{report}");

    // With every counter at zero everywhere there is no recorder evidence,
    // so the lint stays silent (old-log compatibility).
    let silent = bad.replace(r#""linalg_matmuls":100"#, r#""linalg_matmuls":0"#);
    let report = run(&[("log.jsonl", &silent)]);
    assert!(!report.has_code(Code::KernelDeltaInconsistent), "{report}");
}

// --- M09x mutation tests --------------------------------------------------

#[test]
fn mutated_timestamps_fire_m090() {
    let bad = PRISTINE_LOG.replace(r#""t_dequeue_s":1.005"#, r#""t_dequeue_s":0.9"#);
    assert_ne!(bad, PRISTINE_LOG);
    let report = run(&[("log.jsonl", &bad)]);
    assert!(report.has_code(Code::TimestampOrder), "{report}");
    assert!(report.has_errors());
}

#[test]
fn mutated_span_tree_fires_m091() {
    // Recorded depth disagreeing with the path nesting.
    let bad = PRISTINE_LOG.replace(
        r#""path":"ao.solve/ao.sweep_m","depth":1"#,
        r#""path":"ao.solve/ao.sweep_m","depth":3"#,
    );
    assert_ne!(bad, PRISTINE_LOG);
    let report = run(&[("log.jsonl", &bad)]);
    assert!(report.has_code(Code::SpanTreeMalformed), "{report}");

    // Orphaned child: rename the root away.
    let bad =
        PRISTINE_LOG.replace(r#""path":"ao.solve","depth":0"#, r#""path":"other.root","depth":0"#);
    assert_ne!(bad, PRISTINE_LOG);
    let report = run(&[("log.jsonl", &bad)]);
    assert!(report.has_code(Code::SpanTreeMalformed), "{report}");
}

#[test]
fn mutated_phase_accounting_fires_m092() {
    let bad = PRISTINE_LOG.replace(r#""queue_wait_s":0.004"#, r#""queue_wait_s":0.09"#);
    assert_ne!(bad, PRISTINE_LOG);
    let report = run(&[("log.jsonl", &bad)]);
    assert!(report.has_code(Code::PhaseAccounting), "{report}");
}

#[test]
fn mutated_sequence_numbers_fire_m093() {
    let bad = PRISTINE_LOG.replace(r#""conn":1,"seq":1"#, r#""conn":1,"seq":0"#);
    assert_ne!(bad, PRISTINE_LOG);
    let report = run(&[("log.jsonl", &bad)]);
    assert!(report.has_code(Code::SeqNonMonotonic), "{report}");
}

// --- Golden snapshots -----------------------------------------------------

/// A fixed artifact set whose findings contain only input-derived numbers,
/// so the rendered output is bit-stable across machines: one M080 (error),
/// one M082 (error), one M083 (warning).
fn golden_report() -> Report {
    let sched = GOOD_SCHED.replace("0.6 x 0.06", "0.9 x 0.06");
    let log = concat!(
        r#"{"type":"access","t_s":2.0,"id":"g1","op":"solve","solver":"ao","status":"ok","cached":false,"queue_wait_s":0.004,"service_s":0.1,"total_s":0.105,"expm_calls":0,"period_map_matmuls":0,"steady_state_calls":0,"linalg_matmuls":50,"key":"00000000000000aa"}"#,
        "\n",
        r#"{"type":"access","t_s":2.1,"id":"g2","op":"solve","solver":"ao","status":"ok","cached":true,"queue_wait_s":0.0,"service_s":0.0005,"total_s":0.0005,"expm_calls":0,"period_map_matmuls":0,"steady_state_calls":0,"linalg_matmuls":0,"key":"00000000000000bb"}"#,
        "\n",
    );
    run(&[("spec.json", SPEC), ("sched.txt", &sched), ("log.jsonl", log)])
}

/// Compares `got` against the golden file, or rewrites it when `BLESS` is
/// set in the environment.
fn assert_golden(name: &str, got: &str) {
    let path = format!("{}/tests/golden/{name}", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(&path, got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read golden {path}: {e} (run with BLESS=1 to create)"));
    assert_eq!(got, want, "output drifted from {path} (re-bless with BLESS=1 if intended)");
}

#[test]
fn golden_text_output() {
    assert_golden("findings.txt", &golden_report().render());
}

#[test]
fn golden_json_output() {
    let text = render_json(&golden_report());
    Value::parse(&text).expect("golden JSON must parse");
    assert_golden("findings.json", &text);
}

#[test]
fn golden_sarif_output() {
    let text = render_sarif(&golden_report());
    let doc = Value::parse(&text).expect("golden SARIF must parse");
    assert_eq!(doc.get("version").and_then(Value::as_str), Some("2.1.0"));
    assert_golden("findings.sarif", &text);
}
