//! Property tests for the analyzer: randomly generated *valid* artifacts
//! must produce zero errors, and targeted mutations must trip exactly the
//! lint that guards against them.

use mosc_analyze::{
    check_levels, check_raw_schedule, check_schedule, check_solution, Code, Severity,
    SolutionClaim, Tolerances,
};
use mosc_sched::{CoreSchedule, Platform, PlatformSpec, Schedule, Segment};
use mosc_testutil::{propcheck, propcheck_cases, Rng64};

/// The paper's Table-IV style level sets, by size.
const LEVEL_SETS: [&[f64]; 4] =
    [&[0.6, 1.3], &[0.6, 0.95, 1.3], &[0.6, 0.85, 1.1, 1.3], &[0.6, 0.8, 0.95, 1.15, 1.3]];

/// Draws a random step-up core: 1–3 segments with strictly ascending
/// voltages from `levels` and positive durations summing to `period`.
fn random_stepup_core(rng: &mut Rng64, levels: &[f64], period: f64) -> Vec<(f64, f64)> {
    let n_segs = rng.gen_range(1..levels.len().min(3) + 1);
    // Ascending distinct level indices.
    let mut idx: Vec<usize> = (0..levels.len()).collect();
    rng.shuffle(&mut idx);
    idx.truncate(n_segs);
    idx.sort_unstable();
    // Random positive partition of the period.
    let mut cuts: Vec<f64> = (0..n_segs - 1).map(|_| rng.gen_range(0.1..0.9) * period).collect();
    cuts.push(0.0);
    cuts.push(period);
    cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    idx.iter()
        .zip(cuts.windows(2))
        .map(|(&l, w)| (levels[l], (w[1] - w[0]).max(1e-6 * period)))
        .collect()
}

fn typed_schedule(cores: &[Vec<(f64, f64)>]) -> Schedule {
    let typed: Vec<CoreSchedule> = cores
        .iter()
        .map(|segs| {
            CoreSchedule::new(segs.iter().map(|&(v, d)| Segment::new(v, d)).collect())
                .expect("valid core")
        })
        .collect();
    Schedule::new(typed).expect("valid schedule")
}

#[test]
fn valid_stepup_schedules_are_clean() {
    propcheck("valid step-up schedules produce no errors", |rng| {
        let levels = LEVEL_SETS[rng.gen_range(0..LEVEL_SETS.len())];
        let n_cores = rng.gen_range(1..5usize);
        let period = rng.gen_range(0.01..0.5);
        let cores: Vec<Vec<(f64, f64)>> =
            (0..n_cores).map(|_| random_stepup_core(rng, levels, period)).collect();

        let raw = check_raw_schedule(period, &cores);
        assert!(raw.is_clean(), "raw lints fired on a valid schedule:\n{raw}");

        let typed = typed_schedule(&cores);
        let report = check_schedule(&typed, None, Severity::Error);
        assert!(!report.has_errors(), "typed lints fired on a valid schedule:\n{report}");
    });
}

#[test]
fn descending_segments_trip_m014() {
    propcheck("non-step-up schedules are flagged NotStepUp", |rng| {
        let levels = LEVEL_SETS[rng.gen_range(0..LEVEL_SETS.len())];
        let period = rng.gen_range(0.01..0.5);
        // Force at least two segments, then reverse so voltages descend.
        let mut core = random_stepup_core(rng, levels, period);
        while core.len() < 2 {
            core = random_stepup_core(rng, levels, period);
        }
        core.reverse();

        let typed = typed_schedule(&[core]);
        let report = check_schedule(&typed, None, Severity::Error);
        assert!(report.has_code(Code::NotStepUp), "expected M014:\n{report}");
    });
}

#[test]
fn mismatched_periods_trip_m013() {
    propcheck("cores with unequal periods are flagged PeriodMismatch", |rng| {
        let levels = LEVEL_SETS[rng.gen_range(0..LEVEL_SETS.len())];
        let period = rng.gen_range(0.01..0.5);
        let mut cores: Vec<Vec<(f64, f64)>> =
            (0..3).map(|_| random_stepup_core(rng, levels, period)).collect();
        // Stretch one core's durations so its period disagrees.
        let victim = rng.gen_range(0..cores.len());
        let factor = if rng.gen_range(0..2usize) == 0 { 1.5 } else { 0.5 };
        for seg in &mut cores[victim] {
            seg.1 *= factor;
        }
        let report = check_raw_schedule(period, &cores);
        assert!(report.has_code(Code::PeriodMismatch), "expected M013:\n{report}");
    });
}

#[test]
fn negative_durations_trip_m011() {
    propcheck("non-positive durations are flagged DurationInvalid", |rng| {
        let levels = LEVEL_SETS[rng.gen_range(0..LEVEL_SETS.len())];
        let period = rng.gen_range(0.01..0.5);
        let mut cores: Vec<Vec<(f64, f64)>> =
            (0..2).map(|_| random_stepup_core(rng, levels, period)).collect();
        let victim = rng.gen_range(0..cores.len());
        let seg = rng.gen_range(0..cores[victim].len());
        cores[victim][seg].1 = -cores[victim][seg].1;
        let report = check_raw_schedule(period, &cores);
        assert!(report.has_code(Code::DurationInvalid), "expected M011:\n{report}");
    });
}

#[test]
fn unsorted_or_duplicate_levels_trip_m001() {
    propcheck("broken level orderings are flagged LevelsNotSorted", |rng| {
        let base = LEVEL_SETS[rng.gen_range(0..LEVEL_SETS.len())];
        let mut levels = base.to_vec();
        if rng.gen_range(0..2usize) == 0 {
            // Duplicate a random entry next to itself.
            let i = rng.gen_range(0..levels.len());
            levels.insert(i, levels[i]);
        } else {
            // Shuffle until genuinely out of order.
            loop {
                rng.shuffle(&mut levels);
                if levels.windows(2).any(|w| w[1] <= w[0]) {
                    break;
                }
            }
        }
        let report = check_levels(&levels);
        assert!(report.has_code(Code::LevelsNotSorted), "expected M001:\n{report}");
    });
}

#[test]
fn honest_solution_claims_are_clean_and_perturbed_throughput_trips_m020() {
    // Platform construction dominates the cost, so share it across cases.
    let platform = Platform::build(&PlatformSpec::paper(1, 2, 2, 55.0)).expect("platform");
    propcheck_cases("recomputed-vs-claimed throughput lint", 16, |rng| {
        let levels = platform.modes().levels();
        let voltages: Vec<f64> =
            (0..platform.n_cores()).map(|_| levels[rng.gen_range(0..levels.len())]).collect();
        let schedule = Schedule::constant(&voltages, 0.1).expect("schedule");
        let peak = platform.peak(&schedule).expect("peak").temp;
        let throughput = schedule.throughput_with_overhead(platform.overhead());
        let honest =
            SolutionClaim { throughput, peak, feasible: peak <= platform.t_max() + 1e-6, m: 1 };
        let clean = check_solution(&platform, &schedule, &honest, &Tolerances::default());
        assert!(!clean.has_errors(), "honest claim flagged:\n{clean}");

        // Perturb the throughput well past the relative tolerance.
        let sign = if rng.gen_range(0..2usize) == 0 { 1.0 } else { -1.0 };
        let lying = SolutionClaim {
            throughput: throughput * (1.0 + sign * rng.gen_range(0.01..0.2)),
            ..honest
        };
        let caught = check_solution(&platform, &schedule, &lying, &Tolerances::default());
        assert!(caught.has_code(Code::ThroughputMismatch), "expected M020:\n{caught}");
    });
}

/// Draws an arbitrary JSON value: scalars, strings with escapes and control
/// characters, and nested arrays/objects up to `depth`.
fn random_json(rng: &mut Rng64, depth: usize) -> mosc_analyze::json::Value {
    use mosc_analyze::json::Value;
    let scalar_only = depth == 0;
    match rng.gen_range(0..if scalar_only { 4 } else { 6 }) {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_range(0..2usize) == 1),
        2 => {
            // Finite numbers only: the serializer maps non-finite to null
            // by design (JSON has no Inf/NaN literal).
            let x = (rng.next_f64() - 0.5) * 10f64.powi(rng.gen_range(0..30) as i32 - 15);
            Value::Number(x)
        }
        3 => Value::String(random_string(rng)),
        4 => Value::Array(
            (0..rng.gen_range(0..4usize)).map(|_| random_json(rng, depth - 1)).collect(),
        ),
        _ => Value::Object(
            (0..rng.gen_range(0..4usize))
                .map(|i| (format!("{}{i}", random_string(rng)), random_json(rng, depth - 1)))
                .collect(),
        ),
    }
}

fn random_string(rng: &mut Rng64) -> String {
    const POOL: &[char] = &['a', 'Z', '7', '"', '\\', '\n', '\t', '\u{1}', 'é', '∮', ' ', '/'];
    (0..rng.gen_range(0..8usize)).map(|_| POOL[rng.gen_range(0..POOL.len())]).collect()
}

#[test]
fn json_serialize_parse_round_trips() {
    use mosc_analyze::json::{canonical_json, value_to_json, Value};
    propcheck("value_to_json/parse round trip", |rng| {
        let value = random_json(rng, 3);
        let text = value_to_json(&value);
        let back = Value::parse(&text).unwrap_or_else(|e| panic!("unparseable: {e}\n{text}"));
        assert_eq!(back, value, "round trip changed the value:\n{text}");

        // Canonical form: same value modulo key order, and a fixpoint.
        let canon = canonical_json(&value);
        let canon_back =
            Value::parse(&canon).unwrap_or_else(|e| panic!("unparseable canonical: {e}\n{canon}"));
        assert_eq!(canonical_json(&canon_back), canon, "canonical form is not a fixpoint");
    });
}
