//! Property test: whatever the `mosc-obs` JSONL serializer emits must parse
//! through `mosc-analyze`'s JSON reader and agree with the live snapshot —
//! the contract that lets `analyze TELEMETRY.jsonl` consume `--obs=json`
//! output without a shared serialization library.
//!
//! Kept in its own integration-test binary: the recorder is process-global,
//! and this is the only test here that arms it.

use mosc_analyze::json::Value;
use mosc_analyze::{analyze_telemetry, Code};
use mosc_obs::{Counter, FieldValue, Gauge, Histogram, Telemetry};
use mosc_testutil::propcheck_cases;

static COUNTERS: [Counter; 3] =
    [Counter::new("rt.calls"), Counter::new("rt.steps"), Counter::new("rt.nodes")];
static GAUGES: [Gauge; 2] = [Gauge::new("rt.ratio"), Gauge::new("rt.peak")];
static HISTS: [Histogram; 2] = [Histogram::new("rt.latency"), Histogram::new("rt.residual")];

/// Event names and string field values, including every escape class the
/// serializer handles (quotes, backslashes, newlines, control characters).
const EVENT_NAMES: [&str; 3] = ["rt.done", "rt.step \"quoted\"", "rt.path\\with\\slashes"];
const STR_VALUES: [&str; 4] = ["plain", "multi\nline", "tab\there", "ctrl\u{1}char"];
const SPAN_NAMES: [&str; 4] = ["rt.outer", "rt.mid", "rt.inner", "rt.leaf"];

fn random_activity(rng: &mut mosc_testutil::Rng64) {
    for c in &COUNTERS {
        if rng.gen_range(0..2usize) == 1 {
            c.add(rng.gen_range(0..1_000_000) as u64);
        }
    }
    for g in &GAUGES {
        if rng.gen_range(0..2usize) == 1 {
            g.set(rng.gen_range(-1e6..1e6));
        }
    }
    for h in &HISTS {
        for _ in 0..rng.gen_range(0..5usize) {
            h.record(rng.gen_range(-100.0..100.0));
        }
    }
    for _ in 0..rng.gen_range(0..4usize) {
        let name = EVENT_NAMES[rng.gen_range(0..EVENT_NAMES.len())];
        mosc_obs::event(
            name,
            &[
                ("u", FieldValue::from(rng.gen_range(0..999usize))),
                ("f", FieldValue::from(rng.gen_range(-10.0..10.0))),
                ("s", FieldValue::from(STR_VALUES[rng.gen_range(0..STR_VALUES.len())])),
                ("b", FieldValue::from(rng.gen_range(0..2usize) == 1)),
            ],
        );
    }
    // A random span tree: sequential roots with random nesting depth.
    for _ in 0..rng.gen_range(1..4usize) {
        let _root = mosc_obs::span(SPAN_NAMES[0]);
        for d in 1..rng.gen_range(1..SPAN_NAMES.len() + 1) {
            let _child = mosc_obs::span(SPAN_NAMES[d.min(SPAN_NAMES.len() - 1)]);
        }
    }
}

/// Parses `{v:?}`-style JSON floats back; the serializer promises shortest
/// round-trip formatting, so equality is exact, not approximate.
fn field_f64(obj: &Value, key: &str) -> f64 {
    obj.get(key).and_then(Value::as_f64).unwrap_or_else(|| panic!("missing {key} in {obj:?}"))
}

#[test]
fn jsonl_round_trips_through_the_analyze_parser() {
    mosc_obs::enable();
    propcheck_cases("obs JSONL round-trips through mosc-analyze", 32, |rng| {
        mosc_obs::reset();
        random_activity(rng);
        let t: Telemetry = mosc_obs::snapshot();
        let jsonl = t.to_jsonl();

        for line in jsonl.lines() {
            let v = Value::parse(line).unwrap_or_else(|e| panic!("unparseable line {line}: {e}"));
            let ty = v.get("type").and_then(Value::as_str).expect("line without type");
            let name = v.get("name").and_then(Value::as_str).unwrap_or_default();
            match ty {
                "counter" => {
                    let val = field_f64(&v, "value");
                    assert_eq!(Some(val as u64), t.counter(name), "{line}");
                }
                "gauge" => {
                    assert_eq!(Some(field_f64(&v, "value")), t.gauge(name), "{line}");
                }
                "hist" => {
                    let h = t.histogram(name).expect("hist in snapshot");
                    assert_eq!(field_f64(&v, "count") as u64, h.count, "{line}");
                    assert_eq!(field_f64(&v, "sum"), h.sum, "{line}");
                    assert_eq!(field_f64(&v, "min"), h.min, "{line}");
                    assert_eq!(field_f64(&v, "max"), h.max, "{line}");
                }
                "span" => {
                    let path = v.get("path").and_then(Value::as_str).expect("span path");
                    let s = t.span_path(path).expect("span in snapshot");
                    assert_eq!(field_f64(&v, "calls") as u64, s.calls, "{line}");
                    assert_eq!(field_f64(&v, "total_s"), s.total.as_secs_f64(), "{line}");
                    assert_eq!(field_f64(&v, "self_s"), s.self_time.as_secs_f64(), "{line}");
                }
                "event" => {
                    // Escaped names must survive the trip exactly.
                    assert!(
                        t.events().iter().any(|e| e.name == name),
                        "event name {name:?} not in snapshot ({line})"
                    );
                    assert!(v.get("fields").is_some_and(Value::is_object), "{line}");
                }
                "meta" => {}
                other => panic!("unknown record type {other} in {line}"),
            }
        }

        // The stream as a whole must satisfy the M05x structural contract:
        // parseable, and with no span-timing (M053) findings.
        let report = analyze_telemetry(&jsonl).expect("structurally valid telemetry");
        assert!(!report.has_code(Code::SpanTimingInvalid), "M053 on serializer output:\n{report}");
    });
    mosc_obs::disable();
    mosc_obs::reset();
}
