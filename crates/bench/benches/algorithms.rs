//! Micro-benchmarks of the scheduling algorithms — the quantitative backing
//! for Table V's computation-time comparison. All solves go through the
//! unified `mosc_core::solve` dispatcher.

use mosc_bench::micro::Runner;
use mosc_core::{solve, SolveOptions, SolverKind};
use mosc_sched::{Platform, PlatformSpec};
use std::hint::black_box;

/// Quick evaluation settings: single-threaded EXS (Algorithm 1's scaling),
/// coarse AO/PCO sampling so whole grids stay tractable in a bench run.
fn quick_opts() -> SolveOptions {
    SolveOptions {
        threads: 1,
        max_m: 64,
        base_period: 0.05,
        m_patience: 4,
        t_unit_divisor: 50,
        phase_steps: 4,
        samples: 150,
        refill_divisor: 40,
        ..SolveOptions::default()
    }
}

fn bench_algorithms(r: &mut Runner) {
    let mut group = r.group("algorithms");
    let opts = quick_opts();
    for (rows, cols, levels) in [(1usize, 3usize, 2usize), (2, 3, 3)] {
        let platform =
            Platform::build(&PlatformSpec::paper(rows, cols, levels, 55.0)).expect("platform");
        let label = format!("{}c{}l", rows * cols, levels);
        for kind in [SolverKind::Lns, SolverKind::Exs, SolverKind::Ao, SolverKind::Pco] {
            group.bench(&format!("{}/{label}", kind.id()), || {
                solve(kind, black_box(&platform), &opts)
                    .unwrap_or_else(|e| panic!("{}: {e}", kind.id()))
            });
        }
    }
}

fn bench_exs_scaling(r: &mut Runner) {
    // EXS cost vs level count on the 9-core platform: the exponential wall.
    let mut group = r.group("exs_scaling_9core");
    let opts = quick_opts();
    for levels in [2usize, 3, 4] {
        let platform = Platform::build(&PlatformSpec::paper(3, 3, levels, 65.0)).expect("platform");
        group.bench(&levels.to_string(), || {
            solve(SolverKind::Exs, black_box(&platform), &opts).expect("exs")
        });
    }
}

fn bench_bnb_vs_plain(r: &mut Runner) {
    // Branch-and-bound vs exhaustive enumeration on the 9-core platform:
    // same optimum, different visit counts.
    let mut group = r.group("exs_bnb_9core");
    let opts = quick_opts();
    for levels in [3usize, 4] {
        let platform = Platform::build(&PlatformSpec::paper(3, 3, levels, 55.0)).expect("platform");
        group.bench(&format!("plain/{levels}"), || {
            solve(SolverKind::Exs, black_box(&platform), &opts).expect("exs")
        });
        group.bench(&format!("bnb/{levels}"), || {
            solve(SolverKind::ExsBnb, black_box(&platform), &opts).expect("bnb")
        });
    }
}

fn bench_exs_parallel(r: &mut Runner) {
    let mut group = r.group("exs_threads_9core_4l");
    let platform = Platform::build(&PlatformSpec::paper(3, 3, 4, 65.0)).expect("platform");
    for threads in [1usize, 2, 4] {
        let opts = SolveOptions { threads, ..quick_opts() };
        group.bench(&threads.to_string(), || {
            solve(SolverKind::Exs, black_box(&platform), &opts).expect("exs")
        });
    }
}

fn main() {
    let mut r = Runner::from_args();
    bench_algorithms(&mut r);
    bench_exs_scaling(&mut r);
    bench_bnb_vs_plain(&mut r);
    bench_exs_parallel(&mut r);
}
