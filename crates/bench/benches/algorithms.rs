//! Criterion benchmarks of the scheduling algorithms — the quantitative
//! backing for Table V's computation-time comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mosc_core::ao::{self, AoOptions};
use mosc_core::pco::{self, PcoOptions};
use mosc_core::{exs, lns};
use mosc_sched::{Platform, PlatformSpec};
use std::hint::black_box;

fn quick_ao() -> AoOptions {
    AoOptions { base_period: 0.05, max_m: 64, m_patience: 4, t_unit_divisor: 50 }
}

fn quick_pco() -> PcoOptions {
    PcoOptions { ao: quick_ao(), phase_steps: 4, samples: 150, refill_divisor: 40 }
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithms");
    group.sample_size(10);
    for (rows, cols, levels) in [(1usize, 3usize, 2usize), (2, 3, 3)] {
        let platform =
            Platform::build(&PlatformSpec::paper(rows, cols, levels, 55.0)).expect("platform");
        let label = format!("{}c{}l", rows * cols, levels);
        group.bench_function(BenchmarkId::new("lns", &label), |b| {
            b.iter(|| lns::solve(black_box(&platform)).expect("lns"));
        });
        group.bench_function(BenchmarkId::new("exs", &label), |b| {
            b.iter(|| exs::solve_with_threads(black_box(&platform), 1).expect("exs"));
        });
        group.bench_function(BenchmarkId::new("ao", &label), |b| {
            b.iter(|| ao::solve_with(black_box(&platform), &quick_ao()).expect("ao"));
        });
        group.bench_function(BenchmarkId::new("pco", &label), |b| {
            b.iter(|| pco::solve_with(black_box(&platform), &quick_pco()).expect("pco"));
        });
    }
    group.finish();
}

fn bench_exs_scaling(c: &mut Criterion) {
    // EXS cost vs level count on the 9-core platform: the exponential wall.
    let mut group = c.benchmark_group("exs_scaling_9core");
    group.sample_size(10);
    for levels in [2usize, 3, 4] {
        let platform =
            Platform::build(&PlatformSpec::paper(3, 3, levels, 65.0)).expect("platform");
        group.bench_with_input(BenchmarkId::from_parameter(levels), &platform, |b, p| {
            b.iter(|| exs::solve_with_threads(black_box(p), 1).expect("exs"));
        });
    }
    group.finish();
}

fn bench_bnb_vs_plain(c: &mut Criterion) {
    // Branch-and-bound vs exhaustive enumeration on the 9-core platform:
    // same optimum, different visit counts.
    let mut group = c.benchmark_group("exs_bnb_9core");
    group.sample_size(10);
    for levels in [3usize, 4] {
        let platform =
            Platform::build(&PlatformSpec::paper(3, 3, levels, 55.0)).expect("platform");
        group.bench_function(BenchmarkId::new("plain", levels), |b| {
            b.iter(|| exs::solve_with_threads(black_box(&platform), 1).expect("exs"));
        });
        group.bench_function(BenchmarkId::new("bnb", levels), |b| {
            b.iter(|| mosc_core::exs_bnb::solve(black_box(&platform)).expect("bnb"));
        });
    }
    group.finish();
}

fn bench_exs_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("exs_threads_9core_4l");
    group.sample_size(10);
    let platform = Platform::build(&PlatformSpec::paper(3, 3, 4, 65.0)).expect("platform");
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| exs::solve_with_threads(black_box(&platform), t).expect("exs"));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
        .sample_size(20);
    targets = bench_algorithms, bench_exs_scaling, bench_bnb_vs_plain, bench_exs_parallel
}
criterion_main!(benches);
