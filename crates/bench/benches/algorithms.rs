//! Micro-benchmarks of the scheduling algorithms — the quantitative backing
//! for Table V's computation-time comparison.

use mosc_bench::micro::Runner;
use mosc_core::ao::{self, AoOptions};
use mosc_core::pco::{self, PcoOptions};
use mosc_core::{exs, lns};
use mosc_sched::{Platform, PlatformSpec};
use std::hint::black_box;

fn quick_ao() -> AoOptions {
    AoOptions { base_period: 0.05, max_m: 64, m_patience: 4, t_unit_divisor: 50, threads: 0 }
}

fn quick_pco() -> PcoOptions {
    PcoOptions { ao: quick_ao(), phase_steps: 4, samples: 150, refill_divisor: 40 }
}

fn bench_algorithms(r: &mut Runner) {
    let mut group = r.group("algorithms");
    for (rows, cols, levels) in [(1usize, 3usize, 2usize), (2, 3, 3)] {
        let platform =
            Platform::build(&PlatformSpec::paper(rows, cols, levels, 55.0)).expect("platform");
        let label = format!("{}c{}l", rows * cols, levels);
        group.bench(&format!("lns/{label}"), || lns::solve(black_box(&platform)).expect("lns"));
        group.bench(&format!("exs/{label}"), || {
            exs::solve_with_threads(black_box(&platform), 1).expect("exs")
        });
        group.bench(&format!("ao/{label}"), || {
            ao::solve_with(black_box(&platform), &quick_ao()).expect("ao")
        });
        group.bench(&format!("pco/{label}"), || {
            pco::solve_with(black_box(&platform), &quick_pco()).expect("pco")
        });
    }
}

fn bench_exs_scaling(r: &mut Runner) {
    // EXS cost vs level count on the 9-core platform: the exponential wall.
    let mut group = r.group("exs_scaling_9core");
    for levels in [2usize, 3, 4] {
        let platform = Platform::build(&PlatformSpec::paper(3, 3, levels, 65.0)).expect("platform");
        group.bench(&levels.to_string(), || {
            exs::solve_with_threads(black_box(&platform), 1).expect("exs")
        });
    }
}

fn bench_bnb_vs_plain(r: &mut Runner) {
    // Branch-and-bound vs exhaustive enumeration on the 9-core platform:
    // same optimum, different visit counts.
    let mut group = r.group("exs_bnb_9core");
    for levels in [3usize, 4] {
        let platform = Platform::build(&PlatformSpec::paper(3, 3, levels, 55.0)).expect("platform");
        group.bench(&format!("plain/{levels}"), || {
            exs::solve_with_threads(black_box(&platform), 1).expect("exs")
        });
        group.bench(&format!("bnb/{levels}"), || {
            mosc_core::exs_bnb::solve(black_box(&platform)).expect("bnb")
        });
    }
}

fn bench_exs_parallel(r: &mut Runner) {
    let mut group = r.group("exs_threads_9core_4l");
    let platform = Platform::build(&PlatformSpec::paper(3, 3, 4, 65.0)).expect("platform");
    for threads in [1usize, 2, 4] {
        group.bench(&threads.to_string(), || {
            exs::solve_with_threads(black_box(&platform), threads).expect("exs")
        });
    }
}

fn main() {
    let mut r = Runner::from_args();
    bench_algorithms(&mut r);
    bench_exs_scaling(&mut r);
    bench_bnb_vs_plain(&mut r);
    bench_exs_parallel(&mut r);
}
