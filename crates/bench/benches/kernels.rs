//! Criterion micro-benchmarks of the numerical kernels behind the
//! computation-time claims: the matrix exponential, LU solves, the Jacobi
//! eigensolver, and the diagonalized propagator that makes Algorithm 2's
//! m sweep cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mosc_linalg::{expm_scaled, Lu, Matrix, SymmetricEigen, Vector};
use mosc_thermal::{Floorplan, RcConfig, RcNetwork, ThermalModel};
use std::hint::black_box;

fn thermal_model(rows: usize, cols: usize) -> ThermalModel {
    let f = Floorplan::paper_grid(rows, cols).expect("floorplan");
    let n = RcNetwork::build(&f, &RcConfig::default()).expect("network");
    ThermalModel::new(n, 0.03).expect("model")
}

fn bench_expm(c: &mut Criterion) {
    let mut group = c.benchmark_group("expm");
    for (rows, cols) in [(1usize, 2usize), (2, 3), (3, 3)] {
        let model = thermal_model(rows, cols);
        let a = model.a_matrix();
        group.bench_with_input(
            BenchmarkId::new("pade", format!("{}n", a.rows())),
            &a,
            |b, a| b.iter(|| expm_scaled(black_box(a), 0.01).expect("expm")),
        );
    }
    group.finish();
}

fn bench_propagator_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("propagator");
    let model = thermal_model(3, 3);
    let a = model.a_matrix();
    // Padé from scratch per dt vs the model's diagonalized+cached path.
    group.bench_function("pade_per_dt", |b| {
        let mut dt = 0.001;
        b.iter(|| {
            dt += 1e-9; // force a fresh value each iteration
            expm_scaled(black_box(&a), dt).expect("expm")
        });
    });
    group.bench_function("eigen_per_dt", |b| {
        let mut dt = 0.001;
        b.iter(|| {
            dt += 1e-9;
            model.propagator(black_box(dt)).expect("propagator")
        });
    });
    group.bench_function("cached_dt", |b| {
        b.iter(|| model.propagator(black_box(0.005)).expect("propagator"));
    });
    group.finish();
}

fn bench_lu(c: &mut Criterion) {
    let mut group = c.benchmark_group("lu");
    for n in [8usize, 16, 32] {
        let mut a = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 13) % 10) as f64 * 0.1);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let b_vec = Vector::from_fn(n, |i| (i as f64).sin());
        group.bench_with_input(BenchmarkId::new("factor", n), &a, |b, a| {
            b.iter(|| Lu::new(black_box(a)).expect("lu"));
        });
        let lu = Lu::new(&a).expect("lu");
        group.bench_with_input(BenchmarkId::new("solve", n), &lu, |b, lu| {
            b.iter(|| lu.solve_vec(black_box(&b_vec)).expect("solve"));
        });
    }
    group.finish();
}

fn bench_jacobi(c: &mut Criterion) {
    let mut group = c.benchmark_group("jacobi");
    for n in [8usize, 16, 32] {
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = (((i * 31 + j * 17) % 19) as f64 - 9.0) * 0.05;
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
            a[(i, i)] += 2.0;
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &a, |b, a| {
            b.iter(|| SymmetricEigen::new(black_box(a)).expect("eigen"));
        });
    }
    group.finish();
}

fn bench_steady_state(c: &mut Criterion) {
    let mut group = c.benchmark_group("steady_state");
    for (rows, cols) in [(1usize, 3usize), (3, 3)] {
        let model = thermal_model(rows, cols);
        let psi: Vec<f64> = (0..model.n_cores()).map(|i| 5.0 + i as f64).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(rows * cols),
            &model,
            |b, m| b.iter(|| m.steady_state_cores(black_box(&psi)).expect("steady")),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
        .sample_size(20);
    targets =
    bench_expm,
    bench_propagator_paths,
    bench_lu,
    bench_jacobi,
    bench_steady_state

}
criterion_main!(benches);
