//! Micro-benchmarks of the numerical kernels behind the computation-time
//! claims: the matrix exponential, LU solves, the Jacobi eigensolver, and
//! the diagonalized propagator that makes Algorithm 2's m sweep cheap.

use mosc_bench::micro::Runner;
use mosc_linalg::{expm_scaled, Lu, Matrix, SymmetricEigen, Vector};
use mosc_thermal::{Floorplan, RcConfig, RcNetwork, ThermalModel};
use std::hint::black_box;

fn thermal_model(rows: usize, cols: usize) -> ThermalModel {
    let f = Floorplan::paper_grid(rows, cols).expect("floorplan");
    let n = RcNetwork::build(&f, &RcConfig::default()).expect("network");
    ThermalModel::new(n, 0.03).expect("model")
}

fn bench_expm(r: &mut Runner) {
    let mut group = r.group("expm");
    for (rows, cols) in [(1usize, 2usize), (2, 3), (3, 3)] {
        let model = thermal_model(rows, cols);
        let a = model.a_matrix();
        group.bench(&format!("pade/{}n", a.rows()), || {
            expm_scaled(black_box(&a), 0.01).expect("expm")
        });
    }
}

fn bench_propagator_paths(r: &mut Runner) {
    let mut group = r.group("propagator");
    let model = thermal_model(3, 3);
    let a = model.a_matrix();
    // Padé from scratch per dt vs the model's diagonalized+cached path.
    let mut dt = 0.001;
    group.bench("pade_per_dt", || {
        dt += 1e-9; // force a fresh value each iteration
        expm_scaled(black_box(&a), dt).expect("expm")
    });
    let mut dt = 0.001;
    group.bench("eigen_per_dt", || {
        dt += 1e-9;
        model.propagator(black_box(dt)).expect("propagator")
    });
    group.bench("cached_dt", || model.propagator(black_box(0.005)).expect("propagator"));
}

fn bench_lu(r: &mut Runner) {
    let mut group = r.group("lu");
    for n in [8usize, 16, 32] {
        let mut a = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 13) % 10) as f64 * 0.1);
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let b_vec = Vector::from_fn(n, |i| (i as f64).sin());
        group.bench(&format!("factor/{n}"), || Lu::new(black_box(&a)).expect("lu"));
        let lu = Lu::new(&a).expect("lu");
        group.bench(&format!("solve/{n}"), || lu.solve_vec(black_box(&b_vec)).expect("solve"));
    }
}

fn bench_jacobi(r: &mut Runner) {
    let mut group = r.group("jacobi");
    for n in [8usize, 16, 32] {
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = (((i * 31 + j * 17) % 19) as f64 - 9.0) * 0.05;
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
            a[(i, i)] += 2.0;
        }
        group.bench(&n.to_string(), || SymmetricEigen::new(black_box(&a)).expect("eigen"));
    }
}

fn bench_steady_state(r: &mut Runner) {
    let mut group = r.group("steady_state");
    for (rows, cols) in [(1usize, 3usize), (3, 3)] {
        let model = thermal_model(rows, cols);
        let psi: Vec<f64> = (0..model.n_cores()).map(|i| 5.0 + i as f64).collect();
        group.bench(&(rows * cols).to_string(), || {
            model.steady_state_cores(black_box(&psi)).expect("steady")
        });
    }
}

fn main() {
    let mut r = Runner::from_args();
    bench_expm(&mut r);
    bench_propagator_paths(&mut r);
    bench_lu(&mut r);
    bench_jacobi(&mut r);
    bench_steady_state(&mut r);
}
