//! Micro-benchmarks of peak-temperature evaluation — the Theorem-1 step-up
//! fast path vs dense sampling, which is the paper's core computational
//! argument for restricting AO to step-up schedules.

use mosc_bench::micro::Runner;
use mosc_sched::eval::{peak_temperature, SteadyState};
use mosc_sched::{Platform, PlatformSpec, Schedule};
use mosc_workload::{rng, ScheduleGen};
use std::hint::black_box;

fn platform(rows: usize, cols: usize) -> Platform {
    Platform::build(&PlatformSpec::paper(rows, cols, 5, 65.0)).expect("platform")
}

fn bench_peak_paths(r: &mut Runner) {
    let mut group = r.group("peak");
    for (rows, cols) in [(1usize, 3usize), (3, 3)] {
        let p = platform(rows, cols);
        let n = rows * cols;
        let gen = ScheduleGen { period: 0.5, max_segments: 3, ..ScheduleGen::default() };
        let stepup = gen.stepup_schedule(&mut rng(77), n);
        // Pre-warm the propagator cache so the benchmark isolates the
        // per-evaluation cost, matching how the algorithms use it.
        let _ = p.peak(&stepup).expect("peak");

        group.bench(&format!("thm1_exact/{n}"), || {
            peak_temperature(p.thermal(), p.power(), black_box(&stepup), None).expect("peak")
        });
        // The same schedule evaluated the slow way (as if not step-up).
        for samples in [100usize, 400] {
            group.bench(&format!("sampled_{samples}/{n}"), || {
                let ss = SteadyState::compute(p.thermal(), p.power(), black_box(&stepup))
                    .expect("steady");
                ss.peak_sampled(p.thermal(), samples).expect("peak")
            });
        }
    }
}

fn bench_oscillation_eval(r: &mut Runner) {
    // Cost of evaluating S(m, t) as m grows: the m sweep's inner loop.
    let mut group = r.group("oscillated_eval_6core");
    let p = platform(2, 3);
    let base = Schedule::two_mode(&[0.6; 6], &[1.3; 6], &[0.4, 0.5, 0.6, 0.3, 0.45, 0.55], 0.1)
        .expect("base schedule");
    for m in [1usize, 8, 64] {
        let s = base.oscillated(m);
        group.bench(&m.to_string(), || p.peak(black_box(&s)).expect("peak"));
    }
}

fn main() {
    let mut r = Runner::from_args();
    bench_peak_paths(&mut r);
    bench_oscillation_eval(&mut r);
}
