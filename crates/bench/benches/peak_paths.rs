//! Criterion benchmarks of peak-temperature evaluation — the Theorem-1
//! step-up fast path vs dense sampling, which is the paper's core
//! computational argument for restricting AO to step-up schedules.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mosc_sched::eval::{peak_temperature, SteadyState};
use mosc_sched::{Platform, PlatformSpec, Schedule};
use mosc_workload::{rng, ScheduleGen};
use std::hint::black_box;

fn platform(rows: usize, cols: usize) -> Platform {
    Platform::build(&PlatformSpec::paper(rows, cols, 5, 65.0)).expect("platform")
}

fn bench_peak_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("peak");
    for (rows, cols) in [(1usize, 3usize), (3, 3)] {
        let p = platform(rows, cols);
        let n = rows * cols;
        let gen = ScheduleGen { period: 0.5, max_segments: 3, ..ScheduleGen::default() };
        let stepup = gen.stepup_schedule(&mut rng(77), n);
        // Pre-warm the propagator cache so the benchmark isolates the
        // per-evaluation cost, matching how the algorithms use it.
        let _ = p.peak(&stepup).expect("peak");

        group.bench_function(BenchmarkId::new("thm1_exact", n), |b| {
            b.iter(|| {
                peak_temperature(p.thermal(), p.power(), black_box(&stepup), None).expect("peak")
            });
        });
        // The same schedule evaluated the slow way (as if not step-up).
        for samples in [100usize, 400] {
            group.bench_function(BenchmarkId::new(format!("sampled_{samples}"), n), |b| {
                b.iter(|| {
                    let ss = SteadyState::compute(p.thermal(), p.power(), black_box(&stepup))
                        .expect("steady");
                    ss.peak_sampled(p.thermal(), samples).expect("peak")
                });
            });
        }
    }
    group.finish();
}

fn bench_oscillation_eval(c: &mut Criterion) {
    // Cost of evaluating S(m, t) as m grows: the m sweep's inner loop.
    let mut group = c.benchmark_group("oscillated_eval_6core");
    let p = platform(2, 3);
    let base = Schedule::two_mode(&[0.6; 6], &[1.3; 6], &[0.4, 0.5, 0.6, 0.3, 0.45, 0.55], 0.1)
        .expect("base schedule");
    for m in [1usize, 8, 64] {
        let s = base.oscillated(m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &s, |b, s| {
            b.iter(|| p.peak(black_box(s)).expect("peak"));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
        .sample_size(20);
    targets = bench_peak_paths, bench_oscillation_eval
}
criterion_main!(benches);
