//! Extension — 3-D stacking ablation.
//!
//! The paper's introduction motivates the thermal problem with 3-D ICs
//! (longer heat-removal paths, higher power density). This experiment makes
//! that quantitative on our substrate: the same four cores arranged as a
//! planar 2×2 grid vs a two-layer stack of 1×2 grids, compared at equal
//! `T_max` across the algorithm suite.

use mosc_bench::compare::{ao_options, Comparison};
use mosc_bench::{csv_dir_from_args, f4, write_csv, Table};
use mosc_core::ao;
use mosc_sched::{Platform, PlatformSpec};

fn main() {
    let csv = csv_dir_from_args();
    println!("3-D stacking ablation — 4 cores as planar 2x2 vs stacked 2x(1x2)\n");

    let mut table = Table::new(&["layout", "T_max (C)", "LNS", "EXS", "AO", "AO m"]);
    let mut csv_out = String::from("layout,t_max_c,lns,exs,ao,m\n");
    for &t_max_c in &[55.0, 60.0, 65.0] {
        for (label, layers, rows, cols) in
            [("planar 2x2", 1usize, 2usize, 2usize), ("stack 2x(1x2)", 2, 1, 2)]
        {
            let spec = PlatformSpec { layers, ..PlatformSpec::paper(rows, cols, 2, t_max_c) };
            let platform = Platform::build(&spec).expect("platform");
            let cmp = Comparison::run(&platform);
            let m = cmp.ao.as_ref().map_or(0, |s| s.m);
            table.row(vec![
                label.to_string(),
                format!("{t_max_c:.0}"),
                f4(Comparison::throughput(&cmp.lns)),
                f4(Comparison::throughput(&cmp.exs)),
                f4(Comparison::throughput(&cmp.ao)),
                m.to_string(),
            ]);
            csv_out.push_str(&format!(
                "{label},{t_max_c},{:.6},{:.6},{:.6},{m}\n",
                Comparison::throughput(&cmp.lns),
                Comparison::throughput(&cmp.exs),
                Comparison::throughput(&cmp.ao),
            ));
        }
    }
    println!("{}", table.render());

    // Per-layer detail at 60 C: the upper layer should be forced slower.
    let spec = PlatformSpec { layers: 2, ..PlatformSpec::paper(1, 2, 2, 60.0) };
    let platform = Platform::build(&spec).expect("platform");
    if let Ok(sol) = ao::solve_with(&platform, &ao_options()) {
        let per_core: Vec<f64> =
            sol.schedule.cores().iter().map(|c| c.work() / sol.schedule.period()).collect();
        println!(
            "stacked per-core mean speed at 60 C: sink layer [{:.3}, {:.3}], upper layer [{:.3}, {:.3}]",
            per_core[0], per_core[1], per_core[2], per_core[3]
        );
        println!("(the paper's 3-D motivation: the far-from-sink layer is throttled harder)");
    }

    if let Some(dir) = csv {
        write_csv(&dir, "ablation_3d.csv", &csv_out);
    }
}
