//! Extension — ablation of AO's design choices (the DESIGN.md list):
//!
//! 1. **m sweep** — AO with the oscillation factor pinned to 1 vs free:
//!    what the m-Oscillating idea itself buys.
//! 2. **Base period** — sensitivity of the final throughput to `t_p`.
//! 3. **Neighboring pairs** — AO restricted to the extreme pair
//!    (lowest, highest level) instead of the neighboring pair, quantifying
//!    Theorem 4's advice.

use mosc_bench::compare::ao_options;
use mosc_bench::{csv_dir_from_args, f4, write_csv, Table};
use mosc_core::ao::{self, adjust_to_tmax, AoOptions, CorePair};
use mosc_core::continuous;
use mosc_sched::{Platform, PlatformSpec};

fn main() {
    let csv = csv_dir_from_args();
    let platform = Platform::build(&PlatformSpec::paper(2, 3, 4, 55.0)).expect("platform");
    println!("AO design ablation — 6-core, 4 levels, T_max = 55 C\n");
    let mut csv_out = String::from("ablation,variant,throughput\n");

    // 1. m sweep on/off.
    let free = ao::solve_with(&platform, &ao_options()).expect("free m");
    let pinned = ao::solve_with(&platform, &AoOptions { max_m: 1, ..ao_options() }).expect("m=1");
    let mut t1 = Table::new(&["variant", "throughput", "m"]);
    t1.row(vec!["m pinned to 1".into(), f4(pinned.throughput), "1".into()]);
    t1.row(vec!["m swept (AO)".into(), f4(free.throughput), free.m.to_string()]);
    println!("1) oscillation-factor sweep:\n{}", t1.render());
    csv_out.push_str(&format!(
        "m_sweep,pinned,{:.6}\nm_sweep,free,{:.6}\n",
        pinned.throughput, free.throughput
    ));

    // 2. Base-period sensitivity.
    let mut t2 = Table::new(&["base period (ms)", "throughput", "m"]);
    for &tp in &[0.01, 0.02, 0.05, 0.1, 0.2] {
        let sol = ao::solve_with(&platform, &AoOptions { base_period: tp, ..ao_options() })
            .expect("period variant");
        t2.row(vec![format!("{:.0}", tp * 1e3), f4(sol.throughput), sol.m.to_string()]);
        csv_out.push_str(&format!("base_period,{tp},{:.6}\n", sol.throughput));
    }
    println!("2) base-period sensitivity:\n{}", t2.render());

    // 3. Neighboring vs extreme pairs (Theorem 4 in practice).
    let ideal = continuous::solve(&platform).expect("ideal");
    let neighbor_pairs = ao::build_pairs(&platform, &ideal.voltages);
    let modes = platform.modes();
    let extreme_pairs: Vec<CorePair> = ideal
        .voltages
        .iter()
        .map(|&v| {
            let (lo, hi) = (modes.lowest(), modes.highest());
            CorePair { v_low: lo, v_high: hi, ratio_high: ((v - lo) / (hi - lo)).clamp(0.0, 1.0) }
        })
        .collect();
    let t_c = 0.05 / free.m.max(1) as f64;
    let mut t3 = Table::new(&["pair choice", "throughput"]);
    for (label, pairs) in
        [("neighboring (Thm 4)", &neighbor_pairs), ("extreme (0.6, 1.3)", &extreme_pairs)]
    {
        match adjust_to_tmax(&platform, pairs, t_c, t_c / 100.0) {
            Ok((_, sched)) => {
                let thr = sched.throughput_with_overhead(platform.overhead());
                t3.row(vec![label.into(), f4(thr)]);
                csv_out.push_str(&format!("pair_choice,{label},{thr:.6}\n"));
            }
            Err(e) => t3.row(vec![label.into(), format!("infeasible ({e})")]),
        }
    }
    println!("3) level-pair choice:\n{}", t3.render());

    if let Some(dir) = csv {
        write_csv(&dir, "ablation_design.csv", &csv_out);
    }
}
