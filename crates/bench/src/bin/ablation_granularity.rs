//! Extension — thermal-model granularity ablation.
//!
//! The paper (and this reproduction's algorithms) lump each core into one
//! thermal node. `HotSpot`'s grid mode subdivides further; this experiment
//! quantifies what the lumping hides: per-core peak steady temperatures
//! under the same power, at 1×1 (lumped) through 4×4 blocks per core, and
//! the effect on the *constraint margin* of an AO schedule certified with
//! the lumped model.

use mosc_bench::compare::ao_options;
use mosc_bench::{csv_dir_from_args, f2, write_csv, Table};
use mosc_core::ao;
use mosc_sched::{Platform, PlatformSpec};
use mosc_thermal::{Floorplan, GridModel, RcConfig};

fn main() {
    let csv = csv_dir_from_args();
    let floorplan = Floorplan::paper_grid(2, 3).expect("floorplan");
    let rc = RcConfig::default();
    let beta = 0.03;
    println!("Thermal granularity ablation — 6-core chip, uniform and skewed power\n");

    let mut table =
        Table::new(&["blocks/core", "die nodes", "uniform peak (C)", "skewed peak (C)"]);
    let uniform = vec![14.0; 6];
    let skewed = vec![18.6, 2.7, 18.6, 2.7, 18.6, 2.7];
    let mut csv_out = String::from("blocks,uniform_peak_c,skewed_peak_c\n");
    for b in 1..=4usize {
        let g = GridModel::build(&floorplan, &rc, beta, b, b).expect("grid model");
        let up = g.steady_state_cores(&uniform).expect("steady").max() + 35.0;
        let sp = g.steady_state_cores(&skewed).expect("steady").max() + 35.0;
        table.row(vec![format!("{b}x{b}"), g.n_blocks().to_string(), f2(up), f2(sp)]);
        csv_out.push_str(&format!("{b},{up:.4},{sp:.4}\n"));
    }
    println!("{}", table.render());

    // How much certification margin does the lumped model need? Evaluate an
    // AO schedule (certified lumped) against the finest grid.
    let platform = Platform::build(&PlatformSpec::paper(2, 3, 2, 55.0)).expect("platform");
    let sol = ao::solve_with(&platform, &ao_options()).expect("AO");
    let g = GridModel::build(&floorplan, &rc, beta, 3, 3).expect("grid");
    // Steady state of the schedule's time-averaged power is a close proxy for
    // the oscillating schedule at AO's large m (sub-ms compressed periods).
    let avg_psi: Vec<f64> = sol
        .schedule
        .cores()
        .iter()
        .map(|c| {
            c.segments().iter().map(|s| platform.power().psi(s.voltage) * s.duration).sum::<f64>()
                / sol.schedule.period()
        })
        .collect();
    let lumped_peak = platform.thermal().steady_state_cores(&avg_psi).expect("steady").max();
    let grid_peak = g.steady_state_cores(&avg_psi).expect("steady").max();
    println!(
        "AO schedule certified lumped at {:.2} C; 3x3-grid model reads {:.2} C (margin to eat: {:.2} K)",
        lumped_peak + 35.0,
        grid_peak + 35.0,
        grid_peak - lumped_peak
    );
    println!("=> a production deployment should derate T_max by the final column's gap.");

    if let Some(dir) = csv {
        write_csv(&dir, "ablation_granularity.csv", &csv_out);
    }
}
