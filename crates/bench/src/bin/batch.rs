//! E-BT — batched solves: `solve_batch` against the platform registry vs
//! the same work as individual solve requests.
//!
//! Three phases against one in-process `mosc-serve` daemon, all running
//! short-horizon governor solves on one 8-core platform under
//! cache-key-distinct option variants (`threads` is part of the
//! solution-cache key but does not change the math, so every request
//! below is a *real* solve, never a solution-cache hit):
//!
//! 1. `per_request` — each variant as its own solve request. The single
//!    request path never touches the platform registry, so every request
//!    re-parses, re-canonicalizes and re-builds the platform — including
//!    the eigendecomposition — before solving.
//! 2. `batch_cold` — one `solve_batch` whose resolve interns the platform:
//!    the build happens once and is amortized over the whole batch.
//! 3. `batch_warm` — repeated `solve_batch` rounds on the now-interned
//!    platform: zero eigendecompositions (asserted via the process-global
//!    `eigen.calls` counter — the daemon runs in this process), just the
//!    per-variant solves, which also reuse the interned platform's
//!    transient-propagator cache across rounds.
//!
//! The table reports per-variant wall time per phase; `speedup_x` on the
//! `batch_warm` record is the per-request p50 over the warm per-variant
//! p50 — the amortization the registry buys a design-space sweep. With
//! `--csv <dir>` the records land in `BENCH_batch.json` (schema v2), the
//! artifact `ci.sh` lints and diffs against `benches/baseline`.

use mosc_analyze::json::Value;
use mosc_bench::record::{BenchLog, RunMeta};
use mosc_bench::{csv_dir_from_args, timed, Table};
use mosc_core::reactive::GovernorOptions;
use mosc_core::{SolveOptions, SolverKind};
use mosc_serve::{
    fresh_span_id, fresh_trace_id, BatchRequest, BatchVariantRequest, Request, Server,
    SolveRequest, TraceContext,
};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// Variants per batch (and per per-request round).
const VARIANTS: usize = 8;

/// Measured rounds: `batch_warm` sends this many batches, `per_request`
/// the same number of variant sets as individual requests.
const ROUNDS: usize = 6;

/// One platform for the whole bench: `per_request` never interns it, the
/// first batch does, every later batch finds it warm.
const PLATFORM: &str = r#"{"rows":2,"cols":4,"levels":[0.6,1.3],"t_max_c":65.0}"#;

fn platform() -> Value {
    Value::parse(PLATFORM).expect("platform literal")
}

/// Solver options shared by every variant; `threads` comes from a
/// phase-disjoint namespace so no phase ever hits the solution cache on
/// another phase's entries.
fn solve_options(threads: usize) -> SolveOptions {
    SolveOptions {
        threads,
        governor: GovernorOptions {
            horizon: 1.0,
            warmup: 0.25,
            control_period: 0.1,
            ..GovernorOptions::default()
        },
        ..SolveOptions::default()
    }
}

/// Every bench request originates a fresh root trace context, so the
/// daemon's trace-continuation path (including per-variant fan-out) is on
/// the measured path, exactly as a v2 client would drive it.
fn origin() -> TraceContext {
    TraceContext { trace_id: fresh_trace_id(), parent_id: fresh_span_id() }
}

fn solve_line(id: &str, threads: usize) -> String {
    Request::Solve(SolveRequest {
        id: id.to_owned(),
        kind: SolverKind::Governor,
        platform: platform(),
        options: solve_options(threads),
        want_schedule: false,
        trace: Some(origin()),
    })
    .to_json()
}

fn batch_line(id: &str, threads0: usize) -> String {
    Request::SolveBatch(BatchRequest {
        id: id.to_owned(),
        platform: platform(),
        variants: (0..VARIANTS)
            .map(|v| BatchVariantRequest {
                kind: SolverKind::Governor,
                options: solve_options(threads0 + v),
                want_schedule: false,
            })
            .collect(),
        trace: Some(origin()),
    })
    .to_json()
}

/// Exact quantile of an ascending-sorted slice: smallest element whose
/// rank covers `q` of the mass (matches the analyzer's oracle).
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// Sends one line, reads one response line, asserts it came back ok.
fn roundtrip(stream: &mut TcpStream, responses: &mut BufReader<TcpStream>, line: &str) -> String {
    stream.write_all(line.as_bytes()).expect("send request");
    stream.write_all(b"\n").expect("send newline");
    let mut response = String::new();
    responses.read_line(&mut response).expect("read response");
    assert!(response.contains("\"status\":\"ok\""), "request failed: {response}");
    response
}

/// One phase's outcome: total wall, per-variant latencies (ms, sorted)
/// and the eigendecompositions the phase performed.
struct Phase {
    wall_s: f64,
    count: usize,
    lat_ms: Vec<f64>,
    eigen_calls: u64,
}

fn quantile_row(table: &mut Table, mode: &str, p: &Phase) {
    table.row(vec![
        mode.to_string(),
        p.count.to_string(),
        format!("{:.4}", p.wall_s),
        format!("{:.4}", exact_quantile(&p.lat_ms, 0.50)),
        format!("{:.4}", exact_quantile(&p.lat_ms, 0.90)),
        format!("{:.4}", p.lat_ms.last().copied().unwrap_or(0.0)),
        p.eigen_calls.to_string(),
    ]);
}

fn record(p: &Phase, mode: &str, speedup_x: Option<f64>) -> String {
    let mut line = String::new();
    let _ = write!(
        line,
        "{{\"type\":\"batch\",\"mode\":\"{mode}\",\"variants\":{VARIANTS},\
         \"count\":{},\"wall_s\":{:?},\"p50_ms\":{:?},\"p90_ms\":{:?},\
         \"p99_ms\":{:?},\"max_ms\":{:?},\"eigen_calls\":{}",
        p.count,
        p.wall_s,
        exact_quantile(&p.lat_ms, 0.50),
        exact_quantile(&p.lat_ms, 0.90),
        exact_quantile(&p.lat_ms, 0.99),
        p.lat_ms.last().copied().unwrap_or(0.0),
        p.eigen_calls
    );
    if let Some(s) = speedup_x {
        let _ = write!(line, ",\"speedup_x\":{s:?}");
    }
    line.push('}');
    line
}

fn eigs() -> u64 {
    mosc_obs::counter_value("eigen.calls").unwrap_or(0)
}

fn main() {
    // The eigen.calls counter (and the daemon's histograms) only move
    // while the process-global recorder is armed.
    mosc_obs::enable();
    let csv = csv_dir_from_args();

    let server = Server::builder().addr("127.0.0.1:0").bind().expect("bind 127.0.0.1:0");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("serve loop"));

    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("TCP_NODELAY");
    let mut responses = BufReader::new(stream.try_clone().expect("clone socket"));
    let mut stream = stream;

    // Phase 1 — per-request: every solve re-resolves the platform.
    let before = eigs();
    let mut lat_ms = Vec::with_capacity(ROUNDS * VARIANTS);
    let ((), wall_s) = timed(|| {
        for j in 0..ROUNDS * VARIANTS {
            let line = solve_line(&format!("pr{j}"), 1000 + j);
            let ((), one) = timed(|| {
                roundtrip(&mut stream, &mut responses, &line);
            });
            lat_ms.push(one * 1e3);
        }
    });
    lat_ms.sort_by(f64::total_cmp);
    let per_request =
        Phase { wall_s, count: ROUNDS * VARIANTS, lat_ms, eigen_calls: eigs() - before };

    // Phase 2 — first batch: the resolve interns the platform (one build).
    let before = eigs();
    let line = batch_line("cold", 2000);
    let ((), wall_s) = timed(|| {
        roundtrip(&mut stream, &mut responses, &line);
    });
    let cold = Phase {
        wall_s,
        count: VARIANTS,
        lat_ms: vec![wall_s * 1e3 / VARIANTS as f64],
        eigen_calls: eigs() - before,
    };

    // Phase 3 — warm batches: fresh cache keys every round (real solves),
    // platform straight from the registry.
    let before = eigs();
    let mut lat_ms = Vec::with_capacity(ROUNDS);
    let ((), wall_s) = timed(|| {
        for r in 0..ROUNDS {
            let line = batch_line(&format!("w{r}"), 3000 + r * VARIANTS);
            let ((), one) = timed(|| {
                roundtrip(&mut stream, &mut responses, &line);
            });
            lat_ms.push(one * 1e3 / VARIANTS as f64);
        }
    });
    lat_ms.sort_by(f64::total_cmp);
    let warm = Phase { wall_s, count: ROUNDS * VARIANTS, lat_ms, eigen_calls: eigs() - before };
    assert_eq!(warm.eigen_calls, 0, "a warm solve_batch must do zero eigendecomposition work");

    handle.shutdown();
    join.join().expect("server thread");

    let speedup_x =
        exact_quantile(&per_request.lat_ms, 0.50) / exact_quantile(&warm.lat_ms, 0.50).max(1e-9);

    println!(
        "batched solves — {VARIANTS} variants/batch, {ROUNDS} rounds, \
         per-variant latencies (ms)\n"
    );
    let mut table =
        Table::new(&["mode", "solves", "wall (s)", "p50 (ms)", "p90 (ms)", "max (ms)", "eigs"]);
    quantile_row(&mut table, "per_request", &per_request);
    quantile_row(&mut table, "batch_cold", &cold);
    quantile_row(&mut table, "batch_warm", &warm);
    println!("{}", table.render());
    println!("warm batches solve on the interned platform with zero eigendecompositions;");
    println!("warm per-variant p50 is {speedup_x:.1}x faster than a per-request solve.");

    let meta = RunMeta::capture("batch").option("variants", VARIANTS).option("rounds", ROUNDS);
    let mut log = BenchLog::new(&meta);
    log.push(&record(&per_request, "per_request", None));
    log.push(&record(&cold, "batch_cold", None));
    log.push(&record(&warm, "batch_warm", Some(speedup_x)));
    if let Some(dir) = csv {
        log.write(&dir, "BENCH_batch.json");
    }
}
