//! `mosc-bench compare` — direction-aware regression gate between two
//! BENCH schema-v2 artifacts.
//!
//! ```text
//! compare [--json] [--warn-only] BASELINE.json CANDIDATE.json
//! ```
//!
//! Matches records between the artifacts by identity key and flags every
//! known metric that moved past its noise threshold in the bad direction
//! (latency up, throughput down — see `mosc_bench::regress`). Exit codes
//! are typed for CI:
//!
//! * `0` — comparable, no regression (improvements never fail a run)
//! * `1` — at least one regression (suppressed by `--warn-only`)
//! * `2` — usage, IO, or parse problem (including schema-v1 inputs)
//! * `4` — both artifacts parsed but share no comparable records
//!
//! `--json` swaps the text report for one machine-readable JSON object;
//! `--warn-only` keeps the report but always exits 0 on regressions, the
//! default posture of `ci.sh` (its `--deny` flag drops it for release
//! gating).

use mosc_bench::regress::{compare_artifacts, CompareError};
use std::process::ExitCode;

const USAGE: &str = "usage: compare [--json] [--warn-only] BASELINE.json CANDIDATE.json";

fn main() -> ExitCode {
    let mut json = false;
    let mut warn_only = false;
    let mut files: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--warn-only" => warn_only = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag {flag}\n{USAGE}");
                return ExitCode::from(2);
            }
            file => files.push(file.to_string()),
        }
    }
    let [old_path, new_path] = files.as_slice() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let (old_text, new_text) = match (read(old_path), read(new_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    match compare_artifacts(&old_text, &new_text) {
        Ok(cmp) => {
            if json {
                println!("{}", cmp.render_json());
            } else {
                print!("{}", cmp.render_text());
            }
            if cmp.has_regressions() && !warn_only {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(CompareError::Parse(m)) => {
            eprintln!("{m}");
            ExitCode::from(2)
        }
        Err(CompareError::Incomparable(m)) => {
            eprintln!("{m}");
            ExitCode::from(4)
        }
    }
}
