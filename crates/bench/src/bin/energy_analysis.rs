//! Extension — the energy price of frequency oscillation.
//!
//! AO buys throughput under a temperature cap by oscillating between levels;
//! Theorem 3 says the oscillating schedule runs hotter than the same-work
//! constant schedule, and ψ's convexity says it burns more switching power.
//! This experiment prices that: for each platform, energy per unit work
//! (J per speed·second) of LNS / EXS / AO at equal `T_max`, plus AO's
//! energy-vs-m curve at fixed work.

use mosc_bench::compare::ao_options;
use mosc_bench::{csv_dir_from_args, f4, write_csv, Table};
use mosc_core::{ao, exs, lns};
use mosc_sched::eval::stable_energy_per_period;
use mosc_sched::{Platform, PlatformSpec, Schedule};
use mosc_workload::PAPER_CONFIGS;

fn main() {
    let csv = csv_dir_from_args();
    println!("Energy analysis — J per unit work at T_max = 55 C (2 levels)\n");

    let mut table = Table::new(&["cores", "algo", "throughput", "energy/period (J)", "J per work"]);
    let mut csv_out = String::from("cores,algo,throughput,energy_per_period,j_per_work\n");
    for &(rows, cols) in &PAPER_CONFIGS {
        let n = rows * cols;
        let platform =
            Platform::build(&PlatformSpec::paper(rows, cols, 2, 55.0)).expect("platform");
        let solutions = [
            lns::solve(&platform).ok(),
            exs::solve(&platform).ok(),
            ao::solve_with(&platform, &ao_options()).ok(),
        ];
        for sol in solutions.into_iter().flatten() {
            let energy =
                stable_energy_per_period(platform.thermal(), platform.power(), &sol.schedule, 400)
                    .expect("energy");
            let work_per_period = sol.schedule.throughput() * n as f64 * sol.schedule.period();
            let j_per_work = energy / work_per_period.max(1e-12);
            table.row(vec![
                n.to_string(),
                sol.algorithm.to_string(),
                f4(sol.throughput),
                format!("{energy:.4e}"),
                format!("{j_per_work:.3}"),
            ]);
            csv_out.push_str(&format!(
                "{n},{},{:.6},{energy:.6e},{j_per_work:.6}\n",
                sol.algorithm, sol.throughput
            ));
        }
    }
    println!("{}", table.render());
    println!(
        "AO's higher J-per-work is the energy price of the extra throughput the\n\
         temperature cap would otherwise forbid (convex ψ + Theorem 3).\n"
    );

    // Energy vs m at fixed work on a 3-core platform.
    let platform = Platform::build(&PlatformSpec::paper(1, 3, 2, 65.0)).expect("platform");
    let base = Schedule::two_mode(&[0.6; 3], &[1.3; 3], &[0.5; 3], 0.1).expect("schedule");
    let mut t2 = Table::new(&["m", "peak (C)", "energy/period (J)", "energy/second (W)"]);
    let mut csv2 = String::from("m,peak_c,energy_per_period,power_w\n");
    for m in [1usize, 2, 4, 8, 16, 32] {
        let s = base.oscillated(m);
        let peak = platform.peak(&s).expect("peak").temp + 35.0;
        let e = stable_energy_per_period(platform.thermal(), platform.power(), &s, 400)
            .expect("energy");
        let w = e / s.period();
        t2.row(vec![m.to_string(), format!("{peak:.2}"), format!("{e:.4e}"), format!("{w:.3}")]);
        csv2.push_str(&format!("{m},{peak:.4},{e:.6e},{w:.6}\n"));
    }
    println!("energy vs oscillation factor (same work each row):\n{}", t2.render());
    println!(
        "average power is nearly m-invariant while the peak falls with m: oscillation\n\
         reshapes *when* heat arrives, not how much — the thermal capacitance does the rest."
    );

    if let Some(dir) = csv {
        write_csv(&dir, "energy_analysis.csv", &csv_out);
        write_csv(&dir, "energy_vs_m.csv", &csv2);
    }
}
