//! E-F2 — Fig. 2: oscillating only one core can *raise* the multi-core peak.
//!
//! 2-core platform, 100 ms period. Base schedule: core 1 plays
//! (1.3 V, 0.6 V), core 2 plays (0.6 V, 1.3 V), 50 ms each. Variant: core 1
//! doubles its oscillation frequency while core 2 keeps its schedule.
//! Prints both stable-status traces and peaks; whole-chip oscillation is
//! shown as the contrast that *is* guaranteed to help (Theorem 5).

use mosc_bench::{csv_dir_from_args, write_csv};
use mosc_sched::eval::SteadyState;
use mosc_sched::{CoreSchedule, Platform, PlatformSpec, Schedule, Segment};

fn main() {
    let csv = csv_dir_from_args();
    let platform = Platform::build(&PlatformSpec::paper(1, 2, 2, 65.0)).expect("platform");

    let base = Schedule::new(vec![
        CoreSchedule::new(vec![Segment::new(1.3, 0.05), Segment::new(0.6, 0.05)]).expect("core1"),
        CoreSchedule::new(vec![Segment::new(0.6, 0.05), Segment::new(1.3, 0.05)]).expect("core2"),
    ])
    .expect("base schedule");

    let single = Schedule::new(vec![
        CoreSchedule::new(vec![
            Segment::new(1.3, 0.025),
            Segment::new(0.6, 0.025),
            Segment::new(1.3, 0.025),
            Segment::new(0.6, 0.025),
        ])
        .expect("core1 doubled"),
        CoreSchedule::new(vec![Segment::new(0.6, 0.05), Segment::new(1.3, 0.05)]).expect("core2"),
    ])
    .expect("single-core-oscillated schedule");

    let both = base.oscillated(2);

    println!("Fig. 2 — single-core oscillation is not guaranteed to cool the chip\n");
    let mut rows = Vec::new();
    for (label, sched) in [
        ("(a) base: both cores 50ms/50ms", &base),
        ("(c) core1 doubled, core2 unchanged", &single),
        ("    whole-chip m=2 (Theorem 5)", &both),
    ] {
        let peak = mosc_sched::eval::peak_temperature(
            platform.thermal(),
            platform.power(),
            sched,
            Some(2000),
        )
        .expect("peak");
        println!(
            "{label}: peak = {:.2} C (core {} at t = {:.1} ms)",
            platform.to_celsius(peak.temp),
            peak.core,
            peak.time * 1e3
        );
        rows.push((label, peak.temp));
    }
    let base_peak = rows[0].1;
    let single_peak = rows[1].1;
    let both_peak = rows[2].1;
    println!();
    if single_peak > base_peak {
        println!(
            "single-core oscillation RAISED the peak by {:.2} K — reproducing the paper's counterexample",
            single_peak - base_peak
        );
    } else {
        println!(
            "note: on this platform single-core oscillation changed the peak by {:+.2} K",
            single_peak - base_peak
        );
    }
    println!(
        "whole-chip oscillation lowered the peak by {:.2} K, as Theorem 5 guarantees",
        base_peak - both_peak
    );

    if let Some(dir) = csv {
        for (name, sched) in [("fig2_base.csv", &base), ("fig2_single.csv", &single)] {
            let ss = SteadyState::compute(platform.thermal(), platform.power(), sched)
                .expect("steady state");
            let trace = ss.trace(platform.thermal(), 500).expect("trace");
            write_csv(&dir, name, &trace.to_csv(platform.t_ambient_c()));
        }
    }
}
