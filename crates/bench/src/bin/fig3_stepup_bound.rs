//! E-F3 — Fig. 3: the step-up schedule bounds the peak of every phase
//! permutation.
//!
//! 3-core platform, 6 s period, each core 3 s at 0.6 V and 3 s at 1.3 V.
//! Core 1's high block starts at its step-up position; cores 2 and 3 sweep
//! their high-block start times `x₂, x₃` over the period in 0.1 s steps.
//! For every (x₂, x₃) the stable-status peak is sampled; the table reports
//! the min/max over the sweep and verifies the step-up schedule's exact peak
//! (Theorem 1 fast path) bounds them all from above.

use mosc_bench::{csv_dir_from_args, f2, timed, write_csv, Table};
use mosc_sched::eval::peak_temperature;
use mosc_sched::{Platform, PlatformSpec, Schedule};

fn main() {
    let csv = csv_dir_from_args();
    // The responsive (low-mass) package: the paper's 6 s period experiment
    // only shows its 13 K alignment spread when the package time constant is
    // commensurate with the interval lengths.
    let mut spec = PlatformSpec::paper(1, 3, 2, 65.0);
    spec.rc = mosc_thermal::RcConfig::responsive_package();
    let platform = Platform::build(&spec).expect("platform");
    let period = 6.0;
    let step = 0.1;
    let steps = (period / step) as usize; // 60 shift positions per core

    // The step-up base: every core low-then-high, 3 s each.
    let base = Schedule::two_mode(&[0.6; 3], &[1.3; 3], &[0.5; 3], period).expect("base");
    let stepup_peak = platform.peak(&base).expect("exact peak");
    assert!(stepup_peak.exact);

    println!("Fig. 3 — sweeping high-block start times x2, x3 over a 6 s period (0.1 s grid)");
    let ((min_peak, max_peak, grid), secs) = timed(|| sweep(&platform, &base, steps, step));
    println!("evaluated {} schedules in {:.2} s\n", steps * steps, secs);

    let mut t = Table::new(&["quantity", "peak (C)"]);
    t.row(vec!["step-up bound (exact, Thm 1)".into(), f2(platform.to_celsius(stepup_peak.temp))]);
    t.row(vec!["sweep max".into(), f2(platform.to_celsius(max_peak))]);
    t.row(vec!["sweep min".into(), f2(platform.to_celsius(min_peak))]);
    println!("{}", t.render());
    println!(
        "spread across phase alignments: {:.2} K (paper: 84.13 C max vs 71.22 C min = 12.91 K)",
        max_peak - min_peak
    );
    let bound_ok = max_peak <= stepup_peak.temp + 1e-3;
    println!(
        "step-up bound holds over the whole sweep: {}",
        if bound_ok { "YES" } else { "NO (violation!)" }
    );
    assert!(bound_ok, "Theorem 2 violated by the sweep");

    if let Some(dir) = csv {
        let mut csv_out = String::from("x2_s,x3_s,peak_c\n");
        for (x2, x3, peak) in &grid {
            csv_out.push_str(&format!("{x2:.1},{x3:.1},{:.4}\n", platform.to_celsius(*peak)));
        }
        write_csv(&dir, "fig3_peak_surface.csv", &csv_out);
    }
}

/// Sweeps x2, x3 in parallel rows; returns (min, max, grid of peaks).
fn sweep(
    platform: &Platform,
    base: &Schedule,
    steps: usize,
    step: f64,
) -> (f64, f64, Vec<(f64, f64, f64)>) {
    let rows: Vec<Vec<(f64, f64, f64)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..steps)
            .map(|i| {
                scope.spawn(move || {
                    let x2 = i as f64 * step;
                    let shifted2 = base.with_shifted_core(1, x2);
                    (0..steps)
                        .map(|j| {
                            let x3 = j as f64 * step;
                            let cand = shifted2.with_shifted_core(2, x3);
                            let peak = peak_temperature(
                                platform.thermal(),
                                platform.power(),
                                &cand,
                                Some(300),
                            )
                            .expect("peak")
                            .temp;
                            (x2, x3, peak)
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("sweep thread")).collect()
    });

    let grid: Vec<(f64, f64, f64)> = rows.into_iter().flatten().collect();
    let min = grid.iter().map(|g| g.2).fold(f64::INFINITY, f64::min);
    let max = grid.iter().map(|g| g.2).fold(f64::NEG_INFINITY, f64::max);
    (min, max, grid)
}
