//! E-F4 — Fig. 4: a 6-core step-up schedule's temperature trace.
//!
//! Random step-up schedule (1 s period, ≤3 intervals per core) on the 6-core
//! platform: (a) the warm-up from ambient, confirming each core rises
//! monotonically toward the stable status; (b) one period of the
//! stable-status trace, confirming the peak lands at the period end
//! (Theorem 1).

use mosc_bench::{csv_dir_from_args, f2, write_csv};
use mosc_linalg::Vector;
use mosc_sched::eval::{transient_trace, SteadyState};
use mosc_sched::{Platform, PlatformSpec};
use mosc_workload::{rng, ScheduleGen};

fn main() {
    let csv = csv_dir_from_args();
    let mut spec = PlatformSpec::paper(2, 3, 5, 65.0);
    spec.rc = mosc_thermal::RcConfig::responsive_package();
    let platform = Platform::build(&spec).expect("platform");

    let gen = ScheduleGen { period: 1.0, max_segments: 3, ..ScheduleGen::default() };
    let schedule = gen.stepup_schedule(&mut rng(2016), 6);
    assert!(schedule.is_step_up());

    println!("Fig. 4 — 6-core step-up schedule, 1 s period, <=3 intervals/core\n");

    // (a) Warm-up from ambient.
    let t0 = Vector::zeros(platform.thermal().n_nodes());
    let n_periods = 40;
    let warmup =
        transient_trace(platform.thermal(), platform.power(), &schedule, &t0, n_periods, 50)
            .expect("warm-up trace");
    let warm_peak = warmup.peak().expect("non-empty");

    // (b) Stable-status period.
    let ss = SteadyState::compute(platform.thermal(), platform.power(), &schedule).expect("steady");
    let stable = ss.trace(platform.thermal(), 500).expect("stable trace");
    let stable_peak = stable.peak().expect("non-empty");
    let period = schedule.period();

    println!(
        "(a) warm-up from {:.0} C ambient over {n_periods} periods: final peak {} C (core {})",
        platform.t_ambient_c(),
        f2(platform.to_celsius(warm_peak.temp)),
        warm_peak.core
    );
    println!(
        "(b) stable-status peak: {} C on core {} at t = {:.3} s of the {:.1} s period",
        f2(platform.to_celsius(stable_peak.temp)),
        stable_peak.core,
        stable_peak.time,
        period
    );
    let at_end = stable_peak.time >= period - 1e-6 || stable_peak.time <= 1e-6;
    println!(
        "peak occurs at the period boundary: {} (Theorem 1 {})",
        if at_end { "YES" } else { "NO" },
        if at_end { "confirmed" } else { "VIOLATED" }
    );
    assert!(at_end, "Theorem 1 violated on the stable-status trace");
    assert!(
        warm_peak.temp <= stable_peak.temp + 1e-6,
        "warm-up envelope exceeded the stable-status peak"
    );
    println!("warm-up stays below the stable-status peak: YES");

    // Per-core monotone rise at period boundaries during warm-up.
    let mut boundary_temps: Vec<Vec<f64>> = vec![Vec::new(); 6];
    for (i, &t) in warmup.times().iter().enumerate() {
        let frac = (t / period).fract();
        if !(1e-9..=1.0 - 1e-9).contains(&frac) {
            for (c, list) in boundary_temps.iter_mut().enumerate() {
                list.push(warmup.temps()[i][c]);
            }
        }
    }
    let monotone = boundary_temps.iter().all(|list| list.windows(2).all(|w| w[1] >= w[0] - 1e-9));
    println!(
        "per-core period-boundary temperatures rise monotonically: {}",
        if monotone { "YES" } else { "NO" }
    );

    if let Some(dir) = csv {
        write_csv(&dir, "fig4a_warmup.csv", &warmup.to_csv(platform.t_ambient_c()));
        write_csv(&dir, "fig4b_stable_period.csv", &stable.to_csv(platform.t_ambient_c()));
    }
}
