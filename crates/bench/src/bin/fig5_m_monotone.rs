//! E-F5 — Fig. 5: the peak temperature of an m-Oscillating schedule on a
//! 9-core platform decreases monotonically with m.
//!
//! Setup per the paper: random step-up schedule, period 9.836 s, up to 5
//! intervals per core, m swept upward; every peak is an exact Theorem-1
//! evaluation on the compressed schedule.

use mosc_bench::{csv_dir_from_args, f2, write_csv, Table};
use mosc_sched::{Platform, PlatformSpec};
use mosc_workload::{rng, ScheduleGen};

fn main() {
    let csv = csv_dir_from_args();
    let mut spec = PlatformSpec::paper(3, 3, 5, 65.0);
    spec.rc = mosc_thermal::RcConfig::responsive_package();
    let platform = Platform::build(&spec).expect("platform");

    let gen = ScheduleGen { period: 9.836, max_segments: 5, ..ScheduleGen::default() };
    let schedule = gen.stepup_schedule(&mut rng(905), 9);
    assert!(schedule.is_step_up());

    println!("Fig. 5 — 9-core m-Oscillating peak vs m (period 9.836 s, <=5 intervals/core)\n");
    let ms: Vec<usize> = (1..=10).chain([12, 15, 20, 25, 30, 40, 50]).collect();
    let mut table = Table::new(&["m", "peak (C)", "drop vs m=1 (K)"]);
    let mut prev = f64::INFINITY;
    let mut first = 0.0;
    let mut monotone = true;
    let mut rows_csv = String::from("m,peak_c\n");
    for &m in &ms {
        let peak = platform.peak(&schedule.oscillated(m)).expect("peak").temp;
        if m == 1 {
            first = peak;
        }
        monotone &= peak <= prev + 1e-9;
        prev = peak;
        table.row(vec![m.to_string(), f2(platform.to_celsius(peak)), f2(first - peak)]);
        rows_csv.push_str(&format!("{m},{:.4}\n", platform.to_celsius(peak)));
    }
    println!("{}", table.render());
    println!("peak monotonically non-increasing in m: {}", if monotone { "YES" } else { "NO" });
    assert!(monotone, "Theorem 5 violated");

    if let Some(dir) = csv {
        write_csv(&dir, "fig5_peak_vs_m.csv", &rows_csv);
    }
}
