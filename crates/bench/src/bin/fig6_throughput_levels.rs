//! E-F6 — Fig. 6: throughput of LNS / EXS / AO / PCO across core counts
//! {2, 3, 6, 9} and voltage-level counts {2, 3, 4, 5} (Table IV sets) at
//! `T_max` = 55 °C, τ = 5 µs.

use mosc_bench::compare::Comparison;
use mosc_bench::{csv_dir_from_args, f4, timed, write_csv, Table};
use mosc_sched::{Platform, PlatformSpec};
use mosc_workload::PAPER_CONFIGS;

fn main() {
    let csv = csv_dir_from_args();
    let t_max_c = 55.0;
    println!("Fig. 6 — throughput vs core count and voltage-level count (T_max = {t_max_c} C)\n");

    let mut table = Table::new(&["cores", "levels", "LNS", "EXS", "AO", "PCO", "AO vs EXS %"]);
    let mut csv_out = String::from("cores,levels,lns,exs,ao,pco\n");
    let mut improvements = Vec::new();
    for &(rows, cols) in &PAPER_CONFIGS {
        let n = rows * cols;
        for levels in 2..=5usize {
            let platform = Platform::build(&PlatformSpec::paper(rows, cols, levels, t_max_c))
                .expect("platform");
            let (cmp, secs) = timed(|| Comparison::run(&platform));
            let (l, e, a, p) = (
                Comparison::throughput(&cmp.lns),
                Comparison::throughput(&cmp.exs),
                Comparison::throughput(&cmp.ao),
                Comparison::throughput(&cmp.pco),
            );
            let imp = cmp.ao_vs_exs_percent();
            improvements.push(imp);
            table.row(vec![
                n.to_string(),
                levels.to_string(),
                f4(l),
                f4(e),
                f4(a),
                f4(p),
                format!("{imp:+.1}"),
            ]);
            csv_out.push_str(&format!("{n},{levels},{l:.6},{e:.6},{a:.6},{p:.6}\n"));
            eprintln!("  [{n} cores, {levels} levels] done in {secs:.1} s");
        }
    }
    println!("{}", table.render());

    let avg = improvements.iter().sum::<f64>() / improvements.len() as f64;
    let max = improvements.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!("AO improvement over EXS: average {avg:.1}%, max {max:.1}%");
    println!("(paper: 2-level average 55.2%, 5-level average 24.8%, overall avg 11%, max 89%)");
    let two_level: Vec<f64> = improvements.iter().copied().step_by(4).collect();
    println!(
        "2-level average here: {:.1}%",
        two_level.iter().sum::<f64>() / two_level.len() as f64
    );

    if let Some(dir) = csv {
        write_csv(&dir, "fig6_throughput_levels.csv", &csv_out);
    }
}
