//! E-F7 — Fig. 7: throughput of LNS / EXS / AO / PCO vs temperature
//! threshold `T_max` ∈ {50, 55, 60, 65} °C with 2 voltage levels.

use mosc_bench::compare::Comparison;
use mosc_bench::{csv_dir_from_args, f4, timed, write_csv, Table};
use mosc_sched::{Platform, PlatformSpec};
use mosc_workload::PAPER_CONFIGS;

fn main() {
    let csv = csv_dir_from_args();
    println!("Fig. 7 — throughput vs T_max (2 voltage levels {{0.6, 1.3}} V)\n");

    let mut table = Table::new(&["cores", "T_max (C)", "LNS", "EXS", "AO", "PCO", "AO vs EXS %"]);
    let mut csv_out = String::from("cores,t_max_c,lns,exs,ao,pco\n");
    let mut plateau_ok = true;
    for &(rows, cols) in &PAPER_CONFIGS {
        let n = rows * cols;
        for &t_max_c in &[50.0, 55.0, 60.0, 65.0] {
            let platform =
                Platform::build(&PlatformSpec::paper(rows, cols, 2, t_max_c)).expect("platform");
            let (cmp, secs) = timed(|| Comparison::run(&platform));
            let (l, e, a, p) = (
                Comparison::throughput(&cmp.lns),
                Comparison::throughput(&cmp.exs),
                Comparison::throughput(&cmp.ao),
                Comparison::throughput(&cmp.pco),
            );
            // The paper's 2-core observation: above 55 C all approaches
            // saturate at v_max.
            if n == 2 && t_max_c >= 55.0 {
                plateau_ok &=
                    (l - 1.3).abs() < 1e-3 && (e - 1.3).abs() < 1e-3 && (a - 1.3).abs() < 2e-3;
            }
            table.row(vec![
                n.to_string(),
                format!("{t_max_c:.0}"),
                f4(l),
                f4(e),
                f4(a),
                f4(p),
                format!("{:+.1}", cmp.ao_vs_exs_percent()),
            ]);
            csv_out.push_str(&format!("{n},{t_max_c},{l:.6},{e:.6},{a:.6},{p:.6}\n"));
            eprintln!("  [{n} cores, T_max {t_max_c} C] done in {secs:.1} s");
        }
    }
    println!("{}", table.render());
    println!(
        "2-core plateau at T_max >= 55 C (all approaches at v_max): {}",
        if plateau_ok { "YES (matches the paper)" } else { "NO" }
    );

    if let Some(dir) = csv {
        write_csv(&dir, "fig7_throughput_tmax.csv", &csv_out);
    }
}
