//! Extension — proactive AO vs a reactive threshold governor.
//!
//! The related-work discussion contrasts proactive (offline, guaranteed)
//! schemes against reactive DTM. This experiment quantifies the contrast on
//! our substrate: sustained throughput and thermal violations of a classic
//! step-up/step-down governor at two guard-band settings vs AO's
//! guaranteed-safe schedule.

use mosc_bench::compare::ao_options;
use mosc_bench::{csv_dir_from_args, f4, write_csv, Table};
use mosc_core::reactive::{simulate, GovernorOptions};
use mosc_core::{ao, Solution};
use mosc_sched::{Platform, PlatformSpec};
use mosc_workload::PAPER_CONFIGS;

fn main() {
    let csv = csv_dir_from_args();
    println!(
        "Proactive AO vs reactive governor (T_max = 55 C, 5 levels, sustained after warm-up)\n"
    );

    let tight =
        GovernorOptions { guard_band: 0.5, upgrade_band: 1.5, ..GovernorOptions::default() };
    let loose =
        GovernorOptions { guard_band: 3.0, upgrade_band: 6.0, ..GovernorOptions::default() };

    let mut table = Table::new(&[
        "cores",
        "AO thr",
        "gov(tight) thr",
        "tight viol (s)",
        "gov(loose) thr",
        "loose viol (s)",
    ]);
    let mut csv_out = String::from("cores,ao,gov_tight,tight_viol,gov_loose,loose_viol\n");
    for &(rows, cols) in &PAPER_CONFIGS {
        let n = rows * cols;
        let platform =
            Platform::build(&PlatformSpec::paper(rows, cols, 5, 55.0)).expect("platform");
        let ao_thr = ao::solve_with(&platform, &ao_options())
            .as_ref()
            .map_or(0.0, |s: &Solution| s.throughput);
        let gt = simulate(&platform, &tight).expect("tight governor");
        let gl = simulate(&platform, &loose).expect("loose governor");
        table.row(vec![
            n.to_string(),
            f4(ao_thr),
            f4(gt.throughput),
            format!("{:.1}", gt.violation_time),
            f4(gl.throughput),
            format!("{:.1}", gl.violation_time),
        ]);
        csv_out.push_str(&format!(
            "{n},{ao_thr:.6},{:.6},{:.3},{:.6},{:.3}\n",
            gt.throughput, gt.violation_time, gl.throughput, gl.violation_time
        ));
    }
    println!("{}", table.render());
    println!(
        "the reactive scheme either rides the threshold (tight band, risking violations on \
         sensor noise the simulation does not model) or gives up throughput (loose band); \
         AO guarantees the constraint at design time."
    );

    if let Some(dir) = csv {
        write_csv(&dir, "governor_comparison.csv", &csv_out);
    }
}
