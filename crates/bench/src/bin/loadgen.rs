//! `mosc-bench loadgen` — open-loop load generation against `mosc-serve`.
//!
//! The E-SV serve bench is closed-loop: each client waits for its response
//! before sending again, so a slow server throttles its own measurement
//! and the recorded latencies omit the queueing the intended workload
//! would have seen (coordinated omission). This binary fixes the arrival
//! times up front from a seeded random process
//! (`mosc_bench::loadgen::arrival_schedule`), fans them out over N
//! persistent connections whose writer threads send at the scheduled
//! instants *without waiting for responses*, and measures every latency
//! from the **intended** send time — send-side scheduling delay counts
//! against the server, exactly as a real client would experience it.
//!
//! The run is split into a warmup prefix (sent, recorded into the
//! timeline, excluded from the summary) and a measurement window. The
//! summary reports offered vs achieved rate and exact sorted-tail
//! latency quantiles; a windowed `mosc_obs::Timeline` records the whole
//! run as `{"type":"timeline",...}` JSONL. With `--sweep r1,r2,...` the
//! generator runs once per rate, emits `{"type":"sweep",...}` points and
//! locates the saturation knee (highest rate with achieved ≥ 90% of
//! offered).
//!
//! With `--csv <dir>` everything lands in `BENCH_loadgen.json`, a schema
//! v2 artifact (`mosc_bench::record`) that `mosc-cli analyze` lints
//! (M100–M104) and `mosc-bench compare` diffs against a baseline.
//!
//! Without `--addr`, an in-process `mosc-serve` server is spun up on
//! `127.0.0.1:0` — the self-contained smoke CI runs; `--frontend
//! threads|evloop` picks its front end. With `--addr HOST:PORT` it drives
//! a live daemon.
//!
//! `--idle-conns N` opens N extra connections before the first run and
//! holds them idle across every run — the many-mostly-quiet-clients regime
//! the event-loop front end exists for. Each one must still answer a ping
//! after the last run or the generator exits nonzero; the count is
//! recorded as `idle_conns` on every bench record.
//!
//! `--trace` originates a fresh v2 trace context (random 128-bit trace id
//! plus a root span id) on every request, exercising the daemon's trace
//! continuation path end to end. `--trace-overhead` runs every rate twice —
//! tracing off, then on — and emits a `{"type":"trace_overhead",...}`
//! record whose `trace_overhead_x` (traced p50 over untraced p50) is
//! compare-gated against the checked-in `BENCH_trace.json` baseline.
//!
//! `--repeat-platform` switches the traffic shape from "four distinct
//! cache keys" to "one platform forever": every arrival is a `solve_batch`
//! request against the same platform with a cycling `threads` option, so
//! after the first request the daemon answers from the interned platform
//! registry (and, once the option cycle wraps, the solution cache). This
//! is the traffic a design-space sweep generates, and the regime the
//! registry exists for.

use mosc_analyze::json::Value;
use mosc_bench::loadgen::{arrival_schedule, saturation_knee, ArrivalProcess};
use mosc_bench::record::{BenchLog, RunMeta};
use mosc_bench::{csv_dir_from_args, Table};
use mosc_core::{SolveOptions, SolverKind};
use mosc_obs::Timeline;
use mosc_serve::{
    fresh_span_id, fresh_trace_id, BatchRequest, BatchVariantRequest, Frontend, Request, Server,
    SolveRequest, TraceContext,
};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read as _, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Distinct `t_max_c` values cycled through the request mix — the same
/// four cache keys as the closed-loop serve bench, so most requests are
/// answered from the LRU cache and the server keeps up at smoke scale.
const T_MAX_VARIANTS: [f64; 4] = [55.0, 56.0, 57.0, 58.0];

/// Achieved/offered ratio defining "kept up" for the sweep knee.
const KNEE_TOLERANCE: f64 = 0.9;

/// Reader-side socket timeout; after the writer finishes, a reader that
/// stays silent this long gives up and counts the remainder as drops.
const READ_TIMEOUT: Duration = Duration::from_secs(2);

fn smoke_platform(t_max_c: f64) -> Value {
    Value::parse(&format!(r#"{{"rows":1,"cols":2,"levels":[0.6,1.3],"t_max_c":{t_max_c:?}}}"#))
        .expect("platform literal")
}

fn smoke_options() -> SolveOptions {
    SolveOptions { max_m: 64, m_patience: 4, t_unit_divisor: 50, ..SolveOptions::default() }
}

/// Mints a fresh root trace context when tracing is on; `None` keeps the
/// request line byte-identical to the pre-v2 wire form.
fn origin(trace: bool) -> Option<TraceContext> {
    trace.then(|| TraceContext { trace_id: fresh_trace_id(), parent_id: fresh_span_id() })
}

fn request_line(id: &str, t_max_c: f64, trace: bool) -> String {
    Request::Solve(SolveRequest {
        id: id.to_owned(),
        kind: SolverKind::Ao,
        platform: smoke_platform(t_max_c),
        options: smoke_options(),
        want_schedule: false,
        trace: origin(trace),
    })
    .to_json()
}

/// `--repeat-platform` request: a single-variant `solve_batch` against one
/// fixed platform. `threads` cycles 1..=8 — it is part of the cache key but
/// does not change the math, so the first eight arrivals are real solves on
/// the interned platform and the rest are solution-cache hits.
fn batch_request_line(id: &str, k: usize, trace: bool) -> String {
    Request::SolveBatch(BatchRequest {
        id: id.to_owned(),
        platform: smoke_platform(55.0),
        variants: vec![BatchVariantRequest {
            kind: SolverKind::Ao,
            options: SolveOptions { threads: k % 8 + 1, ..smoke_options() },
            want_schedule: false,
        }],
        trace: origin(trace),
    })
    .to_json()
}

/// One completed request, in run-relative seconds.
struct Sample {
    /// Intended send time from the schedule.
    intended_s: f64,
    /// Completion latency measured from the intended send time.
    latency_s: f64,
    /// Served from the solution cache.
    cached: bool,
}

/// Everything one open-loop run produced.
struct RunResult {
    offered: f64,
    achieved: f64,
    arrivals: usize,
    completed: usize,
    measured: usize,
    dropped: usize,
    hit_rate: f64,
    /// Exact measurement-window quantiles, milliseconds.
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
    max_ms: f64,
    timeline_jsonl: String,
}

/// Exact quantile of an ascending-sorted slice: smallest element whose
/// rank covers `q` of the mass (matches the analyzer's oracle).
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// Opens and holds `n` idle connections against the daemon. They carry no
/// traffic while the measured runs proceed — their job is to occupy server
/// connection slots, the regime the event-loop front end exists for.
fn open_idle_conns(addr: SocketAddr, n: usize) -> Vec<TcpStream> {
    let mut conns = Vec::with_capacity(n);
    for i in 0..n {
        let stream = TcpStream::connect(addr)
            .unwrap_or_else(|e| panic!("idle connection {i} of {n} failed to open: {e}"));
        stream.set_read_timeout(Some(READ_TIMEOUT)).expect("read timeout");
        conns.push(stream);
    }
    conns
}

/// Reads one newline-terminated response off a blocking socket.
fn read_response_line(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte)? {
            0 => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed",
                ))
            }
            _ if byte[0] == b'\n' => {
                return String::from_utf8(buf).map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 response")
                })
            }
            _ => buf.push(byte[0]),
        }
    }
}

/// Proves every held connection survived the run: pings are pipelined
/// across all of them first, then one pong is read per connection.
/// Returns the number of dead connections.
fn verify_idle_conns(conns: &mut [TcpStream]) -> usize {
    let mut dead = 0usize;
    let mut wrote = vec![true; conns.len()];
    for (i, stream) in conns.iter_mut().enumerate() {
        let mut line = Request::Ping { id: format!("idle-{i}") }.to_json();
        line.push('\n');
        if stream.write_all(line.as_bytes()).is_err() {
            eprintln!("idle connection {i}: ping write failed");
            wrote[i] = false;
            dead += 1;
        }
    }
    for (i, stream) in conns.iter_mut().enumerate() {
        if !wrote[i] {
            continue;
        }
        match read_response_line(stream) {
            Ok(pong) if pong.contains("\"pong\"") && pong.contains(&format!("idle-{i}")) => {}
            Ok(other) => {
                eprintln!("idle connection {i}: unexpected response {other}");
                dead += 1;
            }
            Err(e) => {
                eprintln!("idle connection {i}: {e}");
                dead += 1;
            }
        }
    }
    dead
}

/// One connection's work: a writer thread pacing the schedule and a
/// reader thread matching responses by id against intended send times.
#[allow(clippy::too_many_arguments)]
fn run_connection(
    addr: SocketAddr,
    conn: usize,
    schedule: &[f64],
    start: Instant,
    timeline: &Timeline,
    in_flight: &AtomicU64,
    repeat_platform: bool,
    trace: bool,
) -> (Vec<Sample>, usize) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("TCP_NODELAY");
    stream.set_read_timeout(Some(READ_TIMEOUT)).expect("read timeout");
    let reader_stream = stream.try_clone().expect("clone socket");

    std::thread::scope(|scope| {
        let writer = scope.spawn(move || {
            let mut stream = stream;
            for (k, &t) in schedule.iter().enumerate() {
                let now = start.elapsed().as_secs_f64();
                if t > now {
                    std::thread::sleep(Duration::from_secs_f64(t - now));
                }
                let id = format!("c{conn}-{k}");
                let mut line = if repeat_platform {
                    batch_request_line(&id, k, trace)
                } else {
                    request_line(&id, T_MAX_VARIANTS[k % T_MAX_VARIANTS.len()], trace)
                };
                line.push('\n');
                in_flight.fetch_add(1, Ordering::Relaxed);
                if stream.write_all(line.as_bytes()).is_err() {
                    // Server gone; the reader will see EOF and tally drops.
                    return;
                }
            }
            let _ = stream.flush();
        });

        let mut samples: Vec<Sample> = Vec::with_capacity(schedule.len());
        let mut errors = 0usize;
        let mut responses = BufReader::new(reader_stream);
        let mut line = String::new();
        while samples.len() + errors < schedule.len() {
            line.clear();
            match responses.read_line(&mut line) {
                Ok(0) => break, // EOF: server closed the connection.
                Ok(_) => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if writer.is_finished() {
                        break;
                    }
                    continue;
                }
                Err(_) => break,
            }
            let now = start.elapsed().as_secs_f64();
            let Ok(doc) = Value::parse(line.trim()) else {
                errors += 1;
                continue;
            };
            let Some(k) = doc
                .get("id")
                .and_then(Value::as_str)
                .and_then(|id| id.rsplit('-').next())
                .and_then(|k| k.parse::<usize>().ok())
                .filter(|&k| k < schedule.len())
            else {
                errors += 1;
                continue;
            };
            let depth = in_flight.fetch_sub(1, Ordering::Relaxed).saturating_sub(1);
            if doc.get("status").and_then(Value::as_str) != Some("ok") {
                errors += 1;
                continue;
            }
            let intended_s = schedule[k];
            let latency_s = (now - intended_s).max(0.0);
            // Single solves carry `cached` at the top level; batch responses
            // carry it per variant (one variant in repeat-platform mode).
            let cached = doc
                .get("cached")
                .and_then(Value::as_bool)
                .or_else(|| {
                    doc.get("results")
                        .and_then(Value::as_array)
                        .and_then(|r| r.first())
                        .and_then(|r| r.get("cached"))
                        .and_then(Value::as_bool)
                })
                .unwrap_or(false);
            timeline.record_at(now, latency_s, cached);
            timeline.depth_at(now, depth);
            samples.push(Sample { intended_s, latency_s, cached });
        }
        writer.join().expect("writer thread");
        let dropped = schedule.len() - samples.len();
        (samples, dropped)
    })
}

/// Runs one full open-loop round at `rate` req/s.
#[allow(clippy::too_many_arguments)]
fn run_open_loop(
    addr: SocketAddr,
    process: ArrivalProcess,
    rate: f64,
    duration_s: f64,
    warmup_s: f64,
    conns: usize,
    seed: u64,
    window_s: f64,
    repeat_platform: bool,
    trace: bool,
) -> RunResult {
    let schedule = arrival_schedule(process, rate, duration_s, seed);
    let arrivals = schedule.len();
    // Round-robin fan-out preserves each connection's time ordering.
    let mut per_conn: Vec<Vec<f64>> = vec![Vec::new(); conns];
    for (i, &t) in schedule.iter().enumerate() {
        per_conn[i % conns].push(t);
    }

    let timeline = Timeline::new(window_s);
    let in_flight = AtomicU64::new(0);
    let start = Instant::now();
    let results: Vec<(Vec<Sample>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = per_conn
            .iter()
            .enumerate()
            .map(|(conn, sched)| {
                let (timeline, in_flight) = (&timeline, &in_flight);
                scope.spawn(move || {
                    run_connection(
                        addr,
                        conn,
                        sched,
                        start,
                        timeline,
                        in_flight,
                        repeat_platform,
                        trace,
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("connection thread")).collect()
    });

    let mut samples: Vec<Sample> = Vec::with_capacity(arrivals);
    let mut dropped = 0usize;
    for (s, d) in results {
        samples.extend(s);
        dropped += d;
    }

    // The summary covers only the measurement window, keyed by *intended*
    // send time so warmup membership is deterministic under the seed.
    let measured: Vec<&Sample> = samples.iter().filter(|s| s.intended_s >= warmup_s).collect();
    let mut lat_ms: Vec<f64> = measured.iter().map(|s| s.latency_s * 1e3).collect();
    lat_ms.sort_by(f64::total_cmp);
    let hits = measured.iter().filter(|s| s.cached).count();
    let span = (duration_s - warmup_s).max(1e-9);
    RunResult {
        offered: rate,
        achieved: measured.len() as f64 / span,
        arrivals,
        completed: samples.len(),
        measured: measured.len(),
        dropped,
        hit_rate: if measured.is_empty() { 0.0 } else { hits as f64 / measured.len() as f64 },
        p50_ms: exact_quantile(&lat_ms, 0.50),
        p90_ms: exact_quantile(&lat_ms, 0.90),
        p99_ms: exact_quantile(&lat_ms, 0.99),
        p999_ms: exact_quantile(&lat_ms, 0.999),
        max_ms: lat_ms.last().copied().unwrap_or(0.0),
        timeline_jsonl: Timeline::render_jsonl(&timeline.finish()),
    }
}

#[allow(clippy::too_many_arguments)]
fn bench_record(
    r: &RunResult,
    process: ArrivalProcess,
    seed: u64,
    conns: usize,
    repeat_platform: bool,
    idle_conns: usize,
    trace: bool,
) -> String {
    // A distinct mode keeps repeat-platform (and traced) records from
    // colliding with the default traffic shape under `compare`'s
    // (mode, process, rate) identity.
    let mode = match (repeat_platform, trace) {
        (true, false) => "open_repeat",
        (true, true) => "open_repeat_traced",
        (false, false) => "open",
        (false, true) => "open_traced",
    };
    let mut line = String::new();
    let _ = write!(
        line,
        "{{\"type\":\"bench\",\"mode\":\"{mode}\",\"process\":\"{}\",\"seed\":{seed},\
         \"conns\":{conns},\"idle_conns\":{idle_conns},\
         \"offered_req_per_s\":{:?},\"achieved_req_per_s\":{:?},\
         \"arrivals\":{},\"completed\":{},\"count\":{},\"dropped\":{},\
         \"cache_hit_rate\":{:?},\"p50_ms\":{:?},\"p90_ms\":{:?},\"p99_ms\":{:?},\
         \"p999_ms\":{:?},\"max_ms\":{:?}}}",
        process.name(),
        r.offered,
        r.achieved,
        r.arrivals,
        r.completed,
        r.measured,
        r.dropped,
        r.hit_rate,
        r.p50_ms,
        r.p90_ms,
        r.p99_ms,
        r.p999_ms,
        r.max_ms
    );
    line
}

struct Args {
    addr: Option<String>,
    rate: f64,
    duration_s: f64,
    warmup_s: f64,
    conns: usize,
    process: ArrivalProcess,
    seed: u64,
    window_s: f64,
    sweep: Vec<f64>,
    repeat_platform: bool,
    /// Originate a fresh v2 trace context on every request.
    trace: bool,
    /// Run each rate twice — tracing off then on — and emit a
    /// `trace_overhead` record comparing the two p50s.
    trace_overhead: bool,
    /// Extra connections opened before the first run and held idle (no
    /// traffic) until after the last; every one must still answer a ping
    /// at the end or the generator exits nonzero.
    idle_conns: usize,
    /// Front end for the in-process daemon (ignored with `--addr`).
    frontend: Frontend,
    /// File name of the artifact written under `--csv DIR`; the evloop CI
    /// smoke writes `BENCH_evloop.json` so its baseline is gated apart
    /// from the threaded-front-end `BENCH_loadgen.json`.
    artifact: String,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        addr: None,
        rate: 200.0,
        duration_s: 2.0,
        warmup_s: 0.5,
        conns: 4,
        process: ArrivalProcess::Poisson,
        seed: 42,
        window_s: 0.25,
        sweep: Vec::new(),
        repeat_platform: false,
        trace: false,
        trace_overhead: false,
        idle_conns: 0,
        frontend: Frontend::default(),
        artifact: "BENCH_loadgen.json".to_owned(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |argv: &[String], i: usize, flag: &str| {
        argv.get(i + 1).cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => out.addr = Some(value(&argv, i, "--addr")?),
            "--rate" => {
                out.rate =
                    value(&argv, i, "--rate")?.parse().map_err(|e| format!("--rate: {e}"))?;
            }
            "--duration" => {
                out.duration_s = value(&argv, i, "--duration")?
                    .parse()
                    .map_err(|e| format!("--duration: {e}"))?;
            }
            "--warmup" => {
                out.warmup_s =
                    value(&argv, i, "--warmup")?.parse().map_err(|e| format!("--warmup: {e}"))?;
            }
            "--conns" => {
                out.conns =
                    value(&argv, i, "--conns")?.parse().map_err(|e| format!("--conns: {e}"))?;
            }
            "--process" => {
                let name = value(&argv, i, "--process")?;
                out.process = ArrivalProcess::parse(&name)
                    .ok_or_else(|| format!("--process: unknown process '{name}'"))?;
            }
            "--seed" => {
                out.seed =
                    value(&argv, i, "--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            "--window" => {
                out.window_s =
                    value(&argv, i, "--window")?.parse().map_err(|e| format!("--window: {e}"))?;
            }
            "--sweep" => {
                out.sweep = value(&argv, i, "--sweep")?
                    .split(',')
                    .map(|r| r.trim().parse::<f64>().map_err(|e| format!("--sweep: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--idle-conns" => {
                out.idle_conns = value(&argv, i, "--idle-conns")?
                    .parse()
                    .map_err(|e| format!("--idle-conns: {e}"))?;
            }
            "--frontend" => {
                out.frontend = value(&argv, i, "--frontend")?.parse()?;
            }
            "--artifact" => {
                let name = value(&argv, i, "--artifact")?;
                if name.contains('/') || !name.ends_with(".json") {
                    return Err(format!("--artifact: '{name}' must be a bare *.json file name"));
                }
                out.artifact = name;
            }
            // Valueless flags: step past them alone.
            "--repeat-platform" => {
                out.repeat_platform = true;
                i += 1;
                continue;
            }
            "--trace" => {
                out.trace = true;
                i += 1;
                continue;
            }
            "--trace-overhead" => {
                out.trace_overhead = true;
                i += 1;
                continue;
            }
            // Parsed by csv_dir_from_args; its value is skipped below like
            // every other flag's.
            "--csv" => {}
            flag => return Err(format!("unknown flag {flag}")),
        }
        i += 2;
    }
    if out.warmup_s >= out.duration_s {
        return Err(format!(
            "--warmup {} must be shorter than --duration {}",
            out.warmup_s, out.duration_s
        ));
    }
    if out.conns == 0 {
        return Err("--conns must be at least 1".into());
    }
    if out.trace_overhead && !out.sweep.is_empty() {
        return Err("--trace-overhead and --sweep are mutually exclusive".into());
    }
    Ok(out)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "loadgen: {e}\nusage: loadgen [--addr HOST:PORT] [--rate R] [--duration S] \
                 [--warmup S] [--conns N] [--process poisson|uniform] [--seed N] \
                 [--window S] [--sweep r1,r2,...] [--repeat-platform] [--trace] \
                 [--trace-overhead] [--idle-conns N] \
                 [--frontend threads|evloop] [--csv DIR] [--artifact NAME.json]"
            );
            std::process::exit(2);
        }
    };
    let csv = csv_dir_from_args();

    // Without --addr, spin up an in-process daemon on an ephemeral port.
    // The server's own histograms feed its /stats path; arm the recorder
    // so a co-located `mosc-cli stats` sees latencies too.
    mosc_obs::enable();
    let (addr, server) = match &args.addr {
        Some(a) => (a.parse().expect("--addr HOST:PORT"), None),
        None => {
            let server = Server::builder()
                .addr("127.0.0.1:0")
                .frontend(args.frontend)
                .bind()
                .expect("bind 127.0.0.1:0");
            let addr = server.local_addr();
            let handle = server.handle();
            let join = std::thread::spawn(move || server.run().expect("serve loop"));
            (addr, Some((handle, join)))
        }
    };

    // The held-idle fleet opens before any traffic flows and must survive
    // every run below untouched.
    let mut idle = Vec::new();
    if args.idle_conns > 0 {
        idle = open_idle_conns(addr, args.idle_conns);
        println!("holding {} idle connection(s) open across the whole run", idle.len());
    }

    let mut meta = RunMeta::capture("loadgen")
        .option("process", args.process.name())
        .option("rate", args.rate)
        .option("duration_s", args.duration_s)
        .option("warmup_s", args.warmup_s)
        .option("conns", args.conns)
        .option("seed", args.seed)
        .option("window_s", args.window_s);
    if args.repeat_platform {
        meta = meta.option("repeat_platform", true);
    }
    if args.trace {
        meta = meta.option("trace", true);
    }
    if args.trace_overhead {
        meta = meta.option("trace_overhead", true);
    }
    if args.idle_conns > 0 {
        meta = meta.option("idle_conns", args.idle_conns);
    }
    if args.addr.is_none() {
        meta = meta.option("frontend", args.frontend.to_string());
    }
    let mut log = BenchLog::new(&meta);

    println!(
        "open-loop loadgen — {} arrivals, {} connection(s), warmup {:.2}s of {:.2}s\n",
        args.process.name(),
        args.conns,
        args.warmup_s,
        args.duration_s
    );
    let mut table = Table::new(&[
        "offered/s",
        "achieved/s",
        "count",
        "drops",
        "hit rate",
        "p50 (ms)",
        "p90 (ms)",
        "p99 (ms)",
        "p999 (ms)",
        "max (ms)",
    ]);

    let rates: Vec<f64> = if args.sweep.is_empty() { vec![args.rate] } else { args.sweep.clone() };
    let sweeping = !args.sweep.is_empty();
    let mut knee_points: Vec<(f64, f64)> = Vec::new();

    for (i, &rate) in rates.iter().enumerate() {
        // Distinct seeds per sweep point, still fully deterministic; the
        // overhead pair reuses one seed so both runs replay one schedule.
        let seed = args.seed.wrapping_add(i as u64);
        let modes: &[bool] = if args.trace_overhead { &[false, true] } else { &[args.trace] };
        let mut p50s = Vec::with_capacity(modes.len());
        for &trace in modes {
            let r = run_open_loop(
                addr,
                args.process,
                rate,
                args.duration_s,
                args.warmup_s,
                args.conns,
                seed,
                args.window_s,
                args.repeat_platform,
                trace,
            );
            table.row(vec![
                format!("{:.0}", r.offered),
                format!("{:.0}", r.achieved),
                r.measured.to_string(),
                r.dropped.to_string(),
                format!("{:.3}", r.hit_rate),
                format!("{:.3}", r.p50_ms),
                format!("{:.3}", r.p90_ms),
                format!("{:.3}", r.p99_ms),
                format!("{:.3}", r.p999_ms),
                format!("{:.3}", r.max_ms),
            ]);
            log.push(&bench_record(
                &r,
                args.process,
                seed,
                args.conns,
                args.repeat_platform,
                args.idle_conns,
                trace,
            ));
            if sweeping {
                let mut line = String::new();
                let _ = write!(
                    line,
                    "{{\"type\":\"sweep\",\"offered_req_per_s\":{:?},\
                     \"achieved_req_per_s\":{:?},\"p50_ms\":{:?},\"p99_ms\":{:?},\
                     \"p999_ms\":{:?}}}",
                    r.offered, r.achieved, r.p50_ms, r.p99_ms, r.p999_ms
                );
                log.push(&line);
                knee_points.push((r.offered, r.achieved));
            } else if !args.trace_overhead {
                log.push_block(&r.timeline_jsonl);
            }
            p50s.push(r.p50_ms);
        }
        if let [off, on] = p50s[..] {
            let overhead_x = on / off.max(1e-6);
            println!(
                "tracing overhead at {rate:.0} req/s: p50 {off:.3} ms off -> {on:.3} ms on \
                 ({overhead_x:.2}x)"
            );
            let mut line = String::new();
            let _ = write!(
                line,
                "{{\"type\":\"trace_overhead\",\"process\":\"{}\",\
                 \"offered_req_per_s\":{rate:?},\"p50_off_ms\":{off:?},\
                 \"p50_on_ms\":{on:?},\"trace_overhead_x\":{overhead_x:?}}}",
                args.process.name()
            );
            log.push(&line);
        }
    }
    println!("{}", table.render());

    if sweeping {
        match saturation_knee(&knee_points, KNEE_TOLERANCE) {
            Some(knee) => {
                println!(
                    "saturation knee: {knee:.0} req/s (highest offered rate with achieved >= \
                     {:.0}% of offered)",
                    100.0 * KNEE_TOLERANCE
                );
                let mut line = String::new();
                let _ = write!(
                    line,
                    "{{\"type\":\"knee\",\"offered_req_per_s\":{knee:?},\
                     \"tolerance\":{KNEE_TOLERANCE:?}}}"
                );
                log.push(&line);
            }
            None => println!(
                "no saturation knee: no offered rate kept achieved >= {:.0}% of offered",
                100.0 * KNEE_TOLERANCE
            ),
        }
    } else {
        println!("latency is measured from the intended send time (coordinated-omission safe);");
        println!("the timeline windows in the artifact show the run second by second.");
    }

    // Every held connection must have survived all runs and still answer.
    if !idle.is_empty() {
        let dead = verify_idle_conns(&mut idle);
        assert!(dead == 0, "{dead} of {} idle connections died during the run", idle.len());
        println!("all {} idle connections survived the run and answered a ping", idle.len());
    }

    if let Some(dir) = csv {
        log.write(&dir, &args.artifact);
    }
    if let Some((handle, join)) = server {
        drop(idle);
        handle.shutdown();
        join.join().expect("server thread");
    }
}
