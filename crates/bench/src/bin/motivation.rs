//! E-T2/T3 — the Section III motivating example (Tables II and III).
//!
//! 3-core platform (budget cooler), `T_max` = 65 °C, modes {0.6 V, 1.3 V}:
//!
//! 1. the ideal continuous operating point and its throughput;
//! 2. **LNS** (floors everything to 0.6 V) and **EXS** (best constant
//!    assignment);
//! 3. Table II: the high/low time ratios that replicate the ideal throughput
//!    with two modes — and the peak-temperature violation they cause;
//! 4. Table III: TPT-adjusted ratios meeting `T_max` at periods 20/10/5 ms
//!    and the throughput recovered at each.

use mosc_bench::{csv_dir_from_args, f4, write_csv, Table};
use mosc_core::ao::{adjust_to_tmax, build_pairs, CorePair};
use mosc_core::{continuous, exs, lns};
use mosc_sched::{Platform, PlatformSpec, Schedule};

fn main() {
    let csv = csv_dir_from_args();
    let platform =
        Platform::build(&PlatformSpec::motivation()).expect("motivation platform builds");
    println!(
        "Motivating example: 3-core (1x3) platform, budget cooler, T_max = {:.0} C, modes {{0.6, 1.3}} V\n",
        platform.t_max_c()
    );

    // 1. Ideal continuous point.
    let ideal = continuous::solve(&platform).expect("continuous solve");
    println!(
        "ideal continuous voltages: [{}] V, throughput {}",
        ideal.voltages.iter().map(|v| format!("{v:.4}")).collect::<Vec<_>>().join(", "),
        f4(ideal.throughput)
    );

    // 2. Baselines.
    let lns_sol = lns::solve(&platform).expect("lns");
    let exs_sol = exs::solve(&platform).expect("exs");
    println!("LNS throughput: {}", f4(lns_sol.throughput));
    println!(
        "EXS throughput: {} (assignment [{}] V)\n",
        f4(exs_sol.throughput),
        exs_sol
            .schedule
            .cores()
            .iter()
            .map(|c| format!("{:.1}", c.segments()[0].voltage))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // 3. Table II: throughput-preserving ratios and their thermal violation.
    let pairs = build_pairs(&platform, &ideal.voltages);
    let mut t2 = Table::new(&["", "core1", "core2", "core3"]);
    t2.row(
        std::iter::once("ratio(vH)".to_string())
            .chain(pairs.iter().map(|p| f4(p.ratio_high)))
            .collect(),
    );
    t2.row(
        std::iter::once("ratio(vL)".to_string())
            .chain(pairs.iter().map(|p| f4(1.0 - p.ratio_high)))
            .collect(),
    );
    println!("Table II — execution-time ratios replicating the ideal throughput:");
    println!("{}", t2.render());

    let t_p = 0.02;
    let naive = schedule_from(&pairs, t_p);
    let naive_peak = platform.peak(&naive).expect("peak");
    println!(
        "running those ratios periodically (t_p = 20 ms): peak = {:.2} C (> T_max {:.0} C => must shrink the high ratios)\n",
        platform.to_celsius(naive_peak.temp),
        platform.t_max_c()
    );

    // 4. Table III: ratios adjusted to meet T_max at three periods.
    let mut t3 = Table::new(&["", "t_p=20ms", "t_p=10ms", "t_p=5ms"]);
    let mut adjusted: Vec<(f64, Vec<CorePair>, f64)> = Vec::new();
    for &period in &[0.02, 0.01, 0.005] {
        let (p_adj, sched) =
            adjust_to_tmax(&platform, &pairs, period, period / 400.0).expect("tpt adjust");
        let thr = sched.throughput();
        adjusted.push((period, p_adj, thr));
    }
    for core in 0..3 {
        t3.row(
            std::iter::once(format!("core{} ratio(vH)", core + 1))
                .chain(adjusted.iter().map(|(_, p, _)| f4(p[core].ratio_high)))
                .collect(),
        );
    }
    t3.row(
        std::iter::once("Performance".to_string())
            .chain(adjusted.iter().map(|(_, _, thr)| f4(*thr)))
            .collect(),
    );
    println!("Table III — T_max-respecting high-speed ratios vs period:");
    println!("{}", t3.render());
    let best = adjusted.last().expect("non-empty").2;
    println!(
        "improvement over LNS at t_p = 5 ms: {:.2}%  (paper reports 45.42% at 20 ms; shorter periods recover more)",
        (best / lns_sol.throughput - 1.0) * 100.0
    );

    if let Some(dir) = csv {
        write_csv(&dir, "motivation_table2.csv", &t2.to_csv());
        write_csv(&dir, "motivation_table3.csv", &t3.to_csv());
    }
}

fn schedule_from(pairs: &[CorePair], period: f64) -> Schedule {
    let lo: Vec<f64> = pairs.iter().map(|p| p.v_low).collect();
    let hi: Vec<f64> = pairs.iter().map(|p| p.v_high).collect();
    let r: Vec<f64> = pairs.iter().map(|p| p.ratio_high).collect();
    Schedule::two_mode(&lo, &hi, &r, period).expect("valid two-mode schedule")
}
