//! E-PM — period-map kernel scaling: modal fast path vs the
//! interval-by-interval dense reference on the Table V 3×3 platform.
//!
//! A two-mode step-up schedule is oscillated to factors m ∈ {1, 4, 16, 64,
//! 256} and its thermal stable status evaluated twice per m: through the
//! modal period-map kernel (`SteadyState::compute`, `O((d + log m)·n + d·n²)`)
//! and through the dense reference (`compute_dense`, `O(m·d·n³)`). The table
//! reports wall time, the dense-op counters (`period_map.matmuls` +
//! `linalg.matmuls`), `expm.calls`, and the max steady-state divergence.
//!
//! With `--csv <dir>` the records are also written as
//! `BENCH_periodmap.json` (JSON lines, one record per m) — the artifact the
//! `ci.sh` smoke checks for.

use mosc_bench::record::{BenchLog, RunMeta};
use mosc_bench::{csv_dir_from_args, timed_obs, Table};
use mosc_sched::eval::{compute_dense, SteadyState};
use mosc_sched::{Platform, PlatformSpec, Schedule};
use std::fmt::Write as _;

/// Dense-op total of one telemetry window: modal basis changes plus full
/// dense products.
fn dense_ops(t: &mosc_obs::Telemetry) -> u64 {
    t.counter("period_map.matmuls").unwrap_or(0) + t.counter("linalg.matmuls").unwrap_or(0)
}

fn main() {
    let csv = csv_dir_from_args();
    let platform = Platform::build(&PlatformSpec::paper(3, 3, 2, 55.0)).expect("platform");
    let n = platform.n_cores();
    let levels = platform.modes().levels();
    let (v_low, v_high) = (levels[0], *levels.last().expect("non-empty mode set"));
    let base = Schedule::two_mode(&vec![v_low; n], &vec![v_high; n], &vec![0.5; n], 0.05)
        .expect("two-mode schedule");

    println!("period-map kernel scaling — 3x3 grid, 2 levels, T_max 55 C\n");
    let mut table = Table::new(&[
        "m",
        "fast (s)",
        "dense (s)",
        "speedup",
        "fast ops",
        "dense ops",
        "fast expm",
        "dense expm",
        "max |diff|",
    ]);
    let meta = RunMeta::capture("periodmap").option("rows", 3).option("cols", 3);
    let mut log = BenchLog::new(&meta);

    for &m in &[1usize, 4, 16, 64, 256] {
        let s = base.oscillated(m);
        let (fast, fast_wall, fast_obs) =
            timed_obs(|| SteadyState::compute(platform.thermal(), platform.power(), &s));
        let fast = fast.expect("fast path");
        let (dense, dense_wall, dense_obs) =
            timed_obs(|| compute_dense(platform.thermal(), platform.power(), &s));
        let (dense_start, _) = dense.expect("dense reference");
        let diff = fast.t_start().max_abs_diff(&dense_start);
        assert!(diff < 1e-8, "kernel diverges from the dense reference at m = {m}: {diff}");

        let (f_ops, f_expm) = (dense_ops(&fast_obs), fast_obs.counter("expm.calls").unwrap_or(0));
        let (d_ops, d_expm) = (dense_ops(&dense_obs), dense_obs.counter("expm.calls").unwrap_or(0));
        table.row(vec![
            m.to_string(),
            format!("{fast_wall:.6}"),
            format!("{dense_wall:.6}"),
            format!("{:.1}x", dense_wall / fast_wall.max(1e-12)),
            f_ops.to_string(),
            d_ops.to_string(),
            f_expm.to_string(),
            d_expm.to_string(),
            format!("{diff:.2e}"),
        ]);
        let mut line = String::new();
        let _ = write!(
            line,
            "{{\"type\":\"periodmap\",\"rows\":3,\"cols\":3,\"m\":{m},\
             \"fast_wall_s\":{fast_wall:?},\"dense_wall_s\":{dense_wall:?},\
             \"fast_ops\":{f_ops},\"dense_ops\":{d_ops},\
             \"fast_expm\":{f_expm},\"dense_expm\":{d_expm},\
             \"max_abs_diff\":{diff:?}}}"
        );
        log.push(&line);
    }
    print!("{}", table.render());

    if let Some(dir) = csv {
        log.write(&dir, "BENCH_periodmap.json");
    }
}
