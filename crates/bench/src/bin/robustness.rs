//! Extension — robustness of the proactive guarantee under process variation.
//!
//! AO certifies its schedule against the *nominal* power model. Real silicon
//! varies: per-core `γ` (switching capacitance) and `α` (leakage floor) move
//! by several percent die-to-die. This experiment samples per-core variation,
//! rebuilds the thermal model with the sampled per-core `β`, re-evaluates the
//! nominal AO schedule's stable peak, and reports how often and by how much
//! the 55 °C guarantee breaks — and what guard band (`T_max` derating at design
//! time) restores it. This quantifies the classic criticism of offline DTM
//! that the paper's related-work section acknowledges.

use mosc_bench::compare::ao_options;
use mosc_bench::{csv_dir_from_args, write_csv, Table};
use mosc_core::ao;
use mosc_power::{CorePowerTable, Params65nm};
use mosc_sched::eval::SteadyState;
use mosc_sched::{Platform, PlatformSpec, Schedule};
use mosc_thermal::{Floorplan, RcConfig, RcNetwork, ThermalModel};
use mosc_workload::rng;

const SAMPLES: usize = 200;

fn main() {
    let csv = csv_dir_from_args();
    let rows = 2;
    let cols = 3;
    let t_max_c = 55.0;
    println!(
        "Robustness under process variation — 6-core, T_max = {t_max_c} C, {SAMPLES} variation samples\n"
    );

    let mut table = Table::new(&[
        "sigma (%)",
        "mean peak (C)",
        "p95 peak (C)",
        "max peak (C)",
        "violations (%)",
        "guard band (K)",
    ]);
    let mut csv_out =
        String::from("sigma_pct,mean_peak_c,p95_peak_c,max_peak_c,violation_pct,guard_band_k\n");

    for &sigma in &[0.02, 0.05, 0.10] {
        let (peaks, t_max) = sample_peaks(rows, cols, t_max_c, sigma);
        let mut sorted = peaks.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite peaks"));
        let mean = peaks.iter().sum::<f64>() / peaks.len() as f64;
        let p95 = sorted[(peaks.len() as f64 * 0.95) as usize];
        let max = *sorted.last().expect("non-empty");
        let violations =
            peaks.iter().filter(|&&p| p > t_max + 1e-9).count() as f64 / peaks.len() as f64;
        let guard = (max - t_max).max(0.0);
        table.row(vec![
            format!("{:.0}", sigma * 100.0),
            format!("{:.2}", mean + 35.0),
            format!("{:.2}", p95 + 35.0),
            format!("{:.2}", max + 35.0),
            format!("{:.1}", violations * 100.0),
            format!("{guard:.2}"),
        ]);
        csv_out.push_str(&format!(
            "{},{:.4},{:.4},{:.4},{:.2},{:.4}\n",
            sigma * 100.0,
            mean + 35.0,
            p95 + 35.0,
            max + 35.0,
            violations * 100.0,
            guard
        ));
    }
    println!("{}", table.render());
    println!(
        "reading: a proactive schedule certified at nominal parameters needs its design-time\n\
         T_max derated by the guard-band column to stay safe at that variation level —\n\
         or a reactive safety net on top (the governor of `governor_comparison`)."
    );

    if let Some(dir) = csv {
        write_csv(&dir, "robustness.csv", &csv_out);
    }
}

/// Designs the nominal AO schedule once, then evaluates its stable peak under
/// `SAMPLES` random per-core variation draws at relative spread `sigma`.
fn sample_peaks(rows: usize, cols: usize, t_max_c: f64, sigma: f64) -> (Vec<f64>, f64) {
    let spec = PlatformSpec::paper(rows, cols, 2, t_max_c);
    let platform = Platform::build(&spec).expect("platform");
    let nominal_sol = ao::solve_with(&platform, &ao_options()).expect("AO");
    let schedule: &Schedule = &nominal_sol.schedule;

    let params = Params65nm::params();
    let floorplan = Floorplan::grid(rows, cols, 4.0e-3, 4.0e-3).expect("floorplan");
    let n = rows * cols;

    let mut r = rng(0x0b5e55 + (sigma * 1000.0) as u64);
    let mut peaks = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        // Log-free symmetric multiplicative variation, clamped positive.
        let gamma_scale: Vec<f64> =
            (0..n).map(|_| (1.0 + r.gen_range(-3.0 * sigma..=3.0 * sigma)).max(0.2)).collect();
        let alpha_scale: Vec<f64> =
            (0..n).map(|_| (1.0 + r.gen_range(-3.0 * sigma..=3.0 * sigma)).max(0.2)).collect();
        let power = CorePowerTable::with_variation(params.power, &gamma_scale, &alpha_scale)
            .expect("variation sample");
        let network = RcNetwork::build(&floorplan, &RcConfig::default()).expect("network");
        let model = ThermalModel::with_betas(network, &power.betas()).expect("model");
        let ss = SteadyState::compute(&model, &power, schedule).expect("steady state");
        peaks.push(model.max_core_temp(ss.t_start()));
    }
    (peaks, platform.t_max())
}
