//! E-SV — serve throughput: the `mosc-serve` daemon under 1/4/8 concurrent
//! client threads on the `specs/smoke.json` platform.
//!
//! Each round binds a fresh in-process [`mosc_serve::Server`] on
//! `127.0.0.1:0`, points N client threads at it, and has every client issue
//! a fixed number of solve requests over one persistent connection. The
//! request mix cycles through four distinct `t_max_c` variants of the smoke
//! platform, so each round performs a handful of cold solves (four distinct
//! cache keys; concurrent first touches may race to fill the same key) and
//! answers the rest from the LRU cache — the steady-state regime a
//! design-space sweep would drive. The table reports wall time, sustained
//! requests/sec, the cache hit ratio, and the server-side p50/p99 solve
//! latency (from the daemon's own log-bucketed histograms) per client
//! count.
//!
//! With `--csv <dir>` the records are also written as `BENCH_serve.json`
//! (JSON lines, one record per client count) — the artifact the `ci.sh`
//! smoke checks for.

use mosc_analyze::json::Value;
use mosc_bench::record::{BenchLog, RunMeta};
use mosc_bench::{csv_dir_from_args, timed, Table};
use mosc_core::{SolveOptions, SolverKind};
use mosc_serve::{Request, Server, SolveRequest};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

/// Solve requests issued by each client thread per round.
const REQUESTS_PER_CLIENT: usize = 40;

/// Distinct `t_max_c` values cycled through the request mix: four cache
/// keys, so almost every request after the first few is a hit.
const T_MAX_VARIANTS: [f64; 4] = [55.0, 56.0, 57.0, 58.0];

fn request_line(id: &str, t_max_c: f64) -> String {
    let platform =
        Value::parse(&format!(r#"{{"rows":1,"cols":2,"levels":[0.6,1.3],"t_max_c":{t_max_c:?}}}"#))
            .expect("platform literal");
    Request::Solve(SolveRequest {
        id: id.to_owned(),
        kind: SolverKind::Ao,
        platform,
        options: SolveOptions {
            max_m: 64,
            m_patience: 4,
            t_unit_divisor: 50,
            ..SolveOptions::default()
        },
        want_schedule: false,
        trace: None,
    })
    .to_json()
}

/// One client thread: a persistent connection issuing its request quota
/// one-at-a-time, panicking on any lost or malformed response.
fn run_client(addr: SocketAddr, client: usize) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("TCP_NODELAY");
    let mut responses = BufReader::new(stream.try_clone().expect("clone socket"));
    let mut stream = stream;
    for i in 0..REQUESTS_PER_CLIENT {
        let id = format!("c{client}-{i}");
        let mut line = request_line(&id, T_MAX_VARIANTS[i % T_MAX_VARIANTS.len()]);
        line.push('\n');
        stream.write_all(line.as_bytes()).expect("send request");
        let mut response = String::new();
        responses.read_line(&mut response).expect("read response");
        assert!(
            response.contains("\"status\":\"ok\"") && response.contains(&format!("\"{id}\"")),
            "client {client} request {i} got a bad response: {response}"
        );
    }
}

/// One round's outcome: wall time, cache counters and latency quantiles.
struct Round {
    wall: f64,
    hits: u64,
    misses: u64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Runs one round at `clients` threads.
fn round(clients: usize) -> Round {
    let server = Server::builder().addr("127.0.0.1:0").bind().expect("bind 127.0.0.1:0");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("serve loop"));

    let ((), wall) = timed(|| {
        std::thread::scope(|scope| {
            for client in 0..clients {
                scope.spawn(move || run_client(addr, client));
            }
        });
    });
    let stats = handle.stats();
    handle.shutdown();
    join.join().expect("server thread");
    Round {
        wall,
        hits: stats.cache_hits,
        misses: stats.cache_misses,
        p50_ms: stats.p50_ms,
        p99_ms: stats.p99_ms,
    }
}

fn main() {
    // The latency histograms behind `stats.p50_ms`/`p99_ms` only record
    // while the mosc-obs recorder is armed.
    mosc_obs::enable();
    let csv = csv_dir_from_args();
    println!(
        "serve throughput — smoke platform, {REQUESTS_PER_CLIENT} requests/client, \
         {} distinct cache keys\n",
        T_MAX_VARIANTS.len()
    );
    let mut table = Table::new(&[
        "clients",
        "requests",
        "wall (s)",
        "req/s",
        "hits",
        "misses",
        "hit ratio",
        "p50 (ms)",
        "p99 (ms)",
    ]);
    let meta = RunMeta::capture("serve")
        .option("requests_per_client", REQUESTS_PER_CLIENT)
        .option("cache_keys", T_MAX_VARIANTS.len());
    let mut log = BenchLog::new(&meta);

    for clients in [1usize, 4, 8] {
        let r = round(clients);
        let requests = (clients * REQUESTS_PER_CLIENT) as u64;
        let req_per_s = requests as f64 / r.wall.max(1e-12);
        let hit_ratio = r.hits as f64 / (r.hits + r.misses) as f64;
        table.row(vec![
            clients.to_string(),
            requests.to_string(),
            format!("{:.4}", r.wall),
            format!("{req_per_s:.0}"),
            r.hits.to_string(),
            r.misses.to_string(),
            format!("{hit_ratio:.3}"),
            format!("{:.3}", r.p50_ms),
            format!("{:.3}", r.p99_ms),
        ]);
        let mut line = String::new();
        let _ = write!(
            line,
            "{{\"type\":\"serve\",\"mode\":\"closed\",\"clients\":{clients},\
             \"requests\":{requests},\"wall_s\":{:?},\"req_per_s\":{req_per_s:?},\
             \"cache_hits\":{},\"cache_misses\":{},\
             \"hit_ratio\":{hit_ratio:?},\"p50_ms\":{:?},\"p99_ms\":{:?}}}",
            r.wall, r.hits, r.misses, r.p50_ms, r.p99_ms
        );
        log.push(&line);
    }

    println!("{}", table.render());
    println!("hot requests are answered from the LRU cache without touching a solver;");
    println!("throughput scales with client threads until the reader/writer path saturates.");
    if let Some(dir) = csv {
        log.write(&dir, "BENCH_serve.json");
    }
}
