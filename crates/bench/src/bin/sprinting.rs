//! Extension — computational sprinting vs sustained m-Oscillating.
//!
//! The dark-silicon literature (cited in the paper's intro) exploits thermal
//! capacitance for bursts; AO exploits it for *sustained* throughput. This
//! experiment measures both on the same platform: the cold-start sprint
//! budget at all-max, the converged sprint/rest limit cycle, and AO's
//! sustained throughput at the same `T_max`.

use mosc_bench::compare::ao_options;
use mosc_bench::{csv_dir_from_args, f4, write_csv, Table};
use mosc_core::ao;
use mosc_linalg::Vector;
use mosc_sched::sprint::{limit_cycle, sprint_duration};
use mosc_sched::{Platform, PlatformSpec};

fn main() {
    let csv = csv_dir_from_args();
    println!("Computational sprinting vs sustained AO (2 levels, T_max = 55 C)\n");

    let mut table = Table::new(&[
        "cores",
        "cold sprint (s)",
        "cycle sprint/rest (s)",
        "sprint avg speed",
        "AO sustained",
    ]);
    let mut csv_out =
        String::from("cores,cold_sprint_s,cycle_sprint_s,cycle_rest_s,sprint_avg,ao_sustained\n");
    for (rows, cols) in [(1usize, 3usize), (2, 3)] {
        let n = rows * cols;
        let platform =
            Platform::build(&PlatformSpec::paper(rows, cols, 2, 55.0)).expect("platform");
        let boost = vec![1.3; n];
        let rest = vec![0.6; n];
        let t0 = Vector::zeros(platform.thermal().n_nodes());

        let cold =
            sprint_duration(platform.thermal(), platform.power(), &t0, &boost, platform.t_max())
                .expect("sprint eval")
                .map_or(f64::INFINITY, |d| d);
        let cycle = limit_cycle(
            platform.thermal(),
            platform.power(),
            &boost,
            &rest,
            platform.t_max(),
            platform.t_max() - 5.0,
        )
        .expect("limit cycle");
        let ao_thr = ao::solve_with(&platform, &ao_options()).expect("AO").throughput;

        table.row(vec![
            n.to_string(),
            format!("{cold:.2}"),
            format!("{:.3} / {:.3}", cycle.sprint_len, cycle.rest_len),
            f4(cycle.avg_speed),
            f4(ao_thr),
        ]);
        csv_out.push_str(&format!(
            "{n},{cold:.4},{:.6},{:.6},{:.6},{ao_thr:.6}\n",
            cycle.sprint_len, cycle.rest_len, cycle.avg_speed
        ));
    }
    println!("{}", table.render());
    println!(
        "reading: a cold chip can sprint at v_max for tens of seconds (the thermal\n\
         capacitance budget), but the converged sprint/rest duty cycle averages *below*\n\
         AO's sustained throughput — bang-bang between the extreme levels wastes the\n\
         convex-ψ premium that AO's neighboring-level oscillation avoids (Theorems 3–4)."
    );

    if let Some(dir) = csv {
        write_csv(&dir, "sprinting.csv", &csv_out);
    }
}
