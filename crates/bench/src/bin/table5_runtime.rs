//! E-T5 — Table V: computation-time comparison of AO / PCO / EXS across
//! core counts {2, 3, 6, 9} and level counts {2, 3, 4, 5}.
//!
//! Wall-clock seconds per solve (single run each; pass `--reps N` for
//! averaging). EXS runs single-threaded here to reproduce Algorithm 1's
//! scaling; pass `--parallel` to let it use all cores instead. Absolute
//! numbers differ from the paper's 2016 testbed — the claim under test is
//! the *scaling shape*: EXS explodes as `levels^cores` while AO/PCO stay
//! polynomial.

use mosc_bench::compare::solve_options;
use mosc_bench::{csv_dir_from_args, timed, timed_obs, write_csv, ObsLog, Table};
use mosc_core::{solve, SolveOptions, SolverKind};
use mosc_sched::{Platform, PlatformSpec};
use mosc_workload::{rng, PAPER_CONFIGS};
use std::path::PathBuf;

/// Pulls the two kernel counters out of a telemetry snapshot.
fn kernel_counters(t: &mosc_obs::Telemetry) -> (u64, u64) {
    (t.counter("expm.calls").unwrap_or(0), t.counter("peak_eval.calls").unwrap_or(0))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let reps: usize = args
        .iter()
        .position(|a| a == "--reps")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1);
    let parallel_exs = args.iter().any(|a| a == "--parallel");
    let randomize = args.iter().any(|a| a == "--random-cases");
    let csv = csv_dir_from_args();
    // The paper averages over up to 100 random cases per cell; with
    // `--random-cases` each rep draws T_max uniformly from [50, 65] °C
    // (seeded), otherwise every rep uses the fixed 65 °C platform.
    let mut case_rng = rng(0x7ab1e5);

    println!(
        "Table V — computation time (seconds, {} rep(s){}, EXS {})\n",
        reps,
        if randomize { ", randomized T_max" } else { "" },
        if parallel_exs { "parallel" } else { "single-threaded" }
    );
    let mut table =
        Table::new(&["cores", "scheme", "2 levels", "3 levels", "4 levels", "5 levels"]);
    let mut kernels = Table::new(&["cores", "scheme", "levels", "expm.calls", "peak_eval.calls"]);
    let mut csv_out = String::from("cores,scheme,levels,seconds,expm_calls,peak_eval_calls\n");
    let mut obs_log = ObsLog::new();

    for &(rows, cols) in &PAPER_CONFIGS {
        let n = rows * cols;
        let mut times: [[f64; 4]; 3] = [[0.0; 4]; 3];
        let mut counts: [[(u64, u64); 4]; 3] = [[(0, 0); 4]; 3];
        for (li, levels) in (2..=5usize).enumerate() {
            for rep in 0..reps {
                let t_max_c = if randomize { case_rng.gen_range(50.0..=65.0) } else { 65.0 };
                let platform = Platform::build(&PlatformSpec::paper(rows, cols, levels, t_max_c))
                    .expect("platform");
                let opts = solve_options();
                let exs_opts = SolveOptions { threads: if parallel_exs { 0 } else { 1 }, ..opts };
                let (_, t_ao, obs_ao) = timed_obs(|| solve(SolverKind::Ao, &platform, &opts));
                let (_, t_pco, obs_pco) = timed_obs(|| solve(SolverKind::Pco, &platform, &opts));
                let (_, t_exs, obs_exs) =
                    timed_obs(|| solve(SolverKind::Exs, &platform, &exs_opts));
                times[0][li] += t_ao / reps as f64;
                times[1][li] += t_pco / reps as f64;
                times[2][li] += t_exs / reps as f64;
                for (si, obs) in [&obs_ao, &obs_pco, &obs_exs].into_iter().enumerate() {
                    let (e, p) = kernel_counters(obs);
                    counts[si][li].0 += e;
                    counts[si][li].1 += p;
                }
                if rep + 1 == reps {
                    obs_log.section(&format!("AO/{n}c/{levels}L"), t_ao, &obs_ao);
                    obs_log.section(&format!("PCO/{n}c/{levels}L"), t_pco, &obs_pco);
                    obs_log.section(&format!("EXS/{n}c/{levels}L"), t_exs, &obs_exs);
                }
            }
            eprintln!("  [{n} cores, {levels} levels] done");
        }
        for (si, scheme) in ["AO", "PCO", "EXS"].iter().enumerate() {
            table.row(
                std::iter::once(n.to_string())
                    .chain(std::iter::once((*scheme).to_string()))
                    .chain((0..4).map(|li| format!("{:.3}", times[si][li])))
                    .collect(),
            );
            for (li, levels) in (2..=5usize).enumerate() {
                let (e, p) = counts[si][li];
                csv_out.push_str(&format!("{n},{scheme},{levels},{:.6},{e},{p}\n", times[si][li]));
                kernels.row(vec![
                    n.to_string(),
                    (*scheme).to_string(),
                    levels.to_string(),
                    e.to_string(),
                    p.to_string(),
                ]);
            }
        }
    }
    println!("{}", table.render());
    println!("Kernel work per cell (mosc-obs counters, summed over reps):");
    println!("{}", kernels.render());
    println!(
        "shape check: EXS grows ~levels^cores; AO/PCO stay flat-to-polynomial in both axes.\n"
    );

    // Extended scaling: the paper's ">2 hours" cell came from richer level
    // sets. Sweep uniform grids on the 9-core platform until EXS clearly
    // explodes while AO barely moves.
    println!("Extended EXS scaling on 9 cores (uniform 0.6..1.3 V grids):");
    let mut ext = Table::new(&["levels", "EXS candidates", "EXS (s)", "AO (s)"]);
    for levels in [2usize, 4, 6, 8] {
        let step = 0.7 / (levels - 1) as f64;
        let mut spec = PlatformSpec::paper(3, 3, 2, 65.0);
        spec.modes = mosc_power::ModeTable::uniform(0.6, 1.3, step).expect("grid");
        let platform = Platform::build(&spec).expect("platform");
        let opts = solve_options();
        let (_, t_exs) =
            timed(|| solve(SolverKind::Exs, &platform, &SolveOptions { threads: 1, ..opts }));
        let (_, t_ao) = timed(|| solve(SolverKind::Ao, &platform, &opts));
        let candidates = (spec.modes.len() as f64).powi(9);
        ext.row(vec![
            spec.modes.len().to_string(),
            format!("{candidates:.2e}"),
            format!("{t_exs:.3}"),
            format!("{t_ao:.3}"),
        ]);
        csv_out.push_str(&format!(
            "9,EXS-ext,{},{t_exs:.6}\n9,AO-ext,{},{t_ao:.6}\n",
            spec.modes.len(),
            spec.modes.len()
        ));
    }
    println!("{}", ext.render());

    // Machine-readable telemetry for the perf trajectory: the last rep of
    // every (scheme, cores, levels) cell, in `--obs=json` profile format.
    obs_log.write(&csv.clone().unwrap_or_else(|| PathBuf::from(".")));
    if let Some(dir) = csv {
        write_csv(&dir, "table5_runtime.csv", &csv_out);
    }
}
