//! One-shot validation harness: runs every shape check the reproduction
//! makes against the paper and prints a PASS/FAIL summary. Fast (~seconds in
//! release); the full experiment binaries produce the detailed tables.

use mosc_bench::compare::{solve_options, Comparison};
use mosc_bench::{timed_obs, ObsLog};
use mosc_core::{continuous, solve, SolveOptions, SolverKind};
use mosc_sched::{Platform, PlatformSpec, Schedule};
use mosc_workload::{rng, ScheduleGen};
use std::path::PathBuf;
use std::process::ExitCode;

struct Harness {
    failures: Vec<String>,
    count: usize,
}

impl Harness {
    fn check(&mut self, name: &str, ok: bool, detail: &str) {
        self.count += 1;
        if ok {
            println!("PASS  {name}");
        } else {
            println!("FAIL  {name}: {detail}");
            self.failures.push(name.to_string());
        }
    }
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let mut h = Harness { failures: Vec::new(), count: 0 };

    // §III motivation.
    {
        let p = Platform::build(&PlatformSpec::motivation()).expect("platform");
        let opts = solve_options();
        let l = solve(SolverKind::Lns, &p, &opts).expect("lns").solution.throughput;
        let e = solve(SolverKind::Exs, &p, &opts).expect("exs").solution.throughput;
        let ideal = continuous::solve(&p).expect("ideal");
        h.check("motivation: LNS collapses to 0.6", (l - 0.6).abs() < 1e-9, &format!("{l}"));
        h.check(
            "motivation: EXS = 0.8333 ([0.6,0.6,1.3])",
            (e - 5.0 / 6.0).abs() < 1e-3,
            &format!("{e}"),
        );
        h.check(
            "motivation: middle core gets lower ideal voltage",
            ideal.voltages[1] < ideal.voltages[0],
            &format!("{:?}", ideal.voltages),
        );
    }

    // Theorem 1 & 5 spot checks.
    {
        let p = Platform::build(&PlatformSpec::paper(1, 3, 5, 65.0)).expect("platform");
        let gen = ScheduleGen { period: 1.0, max_segments: 3, ..ScheduleGen::default() };
        let s = gen.stepup_schedule(&mut rng(7), 3);
        let exact = p.peak(&s).expect("peak");
        let ss = mosc_sched::eval::SteadyState::compute(p.thermal(), p.power(), &s).expect("ss");
        let dense = ss.peak_sampled(p.thermal(), 3000).expect("peak");
        h.check(
            "Theorem 1: step-up peak at period end",
            dense.temp <= exact.temp + 1e-6 && exact.exact,
            &format!("dense {} vs exact {}", dense.temp, exact.temp),
        );
        let peaks: Vec<f64> = [1usize, 2, 4, 8]
            .iter()
            .map(|&m| p.peak(&s.oscillated(m)).expect("peak").temp)
            .collect();
        h.check(
            "Theorem 5: peak monotone in m",
            peaks.windows(2).all(|w| w[1] <= w[0] + 1e-9),
            &format!("{peaks:?}"),
        );
    }

    // Theorem 2 sweep bound (reduced Fig. 3).
    {
        let mut spec = PlatformSpec::paper(1, 3, 2, 65.0);
        spec.rc = mosc_thermal::RcConfig::responsive_package();
        let p = Platform::build(&spec).expect("platform");
        let base = Schedule::two_mode(&[0.6; 3], &[1.3; 3], &[0.5; 3], 6.0).expect("base");
        let bound = p.peak(&base).expect("peak").temp;
        let mut max_seen = f64::NEG_INFINITY;
        for i in 0..6 {
            for j in 0..6 {
                let cand = base.with_shifted_core(1, i as f64).with_shifted_core(2, j as f64);
                let peak =
                    mosc_sched::eval::peak_temperature(p.thermal(), p.power(), &cand, Some(200))
                        .expect("peak")
                        .temp;
                max_seen = max_seen.max(peak);
            }
        }
        h.check(
            "Theorem 2: step-up bounds the phase sweep",
            max_seen <= bound + 1e-3,
            &format!("sweep max {max_seen} vs bound {bound}"),
        );
    }

    // Fig. 6/7 orderings.
    {
        let p = Platform::build(&PlatformSpec::paper(2, 3, 2, 55.0)).expect("platform");
        let cmp = Comparison::run(&p);
        let (l, e, a, pc) = (
            Comparison::throughput(&cmp.lns),
            Comparison::throughput(&cmp.exs),
            Comparison::throughput(&cmp.ao),
            Comparison::throughput(&cmp.pco),
        );
        h.check(
            "Fig 6: LNS <= EXS <= AO on 6-core 2-level",
            l <= e + 1e-9 && e <= a + 1e-9,
            &format!("{l} {e} {a}"),
        );
        h.check("Fig 6: AO ~ PCO", (a - pc).abs() < 0.02, &format!("{a} vs {pc}"));
    }
    {
        let mut ok = true;
        let mut detail = String::new();
        for t_max_c in [55.0, 60.0, 65.0] {
            let p = Platform::build(&PlatformSpec::paper(1, 2, 2, t_max_c)).expect("platform");
            let a = solve(SolverKind::Ao, &p, &solve_options()).expect("ao").solution.throughput;
            if (a - 1.3).abs() > 2e-3 {
                ok = false;
                detail = format!("AO at {t_max_c} C gave {a}");
            }
        }
        h.check("Fig 7: 2-core plateau at v_max for T_max >= 55", ok, &detail);
    }

    // Fig 7 monotonicity in T_max.
    {
        let mut prev = 0.0;
        let mut ok = true;
        let mut vals = Vec::new();
        for t_max_c in [50.0, 55.0, 60.0, 65.0] {
            let p = Platform::build(&PlatformSpec::paper(3, 3, 2, t_max_c)).expect("platform");
            let a = solve(SolverKind::Ao, &p, &solve_options()).expect("ao").solution.throughput;
            ok &= a >= prev - 1e-9;
            prev = a;
            vals.push(a);
        }
        h.check("Fig 7: throughput monotone in T_max (9-core)", ok, &format!("{vals:?}"));
    }

    // Table V shape: EXS (single-thread) superlinear in levels on 9 cores.
    {
        use std::time::Instant;
        let time_exs = |levels: usize| {
            let p = Platform::build(&PlatformSpec::paper(3, 3, levels, 65.0)).expect("platform");
            let start = Instant::now();
            let single = SolveOptions { threads: 1, ..solve_options() };
            let _ = solve(SolverKind::Exs, &p, &single).expect("exs");
            start.elapsed().as_secs_f64()
        };
        let t3 = time_exs(3);
        let t5 = time_exs(5);
        h.check(
            "Table V: EXS cost explodes with level count",
            t5 > 5.0 * t3.max(1e-5),
            &format!("3 levels {t3:.4}s vs 5 levels {t5:.4}s"),
        );
    }

    // Observability: the kernel counters must attribute the solvers' work,
    // and the telemetry must be exportable for the perf trajectory.
    {
        let p = Platform::build(&PlatformSpec::paper(2, 3, 2, 55.0)).expect("platform");
        let mut log = ObsLog::new();
        let opts = solve_options();
        let (_, t_ao, obs_ao) = timed_obs(|| solve(SolverKind::Ao, &p, &opts));
        let expm = obs_ao.counter("expm.calls").unwrap_or(0);
        let peaks = obs_ao.counter("peak_eval.calls").unwrap_or(0);
        let rounds = obs_ao.counter("ao.tpt_rounds").unwrap_or(0);
        log.section("AO", t_ao, &obs_ao);
        h.check(
            "obs: AO attributes kernel work to counters",
            expm > 0 && peaks > 0 && rounds > 0,
            &format!("expm {expm}, peak_eval {peaks}, tpt_rounds {rounds}"),
        );
        let (_, t_exs, obs_exs) = timed_obs(|| solve(SolverKind::Exs, &p, &opts));
        log.section("EXS", t_exs, &obs_exs);
        h.check(
            "obs: EXS run produces a root span",
            obs_exs.span_path("exs.solve").is_some(),
            "no exs.solve span in snapshot",
        );
        let (_, t_lns, obs_lns) = timed_obs(|| solve(SolverKind::Lns, &p, &opts));
        log.section("LNS", t_lns, &obs_lns);
        println!(
            "      (AO on 6 cores: {expm} expm.calls, {peaks} peak_eval.calls, \
             {rounds} tpt rounds in {t_ao:.3}s)"
        );
        log.write(&PathBuf::from("."));
        mosc_obs::disable();
        mosc_obs::reset();
    }

    println!(
        "\n{}/{} checks passed{}",
        h.count - h.failures.len(),
        h.count,
        if h.failures.is_empty() { " — reproduction intact" } else { "" }
    );
    if h.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("failing checks: {:?}", h.failures);
        ExitCode::FAILURE
    }
}
