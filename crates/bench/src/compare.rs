//! Shared four-way algorithm comparison used by the Fig. 6 / Fig. 7 /
//! Table V binaries.

use mosc_core::ao::AoOptions;
use mosc_core::pco::PcoOptions;
use mosc_core::{ao, exs, lns, pco, Solution};
use mosc_sched::Platform;

/// The evaluation's AO settings: 50 ms base period, overhead-bounded m.
#[must_use]
pub fn ao_options() -> AoOptions {
    AoOptions { base_period: 0.05, max_m: 512, m_patience: 6, t_unit_divisor: 100, threads: 0 }
}

/// The evaluation's PCO settings (coarser sampling keeps the full grids
/// tractable while preserving the AO-vs-PCO relationship).
#[must_use]
pub fn pco_options() -> PcoOptions {
    PcoOptions { ao: ao_options(), phase_steps: 6, samples: 250, refill_divisor: 60 }
}

/// One comparison row: the four algorithms on one platform. `None` marks an
/// infeasible platform/algorithm combination.
#[derive(Debug)]
pub struct Comparison {
    /// LNS result.
    pub lns: Option<Solution>,
    /// EXS result.
    pub exs: Option<Solution>,
    /// AO result.
    pub ao: Option<Solution>,
    /// PCO result.
    pub pco: Option<Solution>,
}

impl Comparison {
    /// Runs all four algorithms.
    #[must_use]
    pub fn run(platform: &Platform) -> Self {
        Self {
            lns: lns::solve(platform).ok(),
            exs: exs::solve(platform).ok(),
            ao: ao::solve_with(platform, &ao_options()).ok(),
            pco: pco::solve_with(platform, &pco_options()).ok(),
        }
    }

    /// Throughput of one slot (0 when infeasible).
    #[must_use]
    pub fn throughput(sol: &Option<Solution>) -> f64 {
        sol.as_ref().map_or(0.0, |s| s.throughput)
    }

    /// AO's improvement over EXS in percent (0 when either is missing).
    #[must_use]
    pub fn ao_vs_exs_percent(&self) -> f64 {
        match (&self.ao, &self.exs) {
            (Some(a), Some(e)) if e.throughput > 0.0 => (a.throughput / e.throughput - 1.0) * 100.0,
            _ => 0.0,
        }
    }
}
