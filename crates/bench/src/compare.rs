//! Shared four-way algorithm comparison used by the Fig. 6 / Fig. 7 /
//! Table V binaries.

use mosc_core::ao::AoOptions;
use mosc_core::pco::PcoOptions;
use mosc_core::{solve, Solution, SolveOptions, SolverKind};
use mosc_sched::Platform;

/// The evaluation's AO settings: 50 ms base period, overhead-bounded m.
#[must_use]
pub fn ao_options() -> AoOptions {
    AoOptions { base_period: 0.05, max_m: 512, m_patience: 6, t_unit_divisor: 100, threads: 0 }
}

/// The evaluation's PCO settings (coarser sampling keeps the full grids
/// tractable while preserving the AO-vs-PCO relationship).
#[must_use]
pub fn pco_options() -> PcoOptions {
    PcoOptions { ao: ao_options(), phase_steps: 6, samples: 250, refill_divisor: 60 }
}

/// The same evaluation settings in the unified dispatcher's flat form, for
/// callers going through `mosc_core::solve`.
#[must_use]
pub fn solve_options() -> SolveOptions {
    let ao = ao_options();
    let pco = pco_options();
    SolveOptions {
        threads: ao.threads,
        max_m: ao.max_m,
        base_period: ao.base_period,
        m_patience: ao.m_patience,
        t_unit_divisor: ao.t_unit_divisor,
        phase_steps: pco.phase_steps,
        samples: pco.samples,
        refill_divisor: pco.refill_divisor,
        ..SolveOptions::default()
    }
}

/// One comparison row: the four algorithms on one platform. `None` marks an
/// infeasible platform/algorithm combination.
#[derive(Debug)]
pub struct Comparison {
    /// LNS result.
    pub lns: Option<Solution>,
    /// EXS result.
    pub exs: Option<Solution>,
    /// AO result.
    pub ao: Option<Solution>,
    /// PCO result.
    pub pco: Option<Solution>,
}

impl Comparison {
    /// Runs all four algorithms through the unified dispatcher.
    #[must_use]
    pub fn run(platform: &Platform) -> Self {
        let opts = solve_options();
        let run = |kind| solve(kind, platform, &opts).ok().map(|r| r.solution);
        Self {
            lns: run(SolverKind::Lns),
            exs: run(SolverKind::Exs),
            ao: run(SolverKind::Ao),
            pco: run(SolverKind::Pco),
        }
    }

    /// Throughput of one slot (0 when infeasible).
    #[must_use]
    pub fn throughput(sol: &Option<Solution>) -> f64 {
        sol.as_ref().map_or(0.0, |s| s.throughput)
    }

    /// AO's improvement over EXS in percent (0 when either is missing).
    #[must_use]
    pub fn ao_vs_exs_percent(&self) -> f64 {
        match (&self.ao, &self.exs) {
            (Some(a), Some(e)) if e.throughput > 0.0 => (a.throughput / e.throughput - 1.0) * 100.0,
            _ => 0.0,
        }
    }
}
