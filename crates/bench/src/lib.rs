//! Shared reporting helpers for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md's experiment index). They print aligned text tables to
//! stdout and, when `--csv <dir>` is passed, also drop CSV files suitable
//! for replotting.

pub mod compare;
pub mod loadgen;
pub mod micro;
pub mod record;
pub mod regress;

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// A simple aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(ToString::to_string).collect(), rows: Vec::new() }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let n_cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(n_cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let w = widths.get(i).copied().unwrap_or(cell.len());
                let _ = write!(out, "{cell:>w$}  ");
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * n_cols;
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Renders the table as CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Parses the standard experiment CLI: an optional `--csv <dir>` pair.
/// Returns the CSV output directory when requested.
#[must_use]
pub fn csv_dir_from_args() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == "--csv").and_then(|i| args.get(i + 1)).map(PathBuf::from)
}

/// Writes `content` into `dir/name`, creating the directory when needed.
/// Prints a notice; IO failures are reported, not fatal (the stdout table is
/// the primary artifact).
pub fn write_csv(dir: &PathBuf, name: &str, content: &str) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(name);
    match std::fs::write(&path, content) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Times a closure, returning its value and the elapsed seconds.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let v = f();
    (v, start.elapsed().as_secs_f64())
}

/// Times a closure inside its own `mosc-obs` recorder window (the recorder
/// is armed and reset first), returning the value, the elapsed seconds, and
/// the telemetry captured during the run — how the runtime tables report
/// `expm.calls` / `peak_eval.calls` alongside wall-time.
pub fn timed_obs<T>(f: impl FnOnce() -> T) -> (T, f64, mosc_obs::Telemetry) {
    mosc_obs::enable();
    mosc_obs::reset();
    let start = Instant::now();
    let v = f();
    let secs = start.elapsed().as_secs_f64();
    (v, secs, mosc_obs::snapshot())
}

/// Accumulates labelled telemetry sections into the `BENCH_obs.json` format:
/// JSON lines, one `{"type":"profile",...}` header per section followed by
/// that section's records — the same shape `mosc-cli profile --obs=json`
/// prints, so `mosc-cli analyze BENCH_obs.json` (renamed `.jsonl`) and any
/// trajectory tooling can consume either.
#[derive(Debug, Default)]
pub struct ObsLog {
    lines: String,
}

impl ObsLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one labelled section.
    pub fn section(&mut self, label: &str, wall_s: f64, telemetry: &mosc_obs::Telemetry) {
        let escaped: String = label
            .chars()
            .flat_map(|c| match c {
                '"' | '\\' => vec!['\\', c],
                c => vec![c],
            })
            .collect();
        let _ = writeln!(
            self.lines,
            "{{\"type\":\"profile\",\"solver\":\"{escaped}\",\"wall_s\":{wall_s:?}}}"
        );
        self.lines.push_str(&telemetry.to_jsonl());
    }

    /// The accumulated JSONL document.
    #[must_use]
    pub fn render(&self) -> &str {
        &self.lines
    }

    /// Writes the log as `BENCH_obs.json` under `dir` (same reporting
    /// behavior as [`write_csv`]: failures warn, never panic).
    pub fn write(&self, dir: &PathBuf) {
        write_csv(dir, "BENCH_obs.json", &self.lines);
    }
}

/// Formats a float with 4 decimals (the tables' standard precision).
#[must_use]
pub fn f4(v: f64) -> String {
    format!("{v:.4}")
}

/// Formats a float with 2 decimals.
#[must_use]
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1.0".into()]);
        t.row(vec!["longer".into(), "2.25".into()]);
        let s = t.render();
        assert!(s.contains("name"));
        assert!(s.contains("longer"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    fn table_to_csv() {
        let mut t = Table::new(&["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n");
    }

    #[test]
    fn timed_reports_duration() {
        let (v, secs) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f4(1.0 / 3.0), "0.3333");
        assert_eq!(f2(2.675), "2.67"); // bankers-ish rounding of floats
    }
}
