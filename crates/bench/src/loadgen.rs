//! Open-loop arrival schedules for the `mosc-bench loadgen` binary.
//!
//! A closed-loop client (the E-SV serve bench) sends its next request only
//! after the previous response arrives, so when the server slows down the
//! client slows down with it and the recorded latencies silently exclude
//! the queueing the *intended* workload would have suffered — coordinated
//! omission. An open-loop generator fixes the arrival times up front from
//! a seeded random process, sends each request at its scheduled instant
//! whether or not earlier responses are back, and measures every latency
//! from the **intended** send time. This module provides the deterministic
//! schedule half of that design; the binary adds sockets and threads.
//!
//! Schedules are reproducible: the same `(process, rate, duration, seed)`
//! always yields the same arrival times, so a regression run offers
//! byte-identical load to its baseline.

use mosc_testutil::Rng64;

/// The inter-arrival distribution of an open-loop schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Exponential inter-arrival times (a Poisson process) — the bursty
    /// memoryless arrivals a shared service actually sees.
    Poisson,
    /// Constant inter-arrival times — perfectly paced load, the easiest
    /// case for the server and a useful lower bound on latency.
    Uniform,
}

impl ArrivalProcess {
    /// Parses the CLI spelling (`"poisson"` / `"uniform"`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "poisson" => Some(Self::Poisson),
            "uniform" => Some(Self::Uniform),
            _ => None,
        }
    }

    /// The artifact spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Poisson => "poisson",
            Self::Uniform => "uniform",
        }
    }
}

/// Builds the arrival schedule: intended send times in seconds from the
/// run start, strictly within `[0, duration_s)`, sorted ascending.
///
/// For [`ArrivalProcess::Poisson`] the gaps are `-ln(1-u)/rate` draws from
/// a [`Rng64`] seeded with `seed` (inverse-CDF exponential sampling); for
/// [`ArrivalProcess::Uniform`] the gaps are exactly `1/rate` and the seed
/// is ignored. The expected schedule length is `rate_hz * duration_s`
/// either way.
///
/// # Panics
/// When `rate_hz` or `duration_s` is not finite and positive.
#[must_use]
pub fn arrival_schedule(
    process: ArrivalProcess,
    rate_hz: f64,
    duration_s: f64,
    seed: u64,
) -> Vec<f64> {
    assert!(rate_hz.is_finite() && rate_hz > 0.0, "rate must be positive, got {rate_hz}");
    assert!(
        duration_s.is_finite() && duration_s > 0.0,
        "duration must be positive, got {duration_s}"
    );
    let mut rng = Rng64::seed_from_u64(seed);
    let mut t = 0.0_f64;
    let mut out = Vec::with_capacity((rate_hz * duration_s) as usize + 1);
    loop {
        let gap = match process {
            ArrivalProcess::Poisson => {
                // Inverse-CDF exponential; next_f64 is in [0, 1) so the
                // argument of ln stays in (0, 1].
                -(1.0 - rng.next_f64()).ln() / rate_hz
            }
            ArrivalProcess::Uniform => 1.0 / rate_hz,
        };
        t += gap;
        if t >= duration_s {
            return out;
        }
        out.push(t);
    }
}

/// Locates the saturation knee of a rate sweep: the highest offered rate
/// whose achieved rate kept up within `tolerance` (achieved ≥ tolerance ×
/// offered). Returns `None` when no point kept up — the sweep started past
/// saturation.
#[must_use]
pub fn saturation_knee(points: &[(f64, f64)], tolerance: f64) -> Option<f64> {
    points
        .iter()
        .filter(|(offered, achieved)| *achieved >= tolerance * *offered)
        .map(|(offered, _)| *offered)
        .fold(None, |best, offered| Some(best.map_or(offered, |b: f64| b.max(offered))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_reproducible_from_seed() {
        let a = arrival_schedule(ArrivalProcess::Poisson, 200.0, 2.0, 42);
        let b = arrival_schedule(ArrivalProcess::Poisson, 200.0, 2.0, 42);
        assert_eq!(a, b, "same seed must reproduce the same schedule");
        let c = arrival_schedule(ArrivalProcess::Poisson, 200.0, 2.0, 43);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn poisson_schedule_matches_the_offered_rate() {
        let (rate, duration) = (500.0, 4.0);
        let s = arrival_schedule(ArrivalProcess::Poisson, rate, duration, 7);
        // Count ~ Poisson(2000); 5 sigma is ~±224.
        let expected = rate * duration;
        assert!(
            (s.len() as f64 - expected).abs() < 5.0 * expected.sqrt(),
            "got {} arrivals, expected about {expected}",
            s.len()
        );
        assert!(s.windows(2).all(|w| w[0] <= w[1]), "arrivals must be sorted");
        assert!(s.iter().all(|&t| (0.0..duration).contains(&t)));
    }

    #[test]
    fn uniform_schedule_is_exactly_paced() {
        // Rate 8 makes the 1/8 s gap exact in binary, so the count is too.
        let s = arrival_schedule(ArrivalProcess::Uniform, 8.0, 1.0, 999);
        assert_eq!(s.len(), 7, "arrivals at 0.125 .. 0.875; 1.0 is excluded");
        for w in s.windows(2) {
            assert!((w[1] - w[0] - 0.125).abs() < 1e-12, "gap must be exactly 1/rate");
        }
    }

    #[test]
    fn knee_is_the_last_rate_that_kept_up() {
        let sweep =
            [(100.0, 99.0), (200.0, 198.0), (400.0, 392.0), (800.0, 430.0), (1600.0, 428.0)];
        assert_eq!(saturation_knee(&sweep, 0.9), Some(400.0));
        assert_eq!(saturation_knee(&[(100.0, 20.0)], 0.9), None);
        assert_eq!(saturation_knee(&[], 0.9), None);
    }

    #[test]
    fn process_parsing_roundtrips() {
        for p in [ArrivalProcess::Poisson, ArrivalProcess::Uniform] {
            assert_eq!(ArrivalProcess::parse(p.name()), Some(p));
        }
        assert_eq!(ArrivalProcess::parse("bursty"), None);
    }
}
