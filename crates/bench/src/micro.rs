//! A minimal micro-benchmark harness for the `[[bench]]` targets.
//!
//! The workspace builds offline, so the benches cannot use Criterion. This
//! harness keeps the same shape — named groups of named benchmarks — with a
//! simple adaptive protocol: calibrate the per-iteration cost, then collect a
//! fixed number of samples and report the median and minimum. Invoke via
//! `cargo bench`; pass a substring filter as the first free argument to run a
//! subset, or `--list` to enumerate without running.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Number of timed samples per benchmark.
const SAMPLES: usize = 12;
/// Wall-clock budget per benchmark used to size iteration counts.
const TARGET_TOTAL: Duration = Duration::from_millis(240);

/// Top-level runner: parses the CLI filter and owns the report.
#[derive(Debug)]
pub struct Runner {
    filter: Option<String>,
    list_only: bool,
}

impl Runner {
    /// Builds a runner from `std::env::args` (`[filter]`, `--list`).
    #[must_use]
    pub fn from_args() -> Self {
        let mut filter = None;
        let mut list_only = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--list" => list_only = true,
                // `cargo bench` forwards its own cosmetic flags; ignore them.
                a if a.starts_with("--") => {}
                a => filter = Some(a.to_string()),
            }
        }
        Self { filter, list_only }
    }

    /// Starts a named benchmark group.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group { runner: self, name: name.to_string() }
    }

    fn should_run(&self, full_name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_name.contains(f))
    }
}

impl Default for Runner {
    fn default() -> Self {
        Self::from_args()
    }
}

/// A named group of benchmarks (mirrors Criterion's `benchmark_group`).
#[derive(Debug)]
pub struct Group<'a> {
    runner: &'a mut Runner,
    name: String,
}

impl Group<'_> {
    /// Times `f`, printing one result line. The closure's return value is
    /// passed through [`black_box`] so the work cannot be optimized away.
    pub fn bench<T>(&mut self, id: &str, mut f: impl FnMut() -> T) {
        let full = format!("{}/{id}", self.name);
        if !self.runner.should_run(&full) {
            return;
        }
        if self.runner.list_only {
            println!("{full}");
            return;
        }
        // Calibrate: grow the iteration count until one batch is measurable.
        let mut iters: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break elapsed.as_secs_f64() / iters as f64;
            }
            iters *= 4;
        };
        let batch = ((TARGET_TOTAL.as_secs_f64() / SAMPLES as f64 / per_iter.max(1e-9)) as u64)
            .clamp(1, 10_000_000);
        let mut samples: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                start.elapsed().as_secs_f64() / batch as f64
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        let median = samples[samples.len() / 2];
        let min = samples[0];
        println!("{full:<44} median {:>12}  min {:>12}", fmt_time(median), fmt_time(min));
    }
}

/// Human-readable time with an adaptive unit.
fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_formatting_picks_units() {
        assert_eq!(fmt_time(2.5), "2.500 s");
        assert_eq!(fmt_time(2.5e-3), "2.500 ms");
        assert_eq!(fmt_time(2.5e-6), "2.500 µs");
        assert_eq!(fmt_time(2.5e-9), "2.5 ns");
    }

    #[test]
    fn filter_matches_substrings() {
        let r = Runner { filter: Some("lu/".into()), list_only: false };
        assert!(r.should_run("lu/factor"));
        assert!(!r.should_run("jacobi/8"));
        let open = Runner { filter: None, list_only: false };
        assert!(open.should_run("anything"));
    }
}
