//! BENCH schema v2: one emission path for every bench artifact.
//!
//! Before PR 7 each `mosc-bench` binary hand-rolled its own JSONL and the
//! resulting `BENCH_*.json` files carried no provenance — two artifacts
//! from different machines or commits compared as if interchangeable.
//! Schema v2 routes every artifact through [`BenchLog`], which stamps a
//! `{"type":"bench_meta","schema":2,...}` header (bench name, git sha,
//! host, logical CPU count, and the options that shaped the run) ahead of
//! the records. `mosc-bench compare` refuses artifacts whose metadata is
//! missing, and the `M100` analyzer lint fails deny-mode CI on them.
//!
//! The stamps degrade gracefully: outside a git checkout the sha falls
//! back to the `MOSC_GIT_SHA` environment variable and then `"unknown"`,
//! so artifacts are still well-formed (compare warns about unknown shas
//! instead of refusing).

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::Command;

/// Run provenance stamped into every schema-v2 artifact header.
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// Which bench produced the artifact (`"loadgen"`, `"serve"`, ...).
    pub bench: String,
    /// Abbreviated commit hash of the workspace, or `"unknown"`.
    pub git_sha: String,
    /// Hostname the run executed on, or `"unknown"`.
    pub host: String,
    /// Logical CPUs visible to the process.
    pub threads: usize,
    /// The knobs that shaped the run, as ordered key/value pairs.
    pub options: Vec<(String, String)>,
}

impl RunMeta {
    /// Captures the current environment for the named bench.
    #[must_use]
    pub fn capture(bench: &str) -> Self {
        Self {
            bench: bench.to_string(),
            git_sha: git_sha(),
            host: hostname(),
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
            options: Vec::new(),
        }
    }

    /// Records one run option (builder-style).
    #[must_use]
    #[allow(clippy::needless_pass_by_value)] // builder ergonomics: `.option("rate", 150)`
    pub fn option(mut self, key: &str, value: impl ToString) -> Self {
        self.options.push((key.to_string(), value.to_string()));
        self
    }

    /// The schema-v2 header line (no trailing newline).
    #[must_use]
    pub fn header(&self) -> String {
        let mut opts = String::new();
        for (i, (k, v)) in self.options.iter().enumerate() {
            if i > 0 {
                opts.push(',');
            }
            let _ = write!(opts, "\"{}\":\"{}\"", escape(k), escape(v));
        }
        format!(
            "{{\"type\":\"bench_meta\",\"schema\":2,\"bench\":\"{}\",\
             \"git_sha\":\"{}\",\"host\":\"{}\",\"threads\":{},\"options\":{{{opts}}}}}",
            escape(&self.bench),
            escape(&self.git_sha),
            escape(&self.host),
            self.threads
        )
    }
}

/// A schema-v2 JSONL artifact under construction: the meta header followed
/// by the records the caller pushes.
#[derive(Debug)]
pub struct BenchLog {
    lines: String,
}

impl BenchLog {
    /// Starts an artifact with the given provenance header.
    #[must_use]
    pub fn new(meta: &RunMeta) -> Self {
        let mut lines = meta.header();
        lines.push('\n');
        Self { lines }
    }

    /// Appends one record line (the caller supplies a full JSON object
    /// without the trailing newline).
    pub fn push(&mut self, line: &str) {
        self.lines.push_str(line);
        self.lines.push('\n');
    }

    /// Appends a pre-rendered block of JSONL (already newline-terminated),
    /// e.g. a drained timeline.
    pub fn push_block(&mut self, block: &str) {
        self.lines.push_str(block);
    }

    /// The accumulated artifact.
    #[must_use]
    pub fn render(&self) -> &str {
        &self.lines
    }

    /// Writes the artifact as `dir/name` (same reporting behavior as
    /// [`crate::write_csv`]: failures warn, never panic).
    pub fn write(&self, dir: &PathBuf, name: &str) {
        crate::write_csv(dir, name, &self.lines);
    }
}

/// Escapes a string for embedding in a JSON literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' | '\\' => {
                out.push('\\');
                out.push(c);
            }
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The abbreviated commit hash: `git rev-parse`, then the `MOSC_GIT_SHA`
/// environment variable, then `"unknown"`.
fn git_sha() -> String {
    if let Ok(out) = Command::new("git").args(["rev-parse", "--short", "HEAD"]).output() {
        if out.status.success() {
            let sha = String::from_utf8_lossy(&out.stdout).trim().to_string();
            if !sha.is_empty() {
                return sha;
            }
        }
    }
    std::env::var("MOSC_GIT_SHA").ok().filter(|s| !s.is_empty()).unwrap_or_else(unknown)
}

/// The machine name: `HOSTNAME`, then the `hostname` utility, then
/// `"unknown"`.
fn hostname() -> String {
    if let Ok(h) = std::env::var("HOSTNAME") {
        if !h.is_empty() {
            return h;
        }
    }
    if let Ok(out) = Command::new("hostname").output() {
        if out.status.success() {
            let h = String::from_utf8_lossy(&out.stdout).trim().to_string();
            if !h.is_empty() {
                return h;
            }
        }
    }
    unknown()
}

fn unknown() -> String {
    "unknown".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosc_analyze::json::Value;

    #[test]
    fn header_is_valid_schema_v2_json() {
        let meta = RunMeta {
            bench: "loadgen".into(),
            git_sha: "abc1234".into(),
            host: "ci-\"box\"".into(),
            threads: 8,
            options: vec![("rate".into(), "300".into()), ("seed".into(), "42".into())],
        };
        let doc = Value::parse(&meta.header()).expect("header parses");
        assert_eq!(doc.get("type").and_then(Value::as_str), Some("bench_meta"));
        assert_eq!(doc.get("schema").and_then(Value::as_f64), Some(2.0));
        assert_eq!(doc.get("bench").and_then(Value::as_str), Some("loadgen"));
        assert_eq!(doc.get("git_sha").and_then(Value::as_str), Some("abc1234"));
        assert_eq!(doc.get("host").and_then(Value::as_str), Some("ci-\"box\""));
        assert_eq!(doc.get("threads").and_then(Value::as_f64), Some(8.0));
        let opts = doc.get("options").expect("options object");
        assert_eq!(opts.get("rate").and_then(Value::as_str), Some("300"));
        assert_eq!(opts.get("seed").and_then(Value::as_str), Some("42"));
    }

    #[test]
    fn capture_stamps_something_everywhere() {
        let meta = RunMeta::capture("micro").option("iters", 100);
        assert_eq!(meta.bench, "micro");
        assert!(!meta.git_sha.is_empty());
        assert!(!meta.host.is_empty());
        assert!(meta.threads >= 1);
        assert_eq!(meta.options, vec![("iters".to_string(), "100".to_string())]);
        // Whatever the environment provided, the header must stay parseable.
        assert!(Value::parse(&meta.header()).is_ok());
    }

    #[test]
    fn log_passes_the_bench_analyzer_lints() {
        let meta = RunMeta {
            bench: "serve".into(),
            git_sha: "abc1234".into(),
            host: "ci".into(),
            threads: 4,
            options: Vec::new(),
        };
        let mut log = BenchLog::new(&meta);
        log.push(
            "{\"type\":\"serve\",\"mode\":\"closed\",\"clients\":4,\"requests\":160,\
             \"wall_s\":0.1,\"req_per_s\":1600.0,\"p50_ms\":1.0,\"p99_ms\":2.0}",
        );
        let report = mosc_analyze::analyze_telemetry(log.render()).expect("parses");
        assert!(report.is_clean(), "findings:\n{report}");
    }
}
