//! Direction-aware regression detection between two BENCH artifacts.
//!
//! `mosc-bench compare OLD.json NEW.json` answers one question: did
//! performance get worse? "Worse" depends on the metric — latency going
//! *up* and throughput going *down* are regressions; the opposite moves
//! are improvements and never fail a run. Each known metric carries its
//! own relative noise threshold (the log-bucketed quantiles step in
//! ~33% increments, so latency needs a wider band than a request
//! counter), and records are matched between artifacts by a stable
//! identity key (`serve` rows by client count, sweep points by offered
//! rate, ...), so reordering lines never misreports.
//!
//! Both artifacts must be schema v2 ([`crate::record`]): comparison
//! refuses inputs without a `bench_meta` header, because a delta between
//! runs of unknown provenance is noise dressed as signal.

use mosc_analyze::json::Value;
use std::fmt::Write as _;

/// Which way a metric improves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Latencies, wall times: an increase is a regression.
    LowerIsBetter,
    /// Throughputs, hit rates: a decrease is a regression.
    HigherIsBetter,
}

/// The known metrics: field name, direction, and the relative change below
/// which a move is considered run-to-run noise.
const METRICS: &[(&str, Direction, f64)] = &[
    ("p50_ms", Direction::LowerIsBetter, 0.50),
    ("p90_ms", Direction::LowerIsBetter, 0.50),
    ("p99_ms", Direction::LowerIsBetter, 0.50),
    ("p999_ms", Direction::LowerIsBetter, 0.50),
    ("max_ms", Direction::LowerIsBetter, 1.00),
    ("wall_s", Direction::LowerIsBetter, 0.50),
    ("fast_wall_s", Direction::LowerIsBetter, 1.00),
    ("dense_wall_s", Direction::LowerIsBetter, 1.00),
    ("req_per_s", Direction::HigherIsBetter, 0.30),
    ("achieved_req_per_s", Direction::HigherIsBetter, 0.30),
    ("hit_ratio", Direction::HigherIsBetter, 0.15),
    ("cache_hit_rate", Direction::HigherIsBetter, 0.15),
    // The warm-batch speedup over per-request solves: wide band, because
    // the numerator is dominated by tiny warm-path times near clock noise.
    ("speedup_x", Direction::HigherIsBetter, 0.40),
    // Traced-over-untraced p50 ratio: a ratio of two near-clock-noise
    // medians, so only a doubling counts as a real tracing regression.
    ("trace_overhead_x", Direction::LowerIsBetter, 1.00),
];

/// One metric's movement between matched records.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// Identity of the record pair (`"serve clients=8 mode=closed"`).
    pub key: String,
    /// Metric field name.
    pub metric: String,
    /// Baseline value.
    pub old: f64,
    /// Candidate value.
    pub new: f64,
    /// Signed relative change `(new - old) / old`.
    pub rel_change: f64,
    /// The change exceeds the noise threshold in the bad direction.
    pub regression: bool,
    /// The change exceeds the noise threshold in the good direction.
    pub improvement: bool,
}

/// The full outcome of comparing two artifacts.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Every compared metric, in artifact order.
    pub deltas: Vec<MetricDelta>,
    /// Record keys present in the baseline but absent from the candidate.
    pub missing: Vec<String>,
    /// Non-fatal observations (unknown shas, zero baselines, ...).
    pub warnings: Vec<String>,
    /// `bench` stamp of the baseline header.
    pub old_bench: String,
    /// `bench` stamp of the candidate header.
    pub new_bench: String,
}

impl Comparison {
    /// `true` when any metric regressed past its threshold or a baseline
    /// record vanished from the candidate.
    #[must_use]
    pub fn has_regressions(&self) -> bool {
        !self.missing.is_empty() || self.deltas.iter().any(|d| d.regression)
    }

    /// Count of regressed metrics.
    #[must_use]
    pub fn regressions(&self) -> usize {
        self.deltas.iter().filter(|d| d.regression).count()
    }

    /// Count of improved metrics.
    #[must_use]
    pub fn improvements(&self) -> usize {
        self.deltas.iter().filter(|d| d.improvement).count()
    }

    /// Human-readable report.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "compare: {} (baseline) vs {} (candidate): {} metric(s), \
             {} regression(s), {} improvement(s)",
            self.old_bench,
            self.new_bench,
            self.deltas.len(),
            self.regressions(),
            self.improvements()
        );
        for d in &self.deltas {
            let verdict = if d.regression {
                "REGRESSION"
            } else if d.improvement {
                "improved"
            } else {
                "ok"
            };
            let _ = writeln!(
                out,
                "  [{verdict:>10}] {} {}: {:.4} -> {:.4} ({:+.1}%)",
                d.key,
                d.metric,
                d.old,
                d.new,
                100.0 * d.rel_change
            );
        }
        for m in &self.missing {
            let _ = writeln!(out, "  [   MISSING] {m}: present in baseline, absent in candidate");
        }
        for w in &self.warnings {
            let _ = writeln!(out, "  warning: {w}");
        }
        out
    }

    /// Machine-readable report: one JSON object.
    #[must_use]
    pub fn render_json(&self) -> String {
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let mut out = format!(
            "{{\"type\":\"compare\",\"old_bench\":\"{}\",\"new_bench\":\"{}\",\
             \"regressions\":{},\"improvements\":{},\"deltas\":[",
            esc(&self.old_bench),
            esc(&self.new_bench),
            self.regressions(),
            self.improvements()
        );
        for (i, d) in self.deltas.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"key\":\"{}\",\"metric\":\"{}\",\"old\":{:?},\"new\":{:?},\
                 \"rel_change\":{:?},\"regression\":{},\"improvement\":{}}}",
                esc(&d.key),
                esc(&d.metric),
                d.old,
                d.new,
                d.rel_change,
                d.regression,
                d.improvement
            );
        }
        out.push_str("],\"missing\":[");
        for (i, m) in self.missing.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", esc(m));
        }
        out.push_str("]}");
        out
    }
}

/// Why a comparison could not run — the variants map to distinct exit
/// codes in the `compare` binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompareError {
    /// An input is not parseable schema-v2 JSONL.
    Parse(String),
    /// Both inputs parsed but share no comparable records.
    Incomparable(String),
}

impl std::fmt::Display for CompareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Parse(m) | Self::Incomparable(m) => f.write_str(m),
        }
    }
}

/// One parsed artifact: the meta header plus keyed records.
struct Artifact {
    bench: String,
    git_sha: String,
    records: Vec<(String, Value)>,
}

/// Identity fields per record type; records of other types are skipped.
fn identity_fields(ty: &str) -> Option<&'static [&'static str]> {
    match ty {
        "serve" => Some(&["clients", "mode"]),
        "bench" => Some(&["mode", "process", "offered_req_per_s"]),
        "sweep" => Some(&["offered_req_per_s"]),
        "periodmap" => Some(&["m"]),
        "batch" => Some(&["mode", "variants"]),
        "trace_overhead" => Some(&["process", "offered_req_per_s"]),
        _ => None,
    }
}

/// Renders a record's identity key, e.g. `"serve clients=8 mode=closed"`.
fn record_key(ty: &str, fields: &[&str], value: &Value) -> String {
    let mut key = ty.to_string();
    for f in fields {
        let v = value.get(f).map_or_else(
            || "?".to_string(),
            |v| {
                v.as_str().map_or_else(
                    || v.as_f64().map_or_else(|| "?".to_string(), |n| format!("{n}")),
                    ToString::to_string,
                )
            },
        );
        let _ = write!(key, " {f}={v}");
    }
    key
}

/// Parses one schema-v2 artifact, refusing inputs without a meta header.
fn parse_artifact(label: &str, text: &str) -> Result<Artifact, String> {
    let mut bench = None;
    let mut git_sha = String::new();
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value = Value::parse(line)
            .map_err(|e| format!("{label}: line {}: not valid JSON: {e:?}", i + 1))?;
        let Some(ty) = value.get("type").and_then(Value::as_str) else { continue };
        if ty == "bench_meta" {
            bench =
                Some(value.get("bench").and_then(Value::as_str).unwrap_or("unknown").to_string());
            git_sha = value.get("git_sha").and_then(Value::as_str).unwrap_or("unknown").to_string();
            continue;
        }
        if let Some(fields) = identity_fields(ty) {
            let key = record_key(ty, fields, &value);
            records.push((key, value));
        }
    }
    let bench = bench.ok_or_else(|| {
        format!(
            "{label}: no bench_meta header — not a schema-v2 artifact; \
             regenerate it with a current mosc-bench binary"
        )
    })?;
    Ok(Artifact { bench, git_sha, records })
}

/// Compares two schema-v2 artifacts.
///
/// # Errors
/// [`CompareError::Parse`] when either input is not parseable schema-v2
/// JSONL; [`CompareError::Incomparable`] when the artifacts share no
/// comparable records.
pub fn compare_artifacts(old_text: &str, new_text: &str) -> Result<Comparison, CompareError> {
    let old = parse_artifact("baseline", old_text).map_err(CompareError::Parse)?;
    let new = parse_artifact("candidate", new_text).map_err(CompareError::Parse)?;
    let mut cmp = Comparison {
        old_bench: old.bench.clone(),
        new_bench: new.bench.clone(),
        ..Comparison::default()
    };
    for sha in [&old.git_sha, &new.git_sha] {
        if sha == "unknown" || sha.is_empty() {
            cmp.warnings.push("an artifact has an unknown git sha — provenance is weak".into());
            break;
        }
    }

    let mut compared = 0usize;
    let mut taken = vec![false; new.records.len()];
    for (key, old_rec) in &old.records {
        // First unconsumed candidate record with the same key (duplicate
        // keys pair up in order).
        let matched = new.records.iter().enumerate().find(|(i, (k, _))| k == key && !taken[*i]);
        let Some((idx, (_, new_rec))) = matched else {
            cmp.missing.push(key.clone());
            continue;
        };
        taken[idx] = true;
        compared += 1;
        for &(metric, direction, threshold) in METRICS {
            let (Some(a), Some(b)) = (
                old_rec.get(metric).and_then(Value::as_f64),
                new_rec.get(metric).and_then(Value::as_f64),
            ) else {
                continue;
            };
            if !(a.is_finite() && b.is_finite()) || a <= 0.0 {
                if a <= 0.0 && b > 0.0 {
                    cmp.warnings.push(format!(
                        "{key} {metric}: baseline is {a}, cannot normalize — skipped"
                    ));
                }
                continue;
            }
            let rel = (b - a) / a;
            let bad = match direction {
                Direction::LowerIsBetter => rel,
                Direction::HigherIsBetter => -rel,
            };
            cmp.deltas.push(MetricDelta {
                key: key.clone(),
                metric: metric.to_string(),
                old: a,
                new: b,
                rel_change: rel,
                regression: bad > threshold,
                improvement: -bad > threshold,
            });
        }
    }
    if compared == 0 {
        return Err(CompareError::Incomparable(format!(
            "artifacts share no comparable records ({} baseline vs {} candidate records)",
            old.records.len(),
            new.records.len()
        )));
    }
    Ok(cmp)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = concat!(
        r#"{"type":"bench_meta","schema":2,"bench":"serve","git_sha":"abc1234","host":"ci","threads":8,"options":{}}"#,
        "\n",
        r#"{"type":"serve","mode":"closed","clients":8,"requests":320,"wall_s":0.05,"req_per_s":6400.0,"hit_ratio":0.95,"p50_ms":1.0,"p99_ms":3.0}"#,
        "\n",
        r#"{"type":"sweep","offered_req_per_s":200.0,"achieved_req_per_s":199.0,"p99_ms":2.0}"#,
        "\n"
    );

    #[test]
    fn self_compare_is_clean() {
        let cmp = compare_artifacts(BASE, BASE).expect("comparable");
        assert!(!cmp.has_regressions(), "{}", cmp.render_text());
        assert_eq!(cmp.regressions(), 0);
        assert!(!cmp.deltas.is_empty(), "metrics must actually be compared");
        assert!(cmp.render_json().contains("\"regressions\":0"));
    }

    #[test]
    fn latency_up_is_a_regression_but_down_is_not() {
        let slow = BASE.replace("\"p99_ms\":3.0", "\"p99_ms\":9.0");
        let cmp = compare_artifacts(BASE, &slow).expect("comparable");
        assert!(cmp.has_regressions(), "{}", cmp.render_text());
        assert!(cmp
            .deltas
            .iter()
            .any(|d| d.metric == "p99_ms" && d.regression && d.key.starts_with("serve")));

        // The same change in the other direction is an improvement.
        let cmp = compare_artifacts(&slow, BASE).expect("comparable");
        assert!(!cmp.has_regressions(), "{}", cmp.render_text());
        assert!(cmp.improvements() > 0);
    }

    #[test]
    fn throughput_down_is_a_regression() {
        let slow = BASE.replace("\"req_per_s\":6400.0", "\"req_per_s\":3000.0");
        let cmp = compare_artifacts(BASE, &slow).expect("comparable");
        assert!(cmp.deltas.iter().any(|d| d.metric == "req_per_s" && d.regression));
    }

    #[test]
    fn noise_inside_the_threshold_passes() {
        let wiggle = BASE
            .replace("\"p99_ms\":3.0", "\"p99_ms\":3.9")
            .replace("\"req_per_s\":6400.0", "\"req_per_s\":5500.0");
        let cmp = compare_artifacts(BASE, &wiggle).expect("comparable");
        assert!(!cmp.has_regressions(), "{}", cmp.render_text());
    }

    #[test]
    fn missing_baseline_record_is_a_regression() {
        let gutted: String =
            BASE.lines().filter(|l| !l.contains("\"sweep\"")).fold(String::new(), |mut acc, l| {
                acc.push_str(l);
                acc.push('\n');
                acc
            });
        let cmp = compare_artifacts(BASE, &gutted).expect("comparable");
        assert!(cmp.has_regressions(), "{}", cmp.render_text());
        assert_eq!(cmp.missing.len(), 1);
    }

    #[test]
    fn schema_v1_artifacts_are_refused() {
        let v1 = r#"{"type":"serve","clients":8,"req_per_s":6400.0,"p99_ms":3.0}"#;
        let err = compare_artifacts(v1, v1).expect_err("must refuse");
        assert!(matches!(err, CompareError::Parse(_)), "{err}");
        assert!(err.to_string().contains("bench_meta"), "{err}");
    }
}
