//! AO — Algorithm 2: m-Oscillating throughput maximization under a peak
//! temperature constraint.
//!
//! The pipeline, exactly as Section V lays it out:
//!
//! 1. **Ideal point** — per-core continuous voltages with `T∞ = T_max·1`
//!    ([`crate::continuous`]).
//! 2. **Neighboring modes** — each core's ideal voltage becomes the pair of
//!    adjacent discrete levels and the time ratio preserving its work
//!    (eq. 11); Theorems 3–4 say no other level choice does better. A core
//!    whose ideal voltage clamps at a level is parameterized with
//!    `ratio_high = 1` over the pair `(next lower level, level)` so the TPT
//!    pass can still trade its time if needed.
//! 3. **m sweep** — oscillating all cores `m` times per period lowers the
//!    stable peak (Theorem 5) but each DVFS round trip stalls the core for
//!    `τ` and costs `δ = (v_H+v_L)τ/(v_H−v_L)` seconds of compensation, so
//!    `m` is bounded by `M = min_i ⌊t_{i,L}/(δ_i+τ)⌋`. Once several factors
//!    are feasible a larger `m` only adds compensation, so the sweep keeps
//!    the smallest feasible `m` (ties broken by net throughput); when no
//!    factor is feasible on its own it falls back to the lowest-peak `m` and
//!    lets the TPT pass close the gap. Candidates are independent exact
//!    Theorem-1 evaluations, so the sweep fans batches out across scoped
//!    threads and selects sequentially in ascending-`m` order — bit-identical
//!    to a single-threaded sweep.
//! 4. **TPT ratio adjustment** — while the peak still exceeds `T_max`,
//!    convert one `t_unit` of high-voltage time to low on the core with the
//!    best temperature-per-throughput tradeoff index
//!    `TPT_j = ΔT_i / ((v_{j,H} − v_{j,L})·t_unit)`, where `i` is the
//!    hottest core.

use crate::{continuous, AlgoError, Result, Solution, ACCEPT_EPS, FEASIBILITY_EPS};
use mosc_sched::{Platform, Schedule};

/// Oscillation factors evaluated by the m sweep across all AO runs.
static M_CANDIDATES: mosc_obs::Counter = mosc_obs::Counter::new("ao.m_candidates");
/// TPT adjustment loop rounds — one stable-peak evaluation each, counting
/// the final round that confirms the constraint holds.
static TPT_ROUNDS: mosc_obs::Counter = mosc_obs::Counter::new("ao.tpt_rounds");

/// Tuning knobs for Algorithm 2.
#[derive(Debug, Clone, Copy)]
pub struct AoOptions {
    /// Base schedule period `t_p` (seconds) before oscillation.
    pub base_period: f64,
    /// Hard cap on the oscillation factor (relevant when `τ = 0` leaves `M`
    /// unbounded).
    pub max_m: usize,
    /// Stop the m sweep after this many consecutive non-improving factors
    /// (the peak-vs-m curve is unimodal once overhead is accounted).
    pub m_patience: usize,
    /// `t_unit = compressed_period / t_unit_divisor` for the TPT pass.
    pub t_unit_divisor: usize,
    /// Worker threads for the m sweep and the TPT trial loop (`0` = all
    /// available). Any thread count produces bit-identical results: workers
    /// only evaluate candidates, selection stays sequential in candidate
    /// order.
    pub threads: usize,
}

impl Default for AoOptions {
    fn default() -> Self {
        Self { base_period: 0.1, max_m: 4096, m_patience: 8, t_unit_divisor: 200, threads: 0 }
    }
}

impl AoOptions {
    fn validate(&self) -> Result<()> {
        if !(self.base_period.is_finite() && self.base_period > 0.0) {
            return Err(AlgoError::InvalidOptions { what: "base_period must be positive" });
        }
        if self.max_m == 0 {
            return Err(AlgoError::InvalidOptions { what: "max_m must be at least 1" });
        }
        if self.t_unit_divisor < 2 {
            return Err(AlgoError::InvalidOptions { what: "t_unit_divisor must be at least 2" });
        }
        Ok(())
    }
}

/// Per-core two-mode parameterization carried through the algorithm:
/// `v_low` for `(1 − ratio_high)` of the period, `v_high` for the rest.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorePair {
    /// Lower level (V).
    pub v_low: f64,
    /// Upper level (V).
    pub v_high: f64,
    /// Fraction of the period at `v_high` (before overhead compensation).
    pub ratio_high: f64,
}

impl CorePair {
    /// `true` when high/low differ and time can be traded between them.
    #[must_use]
    pub fn adjustable(&self) -> bool {
        self.v_high > self.v_low + 1e-12
    }
}

/// Runs AO with default options.
///
/// # Errors
/// See [`solve_with`].
pub fn solve(platform: &Platform) -> Result<Solution> {
    solve_with(platform, &AoOptions::default())
}

/// Runs AO on `platform`.
///
/// # Errors
/// * [`AlgoError::Infeasible`] when even all-lowest violates `T_max`.
/// * [`AlgoError::InvalidOptions`] for bad options.
/// * Propagated evaluation failures.
pub fn solve_with(platform: &Platform, opts: &AoOptions) -> Result<Solution> {
    let _span = mosc_obs::span("ao.solve");
    opts.validate()?;
    debug_assert!(crate::checks::platform_ok(platform), "AO input platform fails static analysis");
    let n = platform.n_cores();
    let t_max = platform.t_max();
    let modes = platform.modes();

    // Feasibility floor.
    let lowest_peak = platform.steady_peak(&vec![modes.lowest(); n])?;
    if lowest_peak > t_max + ACCEPT_EPS {
        return Err(AlgoError::Infeasible { lowest_peak, t_max });
    }

    // Steps 1–2: ideal voltages → neighboring pairs.
    let ideal = continuous::solve(platform)?;
    let pairs = build_pairs(platform, &ideal.voltages);

    // Step 3: m sweep under the overhead bound.
    let (m_opt, _) = sweep_m(platform, &pairs, opts)?;

    // Step 4: TPT ratio adjustment until the constraint holds.
    let pairs_adj = adjusted_pairs(&pairs, platform, m_opt, opts);
    let t_c = opts.base_period / m_opt as f64;
    let t_unit = t_c / opts.t_unit_divisor as f64;
    let (_, schedule) =
        adjust_to_tmax_with_threads(platform, &pairs_adj, t_c, t_unit, opts.threads)?;

    let peak = platform.peak(&schedule)?.temp;
    let solution = Solution {
        algorithm: "AO",
        throughput: schedule.throughput_with_overhead(platform.overhead()),
        feasible: peak <= t_max + FEASIBILITY_EPS,
        peak,
        schedule,
        m: m_opt,
    };
    debug_assert!(
        crate::checks::solution_ok(platform, &solution, true),
        "AO result fails static analysis"
    );
    Ok(solution)
}

/// Outcome of one TPT swap trial: `None` when the core has no high time
/// left to trade, otherwise the temperature reduction and trial schedule.
type TptTrial = Result<Option<(f64, Schedule)>>;

/// Algorithm 2's TPT pass (lines 14–21): starting from `pairs` on period
/// `t_c`, repeatedly convert `t_unit` of high time to low on the core with
/// the best temperature-performance tradeoff index until the stable peak
/// respects `T_max`. Returns the final pairs and schedule.
///
/// Exposed publicly because the Section-III motivation experiment exercises
/// it at fixed periods (Table III's 20/10/5 ms rows) without the m sweep.
///
/// # Errors
/// [`AlgoError::Infeasible`] when even all-low on every adjustable core
/// stays hot, or convergence fails for a degenerate `t_unit`.
pub fn adjust_to_tmax(
    platform: &Platform,
    pairs: &[CorePair],
    t_c: f64,
    t_unit: f64,
) -> Result<(Vec<CorePair>, Schedule)> {
    adjust_to_tmax_with_threads(platform, pairs, t_c, t_unit, 0)
}

/// As [`adjust_to_tmax`], with an explicit worker-thread count for the
/// per-core trial evaluations (`0` = all available, `1` = the paper's
/// sequential loop). The trials are independent steady-state evaluations and
/// the swap selection stays sequential in core order, so every thread count
/// returns bit-identical results.
///
/// # Errors
/// See [`adjust_to_tmax`].
pub fn adjust_to_tmax_with_threads(
    platform: &Platform,
    pairs: &[CorePair],
    t_c: f64,
    t_unit: f64,
    threads: usize,
) -> Result<(Vec<CorePair>, Schedule)> {
    let _span = mosc_obs::span("ao.tpt_adjust");
    if !(t_c > 0.0 && t_unit > 0.0 && t_unit < t_c) {
        return Err(AlgoError::InvalidOptions { what: "need 0 < t_unit < t_c" });
    }
    let n = platform.n_cores();
    let threads = thread_count(threads, n);
    let t_max = platform.t_max();
    let mut pairs_adj = pairs.to_vec();
    let mut schedule = schedule_from_pairs(&pairs_adj, t_c)?;
    let max_iters = 4 * n * (t_c / t_unit).ceil() as usize;
    let mut iters = 0;
    let mut last_reduced: Option<usize> = None;
    loop {
        TPT_ROUNDS.incr();
        let peak = platform.peak(&schedule)?;
        if peak.temp <= t_max + ACCEPT_EPS {
            break;
        }
        iters += 1;
        if iters > max_iters {
            return Err(AlgoError::InvalidOptions {
                what: "TPT adjustment failed to converge (t_unit too coarse?)",
            });
        }
        let hot_core = peak.core;
        let hot_temp = temp_of_core(platform, &schedule, hot_core)?;
        // Evaluate each core's t_unit swap (possibly in parallel), then pick
        // the one cooling `hot_core` the most per unit of throughput lost —
        // sequentially in core order, so the choice matches a serial loop.
        let mut trials: Vec<Option<TptTrial>> = (0..n).map(|_| None).collect();
        if threads > 1 && n > 1 {
            let collected: Vec<Vec<(usize, TptTrial)>> = std::thread::scope(|scope| {
                let pairs_ref = &pairs_adj;
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        scope.spawn(move || {
                            (t..n)
                                .step_by(threads)
                                .map(|j| {
                                    (
                                        j,
                                        tpt_trial(
                                            platform, pairs_ref, j, t_c, t_unit, hot_core, hot_temp,
                                        ),
                                    )
                                })
                                .collect()
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("TPT trial thread panicked")).collect()
            });
            for (j, r) in collected.into_iter().flatten() {
                trials[j] = Some(r);
            }
        } else {
            for (j, slot) in trials.iter_mut().enumerate() {
                *slot = Some(tpt_trial(platform, &pairs_adj, j, t_c, t_unit, hot_core, hot_temp));
            }
        }
        let mut best: Option<(f64, usize, Schedule)> = None;
        for (j, slot) in trials.into_iter().enumerate() {
            let Some(result) = slot else { continue };
            let Some((reduction, trial)) = result? else { continue };
            let p = &pairs_adj[j];
            let tpt = reduction / ((p.v_high - p.v_low) * t_unit);
            if reduction > 0.0 && best.as_ref().is_none_or(|(b, _, _)| tpt > *b) {
                best = Some((tpt, j, trial));
            }
        }
        match best {
            Some((_, j, trial)) => {
                pairs_adj[j].ratio_high = (pairs_adj[j].ratio_high - t_unit / t_c).max(0.0);
                schedule = trial;
                last_reduced = Some(j);
            }
            None => {
                // No single swap cools the hot core: fall back to lowering
                // everything adjustable one unit (still converges to the
                // feasible all-low floor).
                let mut any = false;
                for p in pairs_adj.iter_mut() {
                    if p.adjustable() && p.ratio_high > 0.0 {
                        p.ratio_high = (p.ratio_high - t_unit / t_c).max(0.0);
                        any = true;
                    }
                }
                if !any {
                    let lowest_peak = platform.steady_peak(&vec![platform.modes().lowest(); n])?;
                    return Err(AlgoError::Infeasible { lowest_peak, t_max });
                }
                schedule = schedule_from_pairs(&pairs_adj, t_c)?;
                last_reduced = None;
            }
        }
    }

    // The last discrete step typically overshoots by up to one t_unit of
    // throughput; bisect the overshoot back while staying feasible.
    if let Some(j) = last_reduced {
        let mut lo = pairs_adj[j].ratio_high; // feasible
        let mut hi = (lo + t_unit / t_c).min(1.0); // infeasible (pre-step)
        for _ in 0..20 {
            let mid = 0.5 * (lo + hi);
            let mut trial_pairs = pairs_adj.clone();
            trial_pairs[j].ratio_high = mid;
            let trial = schedule_from_pairs(&trial_pairs, t_c)?;
            if platform.peak(&trial)?.temp <= t_max + ACCEPT_EPS {
                lo = mid;
                pairs_adj = trial_pairs;
                schedule = trial;
            } else {
                hi = mid;
            }
        }
    }
    mosc_obs::event("ao.tpt_done", &[("rounds", iters.into())]);
    Ok((pairs_adj, schedule))
}

/// One TPT candidate: core `j` trades `t_unit` of high time for low. Returns
/// `None` when the core has nothing left to trade, otherwise the temperature
/// reduction it buys on `hot_core` and the trial schedule.
fn tpt_trial(
    platform: &Platform,
    pairs_adj: &[CorePair],
    j: usize,
    t_c: f64,
    t_unit: f64,
    hot_core: usize,
    hot_temp: f64,
) -> Result<Option<(f64, Schedule)>> {
    let p = &pairs_adj[j];
    if !p.adjustable() {
        return Ok(None);
    }
    let new_ratio = p.ratio_high - t_unit / t_c;
    if new_ratio < -1e-12 {
        return Ok(None);
    }
    let mut trial_pairs = pairs_adj.to_vec();
    trial_pairs[j].ratio_high = new_ratio.max(0.0);
    let trial = schedule_from_pairs(&trial_pairs, t_c)?;
    let reduction = hot_temp - temp_of_core(platform, &trial, hot_core)?;
    Ok(Some((reduction, trial)))
}

/// Resolves a requested worker count (`0` = all available) against the
/// number of independent work items.
pub(crate) fn thread_count(requested: usize, work: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, usize::from);
    let t = if requested == 0 { hw } else { requested };
    t.clamp(1, work.max(1))
}

/// Builds the per-core level pairs from the ideal voltages.
pub fn build_pairs(platform: &Platform, ideal_voltages: &[f64]) -> Vec<CorePair> {
    let modes = platform.modes();
    ideal_voltages
        .iter()
        .map(|&v| {
            let nb = modes.neighbors(v);
            if nb.is_single_mode() {
                // Exact level hit (or clamp): re-express over (lower, level)
                // with ratio 1 so the TPT pass can still trade time, unless
                // the level is already the lowest.
                let level = nb.equivalent_voltage();
                let below = modes.levels().iter().copied().rfind(|&l| l < level - 1e-12);
                match below {
                    Some(lo) => CorePair { v_low: lo, v_high: level, ratio_high: 1.0 },
                    None => CorePair { v_low: level, v_high: level, ratio_high: 1.0 },
                }
            } else {
                CorePair { v_low: nb.v_low, v_high: nb.v_high, ratio_high: nb.ratio_high }
            }
        })
        .collect()
}

/// The chip-wide oscillation bound `M = min_i M_i` (only truly-oscillating
/// cores constrain it).
pub fn chip_max_m(platform: &Platform, pairs: &[CorePair], opts: &AoOptions) -> usize {
    let overhead = platform.overhead();
    let mut m = opts.max_m;
    for p in pairs {
        let oscillating = p.adjustable() && p.ratio_high > 1e-12 && p.ratio_high < 1.0 - 1e-12;
        if !oscillating {
            continue;
        }
        let t_low = (1.0 - p.ratio_high) * opts.base_period;
        m = m.min(overhead.max_m(p.v_low, p.v_high, t_low).max(1));
    }
    m.max(1)
}

/// Applies the per-repetition overhead compensation `δ` to the ratios for a
/// given oscillation factor.
fn adjusted_pairs(
    pairs: &[CorePair],
    platform: &Platform,
    m: usize,
    opts: &AoOptions,
) -> Vec<CorePair> {
    let overhead = platform.overhead();
    let t_c = opts.base_period / m as f64;
    pairs
        .iter()
        .map(|p| {
            let oscillating = p.adjustable() && p.ratio_high > 1e-12 && p.ratio_high < 1.0 - 1e-12;
            if !oscillating || overhead.is_zero() {
                return *p;
            }
            let delta = overhead.delta(p.v_low, p.v_high).unwrap_or(0.0);
            let ratio = (p.ratio_high + delta / t_c).min(1.0);
            CorePair { ratio_high: ratio, ..*p }
        })
        .collect()
}

/// Builds the two-mode step-up schedule for the compressed period.
pub fn schedule_from_pairs(pairs: &[CorePair], t_c: f64) -> Result<Schedule> {
    let v_low: Vec<f64> = pairs.iter().map(|p| p.v_low).collect();
    let v_high: Vec<f64> = pairs.iter().map(|p| p.v_high).collect();
    let ratio: Vec<f64> = pairs.iter().map(|p| p.ratio_high.clamp(0.0, 1.0)).collect();
    Ok(Schedule::two_mode(&v_low, &v_high, &ratio, t_c)?)
}

/// Sweeps the oscillation factor (Algorithm 2 lines 8–13). Returns the
/// smallest feasible factor (ties in net throughput keep the smaller `m`,
/// since extra oscillation only adds δ compensation) or, when no factor is
/// feasible on its own, the lowest-peak factor for the TPT pass to finish.
///
/// Candidates are evaluated in batches across scoped threads; selection
/// consumes the batch sequentially in ascending-`m` order, so the result is
/// bit-identical to a single-threaded sweep.
fn sweep_m(platform: &Platform, pairs: &[CorePair], opts: &AoOptions) -> Result<(usize, Schedule)> {
    let _span = mosc_obs::span("ao.sweep_m");
    // When no core actually oscillates the schedule is m-invariant.
    if !pairs.iter().any(pairs_oscillating) {
        let schedule = schedule_from_pairs(pairs, opts.base_period)?;
        mosc_obs::event("ao.m_selected", &[("m", 1u64.into()), ("stop", "no_oscillation".into())]);
        return Ok((1, schedule));
    }
    let m_cap = chip_max_m(platform, pairs, opts);
    let threads = thread_count(opts.threads, m_cap);
    let t_max = platform.t_max();
    // Best feasible candidate: highest net throughput, first (smallest) m on
    // ties. Fallback: lowest stable peak.
    let mut best_feasible: Option<(usize, f64, f64, Schedule)> = None;
    let mut best_peak: Option<(usize, f64, Schedule)> = None;
    let mut since_improvement = 0;
    let mut stop: &'static str = "cap";
    let mut m_next = 1usize;
    'sweep: while m_next <= m_cap {
        // Assemble a batch of factors whose δ compensation still fits: the
        // compensation consuming a core's entire low interval means larger m
        // is pointless (and δ undefined), so saturation ends the sweep.
        let mut batch: Vec<(usize, Vec<CorePair>, f64)> = Vec::with_capacity(threads);
        let mut saturated = false;
        while batch.len() < threads && m_next <= m_cap {
            let m = m_next;
            m_next += 1;
            let adjusted = adjusted_pairs(pairs, platform, m, opts);
            if pairs
                .iter()
                .zip(&adjusted)
                .any(|(base, adj)| pairs_oscillating(base) && adj.ratio_high >= 1.0 - 1e-12)
            {
                stop = "overhead_saturated";
                saturated = true;
                break;
            }
            batch.push((m, adjusted, opts.base_period / m as f64));
        }
        if batch.is_empty() {
            break;
        }
        // Each candidate's exact Theorem-1 peak is independent; fan out.
        let evals: Vec<Result<(Schedule, f64)>> = if threads > 1 && batch.len() > 1 {
            std::thread::scope(|scope| {
                let handles: Vec<_> = batch
                    .iter()
                    .map(|(_, adjusted, t_c)| {
                        scope.spawn(move || -> Result<(Schedule, f64)> {
                            let schedule = schedule_from_pairs(adjusted, *t_c)?;
                            let peak = platform.peak(&schedule)?.temp;
                            Ok((schedule, peak))
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("m-sweep thread panicked")).collect()
            })
        } else {
            batch
                .iter()
                .map(|(_, adjusted, t_c)| {
                    let schedule = schedule_from_pairs(adjusted, *t_c)?;
                    let peak = platform.peak(&schedule)?.temp;
                    Ok((schedule, peak))
                })
                .collect()
        };
        for ((m, _, _), eval) in batch.iter().zip(evals) {
            let (schedule, peak) = eval?;
            M_CANDIDATES.incr();
            let mut improved = false;
            if peak <= t_max + ACCEPT_EPS {
                let net = schedule.throughput_with_overhead(platform.overhead());
                if best_feasible.as_ref().is_none_or(|(_, b, _, _)| net > *b + 1e-12) {
                    best_feasible = Some((*m, net, peak, schedule.clone()));
                    improved = true;
                }
            }
            if best_peak.as_ref().is_none_or(|(_, b, _)| peak < *b - 1e-9) {
                best_peak = Some((*m, peak, schedule));
                // Peak progress only counts while chasing first feasibility;
                // afterwards only net-throughput gains keep the sweep alive.
                improved = improved || best_feasible.is_none();
            }
            if improved {
                since_improvement = 0;
            } else {
                since_improvement += 1;
                if since_improvement >= opts.m_patience {
                    stop = "patience";
                    break 'sweep;
                }
            }
        }
        if saturated {
            break;
        }
    }
    let (m, peak, schedule, selected) = match (best_feasible, best_peak) {
        (Some((m, _, p, s)), _) => (m, p, s, "smallest_feasible"),
        (None, Some((m, p, s))) => (m, p, s, "lowest_peak"),
        _ => unreachable!("m = 1 always evaluates"),
    };
    mosc_obs::event(
        "ao.m_selected",
        &[
            ("m", m.into()),
            ("m_cap", m_cap.into()),
            ("peak", peak.into()),
            ("stop", stop.into()),
            ("selected", selected.into()),
        ],
    );
    Ok((m, schedule))
}

fn pairs_oscillating(p: &CorePair) -> bool {
    p.ratio_high > 1e-12 && p.ratio_high < 1.0 - 1e-12
}

/// Stable-status period-end temperature of one core under a step-up
/// schedule (Theorem 1 makes this the core's binding value).
fn temp_of_core(platform: &Platform, schedule: &Schedule, core: usize) -> Result<f64> {
    let ss =
        mosc_sched::eval::SteadyState::compute(platform.thermal(), platform.power(), schedule)?;
    Ok(ss.t_start()[core])
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosc_sched::PlatformSpec;

    fn quick_opts() -> AoOptions {
        AoOptions { base_period: 0.05, max_m: 64, m_patience: 4, t_unit_divisor: 50, threads: 0 }
    }

    #[test]
    fn ao_single_thread_matches_parallel() {
        let p = Platform::build(&PlatformSpec::paper(2, 3, 2, 55.0)).unwrap();
        let seq = solve_with(&p, &AoOptions { threads: 1, ..quick_opts() }).unwrap();
        let par = solve_with(&p, &AoOptions { threads: 8, ..quick_opts() }).unwrap();
        assert_eq!(seq.m, par.m);
        assert!((seq.throughput - par.throughput).abs() == 0.0, "thread count changed the result");
        assert!((seq.peak - par.peak).abs() == 0.0);
    }

    #[test]
    fn sweep_prefers_smallest_feasible_m() {
        // Nonzero τ (the paper's 5 µs default): once a factor is feasible,
        // larger ones only add δ compensation, so the sweep must not pass
        // the smallest feasible m. Scaling the ideal ratios down leaves
        // thermal headroom in the continuous mixture, so feasibility is
        // reached at a finite m without any TPT adjustment.
        let p = Platform::build(&PlatformSpec::paper(2, 3, 2, 55.0)).unwrap();
        assert!(p.overhead().tau > 0.0, "paper default must carry overhead");
        let opts = quick_opts();
        let ideal = crate::continuous::solve(&p).unwrap();
        let mut pairs = build_pairs(&p, &ideal.voltages);
        for pair in &mut pairs {
            pair.ratio_high *= 0.6;
        }
        let (m_sel, _) = sweep_m(&p, &pairs, &opts).unwrap();
        let m_cap = chip_max_m(&p, &pairs, &opts);
        let smallest_feasible = (1..=m_cap).find(|&m| {
            let adjusted = adjusted_pairs(&pairs, &p, m, &opts);
            let s = schedule_from_pairs(&adjusted, opts.base_period / m as f64).unwrap();
            p.peak(&s).unwrap().temp <= p.t_max() + ACCEPT_EPS
        });
        let mf = smallest_feasible.expect("some m must be feasible with 0.6x ratios");
        assert!(m_sel <= mf, "selected m {m_sel} exceeds smallest feasible {mf}");
    }

    #[test]
    fn ao_is_feasible_and_beats_lns() {
        for (rows, cols) in [(1, 3), (2, 3)] {
            let p = Platform::build(&PlatformSpec::paper(rows, cols, 2, 55.0)).unwrap();
            let ao = solve_with(&p, &quick_opts()).unwrap();
            let lns = crate::lns::solve(&p).unwrap();
            assert!(ao.feasible, "{rows}x{cols}");
            assert!(
                ao.throughput >= lns.throughput - 1e-9,
                "{rows}x{cols}: AO {} < LNS {}",
                ao.throughput,
                lns.throughput
            );
        }
    }

    #[test]
    fn ao_beats_exs_on_constrained_two_level_platform() {
        // The paper's headline: with only 2 levels, oscillation recovers the
        // throughput that constant-speed assignment loses.
        let p = Platform::build(&PlatformSpec::paper(2, 3, 2, 55.0)).unwrap();
        let ao = solve_with(&p, &quick_opts()).unwrap();
        let exs = crate::exs::solve(&p).unwrap();
        assert!(
            ao.throughput > exs.throughput + 0.02,
            "AO {} should clearly beat EXS {}",
            ao.throughput,
            exs.throughput
        );
        assert!(ao.feasible);
    }

    #[test]
    fn ao_respects_tmax() {
        let p = Platform::build(&PlatformSpec::paper(3, 3, 2, 55.0)).unwrap();
        let ao = solve_with(&p, &quick_opts()).unwrap();
        assert!(ao.peak <= p.t_max() + 1e-6, "peak {} exceeds {}", ao.peak, p.t_max());
        // The schedule it returns is step-up (exact peak accounting).
        assert!(ao.schedule.is_step_up());
    }

    #[test]
    fn ao_throughput_close_to_continuous_ideal() {
        // With oscillation the two-level schedule should approach the ideal
        // continuous throughput from below, far above LNS.
        let p = Platform::build(&PlatformSpec::paper(2, 3, 2, 55.0)).unwrap();
        let ideal = crate::continuous::solve(&p).unwrap();
        let ao = solve_with(&p, &quick_opts()).unwrap();
        assert!(ao.throughput <= ideal.throughput + 1e-6);
        assert!(
            ao.throughput > 0.8 * ideal.throughput,
            "AO {} too far below ideal {}",
            ao.throughput,
            ideal.throughput
        );
    }

    #[test]
    fn ao_unconstrained_platform_runs_all_max() {
        let p = Platform::build(&PlatformSpec::paper(1, 2, 2, 65.0)).unwrap();
        let ao = solve_with(&p, &quick_opts()).unwrap();
        assert!((ao.throughput - 1.3).abs() < 1e-6, "throughput {}", ao.throughput);
        assert_eq!(ao.m, 1, "no oscillation needed when unconstrained");
    }

    #[test]
    fn ao_infeasible_platform_errors() {
        let p = Platform::build(&PlatformSpec::paper(3, 3, 2, 36.0)).unwrap();
        assert!(matches!(solve_with(&p, &quick_opts()), Err(AlgoError::Infeasible { .. })));
    }

    #[test]
    fn option_validation() {
        let p = Platform::build(&PlatformSpec::paper(1, 2, 2, 55.0)).unwrap();
        let bad = AoOptions { base_period: 0.0, ..AoOptions::default() };
        assert!(matches!(solve_with(&p, &bad), Err(AlgoError::InvalidOptions { .. })));
        let bad = AoOptions { max_m: 0, ..AoOptions::default() };
        assert!(matches!(solve_with(&p, &bad), Err(AlgoError::InvalidOptions { .. })));
        let bad = AoOptions { t_unit_divisor: 1, ..AoOptions::default() };
        assert!(matches!(solve_with(&p, &bad), Err(AlgoError::InvalidOptions { .. })));
    }

    #[test]
    fn overhead_bounds_m() {
        // A large τ should force a small m.
        let mut spec = PlatformSpec::paper(1, 3, 2, 55.0);
        spec.overhead = mosc_power::TransitionOverhead::new(1e-3).unwrap();
        let p = Platform::build(&spec).unwrap();
        let ao = solve_with(&p, &quick_opts()).unwrap();
        let spec_small = PlatformSpec::paper(1, 3, 2, 55.0);
        let p_small = Platform::build(&spec_small).unwrap();
        let ao_small = solve_with(&p_small, &quick_opts()).unwrap();
        assert!(
            ao.m <= ao_small.m,
            "large overhead m {} must not exceed small overhead m {}",
            ao.m,
            ao_small.m
        );
        assert!(ao.feasible);
    }

    #[test]
    fn more_oscillation_allows_higher_throughput() {
        // Compare AO restricted to m = 1 against free m: oscillation should
        // strictly help on a constrained two-level platform.
        let p = Platform::build(&PlatformSpec::paper(2, 3, 2, 55.0)).unwrap();
        let free = solve_with(&p, &quick_opts()).unwrap();
        let pinned = solve_with(&p, &AoOptions { max_m: 1, ..quick_opts() }).unwrap();
        assert!(
            free.throughput >= pinned.throughput - 1e-9,
            "free-m {} < m=1 {}",
            free.throughput,
            pinned.throughput
        );
        assert!(free.m >= 1);
    }

    #[test]
    fn build_pairs_reexpresses_clamped_cores() {
        let p = Platform::build(&PlatformSpec::paper(1, 2, 3, 65.0)).unwrap();
        // Ideal voltages clamp at 1.3 on this cool platform.
        let pairs = build_pairs(&p, &[1.3, 0.6]);
        assert_eq!(pairs[0].v_high, 1.3);
        assert!((pairs[0].ratio_high - 1.0).abs() < 1e-12);
        assert!(pairs[0].v_low < 1.3); // adjustable downward
                                       // Lowest level is not adjustable.
        assert_eq!(pairs[1].v_low, pairs[1].v_high);
        assert!(!pairs[1].adjustable());
    }
}
