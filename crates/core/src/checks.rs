//! Debug-build self-checks: the `mosc-analyze` lints wired to solver entry
//! and exit. Every call site goes through `debug_assert!`, so release
//! builds pay nothing; in debug builds a platform that violates the paper's
//! model assumptions, or a solver result whose headline numbers do not
//! survive recomputation, aborts with the rendered diagnostics instead of
//! silently propagating garbage.

use crate::Solution;
use mosc_analyze::{Severity, SolutionClaim, Tolerances};
use mosc_sched::Platform;

/// Divergence slack for the recompute lints. Throughput recomputation is
/// the same closed formula, so it is tight; peaks compare the exact
/// Theorem-1 path against sampled paths at differing resolutions, so they
/// get a few tens of millikelvin.
fn tolerances() -> Tolerances {
    Tolerances { throughput_rel: 1e-9, peak_abs: 2e-2 }
}

/// `true` when `platform` passes the M00x platform lints. Renders the
/// report to stderr otherwise, so the failing `debug_assert!` has context.
pub(crate) fn platform_ok(platform: &Platform) -> bool {
    let report = mosc_analyze::check_platform(platform);
    if report.has_errors() {
        eprintln!("platform failed static analysis:\n{report}");
        return false;
    }
    true
}

/// `true` when `solution` passes the schedule and solution lints.
/// `step_up_required` escalates a non-step-up timeline to an error — set by
/// the m-Oscillating solvers (AO, LNS, EXS), whose output must stay on the
/// exact Theorem-1 path; PCO's phase-shifted schedules pass `false`.
pub(crate) fn solution_ok(
    platform: &Platform,
    solution: &Solution,
    step_up_required: bool,
) -> bool {
    let severity = if step_up_required { Severity::Error } else { Severity::Warning };
    let mut report = mosc_analyze::check_schedule(&solution.schedule, Some(platform), severity);
    let claim = SolutionClaim {
        throughput: solution.throughput,
        peak: solution.peak,
        feasible: solution.feasible,
        m: solution.m,
    };
    report.merge(mosc_analyze::check_solution(platform, &solution.schedule, &claim, &tolerances()));
    if report.has_errors() {
        eprintln!("{} solution failed static analysis:\n{report}", solution.algorithm);
        return false;
    }
    true
}
