//! The ideal continuously-variable operating point.
//!
//! Algorithm 2's starting point (line 7): assume every core's steady-state
//! temperature sits exactly at `T_max`, i.e. `T∞(v_const) = T_max·1`. With
//! the response matrix `R` (`T∞ = R·ψ`), the per-core powers solve
//! `R·ψ = T_max·1` and the voltage follows from inverting
//! `ψ(v) = α + γ·v³` — the multi-core analogue of
//! `v = ∛((P − α − β·T_max)/γ)` in Section V.
//!
//! Cores whose solution falls outside the platform's voltage range are
//! clamped and the remaining system re-solved (clamping a core at `v_max`
//! frees thermal headroom for its neighbours; clamping at `v_min` steals
//! some), iterating to a fixed point.

use crate::{AlgoError, Result};
use mosc_linalg::{Lu, Matrix, Vector};
use mosc_sched::Platform;

/// Fixed-point rounds of the clamping loop (one re-solve of the free
/// subsystem each).
static CLAMP_ROUNDS: mosc_obs::Counter = mosc_obs::Counter::new("continuous.clamp_rounds");

/// The ideal constant operating point.
#[derive(Debug, Clone)]
pub struct ContinuousSolution {
    /// Per-core ideal voltages (clamped into the platform's range).
    pub voltages: Vec<f64>,
    /// Steady-state core temperatures under those voltages (K above ambient).
    pub temps: Vector,
    /// Chip-wide throughput (mean per-core speed).
    pub throughput: f64,
    /// `true` when the operating point respects `T_max` (it can fail only
    /// when even `v_min` on some core is too hot).
    pub feasible: bool,
}

/// Computes the ideal continuous operating point for `platform`.
///
/// # Errors
/// Propagates thermal-solver failures.
pub fn solve(platform: &Platform) -> Result<ContinuousSolution> {
    let (v_min, v_max) = {
        let t = platform.modes();
        (t.lowest(), t.highest())
    };
    solve_with_range(platform, v_min, v_max)
}

/// As [`solve`], with an explicit voltage range (used to compute the
/// unclamped "truly continuous" reference in the motivation experiment).
///
/// # Errors
/// Propagates thermal-solver failures; rejects a degenerate range.
pub fn solve_with_range(platform: &Platform, v_min: f64, v_max: f64) -> Result<ContinuousSolution> {
    let _span = mosc_obs::span("continuous.solve");
    if !(v_min.is_finite() && v_max.is_finite()) || v_min <= 0.0 || v_max < v_min {
        return Err(AlgoError::InvalidOptions {
            what: "voltage range must satisfy 0 < v_min <= v_max",
        });
    }
    debug_assert!(
        crate::checks::platform_ok(platform),
        "continuous-solver input platform fails static analysis"
    );
    let n = platform.n_cores();
    let t_max = platform.t_max();
    let r = platform.thermal().response_matrix().map_err(mosc_sched::SchedError::from)?;
    let power = platform.power();
    let psi_min = power.psi(v_min);
    let psi_max = power.psi(v_max);

    // Fixed-point clamping loop: `clamp[i]` holds the forced ψ of core i.
    let mut clamp: Vec<Option<f64>> = vec![None; n];
    let mut psi = vec![0.0; n];
    for _ in 0..=2 * n {
        CLAMP_ROUNDS.incr();
        let free: Vec<usize> = (0..n).filter(|&i| clamp[i].is_none()).collect();
        if free.is_empty() {
            break;
        }
        // Solve R_ff·ψ_f = T_max·1 − R_fc·ψ_c for the free cores.
        let nf = free.len();
        let r_ff = Matrix::from_fn(nf, nf, |a, b| r[(free[a], free[b])]);
        let rhs = Vector::from_fn(nf, |a| {
            let mut v = t_max;
            for (j, c) in clamp.iter().enumerate() {
                if let Some(pc) = c {
                    v -= r[(free[a], j)] * pc;
                }
            }
            v
        });
        let psi_f = Lu::new(&r_ff)
            .and_then(|lu| lu.solve_vec(&rhs))
            .map_err(|e| AlgoError::Sched(mosc_sched::SchedError::Linalg(e)))?;

        let mut newly_clamped = false;
        for (a, &i) in free.iter().enumerate() {
            psi[i] = psi_f[a];
            if psi_f[a] > psi_max {
                clamp[i] = Some(psi_max);
                psi[i] = psi_max;
                newly_clamped = true;
            } else if psi_f[a] < psi_min {
                clamp[i] = Some(psi_min);
                psi[i] = psi_min;
                newly_clamped = true;
            }
        }
        if !newly_clamped {
            break;
        }
    }

    // Voltages from ψ (clamped cores sit exactly on a range endpoint).
    let voltages: Vec<f64> = psi
        .iter()
        .map(|&p| power.voltage_for_psi(p).map_or(v_min, |v| v.clamp(v_min, v_max)))
        .collect();

    let temps = platform
        .thermal()
        .steady_state_cores(&power.psi_profile(&voltages))
        .map_err(mosc_sched::SchedError::from)?;
    let feasible = temps.max() <= t_max + crate::FEASIBILITY_EPS;
    let throughput = voltages.iter().sum::<f64>() / n as f64;
    Ok(ContinuousSolution { voltages, temps, throughput, feasible })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosc_sched::PlatformSpec;

    #[test]
    fn unclamped_solution_pins_every_core_at_tmax() {
        // 9-core at 55 °C: ideal voltages are interior (≈0.8–0.9 V), so every
        // core's temperature should sit exactly on T_max.
        let p = Platform::build(&PlatformSpec::paper(3, 3, 2, 55.0)).unwrap();
        let sol = solve(&p).unwrap();
        assert!(sol.feasible);
        for c in 0..9 {
            assert!(
                (sol.temps[c] - p.t_max()).abs() < 1e-6,
                "core {c} temp {} != T_max {}",
                sol.temps[c],
                p.t_max()
            );
        }
        // Corner cores (cooler spots) get higher voltage than the center.
        assert!(sol.voltages[0] > sol.voltages[4]);
    }

    #[test]
    fn clamps_at_v_max_when_platform_is_cool() {
        // 2-core at 65 °C: unconstrained, everything pegs at v_max.
        let p = Platform::build(&PlatformSpec::paper(1, 2, 2, 65.0)).unwrap();
        let sol = solve(&p).unwrap();
        assert!(sol.feasible);
        assert!(sol.voltages.iter().all(|&v| (v - 1.3).abs() < 1e-9));
        assert!((sol.throughput - 1.3).abs() < 1e-9);
        // Temperatures strictly below T_max (headroom remains).
        assert!(sol.temps.max() < p.t_max());
    }

    #[test]
    fn partial_clamping_re_solves_neighbours() {
        // 3-core at 65 °C on the default cooler: hot enough that some cores
        // clamp at v_max while others stay interior, or all clamp.
        let p = Platform::build(&PlatformSpec::paper(1, 3, 2, 65.0)).unwrap();
        let sol = solve(&p).unwrap();
        assert!(sol.feasible);
        for &v in &sol.voltages {
            assert!((0.6..=1.3).contains(&v));
        }
        // No core exceeds T_max.
        assert!(sol.temps.max() <= p.t_max() + 1e-6);
    }

    #[test]
    fn motivation_platform_matches_paper_regime() {
        let p = Platform::build(&PlatformSpec::motivation()).unwrap();
        let sol = solve(&p).unwrap();
        assert!(sol.feasible);
        // The paper's example: middle core ≈ 1.17 V, edges ≈ 1.21 V.
        assert!(sol.voltages[1] < sol.voltages[0], "middle core runs slower");
        for &v in &sol.voltages {
            assert!((1.0..1.3).contains(&v), "voltages in the motivating band, got {v}");
        }
        let thr = sol.throughput;
        assert!((1.0..1.3).contains(&thr));
    }

    #[test]
    fn infeasible_when_v_min_already_violates() {
        // Absurdly low threshold: 36 °C (1 K above ambient).
        let p = Platform::build(&PlatformSpec::paper(3, 3, 2, 36.0)).unwrap();
        let sol = solve(&p).unwrap();
        assert!(!sol.feasible);
        // Everything clamps at v_min.
        assert!(sol.voltages.iter().all(|&v| (v - 0.6).abs() < 1e-9));
    }

    #[test]
    fn explicit_range_overrides_table() {
        let p = Platform::build(&PlatformSpec::paper(1, 3, 2, 55.0)).unwrap();
        let wide = solve_with_range(&p, 0.3, 2.0).unwrap();
        let table = solve(&p).unwrap();
        // The wider range can only help throughput.
        assert!(wide.throughput >= table.throughput - 1e-9);
        assert!(solve_with_range(&p, 0.0, 1.0).is_err());
        assert!(solve_with_range(&p, 1.0, 0.5).is_err());
    }
}
