//! EXS — exhaustive search over constant per-core level assignments
//! (Algorithm 1 of the paper).
//!
//! Every one of the `L^N` assignments is checked for `max(T∞) ≤ T_max` and
//! the feasible assignment with the largest speed sum wins. Two engineering
//! touches keep this honest but fast:
//!
//! * the steady state is *linear* in the per-core power vector
//!   (`T∞ = R·ψ`), so candidates are evaluated by accumulating precomputed
//!   response-matrix columns instead of solving a linear system each —
//!   with an odometer walk that only updates the column that changed;
//! * the outermost core's level partitions the space across scoped threads
//!   (`std::thread::scope`), which matters for the 9-core × 5-level sweeps
//!   of Table V.
//!
//! The search cost still grows as `L^N` — reproducing the paper's
//! computation-time blow-up (Table V) is the point, not a defect.

use crate::{Result, Solution, ACCEPT_EPS, FEASIBILITY_EPS};
use mosc_sched::{Platform, Schedule};

/// Level assignments evaluated across all partitions. Each worker
/// accumulates locally and adds its batch once at the end, so the hot
/// odometer loop never touches a shared atomic.
static ASSIGNMENTS: mosc_obs::Counter = mosc_obs::Counter::new("exs.assignments");

/// Period given to the (constant-speed) winning schedule.
pub const DEFAULT_PERIOD: f64 = 0.1;

/// Runs EXS on `platform` using all available threads.
///
/// # Errors
/// Propagates evaluation failures; returns [`crate::AlgoError::Infeasible`]
/// when not even the all-lowest assignment is safe.
pub fn solve(platform: &Platform) -> Result<Solution> {
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    solve_with_threads(platform, threads)
}

/// Runs EXS with an explicit thread count (1 = the paper's sequential
/// Algorithm 1; benchmarks use this to isolate algorithmic scaling from
/// parallel speedup).
///
/// # Errors
/// Propagates evaluation failures; flags infeasibility.
pub fn solve_with_threads(platform: &Platform, threads: usize) -> Result<Solution> {
    let _span = mosc_obs::span("exs.solve");
    debug_assert!(crate::checks::platform_ok(platform), "EXS input platform fails static analysis");
    let n = platform.n_cores();
    let modes = platform.modes();
    let levels = modes.levels();
    let t_max = platform.t_max();
    let r = platform.thermal().response_matrix().map_err(mosc_sched::SchedError::from)?;
    // ψ per level, shared by all cores (homogeneous power model).
    let psi: Vec<f64> = levels.iter().map(|&v| platform.power().psi(v)).collect();

    // Partition on the first core's level.
    let threads = threads.max(1).min(levels.len());
    let mut best: Option<(f64, Vec<usize>)> = None;
    let chunks: Vec<Vec<usize>> =
        (0..threads).map(|t| (0..levels.len()).filter(|l| l % threads == t).collect()).collect();

    let results: Vec<Option<(f64, Vec<usize>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                let r = &r;
                let psi = &psi;
                scope.spawn(move || search_partition(n, levels, chunk, r, psi, t_max))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("search thread panicked")).collect()
    });

    for res in results.into_iter().flatten() {
        if best.as_ref().is_none_or(|(b, _)| res.0 > *b) {
            best = Some(res);
        }
    }

    let Some((_, assignment)) = best else {
        let lowest_peak = platform.steady_peak(&vec![modes.lowest(); n])?;
        return Err(crate::AlgoError::Infeasible { lowest_peak, t_max });
    };

    let voltages: Vec<f64> = assignment.iter().map(|&l| levels[l]).collect();
    let schedule = Schedule::constant(&voltages, DEFAULT_PERIOD)?;
    let peak = platform.peak(&schedule)?.temp;
    let solution = Solution {
        algorithm: "EXS",
        throughput: schedule.throughput(),
        feasible: peak <= t_max + FEASIBILITY_EPS,
        peak,
        schedule,
        m: 1,
    };
    debug_assert!(
        crate::checks::solution_ok(platform, &solution, true),
        "EXS result fails static analysis"
    );
    Ok(solution)
}

/// Enumerates all assignments whose first-core level is in `first_levels`,
/// returning the best feasible `(speed_sum, assignment)`.
fn search_partition(
    n: usize,
    levels: &[f64],
    first_levels: &[usize],
    r: &mosc_linalg::Matrix,
    psi: &[f64],
    t_max: f64,
) -> Option<(f64, Vec<usize>)> {
    let n_levels = levels.len();
    let mut best: Option<(f64, Vec<usize>)> = None;
    let mut temps = vec![0.0f64; n];
    let mut evaluated = 0u64;
    for &first in first_levels {
        // Assignment state: levels per core; core 0 fixed to `first`.
        let mut idx = vec![0usize; n];
        idx[0] = first;
        // Initialize temps for the all-(first, 0, 0, …) assignment.
        for t in temps.iter_mut() {
            *t = 0.0;
        }
        for (j, &lev) in idx.iter().enumerate() {
            accumulate(&mut temps, r, j, psi[lev]);
        }
        loop {
            // Evaluate the current assignment.
            evaluated += 1;
            let peak = temps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            if peak <= t_max + ACCEPT_EPS {
                let speed_sum: f64 = idx.iter().map(|&l| levels[l]).sum();
                if best.as_ref().is_none_or(|(b, _)| speed_sum > *b) {
                    best = Some((speed_sum, idx.clone()));
                }
            }
            // Odometer over cores 1..n (core 0 is the partition key),
            // updating only the changed core's thermal contribution.
            let mut k = n;
            let mut advanced = false;
            while k > 1 {
                k -= 1;
                if idx[k] + 1 < n_levels {
                    accumulate(&mut temps, r, k, psi[idx[k] + 1] - psi[idx[k]]);
                    idx[k] += 1;
                    advanced = true;
                    break;
                }
                // Wrap this digit back to level 0.
                accumulate(&mut temps, r, k, psi[0] - psi[idx[k]]);
                idx[k] = 0;
            }
            if !advanced {
                break;
            }
        }
    }
    ASSIGNMENTS.add(evaluated);
    best
}

/// Adds `delta_psi` on core `j` into the temperature accumulator.
#[inline]
fn accumulate(temps: &mut [f64], r: &mosc_linalg::Matrix, j: usize, delta_psi: f64) {
    if delta_psi == 0.0 {
        return;
    }
    for (i, t) in temps.iter_mut().enumerate() {
        *t += r[(i, j)] * delta_psi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosc_sched::PlatformSpec;

    #[test]
    fn exs_beats_or_matches_lns() {
        for (rows, cols) in [(1, 2), (1, 3), (2, 3)] {
            let p = Platform::build(&PlatformSpec::paper(rows, cols, 3, 55.0)).unwrap();
            let exs = solve(&p).unwrap();
            let lns = crate::lns::solve(&p).unwrap();
            assert!(
                exs.throughput >= lns.throughput - 1e-9,
                "{rows}x{cols}: EXS {} < LNS {}",
                exs.throughput,
                lns.throughput
            );
            assert!(exs.feasible);
        }
    }

    #[test]
    fn exs_finds_all_max_when_unconstrained() {
        let p = Platform::build(&PlatformSpec::paper(1, 2, 2, 65.0)).unwrap();
        let sol = solve(&p).unwrap();
        assert!((sol.throughput - 1.3).abs() < 1e-9);
    }

    #[test]
    fn exs_matches_brute_force_reference() {
        // Independent re-implementation: evaluate every assignment via the
        // full steady-state solver and compare.
        let p = Platform::build(&PlatformSpec::paper(1, 3, 3, 55.0)).unwrap();
        let sol = solve(&p).unwrap();

        let levels = p.modes().levels().to_vec();
        let mut best = f64::NEG_INFINITY;
        let mut best_assign = vec![];
        for a in p.modes().assignments(3) {
            let peak = p.steady_peak(&a).unwrap();
            if peak <= p.t_max() + 1e-9 {
                let s: f64 = a.iter().sum();
                if s > best {
                    best = s;
                    best_assign = a;
                }
            }
        }
        let _ = levels;
        assert!(
            (sol.throughput - best / 3.0).abs() < 1e-9,
            "EXS {} vs reference {} ({best_assign:?})",
            sol.throughput,
            best / 3.0
        );
    }

    #[test]
    fn exs_single_thread_matches_parallel() {
        let p = Platform::build(&PlatformSpec::paper(2, 3, 3, 55.0)).unwrap();
        let seq = solve_with_threads(&p, 1).unwrap();
        let par = solve_with_threads(&p, 8).unwrap();
        assert!((seq.throughput - par.throughput).abs() < 1e-12);
    }

    #[test]
    fn exs_infeasible_platform_errors() {
        let p = Platform::build(&PlatformSpec::paper(3, 3, 2, 36.0)).unwrap();
        match solve(&p) {
            Err(crate::AlgoError::Infeasible { lowest_peak, t_max }) => {
                assert!(lowest_peak > t_max);
            }
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn exs_respects_tmax() {
        let p = Platform::build(&PlatformSpec::paper(3, 3, 4, 55.0)).unwrap();
        let sol = solve(&p).unwrap();
        assert!(sol.feasible);
        assert!(sol.peak <= p.t_max() + 1e-6);
        // And uses only table levels.
        for core in sol.schedule.cores() {
            for seg in core.segments() {
                assert!(p.modes().levels().iter().any(|&l| (l - seg.voltage).abs() < 1e-9));
            }
        }
    }
}
