//! EXS — exhaustive search over constant per-core level assignments
//! (Algorithm 1 of the paper).
//!
//! Every one of the `L^N` assignments is checked for `max(T∞) ≤ T_max` and
//! the feasible assignment with the largest speed sum wins. Two engineering
//! touches keep this honest but fast:
//!
//! * the steady state is *linear* in the per-core power vector
//!   (`T∞ = R·ψ`), so candidates are evaluated by accumulating precomputed
//!   response-matrix columns instead of solving a linear system each —
//!   with an odometer walk that only updates the column that changed;
//! * the outermost core's level partitions the space across scoped threads
//!   (`std::thread::scope`), which matters for the 9-core × 5-level sweeps
//!   of Table V.
//!
//! The search cost still grows as `L^N` — reproducing the paper's
//! computation-time blow-up (Table V) is the point, not a defect.

use crate::{Result, Solution, ACCEPT_EPS, FEASIBILITY_EPS};
use mosc_sched::{Platform, Schedule};

/// Level assignments evaluated across all partitions. Each worker
/// accumulates locally and adds its batch once at the end, so the hot
/// odometer loop never touches a shared atomic.
static ASSIGNMENTS: mosc_obs::Counter = mosc_obs::Counter::new("exs.assignments");

/// Period given to the (constant-speed) winning schedule.
pub const DEFAULT_PERIOD: f64 = 0.1;

/// Runs EXS on `platform` using all available threads.
///
/// # Errors
/// Propagates evaluation failures; returns [`crate::AlgoError::Infeasible`]
/// when not even the all-lowest assignment is safe.
pub fn solve(platform: &Platform) -> Result<Solution> {
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    solve_inner(platform, threads, None).map(|(s, _)| s)
}

/// Runs EXS with an explicit thread count (1 = the paper's sequential
/// Algorithm 1; benchmarks use this to isolate algorithmic scaling from
/// parallel speedup).
///
/// # Errors
/// Propagates evaluation failures; flags infeasibility.
#[deprecated(
    since = "0.1.0",
    note = "use mosc_core::solve(SolverKind::Exs, platform, &SolveOptions { threads, .. })"
)]
pub fn solve_with_threads(platform: &Platform, threads: usize) -> Result<Solution> {
    solve_inner(platform, threads, None).map(|(s, _)| s)
}

/// The EXS engine behind both [`solve`] and the
/// [`crate::solve`](crate::solve()) dispatcher: an explicit thread count, an
/// optional wall-clock deadline, and the evaluated-assignment count for
/// [`crate::SolverStats`].
///
/// # Errors
/// Propagates evaluation failures; flags infeasibility; returns
/// [`crate::AlgoError::DeadlineExceeded`] when the enumeration runs past
/// `deadline`.
pub(crate) fn solve_inner(
    platform: &Platform,
    threads: usize,
    deadline: Option<std::time::Instant>,
) -> Result<(Solution, u64)> {
    let _span = mosc_obs::span("exs.solve");
    debug_assert!(crate::checks::platform_ok(platform), "EXS input platform fails static analysis");
    let n = platform.n_cores();
    let modes = platform.modes();
    let levels = modes.levels();
    let t_max = platform.t_max();
    let r = platform.thermal().response_matrix().map_err(mosc_sched::SchedError::from)?;
    // ψ per level, shared by all cores (homogeneous power model).
    let psi: Vec<f64> = levels.iter().map(|&v| platform.power().psi(v)).collect();

    // Partition on the first core's level.
    let threads = threads.max(1).min(levels.len());
    let mut best: Option<(f64, Vec<usize>)> = None;
    let chunks: Vec<Vec<usize>> =
        (0..threads).map(|t| (0..levels.len()).filter(|l| l % threads == t).collect()).collect();

    let results: Vec<Partition> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                let r = &r;
                let psi = &psi;
                scope.spawn(move || search_partition(n, levels, chunk, r, psi, t_max, deadline))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("search thread panicked")).collect()
    });

    let mut evaluated = 0u64;
    let mut expired = false;
    for res in results {
        evaluated += res.evaluated;
        expired |= res.expired;
        if let Some(found) = res.best {
            if best.as_ref().is_none_or(|(b, _)| found.0 > *b) {
                best = Some(found);
            }
        }
    }
    if expired {
        return Err(crate::AlgoError::DeadlineExceeded);
    }

    let Some((_, assignment)) = best else {
        let lowest_peak = platform.steady_peak(&vec![modes.lowest(); n])?;
        return Err(crate::AlgoError::Infeasible { lowest_peak, t_max });
    };

    let voltages: Vec<f64> = assignment.iter().map(|&l| levels[l]).collect();
    let schedule = Schedule::constant(&voltages, DEFAULT_PERIOD)?;
    let peak = platform.peak(&schedule)?.temp;
    let solution = Solution {
        algorithm: "EXS",
        throughput: schedule.throughput(),
        feasible: peak <= t_max + FEASIBILITY_EPS,
        peak,
        schedule,
        m: 1,
    };
    debug_assert!(
        crate::checks::solution_ok(platform, &solution, true),
        "EXS result fails static analysis"
    );
    Ok((solution, evaluated))
}

/// Outcome of one partition's enumeration.
struct Partition {
    /// Best feasible `(speed_sum, assignment)` seen, if any.
    best: Option<(f64, Vec<usize>)>,
    /// Assignments evaluated before finishing or expiring.
    evaluated: u64,
    /// `true` when the walk aborted on the deadline.
    expired: bool,
}

/// How many odometer steps pass between deadline polls. A power of two so
/// the check compiles to a mask; coarse enough that the clock read never
/// shows up in the profile, fine enough that overruns stay in the
/// sub-millisecond range on the Table-V platforms.
const DEADLINE_STRIDE: u64 = 4096;

/// Enumerates all assignments whose first-core level is in `first_levels`,
/// returning the best feasible `(speed_sum, assignment)`.
fn search_partition(
    n: usize,
    levels: &[f64],
    first_levels: &[usize],
    r: &mosc_linalg::Matrix,
    psi: &[f64],
    t_max: f64,
    deadline: Option<std::time::Instant>,
) -> Partition {
    let n_levels = levels.len();
    let mut best: Option<(f64, Vec<usize>)> = None;
    let mut temps = vec![0.0f64; n];
    let mut evaluated = 0u64;
    for &first in first_levels {
        // Poll once per first-core level as well as every stride: a
        // partition's subtree can be smaller than the stride.
        if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
            ASSIGNMENTS.add(evaluated);
            return Partition { best, evaluated, expired: true };
        }
        // Assignment state: levels per core; core 0 fixed to `first`.
        let mut idx = vec![0usize; n];
        idx[0] = first;
        // Initialize temps for the all-(first, 0, 0, …) assignment.
        for t in temps.iter_mut() {
            *t = 0.0;
        }
        for (j, &lev) in idx.iter().enumerate() {
            accumulate(&mut temps, r, j, psi[lev]);
        }
        loop {
            // Evaluate the current assignment.
            evaluated += 1;
            if evaluated.is_multiple_of(DEADLINE_STRIDE)
                && deadline.is_some_and(|d| std::time::Instant::now() >= d)
            {
                ASSIGNMENTS.add(evaluated);
                return Partition { best, evaluated, expired: true };
            }
            let peak = temps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            if peak <= t_max + ACCEPT_EPS {
                let speed_sum: f64 = idx.iter().map(|&l| levels[l]).sum();
                if best.as_ref().is_none_or(|(b, _)| speed_sum > *b) {
                    best = Some((speed_sum, idx.clone()));
                }
            }
            // Odometer over cores 1..n (core 0 is the partition key),
            // updating only the changed core's thermal contribution.
            let mut k = n;
            let mut advanced = false;
            while k > 1 {
                k -= 1;
                if idx[k] + 1 < n_levels {
                    accumulate(&mut temps, r, k, psi[idx[k] + 1] - psi[idx[k]]);
                    idx[k] += 1;
                    advanced = true;
                    break;
                }
                // Wrap this digit back to level 0.
                accumulate(&mut temps, r, k, psi[0] - psi[idx[k]]);
                idx[k] = 0;
            }
            if !advanced {
                break;
            }
        }
    }
    ASSIGNMENTS.add(evaluated);
    Partition { best, evaluated, expired: false }
}

/// Adds `delta_psi` on core `j` into the temperature accumulator.
#[inline]
fn accumulate(temps: &mut [f64], r: &mosc_linalg::Matrix, j: usize, delta_psi: f64) {
    if delta_psi == 0.0 {
        return;
    }
    for (i, t) in temps.iter_mut().enumerate() {
        *t += r[(i, j)] * delta_psi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosc_sched::PlatformSpec;

    #[test]
    fn exs_beats_or_matches_lns() {
        for (rows, cols) in [(1, 2), (1, 3), (2, 3)] {
            let p = Platform::build(&PlatformSpec::paper(rows, cols, 3, 55.0)).unwrap();
            let exs = solve(&p).unwrap();
            let lns = crate::lns::solve(&p).unwrap();
            assert!(
                exs.throughput >= lns.throughput - 1e-9,
                "{rows}x{cols}: EXS {} < LNS {}",
                exs.throughput,
                lns.throughput
            );
            assert!(exs.feasible);
        }
    }

    #[test]
    fn exs_finds_all_max_when_unconstrained() {
        let p = Platform::build(&PlatformSpec::paper(1, 2, 2, 65.0)).unwrap();
        let sol = solve(&p).unwrap();
        assert!((sol.throughput - 1.3).abs() < 1e-9);
    }

    #[test]
    fn exs_matches_brute_force_reference() {
        // Independent re-implementation: evaluate every assignment via the
        // full steady-state solver and compare.
        let p = Platform::build(&PlatformSpec::paper(1, 3, 3, 55.0)).unwrap();
        let sol = solve(&p).unwrap();

        let levels = p.modes().levels().to_vec();
        let mut best = f64::NEG_INFINITY;
        let mut best_assign = vec![];
        for a in p.modes().assignments(3) {
            let peak = p.steady_peak(&a).unwrap();
            if peak <= p.t_max() + 1e-9 {
                let s: f64 = a.iter().sum();
                if s > best {
                    best = s;
                    best_assign = a;
                }
            }
        }
        let _ = levels;
        assert!(
            (sol.throughput - best / 3.0).abs() < 1e-9,
            "EXS {} vs reference {} ({best_assign:?})",
            sol.throughput,
            best / 3.0
        );
    }

    #[test]
    fn exs_single_thread_matches_parallel() {
        let p = Platform::build(&PlatformSpec::paper(2, 3, 3, 55.0)).unwrap();
        let (seq, seq_evaluated) = solve_inner(&p, 1, None).unwrap();
        let (par, par_evaluated) = solve_inner(&p, 8, None).unwrap();
        assert!((seq.throughput - par.throughput).abs() < 1e-12);
        // Both cover the complete 3^6 space regardless of partitioning.
        assert_eq!(seq_evaluated, 729);
        assert_eq!(par_evaluated, 729);
    }

    #[test]
    fn exs_infeasible_platform_errors() {
        let p = Platform::build(&PlatformSpec::paper(3, 3, 2, 36.0)).unwrap();
        match solve(&p) {
            Err(crate::AlgoError::Infeasible { lowest_peak, t_max }) => {
                assert!(lowest_peak > t_max);
            }
            other => panic!("expected Infeasible, got {other:?}"),
        }
    }

    #[test]
    fn exs_respects_tmax() {
        let p = Platform::build(&PlatformSpec::paper(3, 3, 4, 55.0)).unwrap();
        let sol = solve(&p).unwrap();
        assert!(sol.feasible);
        assert!(sol.peak <= p.t_max() + 1e-6);
        // And uses only table levels.
        for core in sol.schedule.cores() {
            for seg in core.segments() {
                assert!(p.modes().levels().iter().any(|&l| (l - seg.voltage).abs() < 1e-9));
            }
        }
    }
}
