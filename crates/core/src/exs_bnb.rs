//! Branch-and-bound exhaustive search — an extension over Algorithm 1.
//!
//! Plain EXS visits all `L^N` assignments. Two monotonicity facts prune the
//! tree without losing optimality:
//!
//! * **Thermal bound** — `T∞ = R·ψ` with `R > 0` element-wise, so every
//!   core's temperature is monotone in every core's power. If a partial
//!   assignment is infeasible *even with all unassigned cores at the lowest
//!   level*, no completion is feasible.
//! * **Throughput bound** — if the partial speed sum plus `v_max` for every
//!   unassigned core cannot beat the incumbent, the subtree is dominated.
//!
//! The result is exactly EXS's optimum (asserted by tests), typically at a
//! small fraction of the node visits — the gap the `table5_runtime`/bench
//! suite quantifies. This is the kind of follow-up the paper's conclusion
//! gestures at ("fundamental principles … readily used for other thermal
//! related research").

use crate::{AlgoError, Result, Solution, ACCEPT_EPS, FEASIBILITY_EPS};
use mosc_sched::{Platform, Schedule};

/// Tree nodes expanded (mirrors [`BnbStats::visited`], batched per run).
static NODES_VISITED: mosc_obs::Counter = mosc_obs::Counter::new("exs_bnb.nodes_visited");
/// Subtrees cut by the thermal bound.
static PRUNED_THERMAL: mosc_obs::Counter = mosc_obs::Counter::new("exs_bnb.nodes_pruned_thermal");
/// Subtrees cut by the throughput bound.
static PRUNED_THROUGHPUT: mosc_obs::Counter =
    mosc_obs::Counter::new("exs_bnb.nodes_pruned_throughput");

/// Statistics from a branch-and-bound run.
#[derive(Debug, Clone, Copy, Default)]
pub struct BnbStats {
    /// Tree nodes expanded (partial assignments visited).
    pub visited: u64,
    /// Subtrees cut by the thermal bound.
    pub thermal_prunes: u64,
    /// Subtrees cut by the throughput bound.
    pub throughput_prunes: u64,
}

/// Runs branch-and-bound EXS, returning the optimal constant assignment and
/// search statistics.
///
/// # Errors
/// [`AlgoError::Infeasible`] when even all-lowest violates `T_max`;
/// propagated evaluation failures otherwise.
#[deprecated(
    since = "0.1.0",
    note = "use mosc_core::solve(SolverKind::ExsBnb, platform, &opts); the \
            BnbStats live in SolveReport::stats"
)]
pub fn solve(platform: &Platform) -> Result<(Solution, BnbStats)> {
    solve_inner(platform, None)
}

/// The engine behind [`solve`] and the [`crate::solve`](crate::solve())
/// dispatcher: branch-and-bound with an optional wall-clock deadline.
///
/// # Errors
/// [`AlgoError::Infeasible`] when even all-lowest violates `T_max`;
/// [`AlgoError::DeadlineExceeded`] when the search runs past `deadline`;
/// propagated evaluation failures otherwise.
pub(crate) fn solve_inner(
    platform: &Platform,
    deadline: Option<std::time::Instant>,
) -> Result<(Solution, BnbStats)> {
    let _span = mosc_obs::span("exs_bnb.solve");
    debug_assert!(
        crate::checks::platform_ok(platform),
        "EXS-BnB input platform fails static analysis"
    );
    let n = platform.n_cores();
    let modes = platform.modes();
    let levels = modes.levels().to_vec();
    let t_max = platform.t_max();
    let r = platform.thermal().response_matrix().map_err(mosc_sched::SchedError::from)?;
    let psi: Vec<f64> = levels.iter().map(|&v| platform.power().psi(v)).collect();
    let psi_min = psi[0];
    let v_max = *levels.last().expect("non-empty table");

    // Precompute each core's column once; `temps_floor` starts from the
    // everything-at-lowest baseline so the thermal bound is one vector read.
    let mut temps_floor = vec![0.0f64; n];
    for j in 0..n {
        for (i, t) in temps_floor.iter_mut().enumerate() {
            *t += r[(i, j)] * psi_min;
        }
    }
    if temps_floor.iter().cloned().fold(f64::NEG_INFINITY, f64::max) > t_max + ACCEPT_EPS {
        return Err(AlgoError::Infeasible {
            lowest_peak: temps_floor.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            t_max,
        });
    }

    // `temps` always reflects: assigned cores at their level, unassigned at
    // the lowest level (= the optimistic thermal floor of the subtree).
    let mut search = Search {
        n,
        levels: &levels,
        psi: &psi,
        r: &r,
        t_max,
        v_max,
        deadline,
        assign: vec![0usize; n],
        temps: temps_floor,
        best_sum: f64::NEG_INFINITY,
        best_assign: vec![0; n],
        stats: BnbStats::default(),
        expired: false,
    };
    search.dfs(0);
    let Search { best_assign, stats, expired, .. } = search;

    NODES_VISITED.add(stats.visited);
    PRUNED_THERMAL.add(stats.thermal_prunes);
    PRUNED_THROUGHPUT.add(stats.throughput_prunes);
    if expired {
        return Err(AlgoError::DeadlineExceeded);
    }
    mosc_obs::event(
        "exs_bnb.done",
        &[
            ("visited", stats.visited.into()),
            ("thermal_prunes", stats.thermal_prunes.into()),
            ("throughput_prunes", stats.throughput_prunes.into()),
        ],
    );

    let voltages: Vec<f64> = best_assign.iter().map(|&l| levels[l]).collect();
    let schedule = Schedule::constant(&voltages, crate::exs::DEFAULT_PERIOD)?;
    let peak = platform.peak(&schedule)?.temp;
    let solution = Solution {
        algorithm: "EXS-BnB",
        throughput: schedule.throughput(),
        feasible: peak <= t_max + FEASIBILITY_EPS,
        peak,
        schedule,
        m: 1,
    };
    debug_assert!(
        crate::checks::solution_ok(platform, &solution, true),
        "EXS-BnB result fails static analysis"
    );
    Ok((solution, stats))
}

/// How many node visits pass between deadline polls; a power of two so the
/// modulo is a mask.
const DEADLINE_STRIDE: u64 = 4096;

/// The depth-first search state. Bundling it keeps the recursion signature
/// readable and gives the deadline poll one place to live.
struct Search<'a> {
    /// Core count.
    n: usize,
    /// DVFS level table (V).
    levels: &'a [f64],
    /// ψ per level.
    psi: &'a [f64],
    /// Thermal response matrix `R`.
    r: &'a mosc_linalg::Matrix,
    /// Temperature threshold (K above ambient).
    t_max: f64,
    /// Fastest level, for the optimistic throughput bound.
    v_max: f64,
    /// Abort the walk once the clock passes this point.
    deadline: Option<std::time::Instant>,
    /// Current partial assignment (levels per core).
    assign: Vec<usize>,
    /// Assigned cores at their level, unassigned at the lowest level.
    temps: Vec<f64>,
    /// Incumbent speed sum.
    best_sum: f64,
    /// Incumbent assignment.
    best_assign: Vec<usize>,
    /// Visit/prune tallies.
    stats: BnbStats,
    /// Set once the deadline fires; unwinds the recursion.
    expired: bool,
}

impl Search<'_> {
    fn dfs(&mut self, depth: usize) {
        if self.expired {
            return;
        }
        self.stats.visited += 1;
        // `== 1` polls on the very first visit, so an already-expired
        // deadline aborts before any work; after that, every stride.
        if self.stats.visited % DEADLINE_STRIDE == 1
            && self.deadline.is_some_and(|d| std::time::Instant::now() >= d)
        {
            self.expired = true;
            return;
        }
        // Thermal bound: the floor completion is the coolest this subtree
        // can ever be.
        let peak = self.temps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if peak > self.t_max + ACCEPT_EPS {
            self.stats.thermal_prunes += 1;
            return;
        }
        // Throughput bound.
        let fixed_sum: f64 = self.assign[..depth].iter().map(|&l| self.levels[l]).sum();
        let optimistic = fixed_sum + (self.n - depth) as f64 * self.v_max;
        if optimistic <= self.best_sum + 1e-12 {
            self.stats.throughput_prunes += 1;
            return;
        }
        if depth == self.n {
            // Feasible leaf (thermal bound above is exact here).
            if fixed_sum > self.best_sum {
                self.best_sum = fixed_sum;
                self.best_assign.copy_from_slice(&self.assign);
            }
            return;
        }
        // Try the highest levels first: better incumbents earlier ⇒ more
        // throughput prunes.
        for l in (0..self.levels.len()).rev() {
            let delta = self.psi[l] - self.psi[0];
            for (i, t) in self.temps.iter_mut().enumerate() {
                *t += self.r[(i, depth)] * delta;
            }
            self.assign[depth] = l;
            self.dfs(depth + 1);
            for (i, t) in self.temps.iter_mut().enumerate() {
                *t -= self.r[(i, depth)] * delta;
            }
        }
        self.assign[depth] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosc_sched::PlatformSpec;

    #[test]
    fn bnb_matches_plain_exs_optimum() {
        for (rows, cols, levels) in [(1usize, 3usize, 3usize), (2, 3, 3), (1, 3, 5)] {
            let p = Platform::build(&PlatformSpec::paper(rows, cols, levels, 55.0)).unwrap();
            let plain = crate::exs::solve(&p).unwrap();
            let (bnb, stats) = solve_inner(&p, None).unwrap();
            assert!(
                (plain.throughput - bnb.throughput).abs() < 1e-12,
                "{rows}x{cols}/{levels}: plain {} vs bnb {}",
                plain.throughput,
                bnb.throughput
            );
            assert!(stats.visited > 0);
        }
    }

    #[test]
    fn bnb_prunes_meaningfully_on_constrained_platforms() {
        let p = Platform::build(&PlatformSpec::paper(3, 3, 4, 55.0)).unwrap();
        let (_, stats) = solve_inner(&p, None).unwrap();
        let full_tree: u64 = {
            // Nodes of the complete 4-ary tree of depth 9.
            let mut total = 0u64;
            let mut layer = 1u64;
            for _ in 0..=9 {
                total += layer;
                layer *= 4;
            }
            total
        };
        assert!(
            stats.visited * 4 < full_tree,
            "expected >4x pruning: visited {} of {}",
            stats.visited,
            full_tree
        );
        assert!(stats.thermal_prunes + stats.throughput_prunes > 0);
    }

    #[test]
    fn bnb_infeasible_platform_errors() {
        let p = Platform::build(&PlatformSpec::paper(3, 3, 2, 36.0)).unwrap();
        assert!(matches!(solve_inner(&p, None), Err(AlgoError::Infeasible { .. })));
    }

    #[test]
    fn bnb_unconstrained_platform_all_max() {
        let p = Platform::build(&PlatformSpec::paper(1, 2, 5, 65.0)).unwrap();
        let (sol, stats) = solve_inner(&p, None).unwrap();
        assert!((sol.throughput - 1.3).abs() < 1e-12);
        // Descending order means the very first leaf is optimal and the
        // throughput bound kills everything else.
        assert!(stats.visited < 40, "visited {}", stats.visited);
    }
}
