//! Throughput maximization under a peak-temperature constraint.
//!
//! This crate is the paper's primary contribution: given a [`Platform`]
//! (thermal model + power model + discrete DVFS modes + `T_max`), construct a
//! periodic schedule maximizing the chip-wide throughput of eq. (5) while the
//! stable-status peak temperature never exceeds `T_max`.
//!
//! Algorithms:
//!
//! * [`continuous::solve`] — the ideal continuously-variable operating point:
//!   per-core voltages with every core's steady temperature pinned at `T_max`
//!   (the starting point of Algorithm 2, after Hanumaiah et al.).
//! * [`lns::solve`] — **LNS**: round the ideal voltages down to the next
//!   available level (the pessimistic baseline).
//! * [`exs::solve`] — **EXS** (Algorithm 1): exhaustive search over all
//!   `L^N` constant per-core level assignments, with the steady state
//!   evaluated incrementally through the precomputed response matrix and the
//!   enumeration parallelized across threads.
//! * [`ao::solve`] — **AO** (Algorithm 2): the frequency-oscillation method.
//!   Ideal voltages → neighboring level pairs (Theorems 3–4) → m-Oscillating
//!   step-up schedule with the best oscillation factor under DVFS overhead
//!   (Theorem 5) → greedy TPT ratio adjustment until `T_max` holds.
//! * [`pco::solve`] — **PCO**: AO plus per-core phase shifts that interleave
//!   hot intervals spatially, then a headroom-refill pass (sampled peaks,
//!   since shifted schedules are no longer step-up).
//! * [`reactive::simulate`] — a reactive threshold governor, the classic
//!   online-DTM baseline the related-work section contrasts against
//!   (an extension beyond the paper's comparison set).
//!
//! In debug builds every solver self-checks through the `mosc-analyze`
//! lints: the input platform must satisfy the paper's model assumptions
//! (Hurwitz-stable state matrix, symmetric conductances, monotone power),
//! and the returned [`Solution`]'s headline numbers must survive a from-
//! scratch recomputation. Release builds compile the hooks out.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod ao;
mod checks;
pub mod continuous;
pub mod exs;
pub mod exs_bnb;
pub mod lns;
pub mod pco;
pub mod reactive;
pub mod registry;
pub mod solve;

pub use ao::AoOptions;
pub use mosc_sched::{Platform, PlatformSpec, Schedule, ACCEPT_EPS, FEASIBILITY_EPS};
pub use registry::PlatformRegistry;
pub use solve::{
    solve, solve_batch, BatchVariant, KernelDelta, SolveOptions, SolveReport, SolverKind,
    SolverStats, UnknownSolverError,
};

/// Outcome of a scheduling algorithm: the schedule it constructed and the
/// headline numbers the evaluation compares.
#[derive(Debug, Clone)]
pub struct Solution {
    /// Algorithm label (`"LNS"`, `"EXS"`, `"AO"`, `"PCO"`).
    pub algorithm: &'static str,
    /// The constructed periodic schedule.
    pub schedule: Schedule,
    /// Chip-wide throughput per eq. (5), net of DVFS stall overhead.
    pub throughput: f64,
    /// Stable-status peak temperature, relative to ambient (K).
    pub peak: f64,
    /// `true` when the peak respects the platform's `T_max`.
    pub feasible: bool,
    /// Oscillation factor used (1 for constant-speed schedules).
    pub m: usize,
}

impl Solution {
    /// Peak temperature in °C on `platform`.
    #[must_use]
    pub fn peak_c(&self, platform: &Platform) -> f64 {
        platform.to_celsius(self.peak)
    }
}

/// Errors from the scheduling algorithms.
#[derive(Debug)]
pub enum AlgoError {
    /// Even the all-lowest-mode assignment violates `T_max`.
    Infeasible {
        /// Peak temperature of the all-lowest schedule (K above ambient).
        lowest_peak: f64,
        /// The threshold that was violated.
        t_max: f64,
    },
    /// An underlying schedule/thermal evaluation failed.
    Sched(mosc_sched::SchedError),
    /// Invalid algorithm options.
    InvalidOptions {
        /// Human-readable description.
        what: &'static str,
    },
    /// An enumeration solver ran past the caller's wall-clock budget
    /// ([`SolveOptions::deadline`]) and aborted without a result.
    DeadlineExceeded,
}

impl std::fmt::Display for AlgoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Infeasible { lowest_peak, t_max } => write!(
                f,
                "platform infeasible: all-lowest-mode peak {lowest_peak:.2} K exceeds T_max {t_max:.2} K"
            ),
            Self::Sched(e) => write!(f, "schedule evaluation failed: {e}"),
            Self::InvalidOptions { what } => write!(f, "invalid options: {what}"),
            Self::DeadlineExceeded => write!(f, "solver deadline exceeded"),
        }
    }
}

impl std::error::Error for AlgoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Sched(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mosc_sched::SchedError> for AlgoError {
    fn from(e: mosc_sched::SchedError) -> Self {
        Self::Sched(e)
    }
}

impl From<mosc_thermal::ThermalError> for AlgoError {
    fn from(e: mosc_thermal::ThermalError) -> Self {
        Self::Sched(e.into())
    }
}

/// Result alias for the algorithms.
pub type Result<T> = std::result::Result<T, AlgoError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = AlgoError::Infeasible { lowest_peak: 31.0, t_max: 30.0 };
        assert!(e.to_string().contains("infeasible"));
        let e = AlgoError::InvalidOptions { what: "bad m" };
        assert!(e.to_string().contains("bad m"));
    }
}
