//! LNS — the lower-neighboring-speed baseline.
//!
//! Round the ideal continuous voltage of every core down to the next
//! available discrete level (Section III). Since rounding down strictly
//! reduces power and the ideal point satisfies `T∞ ≤ T_max`, the result is
//! always thermally safe — and often far below the achievable throughput,
//! which is the gap AO exploits.

use crate::{continuous, Result, Solution, ACCEPT_EPS, FEASIBILITY_EPS};
use mosc_sched::{Platform, Schedule};

/// Safety-loop rounds that stepped some core down a level (zero in the
/// common case where flooring the ideal point is already feasible).
static DOWNSTEPS: mosc_obs::Counter = mosc_obs::Counter::new("lns.downsteps");

/// Default schedule period used for the (constant-speed) LNS schedule; the
/// value is irrelevant thermally, it only gives the schedule a concrete
/// period for downstream tooling.
pub const DEFAULT_PERIOD: f64 = 0.1;

/// Runs LNS on `platform`.
///
/// Flooring the *clamped* ideal point can still violate `T_max` when some
/// core's unclamped ideal lies below the lowest level (3-D stacks at tight
/// thresholds do this): in that case LNS keeps stepping the hottest core
/// down until the steady state is safe or everything sits at the lowest
/// level.
///
/// # Errors
/// Propagates evaluation failures.
pub fn solve(platform: &Platform) -> Result<Solution> {
    let _span = mosc_obs::span("lns.solve");
    debug_assert!(crate::checks::platform_ok(platform), "LNS input platform fails static analysis");
    let ideal = continuous::solve(platform)?;
    let modes = platform.modes();
    let mut voltages: Vec<f64> =
        ideal.voltages.iter().map(|&v| modes.floor(v).unwrap_or_else(|| modes.lowest())).collect();

    // Safety loop (no-op for the common case where the ideal was feasible).
    loop {
        let temps = platform.thermal().steady_state_cores(&platform.psi_profile(&voltages))?;
        if temps.max() <= platform.t_max() + ACCEPT_EPS {
            break;
        }
        let hottest = temps.argmax().expect("non-empty platform");
        // Lower the hottest core that still has room; if the hottest is
        // already at the floor, lower the hottest one that is not.
        let candidate = (0..voltages.len())
            .filter(|&i| voltages[i] > modes.lowest() + 1e-12)
            .max_by(|&a, &b| {
                // Prefer the hottest adjustable core.
                let ka = (a == hottest, temps[a]);
                let kb = (b == hottest, temps[b]);
                ka.partial_cmp(&kb).expect("finite temps")
            });
        match candidate {
            Some(i) => {
                let below = modes
                    .levels()
                    .iter()
                    .copied()
                    .rfind(|&l| l < voltages[i] - 1e-12)
                    .unwrap_or_else(|| modes.lowest());
                voltages[i] = below;
                DOWNSTEPS.incr();
            }
            None => break, // everything at the floor; report as-is
        }
    }

    let schedule = Schedule::constant(&voltages, DEFAULT_PERIOD)?;
    let peak = platform.peak(&schedule)?.temp;
    let solution = Solution {
        algorithm: "LNS",
        throughput: schedule.throughput(),
        feasible: peak <= platform.t_max() + FEASIBILITY_EPS,
        peak,
        schedule,
        m: 1,
    };
    debug_assert!(
        crate::checks::solution_ok(platform, &solution, true),
        "LNS result fails static analysis"
    );
    Ok(solution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosc_sched::PlatformSpec;

    #[test]
    fn lns_is_always_feasible_when_ideal_is() {
        for (rows, cols, tmax) in [(1, 2, 55.0), (1, 3, 55.0), (2, 3, 55.0), (3, 3, 55.0)] {
            let p = Platform::build(&PlatformSpec::paper(rows, cols, 2, tmax)).unwrap();
            let sol = solve(&p).unwrap();
            assert!(sol.feasible, "{rows}x{cols} at {tmax}C");
            assert!(sol.peak <= p.t_max() + 1e-6);
        }
    }

    #[test]
    fn lns_uses_only_table_levels() {
        let p = Platform::build(&PlatformSpec::paper(2, 3, 3, 55.0)).unwrap();
        let sol = solve(&p).unwrap();
        let levels = p.modes().levels().to_vec();
        for core in sol.schedule.cores() {
            for seg in core.segments() {
                assert!(
                    levels.iter().any(|&l| (l - seg.voltage).abs() < 1e-9),
                    "voltage {} not a table level",
                    seg.voltage
                );
            }
        }
    }

    #[test]
    fn lns_with_two_levels_collapses_to_low_on_constrained_platform() {
        // 9-core at 55 °C with {0.6, 1.3}: ideal ≈ 0.84–0.9 V floors to 0.6 V
        // everywhere — the paper's motivating pessimism.
        let p = Platform::build(&PlatformSpec::paper(3, 3, 2, 55.0)).unwrap();
        let sol = solve(&p).unwrap();
        assert!((sol.throughput - 0.6).abs() < 1e-9, "throughput {}", sol.throughput);
    }

    #[test]
    fn lns_improves_with_more_levels() {
        let p2 = Platform::build(&PlatformSpec::paper(3, 3, 2, 55.0)).unwrap();
        let p5 = Platform::build(&PlatformSpec::paper(3, 3, 5, 55.0)).unwrap();
        let t2 = solve(&p2).unwrap().throughput;
        let t5 = solve(&p5).unwrap().throughput;
        assert!(t5 >= t2, "more levels cannot hurt LNS: {t5} vs {t2}");
    }

    #[test]
    fn lns_safety_loop_recovers_feasibility_on_stacks() {
        // A 2-layer stack at 55 °C: the ideal point clamps the upper layer
        // at v_min and is itself infeasible; plain flooring would violate
        // T_max, the safety loop must step down until safe.
        let spec = PlatformSpec { layers: 2, ..PlatformSpec::paper(1, 2, 2, 55.0) };
        let p = Platform::build(&spec).unwrap();
        let sol = solve(&p).unwrap();
        assert!(sol.feasible, "LNS must end feasible, peak {}", sol.peak);
        assert!(sol.peak <= p.t_max() + 1e-6);
    }

    #[test]
    fn lns_on_unconstrained_platform_hits_v_max() {
        let p = Platform::build(&PlatformSpec::paper(1, 2, 2, 65.0)).unwrap();
        let sol = solve(&p).unwrap();
        assert!((sol.throughput - 1.3).abs() < 1e-9);
    }
}
