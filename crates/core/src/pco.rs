//! PCO — phase-conscious oscillation.
//!
//! AO constrains every candidate to be a step-up schedule so its peak is one
//! exact evaluation (Theorem 1). The price is that every core's high-voltage
//! interval ends at the same instant — maximal temporal overlap of the hot
//! phases. PCO (Section VI-C) starts from AO's result and additionally
//! searches a cyclic **phase shift** per core, interleaving the hot intervals
//! spatially; it then refills the freed thermal headroom by growing
//! high-voltage ratios. Shifted schedules are no longer step-up, so every
//! evaluation uses the sampled-peak path — which is exactly why PCO's
//! computation time exceeds AO's in Table V. The candidate offsets of one
//! core are independent evaluations, so the phase search fans them out
//! across scoped threads (`AoOptions::threads`) and selects sequentially in
//! offset order — bit-identical to a single-threaded search.

use crate::ao::{self, AoOptions};
use crate::{Result, Solution, ACCEPT_EPS, FEASIBILITY_EPS};
use mosc_sched::eval::{self};
use mosc_sched::{Platform, Schedule};

/// Candidate phase offsets evaluated (one sampled-peak each).
static PHASES_TRIED: mosc_obs::Counter = mosc_obs::Counter::new("pco.phases_tried");
/// Headroom-refill steps accepted (high-share grown by one `t_unit`).
static REFILL_STEPS: mosc_obs::Counter = mosc_obs::Counter::new("pco.refill_steps");

/// Tuning knobs for PCO.
#[derive(Debug, Clone, Copy)]
pub struct PcoOptions {
    /// The underlying AO options.
    pub ao: AoOptions,
    /// Number of candidate phase offsets per core (granularity `t_c/k`).
    pub phase_steps: usize,
    /// Samples per period for the sampled-peak evaluation.
    pub samples: usize,
    /// Refill step as a fraction of the period (`Δr = 1/refill_divisor`).
    pub refill_divisor: usize,
}

impl Default for PcoOptions {
    fn default() -> Self {
        Self { ao: AoOptions::default(), phase_steps: 8, samples: 300, refill_divisor: 100 }
    }
}

/// Runs PCO with default options.
///
/// # Errors
/// See [`solve_with`].
pub fn solve(platform: &Platform) -> Result<Solution> {
    solve_with(platform, &PcoOptions::default())
}

/// Runs PCO on `platform`.
///
/// # Errors
/// Propagates AO failures and evaluation failures.
pub fn solve_with(platform: &Platform, opts: &PcoOptions) -> Result<Solution> {
    let _span = mosc_obs::span("pco.solve");
    debug_assert!(crate::checks::platform_ok(platform), "PCO input platform fails static analysis");
    let ao_sol = ao::solve_with(platform, &opts.ao)?;
    let t_max = platform.t_max();
    let mut schedule = ao_sol.schedule.clone();
    let t_c = schedule.period();

    let sampled_peak = |s: &Schedule| -> Result<f64> {
        Ok(eval::peak_temperature(platform.thermal(), platform.power(), s, Some(opts.samples))?
            .temp)
    };

    // Phase search: greedily shift each core to the offset minimizing the
    // sampled peak. A core's candidate offsets are evaluated concurrently;
    // the winning offset is still chosen sequentially in offset order, so
    // any thread count returns the same schedule.
    let phase_span = mosc_obs::span("pco.phase_search");
    let threads = ao::thread_count(opts.ao.threads, opts.phase_steps.saturating_sub(1));
    let mut peak = sampled_peak(&schedule)?;
    let mut shifted_cores = 0usize;
    for core in 0..platform.n_cores() {
        if schedule.core(core).segments().len() < 2 {
            continue; // constant cores have no phase
        }
        let offsets: Vec<f64> =
            (1..opts.phase_steps).map(|k| t_c * k as f64 / opts.phase_steps as f64).collect();
        let mut evals: Vec<Option<Result<f64>>> = (0..offsets.len()).map(|_| None).collect();
        let workers = threads.min(offsets.len());
        if workers > 1 {
            let collected: Vec<Vec<(usize, Result<f64>)>> = std::thread::scope(|scope| {
                let schedule_ref = &schedule;
                let sp = &sampled_peak;
                let offs = &offsets;
                let handles: Vec<_> = (0..workers)
                    .map(|t| {
                        scope.spawn(move || {
                            (t..offs.len())
                                .step_by(workers)
                                .map(|i| (i, sp(&schedule_ref.with_shifted_core(core, offs[i]))))
                                .collect()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("phase-search thread panicked"))
                    .collect()
            });
            for (i, r) in collected.into_iter().flatten() {
                evals[i] = Some(r);
            }
        } else {
            for (i, &offset) in offsets.iter().enumerate() {
                evals[i] = Some(sampled_peak(&schedule.with_shifted_core(core, offset)));
            }
        }
        let mut best_offset = 0.0;
        let mut best_peak = peak;
        for (&offset, slot) in offsets.iter().zip(evals) {
            PHASES_TRIED.incr();
            let p = slot.expect("every offset evaluated")?;
            if p < best_peak - 1e-12 {
                best_peak = p;
                best_offset = offset;
            }
        }
        if best_offset > 0.0 {
            schedule = schedule.with_shifted_core(core, best_offset);
            peak = best_peak;
            shifted_cores += 1;
        }
    }
    drop(phase_span);
    mosc_obs::event(
        "pco.phase_selected",
        &[("shifted_cores", shifted_cores.into()), ("peak", peak.into())],
    );

    // Headroom refill: grow the high-voltage share of whichever core keeps
    // the chip coolest, until no single step fits under T_max.
    let refill_span = mosc_obs::span("pco.refill");
    let t_unit = t_c / opts.refill_divisor as f64;
    let max_iters = platform.n_cores() * opts.refill_divisor * 2;
    let mut iters = 0;
    while iters < max_iters {
        iters += 1;
        let mut best: Option<(f64, f64, Schedule)> = None; // (peak, gain, schedule)
        for core in 0..platform.n_cores() {
            let Some(cand) = grow_high_share(&schedule, core, t_unit) else {
                continue;
            };
            let p = sampled_peak(&cand)?;
            if p <= t_max + ACCEPT_EPS {
                let gain = cand.throughput() - schedule.throughput();
                let better = match &best {
                    None => true,
                    Some((bp, bg, _)) => gain > *bg + 1e-15 || (gain >= *bg - 1e-15 && p < *bp),
                };
                if better && gain > 0.0 {
                    best = Some((p, gain, cand));
                }
            }
        }
        match best {
            Some((p, _, cand)) => {
                schedule = cand;
                peak = p;
                REFILL_STEPS.incr();
            }
            None => break,
        }
    }
    drop(refill_span);
    mosc_obs::event("pco.refill_done", &[("steps", iters.into())]);

    // Final safety valve: if sampling missed a hot spot at coarse settings,
    // re-check at double resolution and shrink back if needed.
    let mut final_peak = eval::peak_temperature(
        platform.thermal(),
        platform.power(),
        &schedule,
        Some(opts.samples * 2),
    )?
    .temp;
    let mut guard = 0;
    while final_peak > t_max + ACCEPT_EPS && guard < max_iters {
        guard += 1;
        let Some(cand) = shrink_hottest_high_share(platform, &schedule, t_unit)? else {
            break;
        };
        schedule = cand;
        final_peak = eval::peak_temperature(
            platform.thermal(),
            platform.power(),
            &schedule,
            Some(opts.samples * 2),
        )?
        .temp;
    }
    let _ = peak;

    let solution = Solution {
        algorithm: "PCO",
        throughput: schedule.throughput_with_overhead(platform.overhead()),
        feasible: final_peak <= t_max + FEASIBILITY_EPS,
        peak: final_peak,
        schedule,
        m: ao_sol.m,
    };
    // Phase-shifted schedules legitimately leave the step-up family, so the
    // step-up lint stays a warning here.
    debug_assert!(
        crate::checks::solution_ok(platform, &solution, false),
        "PCO result fails static analysis"
    );
    Ok(solution)
}

/// Moves `t_unit` seconds from the lowest-voltage segment of `core` to its
/// highest-voltage segment. Returns `None` when the core has no two distinct
/// levels or the low segment is exhausted.
fn grow_high_share(schedule: &Schedule, core: usize, t_unit: f64) -> Option<Schedule> {
    transfer_time(schedule, core, t_unit, true)
}

/// The reverse move on the schedule's hottest core (used by the safety valve).
fn shrink_hottest_high_share(
    platform: &Platform,
    schedule: &Schedule,
    t_unit: f64,
) -> Result<Option<Schedule>> {
    let report = eval::peak_temperature(platform.thermal(), platform.power(), schedule, Some(200))?;
    // Try the hottest core first, then the others.
    let n = schedule.n_cores();
    for offset in 0..n {
        let core = (report.core + offset) % n;
        if let Some(cand) = transfer_time(schedule, core, t_unit, false) {
            return Ok(Some(cand));
        }
    }
    Ok(None)
}

/// Transfers `t_unit` between the extreme-voltage segments of one core
/// (`to_high = true` grows the high segment).
fn transfer_time(schedule: &Schedule, core: usize, t_unit: f64, to_high: bool) -> Option<Schedule> {
    let segs = schedule.core(core).segments();
    if segs.len() < 2 {
        return None;
    }
    let (mut lo_idx, mut hi_idx) = (0usize, 0usize);
    for (i, s) in segs.iter().enumerate() {
        if s.voltage < segs[lo_idx].voltage {
            lo_idx = i;
        }
        if s.voltage > segs[hi_idx].voltage {
            hi_idx = i;
        }
    }
    if segs[hi_idx].voltage <= segs[lo_idx].voltage + 1e-12 {
        return None;
    }
    let (from, to) = if to_high { (lo_idx, hi_idx) } else { (hi_idx, lo_idx) };
    if segs[from].duration < t_unit + 1e-12 {
        return None;
    }
    let mut new_segs = segs.to_vec();
    new_segs[from].duration -= t_unit;
    new_segs[to].duration += t_unit;
    let new_core = mosc_sched::CoreSchedule::new(new_segs).ok()?;
    schedule.with_core(core, new_core).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosc_sched::PlatformSpec;

    fn quick_opts() -> PcoOptions {
        PcoOptions {
            ao: AoOptions {
                base_period: 0.05,
                max_m: 32,
                m_patience: 3,
                t_unit_divisor: 40,
                threads: 0,
            },
            phase_steps: 4,
            samples: 150,
            refill_divisor: 40,
        }
    }

    #[test]
    fn pco_single_thread_matches_parallel() {
        let p = Platform::build(&PlatformSpec::paper(1, 3, 2, 55.0)).unwrap();
        let mut seq_opts = quick_opts();
        seq_opts.ao.threads = 1;
        let mut par_opts = quick_opts();
        par_opts.ao.threads = 8;
        let seq = solve_with(&p, &seq_opts).unwrap();
        let par = solve_with(&p, &par_opts).unwrap();
        assert_eq!(seq.m, par.m);
        assert!((seq.throughput - par.throughput).abs() == 0.0, "thread count changed the result");
        assert!((seq.peak - par.peak).abs() == 0.0);
    }

    #[test]
    fn pco_is_feasible_and_at_least_ao() {
        let p = Platform::build(&PlatformSpec::paper(1, 3, 2, 55.0)).unwrap();
        let ao_sol = ao::solve_with(&p, &quick_opts().ao).unwrap();
        let pco_sol = solve_with(&p, &quick_opts()).unwrap();
        assert!(pco_sol.feasible, "PCO must satisfy T_max");
        // PCO should never be meaningfully worse than AO.
        assert!(
            pco_sol.throughput >= ao_sol.throughput - 0.02,
            "PCO {} well below AO {}",
            pco_sol.throughput,
            ao_sol.throughput
        );
    }

    #[test]
    fn pco_respects_tmax_on_constrained_platform() {
        let p = Platform::build(&PlatformSpec::paper(2, 3, 2, 55.0)).unwrap();
        let sol = solve_with(&p, &quick_opts()).unwrap();
        assert!(sol.feasible, "peak {} vs {}", sol.peak, p.t_max());
    }

    #[test]
    fn pco_unconstrained_platform_runs_all_max() {
        let p = Platform::build(&PlatformSpec::paper(1, 2, 2, 65.0)).unwrap();
        let sol = solve_with(&p, &quick_opts()).unwrap();
        assert!((sol.throughput - 1.3).abs() < 1e-6);
    }

    #[test]
    fn transfer_time_moves_between_extremes() {
        let s = Schedule::two_mode(&[0.6], &[1.3], &[0.5], 0.1).unwrap();
        let grown = grow_high_share(&s, 0, 0.01).unwrap();
        assert!(grown.throughput() > s.throughput());
        let shrunk = transfer_time(&s, 0, 0.01, false).unwrap();
        assert!(shrunk.throughput() < s.throughput());
        // Constant core: nothing to transfer.
        let c = Schedule::constant(&[1.0], 0.1).unwrap();
        assert!(grow_high_share(&c, 0, 0.01).is_none());
        // Exhausted segment: cannot overdraw.
        let tight = Schedule::two_mode(&[0.6], &[1.3], &[0.999], 0.1).unwrap();
        assert!(grow_high_share(&tight, 0, 0.01).is_none());
    }
}
