//! A reactive threshold governor — the online-DTM baseline.
//!
//! The paper's introduction contrasts proactive (offline) schemes like AO
//! with reactive DTM that throttles when a sensor reading approaches the
//! threshold. This module implements the classic step-down/step-up governor
//! so the experiment suite can quantify that contrast (an extension beyond
//! the paper's own comparison set):
//!
//! * every `control_period` seconds the governor reads core temperatures;
//! * a core hotter than `T_max − guard_band` steps one level down;
//! * a core cooler than `T_max − upgrade_band` steps one level up;
//! * each level change stalls the core for the platform's DVFS `τ`.
//!
//! Because decisions react to *past* temperatures, the governor either
//! overshoots `T_max` (small guard band) or leaves throughput on the table
//! (large guard band) — the tradeoff the proactive schedule avoids.

use crate::{Result, Solution};
use mosc_linalg::Vector;
use mosc_sched::{Platform, Schedule};

/// DVFS transitions issued over the simulated horizon (batched once per
/// run from the local tally).
static TRANSITIONS: mosc_obs::Counter = mosc_obs::Counter::new("reactive.transitions");

/// Governor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GovernorOptions {
    /// Control epoch (seconds between sensor reads / decisions).
    pub control_period: f64,
    /// Step down when `T > T_max − guard_band` (K).
    pub guard_band: f64,
    /// Step up when `T < T_max − upgrade_band` (K); must exceed `guard_band`
    /// for hysteresis.
    pub upgrade_band: f64,
    /// Simulated horizon (seconds).
    pub horizon: f64,
    /// Time excluded from the throughput/violation accounting (seconds).
    /// The package's sink time constant is tens of seconds, so a cold start
    /// lets any policy run flat-out "for free"; sustained comparisons should
    /// skip that transient.
    pub warmup: f64,
}

impl Default for GovernorOptions {
    fn default() -> Self {
        Self {
            control_period: 5e-3,
            guard_band: 1.0,
            upgrade_band: 3.0,
            horizon: 300.0,
            warmup: 150.0,
        }
    }
}

/// Outcome of a governor simulation.
#[derive(Debug, Clone)]
pub struct GovernorResult {
    /// Average per-core speed over the horizon, net of transition stalls.
    pub throughput: f64,
    /// Hottest core temperature ever observed (K above ambient).
    pub peak: f64,
    /// Total time any core spent above `T_max` (s).
    pub violation_time: f64,
    /// Total number of DVFS transitions issued.
    pub transitions: usize,
    /// Final per-core level indices.
    pub final_levels: Vec<usize>,
}

impl GovernorResult {
    /// Converts to a [`Solution`]-like summary (for table printing). The
    /// governor has no periodic schedule; the returned schedule freezes the
    /// final level assignment.
    ///
    /// # Errors
    /// Propagates schedule-construction failures.
    pub fn as_solution(&self, platform: &Platform) -> Result<Solution> {
        let levels = platform.modes().levels();
        let voltages: Vec<f64> = self.final_levels.iter().map(|&l| levels[l]).collect();
        let schedule = Schedule::constant(&voltages, 0.1)?;
        Ok(Solution {
            algorithm: "Governor",
            schedule,
            throughput: self.throughput,
            peak: self.peak,
            feasible: self.violation_time == 0.0,
            m: 1,
        })
    }
}

/// Simulates the reactive governor on `platform`.
///
/// # Errors
/// Rejects degenerate options; propagates thermal failures.
pub fn simulate(platform: &Platform, opts: &GovernorOptions) -> Result<GovernorResult> {
    let _span = mosc_obs::span("reactive.simulate");
    if !(opts.control_period > 0.0 && opts.horizon > 0.0) {
        return Err(crate::AlgoError::InvalidOptions {
            what: "control_period and horizon must be positive",
        });
    }
    if opts.upgrade_band <= opts.guard_band {
        return Err(crate::AlgoError::InvalidOptions {
            what: "upgrade_band must exceed guard_band (hysteresis)",
        });
    }
    if opts.warmup >= opts.horizon || opts.warmup < 0.0 {
        return Err(crate::AlgoError::InvalidOptions {
            what: "warmup must be non-negative and below the horizon",
        });
    }
    let n = platform.n_cores();
    let model = platform.thermal();
    let levels = platform.modes().levels().to_vec();
    let t_max = platform.t_max();
    let tau = platform.overhead().tau;

    let mut level_idx = vec![0usize; n];
    let mut temps = Vector::zeros(model.n_nodes());
    let mut work = 0.0;
    let mut peak: f64 = 0.0;
    let mut violation_time = 0.0;
    let mut transitions = 0usize;

    let steps = (opts.horizon / opts.control_period).ceil() as usize;
    for step in 0..steps {
        let now = step as f64 * opts.control_period;
        let measuring = now >= opts.warmup;
        let voltages: Vec<f64> = level_idx.iter().map(|&l| levels[l]).collect();
        let psi = platform.psi_profile(&voltages);
        temps = model
            .advance(&temps, &psi, opts.control_period)
            .map_err(mosc_sched::SchedError::from)?;
        let core_max = model.max_core_temp(&temps);
        peak = peak.max(core_max);
        if measuring {
            if core_max > t_max {
                violation_time += opts.control_period;
            }
            work += voltages.iter().sum::<f64>() * opts.control_period;
        }

        // Governor decisions from the (already stale) end-of-epoch reading.
        for c in 0..n {
            let t = temps[c];
            if t > t_max - opts.guard_band && level_idx[c] > 0 {
                level_idx[c] -= 1;
                transitions += 1;
                if measuring {
                    work -= levels[level_idx[c]] * tau; // stall during the switch
                }
            } else if t < t_max - opts.upgrade_band && level_idx[c] + 1 < levels.len() {
                level_idx[c] += 1;
                transitions += 1;
                if measuring {
                    work -= levels[level_idx[c]] * tau;
                }
            }
        }
    }

    TRANSITIONS.add(transitions as u64);
    mosc_obs::event(
        "reactive.done",
        &[
            ("transitions", transitions.into()),
            ("violation_time", violation_time.into()),
            ("peak", peak.into()),
        ],
    );
    Ok(GovernorResult {
        throughput: (work / (n as f64 * (opts.horizon - opts.warmup))).max(0.0),
        peak,
        violation_time,
        transitions,
        final_levels: level_idx,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosc_sched::PlatformSpec;

    fn quick() -> GovernorOptions {
        GovernorOptions {
            control_period: 0.01,
            guard_band: 1.0,
            upgrade_band: 3.0,
            horizon: 240.0,
            warmup: 160.0,
        }
    }

    #[test]
    fn governor_converges_on_unconstrained_platform() {
        // 2-core at 65 °C: the governor should ramp to the top level and stay.
        let p = Platform::build(&PlatformSpec::paper(1, 2, 2, 65.0)).unwrap();
        let r = simulate(&p, &quick()).unwrap();
        assert_eq!(r.final_levels, vec![1, 1]);
        assert!(r.violation_time == 0.0);
        assert!(r.throughput > 1.0, "throughput {}", r.throughput);
    }

    #[test]
    fn governor_throttles_on_constrained_platform() {
        let p = Platform::build(&PlatformSpec::paper(3, 3, 2, 55.0)).unwrap();
        let r = simulate(&p, &quick()).unwrap();
        // Must have bounced between levels.
        assert!(r.transitions > 0);
        // Peak stays near or below T_max + a small reactive overshoot.
        assert!(r.peak < p.t_max() + 3.0, "reactive overshoot too large: {}", r.peak);
        // Throughput between all-low and all-high.
        assert!(r.throughput > 0.6 && r.throughput < 1.3);
    }

    #[test]
    fn proactive_ao_beats_governor_or_governor_violates() {
        // The headline contrast: at equal safety, AO's throughput wins.
        let p = Platform::build(&PlatformSpec::paper(2, 3, 2, 55.0)).unwrap();
        let ao = crate::ao::solve_with(
            &p,
            &crate::ao::AoOptions {
                base_period: 0.05,
                max_m: 32,
                m_patience: 3,
                t_unit_divisor: 40,
                threads: 0,
            },
        )
        .unwrap();
        let gov = simulate(&p, &quick()).unwrap();
        assert!(
            ao.throughput >= gov.throughput - 0.05 || gov.violation_time > 0.0,
            "AO {} vs governor {} (violations {})",
            ao.throughput,
            gov.throughput,
            gov.violation_time
        );
    }

    #[test]
    fn option_validation() {
        let p = Platform::build(&PlatformSpec::paper(1, 2, 2, 55.0)).unwrap();
        let bad = GovernorOptions { control_period: 0.0, ..quick() };
        assert!(simulate(&p, &bad).is_err());
        let bad = GovernorOptions { guard_band: 3.0, upgrade_band: 1.0, ..quick() };
        assert!(simulate(&p, &bad).is_err());
        let bad = GovernorOptions { warmup: 1000.0, ..quick() };
        assert!(simulate(&p, &bad).is_err());
    }

    #[test]
    fn as_solution_summary() {
        let p = Platform::build(&PlatformSpec::paper(1, 2, 2, 65.0)).unwrap();
        let r = simulate(&p, &quick()).unwrap();
        let sol = r.as_solution(&p).unwrap();
        assert_eq!(sol.algorithm, "Governor");
        assert!(sol.feasible);
    }
}
