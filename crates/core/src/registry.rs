//! Platform interning: amortize the eigenbasis across solves.
//!
//! The paper's Algorithm 2 recomputes the platform's modal decomposition
//! for every solve, and the serve layer inherited that: each request built
//! a fresh [`Platform`] — the `C^{-1/2} G C^{-1/2}` eigendecomposition,
//! per-voltage T∞ vectors, and (lazily, during the first solves) the
//! interval propagators — even when thousands of requests share one
//! platform. This module interns platforms by the content hash of their
//! canonical spec so repeated-platform traffic reuses a single
//! [`Platform`] instance, and with it every memoized kernel artifact:
//! a warm solve performs zero eigendecompositions (`eigen_calls == 0` in
//! its [`crate::KernelDelta`]), and zero matrix exponentials for interval
//! durations any earlier solve on the platform already visited.
//!
//! Keying is the same shape as the serve solution cache after its PR-8
//! collision fix: a 64-bit FNV-1a hash of the canonical preimage for O(1)
//! lookup, **verified against the stored preimage on every hit** so a hash
//! collision degrades to a rebuild instead of silently handing a request
//! somebody else's thermal model. The registry is bounded and LRU-evicted;
//! hits and misses are reported through the `registry.hits` /
//! `registry.misses` counters (surfaced per-solve via
//! [`crate::KernelDelta`]), which is what the `M110`/`M111` analyzer lints
//! join against the access log.

use mosc_sched::Platform;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Interned platforms resolved from the registry (preimage-verified).
static REGISTRY_HITS: mosc_obs::Counter = mosc_obs::Counter::new("registry.hits");
/// Registry lookups that had to build the platform (cold key, evicted
/// entry, or a verification failure on a colliding hash).
static REGISTRY_MISSES: mosc_obs::Counter = mosc_obs::Counter::new("registry.misses");

/// Entries the process-global registry holds before evicting (a platform's
/// memoized propagator tables dominate its footprint, so this stays small).
pub const DEFAULT_CAPACITY: usize = 64;

/// 64-bit FNV-1a over the canonical preimage — the same derivation the
/// serve solution cache uses, so one hash function governs both tiers.
#[must_use]
pub fn content_hash(preimage: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in preimage.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One interned platform: the LRU stamp, the canonical preimage the hash
/// was derived from, and the shared instance.
struct Entry {
    stamp: u64,
    preimage: String,
    platform: Arc<Platform>,
}

/// A bounded, LRU-evicted interning table from canonical platform specs to
/// shared [`Platform`] instances.
///
/// Not synchronized itself — the process-global instance behind
/// [`intern_with`] wraps one in a mutex, and the lock is held only for the
/// table operations, never across a platform build.
pub struct PlatformRegistry {
    capacity: usize,
    clock: u64,
    entries: HashMap<u64, Entry>,
}

impl std::fmt::Debug for PlatformRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlatformRegistry")
            .field("capacity", &self.capacity)
            .field("len", &self.entries.len())
            .finish()
    }
}

impl PlatformRegistry {
    /// An empty registry holding at most `capacity` platforms. Capacity 0
    /// disables interning (every lookup is a miss and nothing is stored).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self { capacity, clock: 0, entries: HashMap::new() }
    }

    /// Number of interned platforms.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up `preimage`; returns the interned platform and `true` on a
    /// verified hit, or `None` when the caller must build (cold key, or a
    /// hash collision whose stored preimage differs).
    fn lookup(&mut self, hash: u64, preimage: &str) -> Option<Arc<Platform>> {
        self.clock += 1;
        let entry = self.entries.get_mut(&hash)?;
        if entry.preimage != preimage {
            // 64-bit collision: never serve the other key's platform. The
            // resident entry keeps its slot (first writer wins); the
            // colliding key rebuilds on every request, which is slow but
            // correct — and observable as a persistent miss stream.
            return None;
        }
        entry.stamp = self.clock;
        Some(Arc::clone(&entry.platform))
    }

    /// Interns `platform` under `preimage`, evicting the least-recently-used
    /// entry if the registry is full. A colliding resident entry (same hash,
    /// different preimage) is left in place.
    fn store(&mut self, hash: u64, preimage: &str, platform: &Arc<Platform>) {
        if self.capacity == 0 || self.entries.contains_key(&hash) {
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some(oldest) = self.entries.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| *k)
            {
                self.entries.remove(&oldest);
            }
        }
        self.clock += 1;
        self.entries.insert(
            hash,
            Entry {
                stamp: self.clock,
                preimage: preimage.to_owned(),
                platform: Arc::clone(platform),
            },
        );
    }

    /// Resolves `preimage` to a shared platform, building (and interning)
    /// it with `build` on a miss. Returns the platform and whether the
    /// lookup was warm (`true` = served from the registry, no build).
    ///
    /// # Errors
    /// Propagates `build`'s error; nothing is interned in that case.
    pub fn get_or_build<E>(
        &mut self,
        preimage: &str,
        build: impl FnOnce() -> Result<Platform, E>,
    ) -> Result<(Arc<Platform>, bool), E> {
        let hash = content_hash(preimage);
        if let Some(platform) = self.lookup(hash, preimage) {
            REGISTRY_HITS.incr();
            return Ok((platform, true));
        }
        REGISTRY_MISSES.incr();
        let platform = Arc::new(build()?);
        self.store(hash, preimage, &platform);
        Ok((platform, false))
    }
}

/// The process-global registry behind [`intern_with`].
fn global() -> MutexGuard<'static, PlatformRegistry> {
    static GLOBAL: OnceLock<Mutex<PlatformRegistry>> = OnceLock::new();
    GLOBAL
        .get_or_init(|| Mutex::new(PlatformRegistry::new(DEFAULT_CAPACITY)))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Resolves `preimage` through the process-global registry (capacity
/// [`DEFAULT_CAPACITY`]). The registry lock is *not* held across the build:
/// a miss builds outside the lock, so concurrent misses on one cold key may
/// build redundantly (last store wins) but never block each other.
///
/// # Errors
/// Propagates `build`'s error; nothing is interned in that case.
pub fn intern_with<E>(
    preimage: &str,
    build: impl FnOnce() -> Result<Platform, E>,
) -> Result<(Arc<Platform>, bool), E> {
    let hash = content_hash(preimage);
    if let Some(platform) = {
        let mut reg = global();
        reg.lookup(hash, preimage)
    } {
        REGISTRY_HITS.incr();
        return Ok((platform, true));
    }
    REGISTRY_MISSES.incr();
    let platform = Arc::new(build()?);
    global().store(hash, preimage, &platform);
    Ok((platform, false))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosc_sched::PlatformSpec;

    fn build_ok() -> Result<Platform, String> {
        Platform::build(&PlatformSpec::paper(1, 2, 2, 55.0)).map_err(|e| e.to_string())
    }

    #[test]
    fn cold_then_warm_shares_one_instance() {
        let mut reg = PlatformRegistry::new(4);
        let (a, warm_a) = reg.get_or_build("spec-a", build_ok).unwrap();
        assert!(!warm_a, "first lookup must build");
        let (b, warm_b) = reg.get_or_build("spec-a", build_ok).unwrap();
        assert!(warm_b, "second lookup must be warm");
        assert!(Arc::ptr_eq(&a, &b), "warm hit must return the interned instance");
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn build_errors_are_propagated_and_not_interned() {
        let mut reg = PlatformRegistry::new(4);
        let err = reg.get_or_build("bad", || Err::<Platform, _>("boom".to_string()));
        assert_eq!(err.err().as_deref(), Some("boom"));
        assert!(reg.is_empty());
        // The key stays cold: a later good build goes through.
        let (_, warm) = reg.get_or_build("bad", build_ok).unwrap();
        assert!(!warm);
    }

    #[test]
    fn capacity_bounds_the_registry_with_lru_eviction() {
        let mut reg = PlatformRegistry::new(2);
        reg.get_or_build("p0", build_ok).unwrap();
        reg.get_or_build("p1", build_ok).unwrap();
        // Touch p0 so p1 is the LRU victim.
        assert!(reg.get_or_build("p0", build_ok).unwrap().1);
        reg.get_or_build("p2", build_ok).unwrap();
        assert_eq!(reg.len(), 2);
        assert!(reg.get_or_build("p0", build_ok).unwrap().1, "touched entry survives");
        assert!(!reg.get_or_build("p1", build_ok).unwrap().1, "LRU entry was evicted");
    }

    #[test]
    fn zero_capacity_disables_interning() {
        let mut reg = PlatformRegistry::new(0);
        assert!(!reg.get_or_build("p", build_ok).unwrap().1);
        assert!(!reg.get_or_build("p", build_ok).unwrap().1);
        assert!(reg.is_empty());
    }

    #[test]
    fn a_hash_collision_never_serves_the_wrong_platform() {
        let mut reg = PlatformRegistry::new(4);
        let hash = content_hash("resident");
        let resident = Arc::new(build_ok().unwrap());
        reg.store(hash, "resident", &resident);
        // Force a different preimage onto the resident's hash slot.
        assert!(reg.lookup(hash, "intruder").is_none(), "collision must miss, not alias");
        // The resident is untouched and still verifies.
        let hit = reg.lookup(hash, "resident").expect("resident still resolves");
        assert!(Arc::ptr_eq(&hit, &resident));
        // Storing the intruder leaves the resident in place (first writer
        // wins); the intruder keeps missing rather than evicting it.
        let intruder = Arc::new(build_ok().unwrap());
        reg.store(hash, "intruder", &intruder);
        let hit = reg.lookup(hash, "resident").expect("resident survives colliding store");
        assert!(Arc::ptr_eq(&hit, &resident));
    }

    #[test]
    fn global_interning_is_warm_on_the_second_lookup() {
        // A preimage unique to this test so parallel tests cannot race it.
        let preimage = "registry-test-global-unique-3f9c";
        let (a, _) = intern_with(preimage, build_ok).unwrap();
        let (b, warm) = intern_with(preimage, build_ok).unwrap();
        assert!(warm);
        assert!(Arc::ptr_eq(&a, &b));
    }
}
