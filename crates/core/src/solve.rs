//! The unified solver API: one dispatcher over the six algorithms.
//!
//! The solvers historically grew six incompatible entry points
//! (`ao::solve_with(&AoOptions)`, `exs::solve_with_threads(usize)`,
//! `exs_bnb::solve -> (Solution, BnbStats)`, …), which meant every layer
//! above them — the CLI, the bench harness, and now the `mosc-serve`
//! daemon — re-implemented per-solver dispatch glue. This module folds them
//! behind:
//!
//! * [`SolverKind`] — a closed enum of the six algorithms with stable wire
//!   ids (`"lns"`, `"exs"`, `"exs-bnb"`, `"ao"`, `"pco"`, `"governor"`);
//! * [`SolveOptions`] — one flat, serializable option set. Flatness is
//!   deliberate: a service caches solve results keyed by a canonical hash of
//!   (platform, kind, options), and a flat struct has exactly one canonical
//!   field order;
//! * [`SolveReport`] — the uniform outcome: the [`Solution`], cross-solver
//!   [`SolverStats`], and the wall-clock time;
//! * [`solve`] — the dispatcher itself.
//!
//! Deadlines: [`SolveOptions::deadline`] bounds the wall time of the
//! enumeration-heavy solvers (EXS and EXS-BnB poll the clock every few
//! thousand nodes and abort with [`AlgoError::DeadlineExceeded`]). The
//! polynomial-time solvers ignore the deadline — their runtime is bounded by
//! construction — which the field's documentation pins as the contract.

use crate::exs_bnb::BnbStats;
use crate::reactive::GovernorOptions;
use crate::{ao, exs, exs_bnb, lns, pco, reactive};
use crate::{AoOptions, Result, Solution};
use mosc_sched::Platform;
use std::time::{Duration, Instant};

/// The six algorithms reachable through [`solve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolverKind {
    /// Level-Next-Step rounding of the continuous ideal point (baseline).
    Lns,
    /// Exhaustive search over constant assignments (Algorithm 1).
    Exs,
    /// Branch-and-bound exhaustive search (same optimum, pruned tree).
    ExsBnb,
    /// The paper's frequency-oscillation method (Algorithm 2).
    Ao,
    /// AO plus per-core phase shifts and headroom refill.
    Pco,
    /// The reactive threshold governor (online-DTM baseline).
    Governor,
}

impl SolverKind {
    /// Every kind, in presentation order (the order `compare`/`profile` use).
    #[must_use]
    pub const fn all() -> [Self; 6] {
        [Self::Lns, Self::Exs, Self::ExsBnb, Self::Ao, Self::Pco, Self::Governor]
    }

    /// The human-facing label, identical to [`Solution::algorithm`].
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Self::Lns => "LNS",
            Self::Exs => "EXS",
            Self::ExsBnb => "EXS-BnB",
            Self::Ao => "AO",
            Self::Pco => "PCO",
            Self::Governor => "Governor",
        }
    }

    /// The stable lowercase wire id (`--algo` values, serve protocol).
    #[must_use]
    pub const fn id(self) -> &'static str {
        match self {
            Self::Lns => "lns",
            Self::Exs => "exs",
            Self::ExsBnb => "exs-bnb",
            Self::Ao => "ao",
            Self::Pco => "pco",
            Self::Governor => "governor",
        }
    }
}

impl std::fmt::Display for SolverKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Error from parsing an unknown solver name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownSolverError {
    /// The name that did not match any [`SolverKind`] id.
    pub name: String,
}

impl std::fmt::Display for UnknownSolverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown solver '{}' (expected lns|exs|exs-bnb|ao|pco|governor)", self.name)
    }
}

impl std::error::Error for UnknownSolverError {}

impl std::str::FromStr for SolverKind {
    type Err = UnknownSolverError;

    /// Parses a wire id or label, case-insensitively (`"ao"`, `"AO"`,
    /// `"exs-bnb"`, `"EXS-BnB"` all parse).
    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        Self::all()
            .into_iter()
            .find(|k| k.id() == lower)
            .ok_or_else(|| UnknownSolverError { name: s.to_owned() })
    }
}

/// One flat option set covering every solver. Fields a given solver does not
/// consume are ignored by it (documented per field), so a single struct can
/// be hashed canonically for caching and carried verbatim over the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveOptions {
    /// Worker threads for the parallel solvers (EXS partition search, the AO
    /// m-sweep/TPT loop, the PCO phase search). `0` = all available. Any
    /// value produces bit-identical results; LNS and the governor ignore it.
    pub threads: usize,
    /// Hard cap on the oscillation factor (AO/PCO only).
    pub max_m: usize,
    /// Wall-clock budget for the enumeration solvers. EXS and EXS-BnB poll
    /// the clock every few thousand evaluations and abort with
    /// [`AlgoError::DeadlineExceeded`]; the polynomial-time solvers (LNS,
    /// AO, PCO, governor) ignore it — their runtime is bounded by
    /// construction. `None` = unbounded.
    pub deadline: Option<Duration>,
    /// Base schedule period `t_p` in seconds before oscillation (AO/PCO).
    pub base_period: f64,
    /// Consecutive non-improving oscillation factors before the m-sweep
    /// stops (AO/PCO).
    pub m_patience: usize,
    /// `t_unit = compressed_period / t_unit_divisor` for the TPT pass
    /// (AO/PCO).
    pub t_unit_divisor: usize,
    /// Candidate phase offsets per core (PCO only).
    pub phase_steps: usize,
    /// Samples per period for the sampled-peak evaluation (PCO only).
    pub samples: usize,
    /// Refill step as a fraction of the period, `Δr = 1/refill_divisor`
    /// (PCO only).
    pub refill_divisor: usize,
    /// Reactive-governor configuration (governor only).
    pub governor: GovernorOptions,
}

impl Default for SolveOptions {
    /// Mirrors the per-solver defaults ([`AoOptions::default`],
    /// [`crate::pco::PcoOptions::default`], [`GovernorOptions::default`]),
    /// so `solve(kind, p, &SolveOptions::default())` reproduces the legacy
    /// `<solver>::solve(p)` entry points exactly.
    fn default() -> Self {
        let ao = AoOptions::default();
        let pco = crate::pco::PcoOptions::default();
        Self {
            threads: 0,
            max_m: ao.max_m,
            deadline: None,
            base_period: ao.base_period,
            m_patience: ao.m_patience,
            t_unit_divisor: ao.t_unit_divisor,
            phase_steps: pco.phase_steps,
            samples: pco.samples,
            refill_divisor: pco.refill_divisor,
            governor: GovernorOptions::default(),
        }
    }
}

impl SolveOptions {
    /// The [`AoOptions`] slice of this option set.
    #[must_use]
    pub fn ao_options(&self) -> AoOptions {
        AoOptions {
            base_period: self.base_period,
            max_m: self.max_m,
            m_patience: self.m_patience,
            t_unit_divisor: self.t_unit_divisor,
            threads: self.threads,
        }
    }

    /// The [`crate::pco::PcoOptions`] slice of this option set.
    #[must_use]
    pub fn pco_options(&self) -> crate::pco::PcoOptions {
        crate::pco::PcoOptions {
            ao: self.ao_options(),
            phase_steps: self.phase_steps,
            samples: self.samples,
            refill_divisor: self.refill_divisor,
        }
    }
}

/// Cross-solver search statistics. Solvers fill the fields they have
/// meaningful values for and leave the rest at zero; the per-solver
/// telemetry detail stays on the `mosc-obs` side.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolverStats {
    /// Search states examined: EXS assignments evaluated, EXS-BnB tree
    /// nodes visited. Zero for the constructive solvers.
    pub explored: u64,
    /// Subtrees cut by the EXS-BnB thermal bound.
    pub thermal_prunes: u64,
    /// Subtrees cut by the EXS-BnB throughput bound.
    pub throughput_prunes: u64,
    /// DVFS transitions the governor issued over its horizon.
    pub transitions: u64,
    /// Governor time (seconds) any core spent above `T_max`.
    pub violation_time: f64,
}

impl From<BnbStats> for SolverStats {
    fn from(s: BnbStats) -> Self {
        Self {
            explored: s.visited,
            thermal_prunes: s.thermal_prunes,
            throughput_prunes: s.throughput_prunes,
            ..Self::default()
        }
    }
}

/// Kernel-counter increments observed across one [`solve`] call.
///
/// The numeric kernels self-report through `mosc-obs` counters
/// (`expm.calls`, `period_map.matmuls`, …); this struct is the *difference*
/// of those process-global counters read immediately before and after the
/// dispatch, so a serving layer can attribute kernel work to the request
/// that triggered it. The deltas are global by design — solvers fan work
/// out to scoped threads, and a thread-local capture would miss those — so
/// under concurrent solves a delta may include a neighbour's increments;
/// treat it as attribution, not accounting. All zero while the `mosc-obs`
/// recorder is disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelDelta {
    /// Matrix-exponential evaluations (`expm.calls`).
    pub expm_calls: u64,
    /// Matrix products inside the period-map kernel (`period_map.matmuls`).
    pub period_map_matmuls: u64,
    /// Steady-state temperature evaluations (`steady_state.calls`).
    pub steady_state_calls: u64,
    /// General matrix products (`linalg.matmuls`).
    pub linalg_matmuls: u64,
    /// Symmetric eigendecompositions (`eigen.calls`). These happen only in
    /// `Platform::build`, so a solve on an already-built platform reports 0.
    pub eigen_calls: u64,
    /// Platform-registry hits (`registry.hits`): lookups served an interned
    /// platform with its eigenbasis, T∞ vectors and propagators already
    /// warm. A warm-registry solve must report `eigen_calls == 0` — the
    /// `M110` analyzer lint enforces exactly that join.
    pub registry_hits: u64,
    /// Platform-registry misses (`registry.misses`): lookups that had to
    /// build the platform (cold key, eviction, or a verified collision).
    pub registry_misses: u64,
}

impl KernelDelta {
    /// Reads the current global counter values (absolute, not deltas).
    fn read() -> Self {
        let get = |name| mosc_obs::counter_value(name).unwrap_or(0);
        Self {
            expm_calls: get("expm.calls"),
            period_map_matmuls: get("period_map.matmuls"),
            steady_state_calls: get("steady_state.calls"),
            linalg_matmuls: get("linalg.matmuls"),
            eigen_calls: get("eigen.calls"),
            registry_hits: get("registry.hits"),
            registry_misses: get("registry.misses"),
        }
    }

    /// Element-wise saturating difference `self - earlier`. Saturation
    /// guards against a concurrent `mosc_obs::reset()`/`drain()` zeroing
    /// the counters mid-solve.
    #[must_use]
    pub fn since(&self, earlier: &Self) -> Self {
        Self {
            expm_calls: self.expm_calls.saturating_sub(earlier.expm_calls),
            period_map_matmuls: self.period_map_matmuls.saturating_sub(earlier.period_map_matmuls),
            steady_state_calls: self.steady_state_calls.saturating_sub(earlier.steady_state_calls),
            linalg_matmuls: self.linalg_matmuls.saturating_sub(earlier.linalg_matmuls),
            eigen_calls: self.eigen_calls.saturating_sub(earlier.eigen_calls),
            registry_hits: self.registry_hits.saturating_sub(earlier.registry_hits),
            registry_misses: self.registry_misses.saturating_sub(earlier.registry_misses),
        }
    }

    /// `true` when every delta is zero (recorder disabled, or a solver that
    /// never touched the thermal kernels).
    #[must_use]
    pub fn is_zero(&self) -> bool {
        *self == Self::default()
    }
}

/// Uniform outcome of a [`solve`] call.
#[derive(Debug, Clone)]
pub struct SolveReport {
    /// The constructed solution.
    pub solution: Solution,
    /// Cross-solver search statistics.
    pub stats: SolverStats,
    /// Wall-clock time of the solver call itself (excludes any queueing by
    /// the caller).
    pub wall: Duration,
    /// Kernel-counter increments observed across the call (zero while the
    /// `mosc-obs` recorder is disabled).
    pub kernel: KernelDelta,
}

impl SolveReport {
    /// Renders this result as a *solution claim* document — the JSON shape
    /// `mosc-cli analyze` recomputes and cross-checks with the `M081` lint
    /// (and the shape the serve protocol answers with): solver id,
    /// throughput, peak in °C, feasibility, oscillation factor, and the
    /// embedded schedule text so the claim is verifiable on its own
    /// against a platform spec. One line, trailing newline included.
    #[must_use]
    #[allow(clippy::cast_precision_loss)] // m is tiny (≤ max_m)
    pub fn claim_json(&self, kind: SolverKind, platform: &Platform) -> String {
        use mosc_analyze::json::{value_to_json, Value};
        let doc = Value::Object(vec![
            ("status".to_owned(), Value::String("ok".to_owned())),
            ("solver".to_owned(), Value::String(kind.id().to_owned())),
            ("throughput".to_owned(), Value::Number(self.solution.throughput)),
            ("peak_c".to_owned(), Value::Number(self.solution.peak_c(platform))),
            ("feasible".to_owned(), Value::Bool(self.solution.feasible)),
            ("m".to_owned(), Value::Number(self.solution.m as f64)),
            (
                "schedule".to_owned(),
                Value::String(mosc_sched::text::to_text(&self.solution.schedule)),
            ),
        ]);
        let mut line = value_to_json(&doc);
        line.push('\n');
        line
    }
}

/// Runs solver `kind` on `platform` with `opts`, returning the uniform
/// [`SolveReport`].
///
/// This is the single entry point everything above the solver layer — the
/// CLI, `mosc-bench`, the `mosc-serve` daemon — dispatches through.
///
/// # Errors
/// * [`AlgoError::Infeasible`] when even the all-lowest assignment violates
///   `T_max`.
/// * [`AlgoError::InvalidOptions`] for out-of-range options.
/// * [`AlgoError::DeadlineExceeded`] when an enumeration solver ran past
///   [`SolveOptions::deadline`].
/// * Propagated evaluation failures.
pub fn solve(kind: SolverKind, platform: &Platform, opts: &SolveOptions) -> Result<SolveReport> {
    let deadline_at = opts.deadline.map(|d| Instant::now() + d);
    let kernel_before = KernelDelta::read();
    let start = Instant::now();
    let (solution, stats) = match kind {
        SolverKind::Lns => (lns::solve(platform)?, SolverStats::default()),
        SolverKind::Exs => {
            let threads = if opts.threads == 0 {
                std::thread::available_parallelism().map_or(1, usize::from)
            } else {
                opts.threads
            };
            let (solution, evaluated) = exs::solve_inner(platform, threads, deadline_at)?;
            (solution, SolverStats { explored: evaluated, ..SolverStats::default() })
        }
        SolverKind::ExsBnb => {
            let (solution, bnb) = exs_bnb::solve_inner(platform, deadline_at)?;
            (solution, bnb.into())
        }
        SolverKind::Ao => (ao::solve_with(platform, &opts.ao_options())?, SolverStats::default()),
        SolverKind::Pco => {
            (pco::solve_with(platform, &opts.pco_options())?, SolverStats::default())
        }
        SolverKind::Governor => {
            let result = reactive::simulate(platform, &opts.governor)?;
            let solution = result.as_solution(platform)?;
            let stats = SolverStats {
                transitions: result.transitions as u64,
                violation_time: result.violation_time,
                ..SolverStats::default()
            };
            (solution, stats)
        }
    };
    let wall = start.elapsed();
    let kernel = KernelDelta::read().since(&kernel_before);
    Ok(SolveReport { solution, stats, wall, kernel })
}

/// One variant of a batched solve: a solver kind and its option set, run
/// against the batch's shared platform.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchVariant {
    /// Which algorithm to run.
    pub kind: SolverKind,
    /// Its options.
    pub options: SolveOptions,
}

/// Solves every variant against one shared `platform`, fanning the variants
/// out over `threads` scoped worker threads (`0` = all available, clamped
/// to the variant count).
///
/// All variants share the platform's memoized kernel state — the
/// eigendecomposition, per-voltage T∞ vectors, and interval propagators are
/// computed at most once across the whole batch instead of once per solve.
/// Results are returned in variant order and are bit-identical to calling
/// [`solve`] on each variant sequentially: the fan-out is a round-robin
/// partition with in-order collection, and the solvers themselves are
/// deterministic for any thread count.
#[must_use]
pub fn solve_batch(
    platform: &Platform,
    variants: &[BatchVariant],
    threads: usize,
) -> Vec<Result<SolveReport>> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        threads
    }
    .min(variants.len())
    .max(1);
    if threads <= 1 {
        return variants.iter().map(|v| solve(v.kind, platform, &v.options)).collect();
    }
    let mut slots: Vec<Option<Result<SolveReport>>> = Vec::new();
    slots.resize_with(variants.len(), || None);
    let mut chunks: Vec<&mut [Option<Result<SolveReport>>]> = Vec::with_capacity(slots.len());
    chunks.extend(slots.iter_mut().map(std::slice::from_mut));
    std::thread::scope(|scope| {
        for (w, chunk_group) in partition_round_robin(chunks, threads).into_iter().enumerate() {
            let offset = w;
            scope.spawn(move || {
                for (j, slot_chunk) in chunk_group.into_iter().enumerate() {
                    let i = offset + j * threads;
                    let v = &variants[i];
                    slot_chunk[0] = Some(solve(v.kind, platform, &v.options));
                }
            });
        }
    });
    slots.into_iter().map(|s| s.expect("every variant slot is filled")).collect()
}

/// Deals `items` round-robin into `threads` groups, preserving in-group
/// order (group `w` holds items `w, w+threads, w+2·threads, …`).
fn partition_round_robin<T>(items: Vec<T>, threads: usize) -> Vec<Vec<T>> {
    let mut groups: Vec<Vec<T>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        groups[i % threads].push(item);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AlgoError;
    use mosc_sched::PlatformSpec;

    #[test]
    fn kind_ids_round_trip() {
        for kind in SolverKind::all() {
            assert_eq!(kind.id().parse::<SolverKind>().unwrap(), kind);
            // Parsing is case-insensitive over the wire id.
            assert_eq!(kind.id().to_ascii_uppercase().parse::<SolverKind>().unwrap(), kind);
        }
        let err = "frobnicate".parse::<SolverKind>().unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn default_options_match_per_solver_defaults() {
        let opts = SolveOptions::default();
        let ao = AoOptions::default();
        assert!((opts.base_period - ao.base_period).abs() < 1e-15);
        assert_eq!(opts.max_m, ao.max_m);
        assert_eq!(opts.m_patience, ao.m_patience);
        assert_eq!(opts.t_unit_divisor, ao.t_unit_divisor);
        let pco = crate::pco::PcoOptions::default();
        assert_eq!(opts.phase_steps, pco.phase_steps);
        assert_eq!(opts.samples, pco.samples);
        assert_eq!(opts.refill_divisor, pco.refill_divisor);
    }

    #[test]
    fn dispatcher_reaches_every_solver() {
        let p = mosc_sched::Platform::build(&PlatformSpec::paper(1, 2, 2, 55.0)).unwrap();
        let mut opts = SolveOptions::default();
        // Keep the governor cheap.
        opts.governor.horizon = 10.0;
        opts.governor.warmup = 5.0;
        opts.governor.control_period = 0.01;
        for kind in SolverKind::all() {
            let report = solve(kind, &p, &opts).unwrap();
            assert_eq!(report.solution.algorithm, kind.label(), "{kind:?}");
            assert!(report.solution.throughput > 0.0, "{kind:?}");
        }
    }

    #[test]
    fn claim_json_is_parseable_and_complete() {
        use mosc_analyze::json::Value;
        let p = mosc_sched::Platform::build(&PlatformSpec::paper(1, 2, 2, 55.0)).unwrap();
        let report = solve(SolverKind::Ao, &p, &SolveOptions::default()).unwrap();
        let claim = report.claim_json(SolverKind::Ao, &p);
        let doc = Value::parse(&claim).expect("claim must be valid JSON");
        assert_eq!(doc.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(doc.get("solver").and_then(Value::as_str), Some("ao"));
        assert_eq!(doc.get("throughput").and_then(Value::as_f64), Some(report.solution.throughput));
        assert_eq!(doc.get("feasible").and_then(Value::as_bool), Some(true));
        // The embedded schedule text round-trips through the sched parser.
        let text = doc.get("schedule").and_then(Value::as_str).unwrap();
        let parsed = mosc_sched::text::from_text(text).unwrap();
        assert_eq!(parsed.n_cores(), p.n_cores());
    }

    #[test]
    fn exs_stats_count_the_full_enumeration() {
        let p = mosc_sched::Platform::build(&PlatformSpec::paper(1, 3, 3, 55.0)).unwrap();
        let report = solve(SolverKind::Exs, &p, &SolveOptions::default()).unwrap();
        // 3 cores × 3 levels ⇒ exactly 27 assignments.
        assert_eq!(report.stats.explored, 27);
        let report = solve(SolverKind::ExsBnb, &p, &SolveOptions::default()).unwrap();
        assert!(report.stats.explored > 0);
    }

    #[test]
    fn an_expired_deadline_aborts_the_enumeration_solvers() {
        let p = mosc_sched::Platform::build(&PlatformSpec::paper(2, 3, 4, 55.0)).unwrap();
        let opts = SolveOptions { deadline: Some(Duration::ZERO), ..SolveOptions::default() };
        for kind in [SolverKind::Exs, SolverKind::ExsBnb] {
            match solve(kind, &p, &opts) {
                Err(AlgoError::DeadlineExceeded) => {}
                other => panic!("{kind:?}: expected DeadlineExceeded, got {other:?}"),
            }
        }
        // Constructive solvers ignore the deadline by contract.
        let report = solve(SolverKind::Lns, &p, &opts).unwrap();
        assert!(report.solution.throughput > 0.0);
    }
}
