//! `solve_batch` must be a pure batching construct: bit-identical to the
//! same variants solved sequentially through `mosc_core::solve`, and the
//! platform-registry warm path must agree with a cold from-scratch build.

use mosc_core::{registry, solve, solve_batch, BatchVariant, SolveOptions, SolverKind};
use mosc_sched::{Platform, PlatformSpec};
use mosc_testutil::propcheck_cases;
use std::sync::Arc;

fn platform() -> Platform {
    Platform::build(&PlatformSpec::paper(1, 2, 2, 55.0)).unwrap()
}

/// Draws a random cheap variant (the polynomial solvers, small caps).
fn random_variant(rng: &mut mosc_testutil::Rng64) -> BatchVariant {
    let kind = match rng.gen_range(0..3usize) {
        0 => SolverKind::Lns,
        1 => SolverKind::Ao,
        _ => SolverKind::Pco,
    };
    let options = SolveOptions {
        threads: 1,
        max_m: rng.gen_range(2..=8usize),
        m_patience: rng.gen_range(1..=3usize),
        t_unit_divisor: rng.gen_range(20..=60usize),
        phase_steps: rng.gen_range(2..=4usize),
        samples: rng.gen_range(24..=48usize),
        refill_divisor: rng.gen_range(10..=30usize),
        ..SolveOptions::default()
    };
    BatchVariant { kind, options }
}

#[test]
fn batch_results_are_bit_identical_to_sequential_solves() {
    let p = platform();
    propcheck_cases("solve_batch == sequential solve", 12, |rng| {
        let variants: Vec<BatchVariant> =
            (0..rng.gen_range(1..=6usize)).map(|_| random_variant(rng)).collect();
        let threads = rng.gen_range(1..=4usize);
        let batch = solve_batch(&p, &variants, threads);
        assert_eq!(batch.len(), variants.len());
        for (v, batched) in variants.iter().zip(&batch) {
            let sequential = solve(v.kind, &p, &v.options);
            let (b, s) = match (batched, &sequential) {
                (Ok(b), Ok(s)) => (b, s),
                (Err(be), Err(se)) => {
                    assert_eq!(be.to_string(), se.to_string(), "{v:?}");
                    continue;
                }
                other => panic!("batch/sequential outcome mismatch for {v:?}: {other:?}"),
            };
            assert_eq!(
                b.solution.throughput.to_bits(),
                s.solution.throughput.to_bits(),
                "{v:?}: throughput must be bit-identical"
            );
            assert_eq!(
                b.solution.peak.to_bits(),
                s.solution.peak.to_bits(),
                "{v:?}: peak must be bit-identical"
            );
            assert_eq!(b.solution.m, s.solution.m, "{v:?}");
            assert_eq!(b.solution.feasible, s.solution.feasible, "{v:?}");
            assert_eq!(
                mosc_sched::text::to_text(&b.solution.schedule),
                mosc_sched::text::to_text(&s.solution.schedule),
                "{v:?}: schedules must be identical"
            );
        }
    });
}

#[test]
fn registry_warm_and_cold_paths_agree() {
    // Warm path: the platform interned by the first lookup; cold path: an
    // independent from-scratch build. The builds are deterministic, so the
    // 1e-10 agreement the serve layer relies on is really bit-identity —
    // asserted at the documented tolerance.
    let mut reg = registry::PlatformRegistry::new(4);
    let spec = PlatformSpec::paper(1, 2, 2, 55.0);
    let build = || Platform::build(&spec);
    let (cold, warm_first) = reg.get_or_build("parity-spec", build).unwrap();
    assert!(!warm_first);
    let (warm, warm_second) = reg.get_or_build("parity-spec", build).unwrap();
    assert!(warm_second);
    assert!(Arc::ptr_eq(&cold, &warm), "warm lookup must return the interned instance");

    let fresh = build().unwrap();
    let opts = SolveOptions { threads: 1, max_m: 6, ..SolveOptions::default() };
    for kind in [SolverKind::Lns, SolverKind::Ao, SolverKind::Pco] {
        let via_registry = solve(kind, &warm, &opts).unwrap();
        let via_fresh = solve(kind, &fresh, &opts).unwrap();
        let dt = (via_registry.solution.throughput - via_fresh.solution.throughput).abs();
        let dp = (via_registry.solution.peak - via_fresh.solution.peak).abs();
        assert!(dt <= 1e-10, "{kind:?}: throughput diverged by {dt:e}");
        assert!(dp <= 1e-10, "{kind:?}: peak diverged by {dp:e}");
    }
}
