//! Pin: the unified `mosc_core::solve` dispatcher must return exactly what
//! the old per-module entry points returned — same schedules, same
//! feasibility stamps, same statistics — so callers can migrate without a
//! behavioral diff. The deprecated shims are exercised deliberately here;
//! this test is their one remaining caller.

#![allow(deprecated)]

use mosc_core::ao::{self, AoOptions};
use mosc_core::pco::{self, PcoOptions};
use mosc_core::{
    exs, exs_bnb, lns, solve, Platform, PlatformSpec, Solution, SolveOptions, SolverKind,
};

fn platform() -> Platform {
    Platform::build(&PlatformSpec::paper(1, 3, 2, 55.0)).unwrap()
}

fn quick_opts() -> SolveOptions {
    SolveOptions {
        base_period: 0.05,
        max_m: 32,
        m_patience: 3,
        t_unit_divisor: 40,
        phase_steps: 4,
        samples: 150,
        refill_divisor: 40,
        ..SolveOptions::default()
    }
}

fn assert_same(kind: SolverKind, new: &Solution, old: &Solution) {
    assert_eq!(new.algorithm, old.algorithm, "{kind:?}");
    assert_eq!(new.m, old.m, "{kind:?}");
    assert_eq!(new.feasible, old.feasible, "{kind:?}");
    assert!((new.throughput - old.throughput).abs() < 1e-12, "{kind:?}");
    assert!((new.peak - old.peak).abs() < 1e-12, "{kind:?}");
    assert_eq!(new.schedule.n_cores(), old.schedule.n_cores(), "{kind:?}");
    assert!((new.schedule.period() - old.schedule.period()).abs() < 1e-15, "{kind:?}");
}

#[test]
fn dispatcher_matches_lns() {
    let p = platform();
    let new = solve(SolverKind::Lns, &p, &quick_opts()).unwrap();
    let old = lns::solve(&p).unwrap();
    assert_same(SolverKind::Lns, &new.solution, &old);
}

#[test]
fn dispatcher_matches_the_deprecated_exs_entry_points() {
    let p = platform();
    let new = solve(SolverKind::Exs, &p, &SolveOptions { threads: 2, ..quick_opts() }).unwrap();
    let old = exs::solve_with_threads(&p, 2).unwrap();
    assert_same(SolverKind::Exs, &new.solution, &old);
    // EXS enumerates the full space: 3 cores x 2 levels = 8 assignments.
    assert_eq!(new.stats.explored, 8);
}

#[test]
fn dispatcher_matches_the_deprecated_bnb_entry_point() {
    let p = platform();
    let new = solve(SolverKind::ExsBnb, &p, &quick_opts()).unwrap();
    let (old, old_stats) = exs_bnb::solve(&p).unwrap();
    assert_same(SolverKind::ExsBnb, &new.solution, &old);
    assert_eq!(new.stats.explored, old_stats.visited);
    assert_eq!(new.stats.thermal_prunes, old_stats.thermal_prunes);
    assert_eq!(new.stats.throughput_prunes, old_stats.throughput_prunes);
}

#[test]
fn dispatcher_matches_ao_and_pco_under_equivalent_options() {
    let p = platform();
    let opts = quick_opts();
    let ao_opts = AoOptions {
        base_period: opts.base_period,
        max_m: opts.max_m,
        m_patience: opts.m_patience,
        t_unit_divisor: opts.t_unit_divisor,
        threads: opts.threads,
    };
    let new = solve(SolverKind::Ao, &p, &opts).unwrap();
    let old = ao::solve_with(&p, &ao_opts).unwrap();
    assert_same(SolverKind::Ao, &new.solution, &old);

    let pco_opts = PcoOptions {
        ao: ao_opts,
        phase_steps: opts.phase_steps,
        samples: opts.samples,
        refill_divisor: opts.refill_divisor,
    };
    let new = solve(SolverKind::Pco, &p, &opts).unwrap();
    let old = pco::solve_with(&p, &pco_opts).unwrap();
    assert_same(SolverKind::Pco, &new.solution, &old);
}
