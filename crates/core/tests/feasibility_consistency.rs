//! Cross-crate consistency of the feasibility tolerances: every schedule a
//! solver accepts and stamps `feasible` must survive the `mosc-analyze`
//! M022 audit (`InfeasibleMarkedFeasible`), including under tolerances
//! tighter than the solvers' own stamping slack — the analyzer floors its
//! slack at `FEASIBILITY_EPS` for exactly this reason.

use mosc_analyze::{Code, SolutionClaim, Tolerances};
use mosc_core::ao::AoOptions;
use mosc_core::pco::PcoOptions;
use mosc_core::{ao, exs, exs_bnb, lns, pco, Platform, PlatformSpec, Solution};

fn quick_ao() -> AoOptions {
    AoOptions { base_period: 0.05, max_m: 32, m_patience: 3, t_unit_divisor: 40, threads: 0 }
}

fn claim_of(solution: &Solution) -> SolutionClaim {
    SolutionClaim {
        throughput: solution.throughput,
        peak: solution.peak,
        feasible: solution.feasible,
        m: solution.m,
    }
}

fn assert_never_m022(platform: &Platform, solution: &Solution, tol: &Tolerances) {
    let report =
        mosc_analyze::check_solution(platform, &solution.schedule, &claim_of(solution), tol);
    assert!(
        !report.has_code(Code::InfeasibleMarkedFeasible),
        "{}: solver-accepted solution flagged infeasible by analyze:\n{report}",
        solution.algorithm
    );
}

#[test]
fn accepted_solutions_survive_the_analyzer_audit() {
    let tol = Tolerances::default();
    for (rows, cols) in [(1, 3), (2, 3)] {
        let p = Platform::build(&PlatformSpec::paper(rows, cols, 2, 55.0)).unwrap();
        let solutions = [
            lns::solve(&p).unwrap(),
            exs::solve(&p).unwrap(),
            exs_bnb::solve(&p).unwrap().0,
            ao::solve_with(&p, &quick_ao()).unwrap(),
            pco::solve_with(
                &p,
                &PcoOptions { ao: quick_ao(), phase_steps: 4, samples: 150, refill_divisor: 40 },
            )
            .unwrap(),
        ];
        for sol in &solutions {
            assert!(sol.feasible, "{rows}x{cols}: {} must be feasible", sol.algorithm);
            assert_never_m022(&p, sol, &tol);
        }
    }
}

#[test]
fn audit_slack_is_floored_at_the_stamping_slack() {
    // Even with a zero peak tolerance the M022 audit must not outlaw the
    // `peak <= T_max + FEASIBILITY_EPS` band the solvers stamp feasible —
    // the exact-path solvers recompute bit-identical peaks, so any flag
    // here would be a pure tolerance-mismatch artifact.
    let tight = Tolerances { throughput_rel: 1e-9, peak_abs: 0.0 };
    let p = Platform::build(&PlatformSpec::paper(2, 3, 2, 55.0)).unwrap();
    for sol in
        [lns::solve(&p).unwrap(), exs::solve(&p).unwrap(), ao::solve_with(&p, &quick_ao()).unwrap()]
    {
        assert_never_m022(&p, &sol, &tight);
    }
}
