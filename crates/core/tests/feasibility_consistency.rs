//! Cross-crate consistency of the feasibility tolerances: every schedule a
//! solver accepts and stamps `feasible` must survive the `mosc-analyze`
//! M022 audit (`InfeasibleMarkedFeasible`), including under tolerances
//! tighter than the solvers' own stamping slack — the analyzer floors its
//! slack at `FEASIBILITY_EPS` for exactly this reason. All solvers are
//! reached through the unified `mosc_core::solve` dispatcher.

use mosc_analyze::{Code, SolutionClaim, Tolerances};
use mosc_core::reactive::GovernorOptions;
use mosc_core::{solve, Platform, PlatformSpec, Solution, SolveOptions, SolverKind};

fn quick_opts() -> SolveOptions {
    SolveOptions {
        max_m: 32,
        base_period: 0.05,
        m_patience: 3,
        t_unit_divisor: 40,
        phase_steps: 4,
        samples: 150,
        refill_divisor: 40,
        governor: GovernorOptions {
            control_period: 0.01,
            horizon: 30.0,
            warmup: 15.0,
            ..GovernorOptions::default()
        },
        ..SolveOptions::default()
    }
}

fn claim_of(solution: &Solution) -> SolutionClaim {
    SolutionClaim {
        throughput: solution.throughput,
        peak: solution.peak,
        feasible: solution.feasible,
        m: solution.m,
    }
}

fn assert_never_m022(platform: &Platform, solution: &Solution, tol: &Tolerances) {
    let report =
        mosc_analyze::check_solution(platform, &solution.schedule, &claim_of(solution), tol);
    assert!(
        !report.has_code(Code::InfeasibleMarkedFeasible),
        "{}: solver-accepted solution flagged infeasible by analyze:\n{report}",
        solution.algorithm
    );
}

#[test]
fn accepted_solutions_survive_the_analyzer_audit() {
    let tol = Tolerances::default();
    let opts = quick_opts();
    for (rows, cols) in [(1, 3), (2, 3)] {
        let p = Platform::build(&PlatformSpec::paper(rows, cols, 2, 55.0)).unwrap();
        for kind in SolverKind::all() {
            // The reactive governor is the online contrast: its feasibility
            // stamp describes the simulated transient trace (post-warmup),
            // not the periodic steady state the M021/M022 audit recomputes,
            // so the audit's claim semantics do not apply to it.
            if kind == SolverKind::Governor {
                continue;
            }
            let sol = solve(kind, &p, &opts).unwrap().solution;
            assert!(sol.feasible, "{rows}x{cols}: {} must be feasible", sol.algorithm);
            assert_never_m022(&p, &sol, &tol);
        }
    }
}

#[test]
fn audit_slack_is_floored_at_the_stamping_slack() {
    // Even with a zero peak tolerance the M022 audit must not outlaw the
    // `peak <= T_max + FEASIBILITY_EPS` band the solvers stamp feasible —
    // the exact-path solvers recompute bit-identical peaks, so any flag
    // here would be a pure tolerance-mismatch artifact.
    let tight = Tolerances { throughput_rel: 1e-9, peak_abs: 0.0 };
    let p = Platform::build(&PlatformSpec::paper(2, 3, 2, 55.0)).unwrap();
    let opts = quick_opts();
    for kind in [SolverKind::Lns, SolverKind::Exs, SolverKind::Ao] {
        let sol = solve(kind, &p, &opts).unwrap().solution;
        assert_never_m022(&p, &sol, &tight);
    }
}
