//! Kernel-counter delta capture around the unified dispatcher.
//!
//! Own test binary: the `mosc-obs` recorder is process-global, and this
//! test enables it.

use mosc_core::{solve, SolveOptions, SolverKind};
use mosc_sched::PlatformSpec;

#[test]
fn solve_reports_kernel_deltas_when_enabled_and_zeros_when_disabled() {
    let p = mosc_sched::Platform::build(&PlatformSpec::paper(1, 2, 2, 55.0)).unwrap();
    let opts = SolveOptions::default();

    // Disabled recorder: deltas must stay zero (the counters never move).
    let report = solve(SolverKind::Ao, &p, &opts).unwrap();
    assert!(report.kernel.is_zero(), "{:?}", report.kernel);

    // Enabled: AO drives the modal thermal kernels, so the period-map and
    // steady-state counters advance across the call (AO is `expm`-free by
    // design since the modal period-map kernel).
    mosc_obs::enable();
    let report = solve(SolverKind::Ao, &p, &opts).unwrap();
    assert!(report.kernel.period_map_matmuls > 0, "{:?}", report.kernel);
    assert!(report.kernel.steady_state_calls > 0, "{:?}", report.kernel);
    assert!(!report.kernel.is_zero());

    // The governor steps the transient model, which *does* build matrix
    // exponentials — a fresh platform makes its propagator cache cold.
    let p_gov = mosc_sched::Platform::build(&PlatformSpec::paper(1, 2, 2, 55.0)).unwrap();
    let mut gov_opts = SolveOptions::default();
    gov_opts.governor.horizon = 10.0;
    gov_opts.governor.warmup = 5.0;
    gov_opts.governor.control_period = 0.01;
    let gov = solve(SolverKind::Governor, &p_gov, &gov_opts).unwrap();
    assert!(gov.kernel.expm_calls > 0, "{:?}", gov.kernel);

    // A second solve reports its *own* increments, not cumulative totals:
    // the delta must not grow monotonically with process lifetime.
    let again = solve(SolverKind::Ao, &p, &opts).unwrap();
    assert!(
        again.kernel.expm_calls <= report.kernel.expm_calls * 2,
        "delta looks cumulative: first {:?}, second {:?}",
        report.kernel,
        again.kernel
    );
    mosc_obs::disable();
}
