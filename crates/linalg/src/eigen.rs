//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! The thermal state matrix `A = C⁻¹(βI − G)` is similar to the symmetric
//! matrix `C^{-1/2}(βI − G)C^{-1/2}`, so its eigenvalues are the (real)
//! eigenvalues produced here. The paper's proofs (and our validation tests)
//! rely on all of them being negative; [`SymmetricEigen`] is how the thermal
//! crate asserts that at model-construction time, and it also powers the
//! diagonalized fast propagator used in the m-sweep of Algorithm 2.

use crate::{LinalgError, Matrix, Result, Vector};

/// Jacobi eigendecompositions performed (model construction and the
/// diagonalized propagator path both land here).
static EIGEN_CALLS: mosc_obs::Counter = mosc_obs::Counter::new("eigen.calls");

/// Options controlling the Jacobi sweep.
#[derive(Debug, Clone, Copy)]
pub struct JacobiOptions {
    /// Maximum number of full sweeps over all off-diagonal pairs.
    pub max_sweeps: usize,
    /// Convergence threshold on the off-diagonal Frobenius norm, relative to
    /// the matrix's own Frobenius norm.
    pub rel_tol: f64,
}

impl Default for JacobiOptions {
    fn default() -> Self {
        Self { max_sweeps: 100, rel_tol: 1e-14 }
    }
}

/// Eigendecomposition `A = V·Λ·Vᵀ` of a symmetric matrix, with eigenvalues
/// sorted ascending and `V` orthonormal (columns are eigenvectors).
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues in ascending order.
    pub values: Vector,
    /// Orthonormal eigenvector matrix; column `k` pairs with `values[k]`.
    pub vectors: Matrix,
}

impl SymmetricEigen {
    /// Decomposes a symmetric matrix with default options.
    ///
    /// # Errors
    /// See [`SymmetricEigen::with_options`].
    pub fn new(a: &Matrix) -> Result<Self> {
        Self::with_options(a, JacobiOptions::default())
    }

    /// Decomposes a symmetric matrix.
    ///
    /// # Errors
    /// * [`LinalgError::NotSquare`] for rectangular input.
    /// * [`LinalgError::NonFinite`] for NaN/∞ entries.
    /// * [`LinalgError::ShapeMismatch`] when the matrix is not symmetric
    ///   (within `1e-8` absolute).
    /// * [`LinalgError::NoConvergence`] when the sweep budget is exhausted.
    pub fn with_options(a: &Matrix, opts: JacobiOptions) -> Result<Self> {
        EIGEN_CALLS.incr();
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape(), op: "jacobi" });
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite { op: "jacobi" });
        }
        if !a.is_symmetric(1e-8 * a.max_abs().max(1.0)) {
            return Err(LinalgError::ShapeMismatch {
                left: a.shape(),
                right: a.shape(),
                op: "jacobi (matrix not symmetric)",
            });
        }
        let n = a.rows();
        if n == 0 {
            return Ok(Self { values: Vector::zeros(0), vectors: Matrix::zeros(0, 0) });
        }

        let mut m = a.clone();
        let mut v = Matrix::identity(n);
        let fro = crate::norm_fro(a).max(f64::MIN_POSITIVE);

        let mut converged = false;
        let mut sweeps = 0;
        while sweeps < opts.max_sweeps {
            let off = off_diag_fro(&m);
            if off <= opts.rel_tol * fro {
                converged = true;
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq == 0.0 {
                        continue;
                    }
                    let app = m[(p, p)];
                    let aqq = m[(q, q)];
                    // Classic Jacobi rotation angle selection.
                    let tau = (aqq - app) / (2.0 * apq);
                    let t = if tau >= 0.0 {
                        1.0 / (tau + (1.0 + tau * tau).sqrt())
                    } else {
                        -1.0 / (-tau + (1.0 + tau * tau).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;
                    apply_rotation(&mut m, p, q, c, s);
                    accumulate_vectors(&mut v, p, q, c, s);
                }
            }
            sweeps += 1;
        }
        if !converged && off_diag_fro(&m) > opts.rel_tol * fro {
            return Err(LinalgError::NoConvergence {
                kernel: "jacobi",
                iterations: sweeps,
                residual: off_diag_fro(&m),
            });
        }

        // Sort eigenpairs ascending by eigenvalue.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| m[(i, i)].partial_cmp(&m[(j, j)]).expect("finite eigenvalues"));
        let values = Vector::from_fn(n, |k| m[(order[k], order[k])]);
        let vectors = Matrix::from_fn(n, n, |i, k| v[(i, order[k])]);
        Ok(Self { values, vectors })
    }

    /// Reconstructs `A` from the decomposition — used by tests and available
    /// for diagnostics.
    ///
    /// # Errors
    /// Propagates shape errors (cannot occur for a well-formed decomposition).
    pub fn reconstruct(&self) -> Result<Matrix> {
        let lam = Matrix::from_diag(self.values.as_slice());
        self.vectors.matmul(&lam)?.matmul(&self.vectors.transpose())
    }

    /// Applies `f` to each eigenvalue and reassembles `V·f(Λ)·Vᵀ` — e.g.
    /// `f = exp` gives the matrix exponential of a symmetric matrix in O(n³)
    /// after a one-time decomposition, which is what makes sweeping `m` in
    /// Algorithm 2 cheap.
    ///
    /// # Errors
    /// Propagates shape errors (cannot occur for a well-formed decomposition).
    pub fn map_spectrum(&self, f: impl Fn(f64) -> f64) -> Result<Matrix> {
        let mapped: Vec<f64> = self.values.iter().map(|&l| f(l)).collect();
        let lam = Matrix::from_diag(&mapped);
        self.vectors.matmul(&lam)?.matmul(&self.vectors.transpose())
    }

    /// Largest eigenvalue.
    #[must_use]
    pub fn max_eigenvalue(&self) -> f64 {
        self.values.max()
    }
}

fn off_diag_fro(m: &Matrix) -> f64 {
    let n = m.rows();
    let mut sum = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            sum += 2.0 * m[(i, j)] * m[(i, j)];
        }
    }
    sum.sqrt()
}

/// Applies the symmetric two-sided rotation J(p,q,θ)ᵀ·M·J(p,q,θ) in place.
fn apply_rotation(m: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = m.rows();
    let app = m[(p, p)];
    let aqq = m[(q, q)];
    let apq = m[(p, q)];
    m[(p, p)] = c * c * app - 2.0 * s * c * apq + s * s * aqq;
    m[(q, q)] = s * s * app + 2.0 * s * c * apq + c * c * aqq;
    m[(p, q)] = 0.0;
    m[(q, p)] = 0.0;
    for i in 0..n {
        if i == p || i == q {
            continue;
        }
        let aip = m[(i, p)];
        let aiq = m[(i, q)];
        m[(i, p)] = c * aip - s * aiq;
        m[(p, i)] = m[(i, p)];
        m[(i, q)] = s * aip + c * aiq;
        m[(q, i)] = m[(i, q)];
    }
}

/// Accumulates the rotation into the eigenvector matrix.
fn accumulate_vectors(v: &mut Matrix, p: usize, q: usize, c: f64, s: f64) {
    let n = v.rows();
    for i in 0..n {
        let vip = v[(i, p)];
        let viq = v[(i, q)];
        v[(i, p)] = c * vip - s * viq;
        v[(i, q)] = s * vip + c * viq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagonal_matrix_is_its_own_spectrum() {
        let a = Matrix::from_diag(&[3.0, -1.0, 2.0]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert_eq!(e.values.as_slice(), &[-1.0, 2.0, 3.0]);
        assert_eq!(e.max_eigenvalue(), 3.0);
    }

    #[test]
    fn known_2x2_spectrum() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        let a = Matrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, 0.2], &[0.5, 0.2, 5.0]]);
        let e = SymmetricEigen::new(&a).unwrap();
        assert!(e.reconstruct().unwrap().max_abs_diff(&a) < 1e-10);
        let vtv = e.vectors.transpose().matmul(&e.vectors).unwrap();
        assert!(vtv.max_abs_diff(&Matrix::identity(3)) < 1e-12);
    }

    #[test]
    fn map_spectrum_exp_matches_expm() {
        let a = Matrix::from_rows(&[&[-1.0, 0.3], &[0.3, -2.0]]);
        let e = SymmetricEigen::new(&a).unwrap();
        let via_eigen = e.map_spectrum(f64::exp).unwrap();
        let via_pade = crate::expm(&a).unwrap();
        assert!(via_eigen.max_abs_diff(&via_pade) < 1e-12);
    }

    #[test]
    fn laplacian_spectrum_nonnegative() {
        // Path-graph Laplacian: eigenvalues 0, 1, 3 for n=3.
        let l = Matrix::from_rows(&[&[1.0, -1.0, 0.0], &[-1.0, 2.0, -1.0], &[0.0, -1.0, 1.0]]);
        let e = SymmetricEigen::new(&l).unwrap();
        assert!(e.values[0].abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        assert!((e.values[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_asymmetric_and_bad_shapes() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[0.0, 1.0]]);
        assert!(SymmetricEigen::new(&a).is_err());
        assert!(SymmetricEigen::new(&Matrix::zeros(2, 3)).is_err());
        let mut b = Matrix::identity(2);
        b[(0, 0)] = f64::NAN;
        assert!(SymmetricEigen::new(&b).is_err());
    }

    #[test]
    fn empty_matrix() {
        let e = SymmetricEigen::new(&Matrix::zeros(0, 0)).unwrap();
        assert!(e.values.is_empty());
    }

    #[test]
    fn larger_random_symmetric_matrix() {
        let mut state: u64 = 42;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let n = 12;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = next();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let e = SymmetricEigen::new(&a).unwrap();
        assert!(e.reconstruct().unwrap().max_abs_diff(&a) < 1e-9);
        // Trace equals sum of eigenvalues.
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        assert!((trace - e.values.sum()).abs() < 1e-9);
    }
}
