//! Error type shared by all linear-algebra kernels.

use std::fmt;

/// Errors produced by the dense linear-algebra kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands had incompatible shapes. The payload carries the
    /// offending `(rows, cols)` pairs in operand order.
    ShapeMismatch {
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand.
        right: (usize, usize),
        /// The operation that was attempted, e.g. `"matmul"`.
        op: &'static str,
    },
    /// A square matrix was required (solve, inverse, exponential, eigen).
    NotSquare {
        /// Actual shape encountered.
        shape: (usize, usize),
        /// The operation that was attempted.
        op: &'static str,
    },
    /// The matrix was singular (or numerically singular) to working precision.
    Singular {
        /// Pivot index at which elimination broke down.
        pivot: usize,
    },
    /// An iterative kernel failed to converge within its iteration budget.
    NoConvergence {
        /// The kernel that failed, e.g. `"jacobi"`.
        kernel: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
        /// Residual measure at the point of failure.
        residual: f64,
    },
    /// Input contained NaN or infinity where finite values are required.
    NonFinite {
        /// The operation that rejected the input.
        op: &'static str,
    },
    /// An index was out of bounds for the matrix shape.
    IndexOutOfBounds {
        /// The requested index.
        index: (usize, usize),
        /// The matrix shape.
        shape: (usize, usize),
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShapeMismatch { left, right, op } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            Self::NotSquare { shape, op } => {
                write!(f, "{op} requires a square matrix, got {}x{}", shape.0, shape.1)
            }
            Self::Singular { pivot } => {
                write!(f, "matrix is singular to working precision (pivot {pivot})")
            }
            Self::NoConvergence { kernel, iterations, residual } => write!(
                f,
                "{kernel} failed to converge after {iterations} iterations (residual {residual:.3e})"
            ),
            Self::NonFinite { op } => write!(f, "{op} received non-finite input"),
            Self::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = LinalgError::ShapeMismatch { left: (2, 3), right: (4, 5), op: "matmul" };
        assert!(e.to_string().contains("matmul"));
        assert!(e.to_string().contains("2x3"));

        let e = LinalgError::Singular { pivot: 3 };
        assert!(e.to_string().contains("singular"));

        let e = LinalgError::NoConvergence { kernel: "jacobi", iterations: 10, residual: 0.5 };
        assert!(e.to_string().contains("jacobi"));
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<LinalgError>();
    }
}
