//! Matrix exponential via scaling-and-squaring with Padé approximants.
//!
//! This is the workhorse of the thermal interval propagator: eq. (3) of the
//! paper advances the temperature across a state interval of length `l` with
//! `Φ = e^{A·l}`. The implementation follows Higham, *"The Scaling and
//! Squaring Method for the Matrix Exponential Revisited"* (SIAM J. Matrix
//! Anal. Appl., 2005): pick the smallest Padé order in {3, 5, 7, 9, 13} whose
//! backward-error bound covers `‖A‖₁`, scaling by a power of two only when
//! even order 13 does not suffice.

use crate::{norm_1, LinalgError, Lu, Matrix, Result};

/// Dense matrix exponentials computed ([`expm`] and [`expm_scaled`] both
/// land here, and `mosc-thermal` reports its eigen-path propagator builds
/// through [`count_expm_call`]). The dominant cost driver of every solver —
/// watching this counter is how telemetry attributes solver cost.
static EXPM_CALLS: mosc_obs::Counter = mosc_obs::Counter::new("expm.calls");
/// Matrix-free exponential actions computed by [`expm_action`].
static EXPM_ACTION_CALLS: mosc_obs::Counter = mosc_obs::Counter::new("expm_action.calls");

/// Records a matrix-exponential evaluation performed outside this module
/// into the shared `expm.calls` metric. The thermal model computes `e^{A·dt}`
/// through its cached eigendecomposition rather than Padé, but it is the
/// same `Φ(dt)` of eq. (3); counting both keeps `expm.calls` meaning "matrix
/// exponentials evaluated" regardless of the algorithm (cache hits excluded).
pub fn count_expm_call() {
    EXPM_CALLS.incr();
}

/// Backward-error thresholds `θ_m` for Padé orders 3, 5, 7, 9, 13 (Higham 2005,
/// Table 2.3, double precision). Stated at full published precision even
/// where f64 rounds the last digit.
#[allow(clippy::excessive_precision)]
const THETA: [(usize, f64); 5] = [
    (3, 1.495_585_217_958_292e-2),
    (5, 2.539_398_330_063_230e-1),
    (7, 9.504_178_996_162_932e-1),
    (9, 2.097_847_961_257_068e0),
    (13, 5.371_920_351_148_152e0),
];

/// Padé numerator coefficients `b_0..b_m` for order `m` (denominator uses the
/// same coefficients with alternating signs on odd powers).
fn pade_coeffs(m: usize) -> &'static [f64] {
    match m {
        3 => &[120.0, 60.0, 12.0, 1.0],
        5 => &[30240.0, 15120.0, 3360.0, 420.0, 30.0, 1.0],
        7 => &[17_297_280.0, 8_648_640.0, 1_995_840.0, 277_200.0, 25_200.0, 1512.0, 56.0, 1.0],
        9 => &[
            17_643_225_600.0,
            8_821_612_800.0,
            2_075_673_600.0,
            302_702_400.0,
            30_270_240.0,
            2_162_160.0,
            110_880.0,
            3960.0,
            90.0,
            1.0,
        ],
        13 => &[
            64_764_752_532_480_000.0,
            32_382_376_266_240_000.0,
            7_771_770_303_897_600.0,
            1_187_353_796_428_800.0,
            129_060_195_264_000.0,
            10_559_470_521_600.0,
            670_442_572_800.0,
            33_522_128_640.0,
            1_323_241_920.0,
            40_840_800.0,
            960_960.0,
            16_380.0,
            182.0,
            1.0,
        ],
        _ => unreachable!("unsupported Padé order {m}"),
    }
}

/// Computes `e^A` for a square matrix.
///
/// ```
/// use mosc_linalg::{expm, Matrix};
/// // The 2x2 rotation generator: e^A is a rotation by θ.
/// let theta = 0.5_f64;
/// let a = Matrix::from_rows(&[&[0.0, -theta], &[theta, 0.0]]);
/// let e = expm(&a).unwrap();
/// assert!((e[(0, 0)] - theta.cos()).abs() < 1e-12);
/// assert!((e[(1, 0)] - theta.sin()).abs() < 1e-12);
/// ```
///
/// # Errors
/// * [`LinalgError::NotSquare`] for rectangular input.
/// * [`LinalgError::NonFinite`] when the input contains NaN/∞.
/// * [`LinalgError::Singular`] if the Padé denominator cannot be inverted
///   (does not happen for matrices within the θ bounds; guards pathology).
pub fn expm(a: &Matrix) -> Result<Matrix> {
    EXPM_CALLS.incr();
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape(), op: "expm" });
    }
    if !a.is_finite() {
        return Err(LinalgError::NonFinite { op: "expm" });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(Matrix::zeros(0, 0));
    }

    let norm = norm_1(a);
    // Small orders without scaling when the norm allows.
    for &(m, theta) in &THETA[..4] {
        if norm <= theta {
            return pade(a, m);
        }
    }

    // Order 13 with scaling: A / 2^s so that the scaled norm is under θ13.
    let theta13 = THETA[4].1;
    let mut s = 0u32;
    let mut scaled_norm = norm;
    while scaled_norm > theta13 {
        scaled_norm /= 2.0;
        s += 1;
    }
    let scaled = a.scaled(0.5_f64.powi(s as i32));
    let mut e = pade(&scaled, 13)?;
    for _ in 0..s {
        e = e.matmul(&e)?;
    }
    Ok(e)
}

/// Computes `e^{A·t}` — convenience wrapper used by the interval propagator.
///
/// # Errors
/// Same as [`expm`].
pub fn expm_scaled(a: &Matrix, t: f64) -> Result<Matrix> {
    if !t.is_finite() {
        return Err(LinalgError::NonFinite { op: "expm_scaled" });
    }
    expm(&a.scaled(t))
}

/// Computes the action `e^{A·t}·x` without forming the matrix exponential,
/// via scaled truncated Taylor series (a simplified Al-Mohy–Higham scheme):
/// the work is `O(s·k·n²)` matrix–vector products instead of the `O(n³)`
/// dense exponential — the right tool once grid-mode thermal models push the
/// node count into the hundreds.
///
/// # Errors
/// Shape mismatches, non-finite inputs.
pub fn expm_action(a: &Matrix, t: f64, x: &crate::Vector) -> Result<crate::Vector> {
    EXPM_ACTION_CALLS.incr();
    if !a.is_square() {
        return Err(LinalgError::NotSquare { shape: a.shape(), op: "expm_action" });
    }
    if a.rows() != x.len() {
        return Err(LinalgError::ShapeMismatch {
            left: a.shape(),
            right: (x.len(), 1),
            op: "expm_action",
        });
    }
    if !a.is_finite() || !x.is_finite() || !t.is_finite() {
        return Err(LinalgError::NonFinite { op: "expm_action" });
    }
    // Scale so that ‖A·t/s‖₁ ≤ 1, then apply s Taylor stages.
    let norm = norm_1(a) * t.abs();
    let s = norm.ceil().max(1.0) as usize;
    let h = t / s as f64;
    // Taylor truncation: with ‖A·h‖ ≤ 1 the remainder after k terms is
    // bounded by 1/k!; k = 20 puts it below 4e-19.
    const K: usize = 20;
    let mut y = x.clone();
    for _ in 0..s {
        let mut term = y.clone();
        let mut acc = y.clone();
        for k in 1..=K {
            let az = a.matvec(&term)?;
            term = az.scaled(h / k as f64);
            acc += &term;
            if term.norm_inf() <= 1e-18 * acc.norm_inf().max(1.0) {
                break;
            }
        }
        y = acc;
    }
    Ok(y)
}

/// Evaluates the order-`m` diagonal Padé approximant `r_m(A) ≈ e^A`.
fn pade(a: &Matrix, m: usize) -> Result<Matrix> {
    let b = pade_coeffs(m);
    let n = a.rows();
    let ident = Matrix::identity(n);
    let a2 = a.matmul(a)?;

    // Split r_m = p/q with p = U + V, q = -U + V where U collects odd powers
    // (always a multiple of A) and V the even powers.
    let (u, v) = if m <= 9 {
        // Direct evaluation of even powers A^0, A^2, A^4, ...
        let mut even_pows = vec![ident.clone(), a2.clone()];
        while even_pows.len() <= m / 2 {
            let next = even_pows.last().expect("non-empty").matmul(&a2)?;
            even_pows.push(next);
        }
        let mut u_inner = Matrix::zeros(n, n);
        let mut v = Matrix::zeros(n, n);
        for (k, pow) in even_pows.iter().enumerate() {
            // b[2k+1] multiplies A^{2k+1} = A * A^{2k}; b[2k] multiplies A^{2k}.
            if 2 * k < m {
                u_inner += &pow.scaled(b[2 * k + 1]);
            }
            v += &pow.scaled(b[2 * k]);
        }
        (a.matmul(&u_inner)?, v)
    } else {
        // Order 13 uses the economical evaluation of Higham (2005, eq. 2.12).
        let a4 = a2.matmul(&a2)?;
        let a6 = a4.matmul(&a2)?;
        let w1 = &(&a6.scaled(b[13]) + &a4.scaled(b[11])) + &a2.scaled(b[9]);
        let w2 = &(&(&a6.scaled(b[7]) + &a4.scaled(b[5])) + &a2.scaled(b[3])) + &ident.scaled(b[1]);
        let u_inner = &a6.matmul(&w1)? + &w2;
        let u = a.matmul(&u_inner)?;
        let z1 = &(&a6.scaled(b[12]) + &a4.scaled(b[10])) + &a2.scaled(b[8]);
        let z2 = &(&(&a6.scaled(b[6]) + &a4.scaled(b[4])) + &a2.scaled(b[2])) + &ident.scaled(b[0]);
        let v = &a6.matmul(&z1)? + &z2;
        (u, v)
    };

    let p = &v + &u;
    let q = &v - &u;
    Lu::new(&q)?.solve_mat(&p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vector;

    #[test]
    fn exp_of_zero_is_identity() {
        let z = Matrix::zeros(3, 3);
        assert!(expm(&z).unwrap().max_abs_diff(&Matrix::identity(3)) < 1e-14);
    }

    #[test]
    fn exp_of_empty_matrix() {
        let e = expm(&Matrix::zeros(0, 0)).unwrap();
        assert_eq!(e.shape(), (0, 0));
    }

    #[test]
    fn exp_of_diagonal_is_elementwise_exp() {
        let d = Matrix::from_diag(&[-1.0, 0.5, 2.0]);
        let e = expm(&d).unwrap();
        for (i, lam) in [-1.0, 0.5, 2.0].into_iter().enumerate() {
            assert!((e[(i, i)] - f64::exp(lam)).abs() < 1e-12, "entry {i}");
        }
        assert!(e[(0, 1)].abs() < 1e-14);
    }

    #[test]
    fn exp_of_nilpotent_matches_truncated_series() {
        // N = [[0,1],[0,0]] ⇒ e^N = I + N exactly.
        let n = Matrix::from_rows(&[&[0.0, 1.0], &[0.0, 0.0]]);
        let e = expm(&n).unwrap();
        let expected = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]);
        assert!(e.max_abs_diff(&expected) < 1e-14);
    }

    #[test]
    fn rotation_generator() {
        // A = [[0,-θ],[θ,0]] ⇒ e^A = rotation by θ.
        let theta = 0.7;
        let a = Matrix::from_rows(&[&[0.0, -theta], &[theta, 0.0]]);
        let e = expm(&a).unwrap();
        assert!((e[(0, 0)] - theta.cos()).abs() < 1e-13);
        assert!((e[(1, 0)] - theta.sin()).abs() < 1e-13);
    }

    #[test]
    fn large_norm_triggers_scaling_and_squaring() {
        // ‖A‖ far above θ13 exercises the squaring phase. Check the semigroup
        // identity e^A = (e^{A/2})², whose two sides take different code paths
        // (order-13 scaled vs. lower scaling count).
        let a = Matrix::from_rows(&[&[-30.0, 10.0], &[5.0, -40.0]]);
        let whole = expm(&a).unwrap();
        let half = expm(&a.scaled(0.5)).unwrap();
        let squared = half.matmul(&half).unwrap();
        assert!(whole.max_abs_diff(&squared) < 1e-12);
        // A stable matrix's exponential must stay bounded and decay.
        assert!(whole.max_abs() < 1.0);
    }

    #[test]
    fn semigroup_property() {
        // e^{A(s+t)} = e^{As}·e^{At} for commuting scalings of one matrix.
        let a = Matrix::from_rows(&[&[-2.0, 1.0, 0.0], &[1.0, -3.0, 1.0], &[0.0, 1.0, -2.5]]);
        let whole = expm_scaled(&a, 0.9).unwrap();
        let part = expm_scaled(&a, 0.4).unwrap().matmul(&expm_scaled(&a, 0.5).unwrap()).unwrap();
        assert!(whole.max_abs_diff(&part) < 1e-12);
    }

    #[test]
    fn matches_taylor_series_for_moderate_norm() {
        let a = Matrix::from_rows(&[&[0.2, -0.1], &[0.05, 0.3]]);
        let e = expm(&a).unwrap();
        // 20-term Taylor reference.
        let mut term = Matrix::identity(2);
        let mut sum = Matrix::identity(2);
        for k in 1..=20 {
            term = term.matmul(&a).unwrap().scaled(1.0 / k as f64);
            sum += &term;
        }
        assert!(e.max_abs_diff(&sum) < 1e-14);
    }

    #[test]
    fn stable_matrix_decays_to_zero() {
        let a = Matrix::from_rows(&[&[-1.0, 0.3], &[0.3, -2.0]]);
        let e = expm_scaled(&a, 50.0).unwrap();
        assert!(e.max_abs() < 1e-10);
        // Positivity of the propagator for a Metzler matrix (off-diagonals ≥ 0):
        let e1 = expm_scaled(&a, 1.0).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!(e1[(i, j)] >= 0.0, "propagator entry ({i},{j}) negative");
            }
        }
    }

    #[test]
    fn input_validation() {
        assert!(matches!(expm(&Matrix::zeros(2, 3)), Err(LinalgError::NotSquare { .. })));
        let mut a = Matrix::identity(2);
        a[(1, 1)] = f64::INFINITY;
        assert!(matches!(expm(&a), Err(LinalgError::NonFinite { .. })));
        assert!(expm_scaled(&Matrix::identity(2), f64::NAN).is_err());
    }

    #[test]
    fn expm_action_matches_dense_exponential() {
        let a = Matrix::from_rows(&[&[-2.0, 0.5, 0.1], &[0.5, -3.0, 0.7], &[0.1, 0.7, -1.5]]);
        let x = Vector::from_slice(&[1.0, -2.0, 0.5]);
        for t in [0.01, 0.3, 2.0, 15.0] {
            let dense = expm_scaled(&a, t).unwrap().matvec(&x).unwrap();
            let action = expm_action(&a, t, &x).unwrap();
            assert!(
                dense.max_abs_diff(&action) < 1e-10,
                "t={t}: diff {}",
                dense.max_abs_diff(&action)
            );
        }
    }

    #[test]
    fn expm_action_validates_inputs() {
        let a = Matrix::identity(2);
        assert!(expm_action(&Matrix::zeros(2, 3), 1.0, &Vector::zeros(2)).is_err());
        assert!(expm_action(&a, 1.0, &Vector::zeros(3)).is_err());
        assert!(expm_action(&a, f64::NAN, &Vector::zeros(2)).is_err());
        let mut bad = Vector::zeros(2);
        bad[0] = f64::INFINITY;
        assert!(expm_action(&a, 1.0, &bad).is_err());
    }

    #[test]
    fn expm_action_zero_time_is_identity() {
        let a = Matrix::from_rows(&[&[-1.0, 0.2], &[0.2, -2.0]]);
        let x = Vector::from_slice(&[3.0, -4.0]);
        let y = expm_action(&a, 0.0, &x).unwrap();
        assert!(y.max_abs_diff(&x) < 1e-15);
    }

    #[test]
    fn action_on_vector_matches_ode_euler_reference() {
        // Cross-check e^{At}·x0 against a fine forward-Euler integration.
        let a = Matrix::from_rows(&[&[-1.2, 0.4], &[0.4, -0.8]]);
        let x0 = Vector::from_slice(&[1.0, 2.0]);
        let t = 0.5;
        let exact = expm_scaled(&a, t).unwrap().matvec(&x0).unwrap();
        let steps = 200_000;
        let dt = t / steps as f64;
        let mut x = x0;
        for _ in 0..steps {
            let dx = a.matvec(&x).unwrap();
            x = x.axpy(dt, &dx);
        }
        assert!(exact.max_abs_diff(&x) < 1e-4);
    }
}
