//! Dense linear-algebra kernels for the `mosc` workspace.
//!
//! The RC thermal model of Sha et al. (ICPP 2016) is a linear time-invariant
//! system `dT/dt = A·T + B(v)`. Everything the scheduling algorithms need from
//! numerical linear algebra is small and dense (thermal networks have a few
//! dozen nodes at most), so this crate implements the required kernel set from
//! scratch rather than pulling in a general-purpose library:
//!
//! * [`Matrix`] / [`Vector`] — column-major-free, row-major dense storage with
//!   the usual arithmetic.
//! * [`Lu`] — LU decomposition with partial pivoting: solves, inverses,
//!   determinants, condition estimates.
//! * [`expm`] — matrix exponential via Higham's scaling-and-squaring with
//!   Padé-13 approximants, the workhorse behind the interval propagator
//!   `Φ = e^{A·l}` of eq. (3).
//! * [`SymmetricEigen`] — cyclic Jacobi eigensolver for symmetric matrices,
//!   used to verify the spectrum assumptions of the paper (all eigenvalues of
//!   `A` negative reals) and for the fast diagonalized propagator.
//!
//! All numerics are `f64`. Matrices are small (N ≤ a few hundred), so clarity
//! and robustness win over cache blocking; the hot paths that matter
//! (schedule-candidate evaluation) are made fast algebraically upstream, by
//! precomputing resolvent matrices, not by micro-optimizing GEMM.

#![deny(missing_docs)]
#![warn(clippy::all)]

mod eigen;
mod error;
mod expm;
mod lu;
mod matrix;
mod norms;
mod vector;

pub use eigen::{JacobiOptions, SymmetricEigen};
pub use error::LinalgError;
pub use expm::{count_expm_call, expm, expm_action, expm_scaled};
pub use lu::{solve as lu_solve, Lu};
pub use matrix::Matrix;
pub use norms::{norm_1, norm_fro, norm_inf};
pub use vector::Vector;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Default absolute tolerance used by approximate comparisons in tests and
/// iterative kernels.
pub const DEFAULT_TOL: f64 = 1e-10;

/// Returns `true` when `a` and `b` agree to within `tol` absolutely or
/// relatively (whichever is looser), the standard mixed criterion.
#[inline]
#[must_use]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_and_relative() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-10));
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-10));
        assert!(!approx_eq(1.0, 1.1, 1e-10));
        assert!(approx_eq(0.0, 0.0, 1e-10));
    }
}
