//! LU decomposition with partial pivoting.

use crate::{LinalgError, Matrix, Result, Vector};

/// LU decomposition `P·A = L·U` with partial (row) pivoting.
///
/// The factors are stored packed in a single matrix (`L` strictly below the
/// diagonal with implicit unit diagonal, `U` on and above), plus the pivot
/// permutation. A factorization is computed once per thermal model and reused
/// for every solve — the scheduling algorithms call [`Lu::solve_vec`] in inner
/// loops, so solve cost matters more than factor cost.
#[derive(Debug, Clone)]
pub struct Lu {
    packed: Matrix,
    pivots: Vec<usize>,
    /// Sign of the permutation, for determinants.
    perm_sign: f64,
}

/// Threshold below which a pivot is considered to be exactly zero and the
/// matrix singular. Scaled by the largest absolute entry of the matrix.
const PIVOT_REL_TOL: f64 = 1e-14;

impl Lu {
    /// Factorizes a square matrix.
    ///
    /// # Errors
    /// * [`LinalgError::NotSquare`] for rectangular input.
    /// * [`LinalgError::NonFinite`] when the matrix contains NaN/∞.
    /// * [`LinalgError::Singular`] when a pivot underflows the tolerance.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape(), op: "lu" });
        }
        if !a.is_finite() {
            return Err(LinalgError::NonFinite { op: "lu" });
        }
        let n = a.rows();
        let mut m = a.clone();
        let mut pivots = Vec::with_capacity(n);
        let mut perm_sign = 1.0;
        let scale = a.max_abs().max(1.0);

        for k in 0..n {
            // Pick the largest pivot in column k at or below row k.
            let mut p = k;
            let mut best = m[(k, k)].abs();
            for i in (k + 1)..n {
                let v = m[(i, k)].abs();
                if v > best {
                    best = v;
                    p = i;
                }
            }
            if best <= PIVOT_REL_TOL * scale {
                return Err(LinalgError::Singular { pivot: k });
            }
            if p != k {
                for j in 0..n {
                    let tmp = m[(k, j)];
                    m[(k, j)] = m[(p, j)];
                    m[(p, j)] = tmp;
                }
                perm_sign = -perm_sign;
            }
            pivots.push(p);

            let pivot = m[(k, k)];
            for i in (k + 1)..n {
                let factor = m[(i, k)] / pivot;
                m[(i, k)] = factor;
                for j in (k + 1)..n {
                    let u = m[(k, j)];
                    m[(i, j)] -= factor * u;
                }
            }
        }
        Ok(Self { packed: m, pivots, perm_sign })
    }

    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.packed.rows()
    }

    /// Solves `A·x = b` for a single right-hand side.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] when `b.len() != dim`.
    pub fn solve_vec(&self, b: &Vector) -> Result<Vector> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                left: (n, n),
                right: (b.len(), 1),
                op: "lu_solve",
            });
        }
        let mut x = b.clone();
        // Apply the pivot permutation.
        for (k, &p) in self.pivots.iter().enumerate() {
            if p != k {
                x.as_mut_slice().swap(k, p);
            }
        }
        // Forward substitution with the unit-diagonal L.
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.packed[(i, j)] * x[j];
            }
            x[i] = acc;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.packed[(i, j)] * x[j];
            }
            x[i] = acc / self.packed[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A·X = B` for a matrix right-hand side, column by column.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] when `B.rows() != dim`.
    pub fn solve_mat(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                left: (n, n),
                right: b.shape(),
                op: "lu_solve_mat",
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = self.solve_vec(&b.col(j))?;
            for i in 0..n {
                out[(i, j)] = col[i];
            }
        }
        Ok(out)
    }

    /// The inverse matrix `A⁻¹`.
    ///
    /// # Errors
    /// Propagates solve failures (cannot occur for a successfully factored
    /// matrix, but the signature stays honest).
    pub fn inverse(&self) -> Result<Matrix> {
        self.solve_mat(&Matrix::identity(self.dim()))
    }

    /// Determinant of the factored matrix.
    #[must_use]
    pub fn det(&self) -> f64 {
        let mut det = self.perm_sign;
        for i in 0..self.dim() {
            det *= self.packed[(i, i)];
        }
        det
    }

    /// Crude reciprocal-condition estimate `min|u_ii| / max|u_ii|`; cheap and
    /// good enough to flag the pathological floorplans the failure-injection
    /// tests construct.
    #[must_use]
    pub fn rcond_estimate(&self) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = 0.0_f64;
        for i in 0..self.dim() {
            let u = self.packed[(i, i)].abs();
            lo = lo.min(u);
            hi = hi.max(u);
        }
        if hi == 0.0 {
            0.0
        } else {
            lo / hi
        }
    }
}

/// One-shot convenience: solves `A·x = b` without keeping the factorization.
///
/// # Errors
/// Propagates factorization and solve errors.
pub fn solve(a: &Matrix, b: &Vector) -> Result<Vector> {
    Lu::new(a)?.solve_vec(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &Vector, b: &Vector) -> f64 {
        let ax = a.matvec(x).unwrap();
        ax.max_abs_diff(b)
    }

    #[test]
    fn solves_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let b = Vector::from_slice(&[5.0, 10.0]);
        let x = solve(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let b = Vector::from_slice(&[2.0, 3.0]);
        let x = solve(&a, &b).unwrap();
        assert_eq!(x.as_slice(), &[3.0, 2.0]);
    }

    #[test]
    fn rejects_singular() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(Lu::new(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rejects_non_square_and_non_finite() {
        assert!(matches!(Lu::new(&Matrix::zeros(2, 3)), Err(LinalgError::NotSquare { .. })));
        let mut a = Matrix::identity(2);
        a[(0, 1)] = f64::NAN;
        assert!(matches!(Lu::new(&a), Err(LinalgError::NonFinite { .. })));
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = Lu::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(2)) < 1e-12);
    }

    #[test]
    fn determinant_matches_closed_form() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        assert!((Lu::new(&a).unwrap().det() - 10.0).abs() < 1e-12);
        // Permutation flips the sign bookkeeping, not the value.
        let p = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!((Lu::new(&p).unwrap().det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_mat_columnwise() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 6.0], &[2.0, 4.0]]);
        let x = Lu::new(&a).unwrap().solve_mat(&b).unwrap();
        assert!(x.max_abs_diff(&Matrix::from_rows(&[&[1.0, 2.0], &[1.0, 2.0]])) < 1e-12);
        assert!(Lu::new(&a).unwrap().solve_mat(&Matrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn shape_mismatch_on_solve() {
        let lu = Lu::new(&Matrix::identity(2)).unwrap();
        assert!(lu.solve_vec(&Vector::zeros(3)).is_err());
    }

    #[test]
    fn rcond_flags_bad_scaling() {
        let good = Lu::new(&Matrix::identity(3)).unwrap();
        assert!((good.rcond_estimate() - 1.0).abs() < 1e-12);
        let bad = Lu::new(&Matrix::from_diag(&[1.0, 1e-12])).unwrap();
        assert!(bad.rcond_estimate() < 1e-10);
    }

    #[test]
    fn random_systems_have_small_residual() {
        // Deterministic LCG so the test is reproducible without rand.
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        for n in [1usize, 2, 5, 12] {
            let mut a = Matrix::from_fn(n, n, |_, _| next());
            // Diagonal dominance guarantees non-singularity.
            for i in 0..n {
                a[(i, i)] += n as f64;
            }
            let b = Vector::from_fn(n, |_| next());
            let x = solve(&a, &b).unwrap();
            assert!(residual(&a, &x, &b) < 1e-10, "n={n}");
        }
    }
}
