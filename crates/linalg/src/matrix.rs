//! Dense row-major matrix type.

use crate::{LinalgError, Result, Vector};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign};

/// Dense `O(n³)` matrix–matrix products — together with `expm.calls` this is
/// the cost the period-map kernel is measured against.
static MATMUL_CALLS: mosc_obs::Counter = mosc_obs::Counter::new("linalg.matmuls");

/// A dense, row-major `f64` matrix.
///
/// Sized for the thermal networks of this workspace (tens of nodes): the
/// implementation favours clarity and exhaustive shape checking over blocked
/// kernels. All fallible operations return [`LinalgError`] instead of
/// panicking, except the `std::ops` operator impls which panic on shape
/// mismatch (mirroring the convention of every dense linear-algebra library).
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows × cols` matrix with every element equal to `value`.
    #[must_use]
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::ShapeMismatch {
                left: (rows, cols),
                right: (data.len(), 1),
                op: "from_vec",
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from nested row slices. Panics if rows are ragged.
    /// Intended for literals in tests and examples.
    #[must_use]
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    #[must_use]
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.data[i * n + i] = d;
        }
        m
    }

    /// Builds a matrix element-wise from a closure `f(row, col)`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// `true` when the matrix is square.
    #[inline]
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major data.
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    #[inline]
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Extract column `j` as a [`Vector`].
    #[must_use]
    pub fn col(&self, j: usize) -> Vector {
        Vector::from_fn(self.rows, |i| self.data[i * self.cols + j])
    }

    /// Checked element access.
    ///
    /// # Errors
    /// Returns [`LinalgError::IndexOutOfBounds`] for an invalid index.
    pub fn get(&self, i: usize, j: usize) -> Result<f64> {
        if i >= self.rows || j >= self.cols {
            return Err(LinalgError::IndexOutOfBounds { index: (i, j), shape: self.shape() });
        }
        Ok(self.data[i * self.cols + j])
    }

    /// Returns the main diagonal as a [`Vector`]. For non-square matrices the
    /// diagonal has `min(rows, cols)` entries.
    #[must_use]
    pub fn diag(&self) -> Vector {
        let n = self.rows.min(self.cols);
        Vector::from_fn(n, |i| self.data[i * self.cols + i])
    }

    /// Transposed copy.
    #[must_use]
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        t
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] when the inner dimensions differ.
    pub fn matmul(&self, rhs: &Self) -> Result<Self> {
        if self.cols != rhs.rows {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "matmul",
            });
        }
        MATMUL_CALLS.incr();
        let mut out = Self::zeros(self.rows, rhs.cols);
        // i-k-j loop order keeps the inner loop contiguous for both the
        // output row and the rhs row — the standard cache-friendly ordering
        // for row-major storage.
        for i in 0..self.rows {
            let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] when `x.len() != cols`.
    pub fn matvec(&self, x: &Vector) -> Result<Vector> {
        if self.cols != x.len() {
            return Err(LinalgError::ShapeMismatch {
                left: self.shape(),
                right: (x.len(), 1),
                op: "matvec",
            });
        }
        let mut out = Vector::zeros(self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.as_slice()) {
                acc += a * b;
            }
            out[i] = acc;
        }
        Ok(out)
    }

    /// Transposed matrix–vector product `selfᵀ · x`, without materializing
    /// the transpose (column-walk over the row-major storage).
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] when `x.len() != rows`.
    pub fn tr_matvec(&self, x: &Vector) -> Result<Vector> {
        if self.rows != x.len() {
            return Err(LinalgError::ShapeMismatch {
                left: (self.cols, self.rows),
                right: (x.len(), 1),
                op: "tr_matvec",
            });
        }
        let mut out = Vector::zeros(self.cols);
        for (i, &xi) in x.iter().enumerate() {
            if xi == 0.0 {
                continue;
            }
            let row = self.row(i);
            for (o, &a) in out.as_mut_slice().iter_mut().zip(row) {
                *o += a * xi;
            }
        }
        Ok(out)
    }

    /// In-place scaling by a scalar.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Scaled copy.
    #[must_use]
    pub fn scaled(&self, s: f64) -> Self {
        let mut m = self.clone();
        m.scale_mut(s);
        m
    }

    /// `self + s·I` for square matrices, used by the Padé kernels.
    ///
    /// # Errors
    /// Returns [`LinalgError::NotSquare`] for non-square input.
    pub fn add_scaled_identity(&self, s: f64) -> Result<Self> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare { shape: self.shape(), op: "add_scaled_identity" });
        }
        let mut m = self.clone();
        for i in 0..self.rows {
            m.data[i * self.cols + i] += s;
        }
        Ok(m)
    }

    /// Element-wise maximum entry (ignores sign).
    #[must_use]
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Largest element value (signed).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.data.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v))
    }

    /// `true` when every element is finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// `true` when the matrix is symmetric to within `tol`.
    #[must_use]
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self.data[i * self.cols + j] - self.data[j * self.cols + i]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// `true` when every element of `self` is `<=` the corresponding element
    /// of `other` plus `tol` — the element-wise partial order the paper uses
    /// for temperature-vector comparisons.
    ///
    /// # Panics
    /// Panics when shapes differ.
    #[must_use]
    pub fn le_elementwise(&self, other: &Self, tol: f64) -> bool {
        assert_eq!(self.shape(), other.shape(), "le_elementwise shape mismatch");
        self.data.iter().zip(&other.data).all(|(a, b)| *a <= *b + tol)
    }

    /// Maximum absolute element-wise difference to `other`.
    ///
    /// # Panics
    /// Panics when shapes differ.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff shape mismatch");
        self.data.iter().zip(&other.data).fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

macro_rules! elementwise_op {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident, $op:tt) => {
        impl $trait<&Matrix> for &Matrix {
            type Output = Matrix;
            fn $method(self, rhs: &Matrix) -> Matrix {
                assert_eq!(self.shape(), rhs.shape(), concat!(stringify!($method), " shape mismatch"));
                let data = self
                    .data
                    .iter()
                    .zip(&rhs.data)
                    .map(|(a, b)| a $op b)
                    .collect();
                Matrix { rows: self.rows, cols: self.cols, data }
            }
        }
        impl $trait for Matrix {
            type Output = Matrix;
            fn $method(self, rhs: Matrix) -> Matrix {
                (&self).$method(&rhs)
            }
        }
        impl $assign_trait<&Matrix> for Matrix {
            fn $assign_method(&mut self, rhs: &Matrix) {
                assert_eq!(self.shape(), rhs.shape(), concat!(stringify!($assign_method), " shape mismatch"));
                for (a, b) in self.data.iter_mut().zip(&rhs.data) {
                    *a = *a $op b;
                }
            }
        }
    };
}

elementwise_op!(Add, add, AddAssign, add_assign, +);
elementwise_op!(Sub, sub, SubAssign, sub_assign, -);

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, s: f64) -> Matrix {
        self.scaled(s)
    }
}

impl Mul<&Matrix> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.matmul(rhs).expect("matmul shape mismatch")
    }
}

impl MulAssign<f64> for Matrix {
    fn mul_assign(&mut self, s: f64) {
        self.scale_mut(s);
    }
}

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.scaled(-1.0)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:>12.6}", self.data[i * self.cols + j])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_shapes() {
        assert_eq!(Matrix::zeros(2, 3).shape(), (2, 3));
        assert_eq!(Matrix::identity(4)[(2, 2)], 1.0);
        assert_eq!(Matrix::identity(4)[(2, 1)], 0.0);
        assert_eq!(Matrix::filled(2, 2, 7.0)[(1, 1)], 7.0);
        let d = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn tr_matvec_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let x = Vector::from_slice(&[2.0, -1.0]);
        let direct = a.tr_matvec(&x).unwrap();
        let via_transpose = a.transpose().matvec(&x).unwrap();
        assert!(direct.max_abs_diff(&via_transpose) < 1e-15);
        assert!(a.tr_matvec(&Vector::zeros(3)).is_err());
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_rectangular() {
        let a = Matrix::from_rows(&[&[1.0, 0.0, 2.0]]);
        let b = Matrix::from_rows(&[&[1.0], &[1.0], &[1.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), (1, 1));
        assert_eq!(c[(0, 0)], 3.0);
        assert!(b.matmul(&b).is_err());
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let x = Vector::from_slice(&[5.0, 6.0]);
        let y = a.matvec(&x).unwrap();
        assert_eq!(y.as_slice(), &[17.0, 39.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::identity(2);
        let s = &a + &b;
        assert_eq!(s[(0, 0)], 2.0);
        let d = &s - &b;
        assert_eq!(d, a);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c, s);
        c -= &b;
        assert_eq!(c, a);
        assert_eq!((&a * 2.0)[(1, 1)], 8.0);
        assert_eq!((-&a)[(0, 1)], -2.0);
    }

    #[test]
    fn diag_and_col_extraction() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.diag().as_slice(), &[1.0, 4.0]);
        assert_eq!(a.col(1).as_slice(), &[2.0, 4.0]);
        assert_eq!(a.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        assert!(s.is_symmetric(1e-12));
        let ns = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 2.0]]);
        assert!(!ns.is_symmetric(1e-12));
        assert!(!Matrix::zeros(2, 3).is_symmetric(1e-12));
    }

    #[test]
    fn elementwise_order_and_diff() {
        let a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        assert!(a.le_elementwise(&b, 0.0));
        assert!(!b.le_elementwise(&a, 0.0));
        assert!((a.max_abs_diff(&b) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn checked_get() {
        let a = Matrix::identity(2);
        assert_eq!(a.get(1, 1).unwrap(), 1.0);
        assert!(a.get(2, 0).is_err());
    }

    #[test]
    fn add_scaled_identity_on_square_only() {
        let a = Matrix::zeros(2, 2).add_scaled_identity(3.0).unwrap();
        assert_eq!(a, Matrix::from_diag(&[3.0, 3.0]));
        assert!(Matrix::zeros(2, 3).add_scaled_identity(1.0).is_err());
    }

    #[test]
    fn display_renders_all_rows() {
        let a = Matrix::identity(2);
        let s = format!("{a}");
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    fn max_and_finiteness() {
        let a = Matrix::from_rows(&[&[-5.0, 2.0], &[3.0, -4.0]]);
        assert_eq!(a.max_abs(), 5.0);
        assert_eq!(a.max(), 3.0);
        assert!(a.is_finite());
        let mut b = a.clone();
        b[(0, 0)] = f64::NAN;
        assert!(!b.is_finite());
    }
}
