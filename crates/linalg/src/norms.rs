//! Matrix norms.

use crate::Matrix;

/// 1-norm: maximum absolute column sum. This is the norm the Padé
/// backward-error bounds of [`crate::expm`] are stated in.
#[must_use]
pub fn norm_1(a: &Matrix) -> f64 {
    let mut best = 0.0_f64;
    for j in 0..a.cols() {
        let mut sum = 0.0;
        for i in 0..a.rows() {
            sum += a[(i, j)].abs();
        }
        best = best.max(sum);
    }
    best
}

/// Infinity norm: maximum absolute row sum.
#[must_use]
pub fn norm_inf(a: &Matrix) -> f64 {
    let mut best = 0.0_f64;
    for i in 0..a.rows() {
        let sum: f64 = a.row(i).iter().map(|v| v.abs()).sum();
        best = best.max(sum);
    }
    best
}

/// Frobenius norm.
#[must_use]
pub fn norm_fro(a: &Matrix) -> f64 {
    a.as_slice().iter().map(|v| v * v).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_norms() {
        let a = Matrix::from_rows(&[&[1.0, -2.0], &[-3.0, 4.0]]);
        assert_eq!(norm_1(&a), 6.0); // column 1: |−2|+|4| = 6
        assert_eq!(norm_inf(&a), 7.0); // row 1: |−3|+|4| = 7
        assert!((norm_fro(&a) - 30.0_f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn norms_of_zero_matrix() {
        let z = Matrix::zeros(3, 2);
        assert_eq!(norm_1(&z), 0.0);
        assert_eq!(norm_inf(&z), 0.0);
        assert_eq!(norm_fro(&z), 0.0);
    }

    #[test]
    fn one_and_inf_are_transposes() {
        let a = Matrix::from_rows(&[&[1.0, 5.0, -2.0], &[0.5, -1.0, 3.0]]);
        assert_eq!(norm_1(&a), norm_inf(&a.transpose()));
        assert_eq!(norm_inf(&a), norm_1(&a.transpose()));
    }
}
