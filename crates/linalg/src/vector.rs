//! Dense vector type used for temperatures, power profiles and voltages.

use crate::{LinalgError, Result};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense `f64` column vector.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Zero vector of length `n`.
    #[must_use]
    pub fn zeros(n: usize) -> Self {
        Self { data: vec![0.0; n] }
    }

    /// Vector of length `n` with every entry equal to `value`.
    #[must_use]
    pub fn filled(n: usize, value: f64) -> Self {
        Self { data: vec![value; n] }
    }

    /// Copies a slice into a new vector.
    #[must_use]
    pub fn from_slice(s: &[f64]) -> Self {
        Self { data: s.to_vec() }
    }

    /// Builds a vector element-wise from a closure.
    #[must_use]
    pub fn from_fn(n: usize, mut f: impl FnMut(usize) -> f64) -> Self {
        Self { data: (0..n).map(&mut f).collect() }
    }

    /// Length of the vector.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the vector has no elements.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying data.
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector and returns its storage.
    #[must_use]
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Iterator over the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }

    /// Dot product.
    ///
    /// # Errors
    /// Returns [`LinalgError::ShapeMismatch`] when lengths differ.
    pub fn dot(&self, other: &Self) -> Result<f64> {
        if self.len() != other.len() {
            return Err(LinalgError::ShapeMismatch {
                left: (self.len(), 1),
                right: (other.len(), 1),
                op: "dot",
            });
        }
        Ok(self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum())
    }

    /// Sum of all elements.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Arithmetic mean (0 for the empty vector).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Largest element (−∞ for the empty vector).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.data.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v))
    }

    /// Smallest element (+∞ for the empty vector).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.data.iter().fold(f64::INFINITY, |m, &v| m.min(v))
    }

    /// Index of the largest element; `None` for the empty vector.
    /// Ties resolve to the lowest index.
    #[must_use]
    pub fn argmax(&self) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (i, &v) in self.data.iter().enumerate() {
            match best {
                Some((_, b)) if v <= b => {}
                _ => best = Some((i, v)),
            }
        }
        best.map(|(i, _)| i)
    }

    /// Euclidean norm.
    #[must_use]
    pub fn norm_2(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Infinity norm (largest absolute element).
    #[must_use]
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// `true` when every element is finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Element-wise `≤` with tolerance, the paper's temperature-vector order.
    ///
    /// # Panics
    /// Panics on length mismatch.
    #[must_use]
    pub fn le_elementwise(&self, other: &Self, tol: f64) -> bool {
        assert_eq!(self.len(), other.len(), "le_elementwise length mismatch");
        self.data.iter().zip(&other.data).all(|(a, b)| *a <= *b + tol)
    }

    /// Maximum absolute element-wise difference.
    ///
    /// # Panics
    /// Panics on length mismatch.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.len(), other.len(), "max_abs_diff length mismatch");
        self.data.iter().zip(&other.data).fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
    }

    /// Scaled copy.
    #[must_use]
    pub fn scaled(&self, s: f64) -> Self {
        Self { data: self.data.iter().map(|v| v * s).collect() }
    }

    /// `self + s·other`, the AXPY kernel.
    ///
    /// # Panics
    /// Panics on length mismatch.
    #[must_use]
    pub fn axpy(&self, s: f64, other: &Self) -> Self {
        assert_eq!(self.len(), other.len(), "axpy length mismatch");
        Self { data: self.data.iter().zip(&other.data).map(|(a, b)| a + s * b).collect() }
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Self { data }
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Self { data: iter.into_iter().collect() }
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl Add<&Vector> for &Vector {
    type Output = Vector;
    fn add(self, rhs: &Vector) -> Vector {
        self.axpy(1.0, rhs)
    }
}

impl Sub<&Vector> for &Vector {
    type Output = Vector;
    fn sub(self, rhs: &Vector) -> Vector {
        self.axpy(-1.0, rhs)
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "add_assign length mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "sub_assign length mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;
    fn mul(self, s: f64) -> Vector {
        self.scaled(s)
    }
}

impl Neg for &Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.6}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let v = Vector::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        assert_eq!(v[1], 2.0);
        let w = Vector::from_fn(3, |i| i as f64);
        assert_eq!(w.as_slice(), &[0.0, 1.0, 2.0]);
        assert!(Vector::zeros(0).is_empty());
    }

    #[test]
    fn reductions() {
        let v = Vector::from_slice(&[1.0, -2.0, 3.0]);
        assert_eq!(v.sum(), 2.0);
        assert!((v.mean() - 2.0 / 3.0).abs() < 1e-15);
        assert_eq!(v.max(), 3.0);
        assert_eq!(v.min(), -2.0);
        assert_eq!(v.argmax(), Some(2));
        assert_eq!(v.norm_inf(), 3.0);
        assert!((v.norm_2() - 14.0_f64.sqrt()).abs() < 1e-15);
        assert_eq!(Vector::zeros(0).argmax(), None);
        assert_eq!(Vector::zeros(0).mean(), 0.0);
    }

    #[test]
    fn argmax_ties_pick_first() {
        let v = Vector::from_slice(&[5.0, 5.0, 1.0]);
        assert_eq!(v.argmax(), Some(0));
    }

    #[test]
    fn dot_product() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[3.0, 4.0]);
        assert_eq!(a.dot(&b).unwrap(), 11.0);
        assert!(a.dot(&Vector::zeros(3)).is_err());
    }

    #[test]
    fn arithmetic() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[3.0, 4.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 6.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 2.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        assert_eq!(a.axpy(2.0, &b).as_slice(), &[7.0, 10.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 6.0]);
        c -= &b;
        assert_eq!(c.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn elementwise_order() {
        let a = Vector::from_slice(&[1.0, 2.0]);
        let b = Vector::from_slice(&[1.0, 3.0]);
        assert!(a.le_elementwise(&b, 0.0));
        assert!(!b.le_elementwise(&a, 0.0));
        assert!(b.le_elementwise(&a, 1.5));
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }

    #[test]
    fn conversions_and_iteration() {
        let v: Vector = vec![1.0, 2.0].into();
        let w: Vector = v.iter().map(|x| x * 2.0).collect();
        assert_eq!(w.as_slice(), &[2.0, 4.0]);
        assert_eq!(w.into_vec(), vec![2.0, 4.0]);
        let total: f64 = (&v).into_iter().sum();
        assert_eq!(total, 3.0);
    }

    #[test]
    fn display() {
        let v = Vector::from_slice(&[1.0, 2.5]);
        assert_eq!(format!("{v}"), "[1.000000, 2.500000]");
    }
}
