//! Property-based tests for the dense linear-algebra kernels.

use mosc_linalg::{expm, expm_scaled, norm_1, norm_fro, norm_inf, Lu, Matrix, SymmetricEigen, Vector};
use proptest::prelude::*;

/// Strategy: a well-conditioned square matrix (random entries in [-1, 1] with
/// a diagonal boost that guarantees strict diagonal dominance).
fn dominant_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let mut m = Matrix::from_vec(n, n, data).expect("sized by construction");
        for i in 0..n {
            let row_sum: f64 = m.row(i).iter().map(|v| v.abs()).sum();
            m[(i, i)] += row_sum + 1.0;
        }
        m
    })
}

/// Strategy: a symmetric matrix with entries in [-1, 1].
fn symmetric_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * (n + 1) / 2).prop_map(move |tri| {
        let mut m = Matrix::zeros(n, n);
        let mut it = tri.into_iter();
        for i in 0..n {
            for j in i..n {
                let v = it.next().expect("sized by construction");
                m[(i, j)] = v;
                m[(j, i)] = v;
            }
        }
        m
    })
}

/// Strategy: a stable Metzler matrix (off-diagonal ≥ 0, strictly dominant
/// negative diagonal) — the structure of every thermal state matrix `A`.
fn stable_metzler(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(0.0f64..1.0, n * n).prop_map(move |data| {
        let mut m = Matrix::from_vec(n, n, data).expect("sized by construction");
        for i in 0..n {
            let row_sum: f64 = m.row(i).iter().map(|v| v.abs()).sum();
            m[(i, i)] = -(row_sum + 0.5);
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solve_has_small_residual(m in (1usize..8).prop_flat_map(dominant_matrix)) {
        let n = m.rows();
        let b = Vector::from_fn(n, |i| (i as f64 + 1.0).sin());
        let x = Lu::new(&m).unwrap().solve_vec(&b).unwrap();
        let r = m.matvec(&x).unwrap().max_abs_diff(&b);
        prop_assert!(r < 1e-9, "residual {r}");
    }

    #[test]
    fn matmul_is_associative(a in dominant_matrix(4), b in dominant_matrix(4), c in dominant_matrix(4)) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        let scale = left.max_abs().max(1.0);
        prop_assert!(left.max_abs_diff(&right) / scale < 1e-12);
    }

    #[test]
    fn transpose_reverses_products(a in dominant_matrix(3), b in dominant_matrix(3)) {
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }

    #[test]
    fn lu_inverse_roundtrips(a in dominant_matrix(5)) {
        let inv = Lu::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        prop_assert!(prod.max_abs_diff(&Matrix::identity(5)) < 1e-9);
    }

    #[test]
    fn det_of_product_is_product_of_dets(a in dominant_matrix(4), b in dominant_matrix(4)) {
        let da = Lu::new(&a).unwrap().det();
        let db = Lu::new(&b).unwrap().det();
        let dab = Lu::new(&a.matmul(&b).unwrap()).unwrap().det();
        let scale = dab.abs().max(1.0);
        prop_assert!((da * db - dab).abs() / scale < 1e-9);
    }

    #[test]
    fn expm_semigroup(a in stable_metzler(4), s in 0.05f64..2.0, t in 0.05f64..2.0) {
        let whole = expm_scaled(&a, s + t).unwrap();
        let split = expm_scaled(&a, s).unwrap().matmul(&expm_scaled(&a, t).unwrap()).unwrap();
        prop_assert!(whole.max_abs_diff(&split) < 1e-10);
    }

    #[test]
    fn expm_of_metzler_is_nonnegative(a in stable_metzler(5), t in 0.01f64..5.0) {
        // e^{At} for a Metzler matrix is element-wise nonnegative — the
        // physical fact that heat put in one node never lowers another.
        let e = expm_scaled(&a, t).unwrap();
        for v in e.as_slice() {
            prop_assert!(*v >= -1e-12, "negative propagator entry {v}");
        }
    }

    #[test]
    fn expm_of_stable_matrix_is_substochastic(a in stable_metzler(4), t in 0.1f64..10.0) {
        // Strict diagonal dominance with negative diagonal ⇒ ‖e^{At}‖∞ < 1.
        let e = expm_scaled(&a, t).unwrap();
        prop_assert!(norm_inf(&e) < 1.0 + 1e-12);
    }

    #[test]
    fn jacobi_reconstructs(a in symmetric_matrix(5)) {
        let e = SymmetricEigen::new(&a).unwrap();
        prop_assert!(e.reconstruct().unwrap().max_abs_diff(&a) < 1e-9);
        // Eigenvalues are sorted ascending.
        for w in e.values.as_slice().windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn jacobi_trace_identity(a in symmetric_matrix(6)) {
        let e = SymmetricEigen::new(&a).unwrap();
        let trace: f64 = (0..6).map(|i| a[(i, i)]).sum();
        prop_assert!((trace - e.values.sum()).abs() < 1e-9);
    }

    #[test]
    fn norms_are_consistent(a in dominant_matrix(4)) {
        // norm_fro ≤ sqrt(rank) * norm_2 ≤ ... we check the cheap relations:
        // max_abs ≤ each norm, and norms are symmetric under transpose (fro).
        let fro = norm_fro(&a);
        prop_assert!(a.max_abs() <= norm_1(&a) + 1e-12);
        prop_assert!(a.max_abs() <= norm_inf(&a) + 1e-12);
        prop_assert!(a.max_abs() <= fro + 1e-12);
        prop_assert!((fro - norm_fro(&a.transpose())).abs() < 1e-12);
    }

    #[test]
    fn expm_matches_eigen_path_for_symmetric(a in symmetric_matrix(4), t in 0.1f64..3.0) {
        let scaled = a.scaled(t);
        let via_pade = expm(&scaled).unwrap();
        let via_eigen = SymmetricEigen::new(&scaled).unwrap().map_spectrum(f64::exp).unwrap();
        let scale = via_pade.max_abs().max(1.0);
        prop_assert!(via_pade.max_abs_diff(&via_eigen) / scale < 1e-9);
    }

    #[test]
    fn vector_axpy_linearity(n in 1usize..10, s in -5.0f64..5.0) {
        let x = Vector::from_fn(n, |i| (i as f64).cos());
        let y = Vector::from_fn(n, |i| (i as f64 * 0.3).sin());
        let lhs = x.axpy(s, &y);
        let rhs = &x + &y.scaled(s);
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-14);
    }
}
