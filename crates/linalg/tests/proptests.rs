//! Property-based tests for the dense linear-algebra kernels.

use mosc_linalg::{
    expm, expm_scaled, norm_1, norm_fro, norm_inf, Lu, Matrix, SymmetricEigen, Vector,
};
use mosc_testutil::{propcheck, Rng64};

/// A well-conditioned square matrix (random entries in [-1, 1] with a
/// diagonal boost that guarantees strict diagonal dominance).
fn dominant_matrix(rng: &mut Rng64, n: usize) -> Matrix {
    let mut m = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
    for i in 0..n {
        let row_sum: f64 = m.row(i).iter().map(|v| v.abs()).sum();
        m[(i, i)] += row_sum + 1.0;
    }
    m
}

/// A symmetric matrix with entries in [-1, 1].
fn symmetric_matrix(rng: &mut Rng64, n: usize) -> Matrix {
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            let v = rng.gen_range(-1.0..1.0);
            m[(i, j)] = v;
            m[(j, i)] = v;
        }
    }
    m
}

/// A stable Metzler matrix (off-diagonal ≥ 0, strictly dominant negative
/// diagonal) — the structure of every thermal state matrix `A`.
fn stable_metzler(rng: &mut Rng64, n: usize) -> Matrix {
    let mut m = Matrix::from_fn(n, n, |_, _| rng.gen_range(0.0..1.0));
    for i in 0..n {
        let row_sum: f64 = m.row(i).iter().map(|v| v.abs()).sum();
        m[(i, i)] = -(row_sum + 0.5);
    }
    m
}

#[test]
fn lu_solve_has_small_residual() {
    propcheck("lu_solve_has_small_residual", |rng| {
        let n = rng.gen_range(1..8usize);
        let m = dominant_matrix(rng, n);
        let b = Vector::from_fn(n, |i| (i as f64 + 1.0).sin());
        let x = Lu::new(&m).unwrap().solve_vec(&b).unwrap();
        let r = m.matvec(&x).unwrap().max_abs_diff(&b);
        assert!(r < 1e-9, "residual {r}");
    });
}

#[test]
fn matmul_is_associative() {
    propcheck("matmul_is_associative", |rng| {
        let a = dominant_matrix(rng, 4);
        let b = dominant_matrix(rng, 4);
        let c = dominant_matrix(rng, 4);
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        let scale = left.max_abs().max(1.0);
        assert!(left.max_abs_diff(&right) / scale < 1e-12);
    });
}

#[test]
fn transpose_reverses_products() {
    propcheck("transpose_reverses_products", |rng| {
        let a = dominant_matrix(rng, 3);
        let b = dominant_matrix(rng, 3);
        let lhs = a.matmul(&b).unwrap().transpose();
        let rhs = b.transpose().matmul(&a.transpose()).unwrap();
        assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    });
}

#[test]
fn lu_inverse_roundtrips() {
    propcheck("lu_inverse_roundtrips", |rng| {
        let a = dominant_matrix(rng, 5);
        let inv = Lu::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.max_abs_diff(&Matrix::identity(5)) < 1e-9);
    });
}

#[test]
fn det_of_product_is_product_of_dets() {
    propcheck("det_of_product_is_product_of_dets", |rng| {
        let a = dominant_matrix(rng, 4);
        let b = dominant_matrix(rng, 4);
        let da = Lu::new(&a).unwrap().det();
        let db = Lu::new(&b).unwrap().det();
        let dab = Lu::new(&a.matmul(&b).unwrap()).unwrap().det();
        let scale = dab.abs().max(1.0);
        assert!((da * db - dab).abs() / scale < 1e-9);
    });
}

#[test]
fn expm_semigroup() {
    propcheck("expm_semigroup", |rng| {
        let a = stable_metzler(rng, 4);
        let s = rng.gen_range(0.05..2.0);
        let t = rng.gen_range(0.05..2.0);
        let whole = expm_scaled(&a, s + t).unwrap();
        let split = expm_scaled(&a, s).unwrap().matmul(&expm_scaled(&a, t).unwrap()).unwrap();
        assert!(whole.max_abs_diff(&split) < 1e-10);
    });
}

#[test]
fn expm_of_metzler_is_nonnegative() {
    propcheck("expm_of_metzler_is_nonnegative", |rng| {
        // e^{At} for a Metzler matrix is element-wise nonnegative — the
        // physical fact that heat put in one node never lowers another.
        let a = stable_metzler(rng, 5);
        let t = rng.gen_range(0.01..5.0);
        let e = expm_scaled(&a, t).unwrap();
        for v in e.as_slice() {
            assert!(*v >= -1e-12, "negative propagator entry {v}");
        }
    });
}

#[test]
fn expm_of_stable_matrix_is_substochastic() {
    propcheck("expm_of_stable_matrix_is_substochastic", |rng| {
        // Strict diagonal dominance with negative diagonal ⇒ ‖e^{At}‖∞ < 1.
        let a = stable_metzler(rng, 4);
        let t = rng.gen_range(0.1..10.0);
        let e = expm_scaled(&a, t).unwrap();
        assert!(norm_inf(&e) < 1.0 + 1e-12);
    });
}

#[test]
fn jacobi_reconstructs() {
    propcheck("jacobi_reconstructs", |rng| {
        let a = symmetric_matrix(rng, 5);
        let e = SymmetricEigen::new(&a).unwrap();
        assert!(e.reconstruct().unwrap().max_abs_diff(&a) < 1e-9);
        // Eigenvalues are sorted ascending.
        for w in e.values.as_slice().windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    });
}

#[test]
fn jacobi_trace_identity() {
    propcheck("jacobi_trace_identity", |rng| {
        let a = symmetric_matrix(rng, 6);
        let e = SymmetricEigen::new(&a).unwrap();
        let trace: f64 = (0..6).map(|i| a[(i, i)]).sum();
        assert!((trace - e.values.sum()).abs() < 1e-9);
    });
}

#[test]
fn norms_are_consistent() {
    propcheck("norms_are_consistent", |rng| {
        // max_abs ≤ each norm, and the Frobenius norm is transpose-invariant.
        let a = dominant_matrix(rng, 4);
        let fro = norm_fro(&a);
        assert!(a.max_abs() <= norm_1(&a) + 1e-12);
        assert!(a.max_abs() <= norm_inf(&a) + 1e-12);
        assert!(a.max_abs() <= fro + 1e-12);
        assert!((fro - norm_fro(&a.transpose())).abs() < 1e-12);
    });
}

#[test]
fn expm_matches_eigen_path_for_symmetric() {
    propcheck("expm_matches_eigen_path_for_symmetric", |rng| {
        let a = symmetric_matrix(rng, 4);
        let t = rng.gen_range(0.1..3.0);
        let scaled = a.scaled(t);
        let via_pade = expm(&scaled).unwrap();
        let via_eigen = SymmetricEigen::new(&scaled).unwrap().map_spectrum(f64::exp).unwrap();
        let scale = via_pade.max_abs().max(1.0);
        assert!(via_pade.max_abs_diff(&via_eigen) / scale < 1e-9);
    });
}

#[test]
fn vector_axpy_linearity() {
    propcheck("vector_axpy_linearity", |rng| {
        let n = rng.gen_range(1..10usize);
        let s = rng.gen_range(-5.0..5.0);
        let x = Vector::from_fn(n, |i| (i as f64).cos());
        let y = Vector::from_fn(n, |i| (i as f64 * 0.3).sin());
        let lhs = x.axpy(s, &y);
        let rhs = &x + &y.scaled(s);
        assert!(lhs.max_abs_diff(&rhs) < 1e-14);
    });
}
