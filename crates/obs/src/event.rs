//! Structured solver-decision events.
//!
//! An event is a named record with typed fields — "AO selected m = 3 with
//! stop reason `patience`", "`BnB` finished with 120 thermal prunes". Events
//! are for *decisions*, not per-iteration samples: they go through a global
//! mutex and are capped at [`MAX_EVENTS`] per run, so emit them at
//! phase/solution granularity and use counters/histograms inside loops.

use std::sync::Mutex;

/// Hard cap on retained events per run; later events are dropped (the drop
/// count is reported in the snapshot so truncation is never silent).
pub const MAX_EVENTS: usize = 4096;

/// A typed event field value.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer field (counts, indices, m values).
    U64(u64),
    /// Signed integer field.
    I64(i64),
    /// Floating-point field (temperatures, throughputs).
    F64(f64),
    /// Short static label (stop reasons, algorithm names).
    Str(&'static str),
    /// Boolean field (feasibility flags).
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        Self::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        Self::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        Self::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        Self::F64(v)
    }
}

impl From<&'static str> for FieldValue {
    fn from(v: &'static str) -> Self {
        Self::Str(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}

struct EventLog {
    records: Vec<crate::report::EventRecord>,
    dropped: u64,
}

static LOG: Mutex<EventLog> = Mutex::new(EventLog { records: Vec::new(), dropped: 0 });

fn log() -> std::sync::MutexGuard<'static, EventLog> {
    LOG.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Records one decision event with its fields, in call order. No-op while
/// the recorder is disabled; silently counted as dropped past
/// [`MAX_EVENTS`].
pub fn event(name: &'static str, fields: &[(&'static str, FieldValue)]) {
    if !crate::enabled() {
        return;
    }
    let mut log = log();
    if log.records.len() >= MAX_EVENTS {
        log.dropped += 1;
        return;
    }
    log.records.push(crate::report::EventRecord {
        name: name.to_string(),
        fields: fields.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect(),
    });
}

/// Clears the event log and the dropped counter.
pub(crate) fn reset() {
    let mut log = log();
    log.records.clear();
    log.dropped = 0;
}

/// Snapshot of recorded events in emission order plus the dropped count.
pub(crate) fn collect() -> (Vec<crate::report::EventRecord>, u64) {
    let log = log();
    (log.records.clone(), log.dropped)
}

/// Takes the event log, leaving it empty: an event racing the drain lands
/// in this window or the next, never both. Draining also re-opens the
/// [`MAX_EVENTS`] budget for the next window.
pub(crate) fn drain_collect() -> (Vec<crate::report::EventRecord>, u64) {
    let mut log = log();
    let records = std::mem::take(&mut log.records);
    let dropped = std::mem::replace(&mut log.dropped, 0);
    (records, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn events_record_in_order_with_typed_fields() {
        let _guard = test_lock::hold();
        crate::enable();
        crate::reset();
        event("ev.first", &[("m", 3u64.into()), ("tpt", 1.5.into())]);
        event(
            "ev.second",
            &[("stop", "patience".into()), ("ok", true.into()), ("d", (-2i64).into())],
        );
        let t = crate::snapshot();
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].name, "ev.first");
        assert_eq!(evs[0].fields[0], ("m".to_string(), FieldValue::U64(3)));
        assert_eq!(evs[1].fields[0], ("stop".to_string(), FieldValue::Str("patience")));
        assert_eq!(evs[1].fields[1], ("ok".to_string(), FieldValue::Bool(true)));
        assert_eq!(evs[1].fields[2], ("d".to_string(), FieldValue::I64(-2)));
        crate::disable();
        crate::reset();
    }

    #[test]
    fn event_log_caps_and_counts_drops() {
        let _guard = test_lock::hold();
        crate::enable();
        crate::reset();
        for _ in 0..(MAX_EVENTS + 10) {
            event("ev.flood", &[]);
        }
        let t = crate::snapshot();
        assert_eq!(t.events().len(), MAX_EVENTS);
        assert_eq!(t.events_dropped(), 10);
        crate::disable();
        crate::reset();
    }
}
