//! A flight recorder: a fixed-size, lock-light ring buffer of compact
//! span/event entries that is cheap enough to leave on in production and is
//! snapshotted *after* something went wrong — the post-mortem counterpart
//! to the live span tree in [`crate::TraceContext`].
//!
//! The ring records continuously and forgets continuously: every entry is
//! stamped with a global sequence number, the newest `capacity` entries are
//! retained, and everything older is implicitly dropped (the snapshot
//! reports how many). Recording never allocates, never blocks, and never
//! waits on a reader: a writer claims a slot with one `fetch_add` and
//! publishes it with two release stores. Readers validate each slot's
//! sequence stamp before and after copying the payload, so an entry being
//! overwritten mid-read is detected and counted as *torn* rather than
//! surfacing corrupt data.
//!
//! While disabled (the initial state), [`FlightRecorder::record`] is one
//! relaxed load and an early return — the same inertness contract as the
//! global recorder, pinned by `disabled_flight_recorder_is_inert`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Default ring capacity: enough for a few thousand request lifecycles of
/// history at four entries per request.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// What one flight entry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FlightKind {
    /// A request line arrived; `value` is the connection id.
    Recv = 1,
    /// A job entered the worker queue; `value` is the queue depth after.
    Enqueue = 2,
    /// A worker picked the job up; `value` is the queue wait in µs.
    Dequeue = 3,
    /// The response was recorded; `value` is the total latency in µs.
    Done = 4,
    /// The bounded queue was full and the request was shed; `value` is the
    /// queue capacity.
    Overload = 5,
    /// A per-request deadline expired; `value` is the overshoot in µs.
    Deadline = 6,
    /// A request finished over the slow threshold; `value` is the total
    /// latency in µs.
    Slow = 7,
    /// A worker panicked while processing; `value` is the connection id.
    Panic = 8,
}

impl FlightKind {
    /// The JSONL spelling of this kind.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Recv => "recv",
            Self::Enqueue => "enqueue",
            Self::Dequeue => "dequeue",
            Self::Done => "done",
            Self::Overload => "overload",
            Self::Deadline => "deadline",
            Self::Slow => "slow",
            Self::Panic => "panic",
        }
    }

    fn from_u64(v: u64) -> Option<Self> {
        match v {
            1 => Some(Self::Recv),
            2 => Some(Self::Enqueue),
            3 => Some(Self::Dequeue),
            4 => Some(Self::Done),
            5 => Some(Self::Overload),
            6 => Some(Self::Deadline),
            7 => Some(Self::Slow),
            8 => Some(Self::Panic),
            _ => None,
        }
    }
}

/// One ring slot: the sequence stamp plus six payload words, all atomics so
/// the whole structure stays `unsafe`-free. `seq` holds `claim + 1` once
/// the payload is published and `0` while a writer is mid-flight, so a
/// reader can tell "consistent", "being rewritten" and "never written"
/// apart without a lock.
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    t_us: AtomicU64,
    kind: AtomicU64,
    trace_hi: AtomicU64,
    trace_lo: AtomicU64,
    span_id: AtomicU64,
    value: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Self {
            seq: AtomicU64::new(0),
            t_us: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            trace_hi: AtomicU64::new(0),
            trace_lo: AtomicU64::new(0),
            span_id: AtomicU64::new(0),
            value: AtomicU64::new(0),
        }
    }
}

/// The fixed-size ring. Owned (not a `static`): the serve daemon creates
/// one per process and shares it behind its `Arc<Shared>`.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    mask: u64,
    head: AtomicU64,
    enabled: AtomicBool,
    start: Instant,
}

impl FlightRecorder {
    /// Builds a disabled recorder whose capacity is `capacity` rounded up
    /// to a power of two (at least 8). Allocation happens here, once —
    /// never on the record path.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        Self {
            slots: (0..cap).map(|_| Slot::empty()).collect(),
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
            enabled: AtomicBool::new(false),
            start: Instant::now(),
        }
    }

    /// The ring capacity (a power of two).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Arms the recorder.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Disarms the recorder; entries already in the ring stay readable.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// `true` while the recorder is armed.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Records one entry. Lock-free: one `fetch_add` to claim a slot, then
    /// plain stores; no allocation. While disabled this is one relaxed
    /// load and an early return.
    pub fn record(&self, kind: FlightKind, trace_id: u128, span_id: u64, value: u64) {
        if !self.is_enabled() {
            return;
        }
        #[allow(clippy::cast_possible_truncation)]
        let t_us = self.start.elapsed().as_micros() as u64;
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        #[allow(clippy::cast_possible_truncation)]
        let slot = &self.slots[(seq & self.mask) as usize];
        // Publish protocol: mark the slot busy (seq = 0), write the
        // payload, then publish `seq + 1`. A reader that sees the right
        // stamp both before and after its payload copy read a consistent
        // entry; every interleaving with this writer changes the stamp.
        slot.seq.store(0, Ordering::Release);
        slot.t_us.store(t_us, Ordering::Relaxed);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        #[allow(clippy::cast_possible_truncation)]
        slot.trace_hi.store((trace_id >> 64) as u64, Ordering::Relaxed);
        #[allow(clippy::cast_possible_truncation)]
        slot.trace_lo.store(trace_id as u64, Ordering::Relaxed);
        slot.span_id.store(span_id, Ordering::Relaxed);
        slot.value.store(value, Ordering::Relaxed);
        slot.seq.store(seq + 1, Ordering::Release);
    }

    /// Copies the ring's retained window into plain data, oldest first.
    /// Entries being overwritten while the copy runs are skipped and
    /// counted in [`FlightSnapshot::torn`]; entries already pushed out of
    /// the window are counted in [`FlightSnapshot::dropped`].
    #[must_use]
    pub fn snapshot(&self) -> FlightSnapshot {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let lo = head.saturating_sub(cap);
        let mut entries = Vec::with_capacity((head - lo) as usize);
        let mut torn = 0u64;
        for seq in lo..head {
            #[allow(clippy::cast_possible_truncation)]
            let slot = &self.slots[(seq & self.mask) as usize];
            if slot.seq.load(Ordering::Acquire) != seq + 1 {
                torn += 1;
                continue;
            }
            let entry = FlightEntry {
                seq,
                t_us: slot.t_us.load(Ordering::Relaxed),
                kind: FlightKind::from_u64(slot.kind.load(Ordering::Relaxed)),
                trace_id: (u128::from(slot.trace_hi.load(Ordering::Relaxed)) << 64)
                    | u128::from(slot.trace_lo.load(Ordering::Relaxed)),
                span_id: slot.span_id.load(Ordering::Relaxed),
                value: slot.value.load(Ordering::Relaxed),
            };
            if slot.seq.load(Ordering::Acquire) != seq + 1 {
                torn += 1;
                continue;
            }
            if entry.kind.is_none() {
                torn += 1;
                continue;
            }
            entries.push(entry);
        }
        FlightSnapshot { head, capacity: self.slots.len(), dropped: lo, torn, entries }
    }
}

/// One consistent entry copied out of the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEntry {
    /// Global sequence number (monotone across the whole run).
    pub seq: u64,
    /// Microseconds since the recorder was built.
    pub t_us: u64,
    /// What happened; `None` never escapes [`FlightRecorder::snapshot`]
    /// (unreadable kinds count as torn).
    pub kind: Option<FlightKind>,
    /// The distributed trace this entry belongs to (0 for untraced work).
    pub trace_id: u128,
    /// The span within the trace (0 for untraced work).
    pub span_id: u64,
    /// Kind-specific payload (see [`FlightKind`]).
    pub value: u64,
}

/// A frozen copy of the ring plus its drop accounting — the payload of a
/// `{"type":"flight_dump"}` artifact line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightSnapshot {
    /// Total entries ever claimed (the next sequence number).
    pub head: u64,
    /// The ring capacity at snapshot time.
    pub capacity: usize,
    /// Entries lost to ring overwrite before this snapshot: `max(0, head -
    /// capacity)`.
    pub dropped: u64,
    /// Entries in the retained window that could not be read consistently
    /// (mid-rewrite during the copy).
    pub torn: u64,
    /// The consistent entries, oldest first, sequence strictly increasing.
    pub entries: Vec<FlightEntry>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_flight_recorder_is_inert() {
        // The overhead guard: a disabled recorder must take the early-out
        // path — no slot claims, no timestamps, nothing for a snapshot to
        // see. Asserted structurally, like `disabled_recorder_is_inert`.
        let r = FlightRecorder::new(64);
        assert!(!r.is_enabled(), "flight recorders start disabled");
        for i in 0..100 {
            r.record(FlightKind::Recv, 1, i, i);
        }
        let s = r.snapshot();
        assert_eq!(s.head, 0, "disabled record must not claim slots");
        assert_eq!(s.dropped, 0);
        assert_eq!(s.torn, 0);
        assert!(s.entries.is_empty());
    }

    #[test]
    fn ring_retains_newest_and_counts_dropped() {
        let r = FlightRecorder::new(8);
        r.enable();
        assert_eq!(r.capacity(), 8);
        for i in 0..20u64 {
            r.record(FlightKind::Done, u128::from(i) + 1, i, i * 10);
        }
        let s = r.snapshot();
        assert_eq!(s.head, 20);
        assert_eq!(s.dropped, 12, "everything older than the window is dropped");
        assert_eq!(s.torn, 0);
        assert_eq!(s.entries.len(), 8);
        // Oldest first, strictly increasing seq, newest entry is the last
        // record call.
        let seqs: Vec<u64> = s.entries.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<u64>>());
        let last = s.entries.last().unwrap();
        assert_eq!(last.kind, Some(FlightKind::Done));
        assert_eq!(last.trace_id, 20);
        assert_eq!(last.span_id, 19);
        assert_eq!(last.value, 190);
    }

    #[test]
    fn capacity_rounds_up_to_a_power_of_two() {
        assert_eq!(FlightRecorder::new(0).capacity(), 8);
        assert_eq!(FlightRecorder::new(100).capacity(), 128);
        assert_eq!(FlightRecorder::new(4096).capacity(), 4096);
    }

    #[test]
    fn concurrent_writers_never_produce_inconsistent_entries() {
        use std::sync::Arc;
        let r = Arc::new(FlightRecorder::new(64));
        r.enable();
        let writers: Vec<_> = (0..4u64)
            .map(|w| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..2000u64 {
                        // Per-writer invariant: value == span_id * 3, so a
                        // torn read that slipped through would be visible.
                        let span = w * 1_000_000 + i;
                        r.record(FlightKind::Enqueue, u128::from(w) + 1, span, span * 3);
                    }
                })
            })
            .collect();
        for _ in 0..50 {
            let s = r.snapshot();
            let mut prev = None;
            for e in &s.entries {
                assert!(prev.is_none_or(|p| e.seq > p), "seq must strictly increase");
                prev = Some(e.seq);
                assert_eq!(e.value, e.span_id * 3, "entry payload must be consistent");
            }
            assert!(s.entries.len() as u64 + s.torn <= s.head.min(64));
        }
        for w in writers {
            w.join().unwrap();
        }
        let s = r.snapshot();
        assert_eq!(s.head, 8000);
        assert_eq!(s.torn, 0, "quiescent ring has no torn entries");
        assert_eq!(s.entries.len(), 64);
    }
}
