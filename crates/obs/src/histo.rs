//! Log-bucketed latency histograms with quantile estimation.
//!
//! The streaming [`crate::Histogram`] keeps only count/sum/min/max — enough
//! for solver search statistics, useless for tail latency. A
//! [`LogHistogram`] adds a fixed set of logarithmically spaced buckets
//! (eight per decade from 1 µs to 1000 s, plus an underflow and an overflow
//! bucket), so p50/p90/p99 estimates carry a bounded *relative* error of one
//! bucket ratio (10^(1/8) ≈ 1.33×) across nine decades of latency, with
//! `const` construction and lock-free relaxed-atomic recording.
//!
//! [`LogHistogram`] is a standalone primitive: unlike [`crate::Counter`] it
//! does not register into the global telemetry snapshot, because its main
//! consumer (`mosc-serve`) owns one histogram per request phase per op and
//! renders them itself (Prometheus text exposition, the `stats` wire op).
//! It can still be declared as a `static` when a process-global histogram is
//! wanted. Recording is gated on the global recorder like every other
//! primitive: while [`crate::enabled`] is false, [`LogHistogram::record`] is
//! one relaxed load and an early return.
//!
//! [`HistoSnapshot`] freezes a histogram into plain data that can be
//! **merged** with other snapshots (same fixed layout, so merging is
//! element-wise) — that is how per-op histograms fold into one service-wide
//! quantile — and queried for [`HistoSnapshot::quantile`].

use crate::metric::{f64_to_ordered, ordered_to_f64};
use std::sync::atomic::{AtomicU64, Ordering};

/// Buckets per decade: relative resolution 10^(1/8) ≈ 1.33×.
const PER_DECADE: usize = 8;
/// Covered decades: `[1e-6, 1e3)` seconds.
const DECADES: usize = 9;
/// Smallest finite bucket boundary (values at or below land in bucket 0).
const MIN_BOUND: f64 = 1e-6;
/// Total bucket count: underflow + finite buckets + overflow.
pub const LOG_BUCKETS: usize = DECADES * PER_DECADE + 2;

/// Upper bound of bucket `i` (inclusive). Bucket 0 is `(-inf, 1e-6]`, the
/// last bucket is `(1e3, +inf)` and reports `f64::INFINITY`.
#[must_use]
pub fn bucket_upper(i: usize) -> f64 {
    if i == 0 {
        MIN_BOUND
    } else if i >= LOG_BUCKETS - 1 {
        f64::INFINITY
    } else {
        #[allow(clippy::cast_precision_loss)]
        let exp = i as f64 / PER_DECADE as f64;
        MIN_BOUND * 10f64.powf(exp)
    }
}

/// The bucket index a sample falls into.
pub(crate) fn bucket_index(v: f64) -> usize {
    if v <= MIN_BOUND {
        return 0;
    }
    let exp = (v / MIN_BOUND).log10() * PER_DECADE as f64;
    // `ceil` puts a value exactly on a boundary into the bucket it bounds
    // (upper bounds are inclusive); float fuzz at boundaries only ever moves
    // a sample to the neighbouring bucket, which stays within the error bar.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let idx = exp.ceil().max(1.0) as usize;
    idx.min(LOG_BUCKETS - 1)
}

/// The most recent `(trace id, value)` sample retained for one bucket —
/// the `OpenMetrics` exemplar concept: a concrete request you can open when a
/// bucket's count alone ("p99 is 40 ms") is not actionable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exemplar {
    /// The distributed trace id of the exemplified sample (never 0).
    pub trace_id: u128,
    /// The sample value itself.
    pub value: f64,
}

/// One bucket's exemplar slot: a tiny seqlock over three payload words, so
/// concurrent stamps and reads stay `unsafe`-free and lock-free. `seq` is
/// even when the payload is consistent (0 = never written) and odd while a
/// writer is mid-stamp; a concurrent writer simply drops its stamp —
/// exemplars are "most recent", not "every".
#[derive(Debug)]
struct ExemplarSlot {
    seq: AtomicU64,
    trace_hi: AtomicU64,
    trace_lo: AtomicU64,
    value_bits: AtomicU64,
}

impl ExemplarSlot {
    const fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
            trace_hi: AtomicU64::new(0),
            trace_lo: AtomicU64::new(0),
            value_bits: AtomicU64::new(0),
        }
    }

    fn stamp(&self, trace_id: u128, value: f64) {
        let s = self.seq.load(Ordering::Relaxed);
        if s & 1 == 1 {
            return;
        }
        if self.seq.compare_exchange(s, s + 1, Ordering::Acquire, Ordering::Relaxed).is_err() {
            return;
        }
        #[allow(clippy::cast_possible_truncation)]
        self.trace_hi.store((trace_id >> 64) as u64, Ordering::Relaxed);
        #[allow(clippy::cast_possible_truncation)]
        self.trace_lo.store(trace_id as u64, Ordering::Relaxed);
        self.value_bits.store(value.to_bits(), Ordering::Relaxed);
        self.seq.store(s + 2, Ordering::Release);
    }

    fn load(&self) -> Option<Exemplar> {
        let s1 = self.seq.load(Ordering::Acquire);
        if s1 == 0 || s1 & 1 == 1 {
            return None;
        }
        let trace_id = (u128::from(self.trace_hi.load(Ordering::Relaxed)) << 64)
            | u128::from(self.trace_lo.load(Ordering::Relaxed));
        let value = f64::from_bits(self.value_bits.load(Ordering::Relaxed));
        if self.seq.load(Ordering::Acquire) != s1 {
            return None;
        }
        Some(Exemplar { trace_id, value })
    }
}

/// A fixed-layout, log-bucketed histogram. `const`-constructible, so it can
/// be a `static` or an owned struct field; recording is lock-free and inert
/// while the recorder is disabled.
#[derive(Debug)]
pub struct LogHistogram {
    name: &'static str,
    counts: [AtomicU64; LOG_BUCKETS],
    /// Sum of samples, `f64` bits updated through a CAS loop.
    sum_bits: AtomicU64,
    /// Min/max as ordered keys (see `metric::f64_to_ordered`).
    min_key: AtomicU64,
    max_key: AtomicU64,
    /// Per-bucket most-recent exemplars (stamped only by
    /// [`Self::record_traced`] with a nonzero trace id).
    exemplars: [ExemplarSlot; LOG_BUCKETS],
}

impl LogHistogram {
    /// Declares a histogram. `const`, so it can initialise a `static` or a
    /// struct field without allocation.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        #[allow(clippy::declare_interior_mutable_const)]
        const EMPTY: ExemplarSlot = ExemplarSlot::new();
        Self {
            name,
            counts: [ZERO; LOG_BUCKETS],
            sum_bits: AtomicU64::new(0),
            min_key: AtomicU64::new(u64::MAX),
            max_key: AtomicU64::new(0),
            exemplars: [EMPTY; LOG_BUCKETS],
        }
    }

    /// The histogram's name, e.g. `"serve.latency.ao.total"`.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one sample (seconds, or any positive quantity). NaN samples
    /// are dropped. No-op while the recorder is disabled.
    pub fn record(&self, v: f64) {
        self.record_traced(v, 0);
    }

    /// Records one sample and, when `trace_id` is nonzero, stamps it as the
    /// bucket's most-recent exemplar. Same gating as [`Self::record`].
    pub fn record_traced(&self, v: f64, trace_id: u128) {
        if !crate::enabled() || v.is_nan() {
            return;
        }
        let idx = bucket_index(v);
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        if trace_id != 0 {
            self.exemplars[idx].stamp(trace_id, v);
        }
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        let key = f64_to_ordered(v);
        self.min_key.fetch_min(key, Ordering::Relaxed);
        self.max_key.fetch_max(key, Ordering::Relaxed);
    }

    /// Freezes the current state into a mergeable, queryable snapshot.
    #[must_use]
    pub fn snapshot(&self) -> HistoSnapshot {
        let mut counts = [0u64; LOG_BUCKETS];
        let mut total = 0u64;
        for (slot, c) in counts.iter_mut().zip(&self.counts) {
            *slot = c.load(Ordering::Relaxed);
            total += *slot;
        }
        HistoSnapshot {
            counts,
            count: total,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: ordered_to_f64(self.min_key.load(Ordering::Relaxed)),
            max: ordered_to_f64(self.max_key.load(Ordering::Relaxed)),
        }
    }

    /// `true` when no sample has ever been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|c| c.load(Ordering::Relaxed) == 0)
    }

    /// The most-recent exemplar of bucket `i`, when one was ever stamped.
    #[must_use]
    pub fn exemplar(&self, i: usize) -> Option<Exemplar> {
        self.exemplars.get(i).and_then(ExemplarSlot::load)
    }

    /// Every stamped exemplar as `(bucket index, exemplar)`, ascending.
    /// Separate from [`HistoSnapshot`] on purpose: snapshots are `Copy`
    /// plain data that merge element-wise, while exemplars are per-instance
    /// pointers into a trace store and do not merge.
    #[must_use]
    pub fn exemplars(&self) -> Vec<(usize, Exemplar)> {
        (0..LOG_BUCKETS).filter_map(|i| self.exemplar(i).map(|e| (i, e))).collect()
    }
}

/// A frozen [`LogHistogram`]: plain data, mergeable with other snapshots of
/// the same (fixed) layout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistoSnapshot {
    /// Per-bucket sample counts (see [`bucket_upper`] for the boundaries).
    pub counts: [u64; LOG_BUCKETS],
    /// Total recorded samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample (meaningless while `count == 0`).
    pub min: f64,
    /// Largest sample (meaningless while `count == 0`).
    pub max: f64,
}

impl Default for HistoSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistoSnapshot {
    /// A snapshot with no samples — the identity element of [`merge`].
    ///
    /// [`merge`]: Self::merge
    #[must_use]
    pub fn empty() -> Self {
        Self {
            counts: [0; LOG_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds `other` into `self` bucket-by-bucket. Snapshots share one fixed
    /// layout, so merging loses nothing: quantiles of the merge equal
    /// quantiles of the concatenated sample streams (up to bucket width).
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Mean sample value (0 while empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.sum / self.count as f64
            }
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the
    /// bucket holding the rank-`ceil(q·count)` sample, clamped to the
    /// observed maximum. The estimate never under-reports: the true quantile
    /// `x` satisfies `x <= estimate <= x · 10^(1/8)` for samples inside the
    /// bucketed range (below 1 µs the error is absolute, bounded by 1 µs).
    /// Returns `None` while empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Cumulative bucket counts paired with their inclusive upper bounds —
    /// the exact shape of a Prometheus histogram exposition (`le` labels).
    /// The final entry is `(+inf, count)`.
    #[must_use]
    pub fn cumulative(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::with_capacity(LOG_BUCKETS);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            out.push((bucket_upper(i), cum));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn bucket_bounds_are_monotone_and_cover() {
        let mut prev = 0.0;
        for i in 0..LOG_BUCKETS - 1 {
            let b = bucket_upper(i);
            assert!(b > prev, "bucket {i} bound {b} <= {prev}");
            prev = b;
        }
        assert!(bucket_upper(LOG_BUCKETS - 1).is_infinite());
        // Every positive float lands in exactly one bucket whose bound
        // covers it.
        for v in [1e-9, 1e-6, 3.2e-4, 0.5, 1.0, 999.0, 1e4] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper(i), "{v} above its bucket bound");
            if i > 0 {
                assert!(v > bucket_upper(i - 1), "{v} below its bucket's lower bound");
            }
        }
    }

    #[test]
    fn quantiles_track_recorded_samples() {
        let _guard = test_lock::hold();
        crate::enable();
        let h = LogHistogram::new("histo.quantiles");
        for i in 1..=100 {
            h.record(f64::from(i) * 1e-3); // 1 ms .. 100 ms
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        let ratio = 10f64.powf(1.0 / 8.0);
        for (q, exact) in [(0.5, 0.050), (0.9, 0.090), (0.99, 0.099), (1.0, 0.100)] {
            let est = s.quantile(q).unwrap();
            assert!(est >= exact - 1e-12, "q{q}: {est} under-reports {exact}");
            assert!(est <= exact * ratio + 1e-12, "q{q}: {est} over-reports {exact}");
        }
        assert!(s.quantile(1.0).unwrap() <= s.max, "q1.0 is clamped to the observed max");
        crate::disable();
    }

    #[test]
    fn merge_equals_concatenation() {
        let _guard = test_lock::hold();
        crate::enable();
        let a = LogHistogram::new("histo.merge_a");
        let b = LogHistogram::new("histo.merge_b");
        let all = LogHistogram::new("histo.merge_all");
        for i in 1..=40 {
            let v = f64::from(i) * 2.5e-4;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        let direct = all.snapshot();
        assert_eq!(merged.counts, direct.counts);
        assert_eq!(merged.count, direct.count);
        assert!((merged.sum - direct.sum).abs() < 1e-12);
        assert_eq!(merged.min, direct.min);
        assert_eq!(merged.max, direct.max);
        crate::disable();
    }

    #[test]
    fn cumulative_is_monotone_and_ends_at_count() {
        let _guard = test_lock::hold();
        crate::enable();
        let h = LogHistogram::new("histo.cum");
        for v in [1e-5, 1e-4, 1e-4, 0.3, 2000.0] {
            h.record(v);
        }
        let s = h.snapshot();
        let cum = s.cumulative();
        assert_eq!(cum.len(), LOG_BUCKETS);
        let mut prev = 0;
        for &(_, c) in &cum {
            assert!(c >= prev);
            prev = c;
        }
        assert_eq!(cum.last().unwrap().1, s.count);
        crate::disable();
    }

    #[test]
    fn disabled_histogram_records_nothing() {
        let _guard = test_lock::hold();
        crate::disable();
        let h = LogHistogram::new("histo.inert");
        h.record(0.5);
        h.record_traced(0.5, 42);
        assert!(h.is_empty());
        assert_eq!(h.snapshot().count, 0);
        assert_eq!(h.snapshot().quantile(0.5), None);
        assert!(h.exemplars().is_empty(), "disabled record_traced must not stamp exemplars");
    }

    #[test]
    fn exemplars_keep_the_most_recent_traced_sample_per_bucket() {
        let _guard = test_lock::hold();
        crate::enable();
        let h = LogHistogram::new("histo.exemplars");
        h.record(0.009); // untraced: counts, but no exemplar
        assert!(h.exemplars().is_empty());
        assert_eq!(bucket_index(0.008), bucket_index(0.009));
        h.record_traced(0.008, 0xaaaa);
        h.record_traced(0.009, 0xbbbb); // same bucket: replaces
        h.record_traced(5.0, 0xcccc); // different bucket
        h.record_traced(5.0, 0); // zero trace id: counts, no stamp
        let ex = h.exemplars();
        assert_eq!(ex.len(), 2);
        let (i_fast, fast) = ex[0];
        let (i_slow, slow) = ex[1];
        assert!(i_fast < i_slow);
        assert_eq!(fast.trace_id, 0xbbbb, "newest stamp wins within a bucket");
        assert!((fast.value - 0.009).abs() < 1e-12);
        assert_eq!(slow.trace_id, 0xcccc);
        assert_eq!(h.exemplar(i_slow), Some(slow));
        assert_eq!(h.exemplar(i_slow + 1), None);
        // Counts are unaffected by tracing: five samples total.
        assert_eq!(h.snapshot().count, 5);
        crate::disable();
    }
}
