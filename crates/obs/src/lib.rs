//! Zero-dependency observability for the mosc workspace: nested timing
//! spans, a metrics registry, and a structured log of solver decisions.
//!
//! The AO/PCO solvers are iterative searches whose cost is dominated by
//! repeated steady-state evaluations through the matrix exponential; this
//! crate makes those searches visible without adding any crates.io
//! dependency and without slowing the common path down. Three primitives:
//!
//! * **Spans** ([`span`], [`span!`]) — RAII guards recording nested wall
//!   time into a thread-local tree. When the root span of a thread closes,
//!   the tree is merged into a global aggregate keyed by call path
//!   (`"ao.solve/ao.sweep_m"`), so repeated calls fold into one node with a
//!   call count, total time, and derived self time.
//! * **Metrics** ([`Counter`], [`Gauge`], [`Histogram`]) — named values
//!   declared as `static`s at their point of use and registered lazily on
//!   first touch. Counters are monotonically increasing `u64`s
//!   (`expm.calls`), gauges hold one `f64`, histograms keep streaming
//!   count/sum/min/max summaries.
//! * **Events** ([`event`]) — structured records of solver decisions (the
//!   chosen oscillation factor, each TPT swap, `BnB` incumbents) with typed
//!   fields, capped at [`MAX_EVENTS`] per run.
//!
//! Everything routes through one process-global recorder that is **disabled
//! by default**: the disabled fast path of every primitive is a single
//! relaxed atomic load and an early return, so release binaries keep their
//! performance unless a run opts in via [`enable`] (the CLI's `--obs` flag
//! or the bench harness). [`snapshot`] freezes the current state into a
//! [`Telemetry`] value that renders as a human report
//! ([`Telemetry::render_pretty`]) or as JSONL ([`Telemetry::to_jsonl`])
//! whose lines parse with `mosc-analyze`'s JSON reader — that is the format
//! the `M05x` telemetry lints and `BENCH_obs.json` consume.
//!
//! ```
//! static SOLVES: mosc_obs::Counter = mosc_obs::Counter::new("demo.solves");
//!
//! mosc_obs::enable();
//! {
//!     let _solve = mosc_obs::span("demo.solve");
//!     let _inner = mosc_obs::span("demo.inner");
//!     SOLVES.incr();
//!     mosc_obs::event("demo.done", &[("best", 42.0.into())]);
//! }
//! let t = mosc_obs::snapshot();
//! assert_eq!(t.counter("demo.solves"), Some(1));
//! assert!(t.span_path("demo.solve/demo.inner").is_some());
//! mosc_obs::disable();
//! mosc_obs::reset();
//! ```

mod event;
mod flight;
mod histo;
mod metric;
mod rate;
mod report;
mod span;
mod timeline;
mod trace;

pub use event::{event, FieldValue, MAX_EVENTS};
pub use flight::{
    FlightEntry, FlightKind, FlightRecorder, FlightSnapshot, DEFAULT_FLIGHT_CAPACITY,
};
pub use histo::{bucket_upper, Exemplar, HistoSnapshot, LogHistogram, LOG_BUCKETS};
pub use metric::{counter_value, Counter, CounterCell, Gauge, Histogram};
pub use rate::RateWindow;
pub use report::{EventRecord, HistSummary, SpanStats, Telemetry};
pub use span::{span, SpanGuard};
pub use timeline::{Timeline, TimelineWindow, MAX_GAP_WINDOWS};
pub use trace::{TraceContext, TraceSnapshot};

use std::sync::atomic::{AtomicBool, Ordering};

/// The process-global on/off switch. All recording primitives check this
/// first with a relaxed load; everything else is skipped while disabled.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns the recorder on. Cheap and idempotent.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns the recorder off. Spans already open keep recording their own
/// closure (their guard was armed at creation); new work is skipped.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// `true` when the recorder is currently on.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears all recorded state: span aggregates, counter/gauge/histogram
/// values and registrations, and the event log. Metric statics re-register
/// themselves on their next enabled record, so a snapshot after a reset
/// only shows metrics touched since. The enabled flag is left untouched so
/// callers can reset between phases of one observed run.
pub fn reset() {
    span::reset();
    metric::reset();
    event::reset();
}

/// Freezes the current recorder state into an immutable [`Telemetry`]
/// snapshot. Only spans whose root guard has closed are visible (open spans
/// are still accumulating in thread-local storage).
#[must_use]
pub fn snapshot() -> Telemetry {
    Telemetry::capture()
}

/// Captures the current recorder state **and consumes it**, atomically per
/// store, so a long-lived process can carve its telemetry into windows
/// without the [`snapshot`]-then-[`reset`] race: work recorded concurrently
/// with a drain lands entirely in this window or entirely in the next.
///
/// Per store: the span aggregate is *taken* under one lock acquisition (a
/// thread-root merge is never split across windows); counter values are
/// atomically swapped to zero (no increment is lost or double-counted) and
/// stay registered; the event log is taken whole and its [`MAX_EVENTS`]
/// budget re-opens; gauges are levels, not flows, and keep their value.
/// Streaming histograms clear field-by-field, so a sample racing the drain
/// may split its count and sum across two windows — best-effort by design.
#[must_use]
pub fn drain() -> Telemetry {
    Telemetry::capture_drain()
}

/// Opens a named span for the enclosing scope: `span!("ao.sweep_m");`
/// expands to a guard local that closes when the scope ends. Use the
/// [`span`] function directly when the guard needs an explicit name or an
/// explicit drop point.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _mosc_obs_span_guard = $crate::span($name);
    };
}

#[cfg(test)]
pub(crate) mod test_lock {
    //! The recorder is process-global, so tests that enable it must not
    //! interleave. Every such test holds this lock for its full body.
    use std::sync::{Mutex, MutexGuard, PoisonError};

    static LOCK: Mutex<()> = Mutex::new(());

    pub fn hold() -> MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        // The overhead guard for the satellite CI check: with the recorder
        // off (the default), every primitive must take its early-out path —
        // nothing registers, nothing aggregates, nothing allocates into the
        // global stores. This is asserted structurally instead of timed, so
        // it cannot flake.
        let _guard = test_lock::hold();
        disable();
        reset();

        static INERT_COUNTER: Counter = Counter::new("inert.counter");
        static INERT_GAUGE: Gauge = Gauge::new("inert.gauge");
        static INERT_HIST: Histogram = Histogram::new("inert.hist");
        static INERT_LOG_HIST: LogHistogram = LogHistogram::new("inert.log_hist");
        static INERT_RATE: RateWindow = RateWindow::new();
        let ctx = TraceContext::new();
        let observed = ctx.observe(|| {
            let g = span("inert.root");
            assert!(!g.is_armed(), "span guard must not arm while disabled");
            let inner = span("inert.child");
            assert!(!inner.is_armed());
            INERT_COUNTER.add(5);
            INERT_GAUGE.set(1.5);
            INERT_HIST.record(2.0);
            INERT_LOG_HIST.record(0.25);
            INERT_RATE.tick(3);
            event("inert.event", &[("x", 1u64.into())]);
            7
        });
        assert_eq!(observed, 7, "disabled observe must still run the closure");
        assert!(!INERT_COUNTER.is_registered(), "disabled counter must not register");
        let t = snapshot();
        assert!(t.spans().is_empty(), "disabled spans must not aggregate");
        assert!(t.events().is_empty(), "disabled events must not record");
        assert_eq!(t.counter("inert.counter"), None);
        assert_eq!(t.gauge("inert.gauge"), None);
        assert!(t.histogram("inert.hist").is_none());
        assert!(INERT_LOG_HIST.is_empty(), "disabled log histogram must not bucket");
        assert_eq!(INERT_LOG_HIST.snapshot().count, 0);
        assert!(INERT_RATE.per_sec().abs() < f64::EPSILON, "disabled rate must read 0");
        assert!(ctx.snapshot().is_empty(), "disabled trace context must capture nothing");
    }

    #[test]
    fn enable_disable_roundtrip() {
        let _guard = test_lock::hold();
        disable();
        assert!(!enabled());
        enable();
        assert!(enabled());
        disable();
        assert!(!enabled());
    }

    #[test]
    fn span_macro_scopes_to_block() {
        let _guard = test_lock::hold();
        enable();
        reset();
        {
            span!("macro.outer");
            {
                span!("macro.inner");
            }
        }
        let t = snapshot();
        assert!(t.span_path("macro.outer/macro.inner").is_some());
        disable();
        reset();
    }
}
