//! Named metrics: counters, gauges and streaming histograms.
//!
//! Metrics are declared as `static`s at their point of use
//! (`static CALLS: Counter = Counter::new("expm.calls");`) and register
//! themselves into a process-global registry the first time they record
//! while the recorder is enabled. The hot path is lock-free: one relaxed
//! load of the global enabled flag, one relaxed registration check, and
//! the atomic update itself. Registration (a mutex push) happens at most
//! once per metric per process.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Registry of every metric static that has recorded at least once while
/// enabled. Entries are `&'static`, so the registry never owns anything.
struct Registry {
    counters: Vec<&'static Counter>,
    gauges: Vec<&'static Gauge>,
    histograms: Vec<&'static Histogram>,
}

static REGISTRY: Mutex<Registry> =
    Mutex::new(Registry { counters: Vec::new(), gauges: Vec::new(), histograms: Vec::new() });

fn registry() -> std::sync::MutexGuard<'static, Registry> {
    REGISTRY.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A monotonically increasing `u64` metric (calls, iterations, prunes).
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// Declares a counter. `const`, so it can initialise a `static`.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self { name, value: AtomicU64::new(0), registered: AtomicBool::new(false) }
    }

    /// The counter's registry name, e.g. `"expm.calls"`.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds one. No-op while the recorder is disabled.
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// Adds `n`. Hot multi-threaded loops should accumulate locally and
    /// call this once per batch. No-op while the recorder is disabled.
    pub fn add(&'static self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.ensure_registered();
        self.value.fetch_add(n, Ordering::Relaxed);
        crate::trace::on_counter(self.name, n);
    }

    /// Current value (0 until the first enabled `add`).
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// `true` once this counter has recorded while enabled. Exists for the
    /// disabled-overhead guard test.
    #[must_use]
    pub fn is_registered(&self) -> bool {
        self.registered.load(Ordering::Relaxed)
    }

    fn ensure_registered(&'static self) {
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().counters.push(self);
        }
    }
}

/// An always-on, registry-free `u64` cell for state that must be counted
/// regardless of the recorder switch (a server's request totals, which its
/// `stats` wire op reports even when telemetry is off). Unlike [`Counter`]
/// it is owned (no `'static` requirement), never registers anywhere, and
/// never checks [`crate::enabled`] — it is four relaxed atomic ops at most.
#[derive(Debug, Default)]
pub struct CounterCell(AtomicU64);

impl CounterCell {
    /// A zeroed cell. `const`, so it can initialise a `static` or a field.
    #[must_use]
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the cell to `v` if `v` is larger (high-watermark tracking).
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A metric holding the latest `f64` value set (occupancy, headroom).
#[derive(Debug)]
pub struct Gauge {
    name: &'static str,
    /// `f64` stored via `to_bits`.
    bits: AtomicU64,
    set_once: AtomicBool,
    registered: AtomicBool,
}

impl Gauge {
    /// Declares a gauge. `const`, so it can initialise a `static`.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            bits: AtomicU64::new(0),
            set_once: AtomicBool::new(false),
            registered: AtomicBool::new(false),
        }
    }

    /// The gauge's registry name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Stores `v` as the gauge's current value. No-op while disabled.
    pub fn set(&'static self, v: f64) {
        if !crate::enabled() {
            return;
        }
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().gauges.push(self);
        }
        self.bits.store(v.to_bits(), Ordering::Relaxed);
        self.set_once.store(true, Ordering::Relaxed);
    }

    /// Latest value, `None` until the first enabled `set`.
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        if self.set_once.load(Ordering::Relaxed) {
            Some(f64::from_bits(self.bits.load(Ordering::Relaxed)))
        } else {
            None
        }
    }
}

/// A streaming summary of recorded samples: count, sum, min, max. Cheap
/// enough for per-evaluation recording without storing every sample.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    count: AtomicU64,
    /// Sum of samples, `f64` bits updated through a CAS loop.
    sum_bits: AtomicU64,
    /// Min/max as *ordered* `u64` keys (see [`f64_to_ordered`]), so plain
    /// `fetch_min`/`fetch_max` maintain them without CAS loops.
    min_key: AtomicU64,
    max_key: AtomicU64,
    registered: AtomicBool,
}

/// Maps an `f64` to a `u64` whose unsigned order matches the float order
/// (standard sign-flip trick; NaN samples are rejected before this).
pub(crate) fn f64_to_ordered(v: f64) -> u64 {
    let bits = v.to_bits();
    if bits >> 63 == 0 {
        bits | (1 << 63)
    } else {
        !bits
    }
}

/// Inverse of [`f64_to_ordered`].
pub(crate) fn ordered_to_f64(key: u64) -> f64 {
    if key >> 63 == 1 {
        f64::from_bits(key & !(1 << 63))
    } else {
        f64::from_bits(!key)
    }
}

impl Histogram {
    /// Declares a histogram. `const`, so it can initialise a `static`.
    #[must_use]
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
            min_key: AtomicU64::new(u64::MAX),
            max_key: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// The histogram's registry name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Records one sample. NaN samples are dropped. No-op while disabled.
    pub fn record(&'static self, v: f64) {
        if !crate::enabled() || v.is_nan() {
            return;
        }
        if !self.registered.swap(true, Ordering::Relaxed) {
            registry().histograms.push(self);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        let key = f64_to_ordered(v);
        self.min_key.fetch_min(key, Ordering::Relaxed);
        self.max_key.fetch_max(key, Ordering::Relaxed);
    }

    /// Current summary, `None` until the first enabled `record`.
    #[must_use]
    pub fn summary(&self) -> Option<crate::report::HistSummary> {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return None;
        }
        Some(crate::report::HistSummary {
            count,
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            min: ordered_to_f64(self.min_key.load(Ordering::Relaxed)),
            max: ordered_to_f64(self.max_key.load(Ordering::Relaxed)),
        })
    }
}

/// Zeroes and unregisters every registered metric, so the next snapshot
/// only lists metrics touched after the reset. A metric static re-registers
/// itself on its next enabled record.
pub(crate) fn reset() {
    let mut reg = registry();
    for c in reg.counters.drain(..) {
        c.value.store(0, Ordering::Relaxed);
        c.registered.store(false, Ordering::Relaxed);
    }
    for g in reg.gauges.drain(..) {
        g.bits.store(0, Ordering::Relaxed);
        g.set_once.store(false, Ordering::Relaxed);
        g.registered.store(false, Ordering::Relaxed);
    }
    for h in reg.histograms.drain(..) {
        h.count.store(0, Ordering::Relaxed);
        h.sum_bits.store(0, Ordering::Relaxed);
        h.min_key.store(u64::MAX, Ordering::Relaxed);
        h.max_key.store(0, Ordering::Relaxed);
        h.registered.store(false, Ordering::Relaxed);
    }
}

/// Reads one registered counter's current value by name, without taking a
/// full snapshot. `None` until the counter's first enabled record. This is
/// the cheap primitive behind kernel-counter *deltas*: read before and
/// after a solve and subtract.
#[must_use]
pub fn counter_value(name: &str) -> Option<u64> {
    registry().counters.iter().find(|c| c.name == name).map(|c| c.value())
}

/// Snapshot triple of (counters, gauges, histograms).
pub(crate) type MetricSnapshot =
    (Vec<(String, u64)>, Vec<(String, f64)>, Vec<(String, crate::report::HistSummary)>);

/// Snapshot of all registered metrics with a nonzero/recorded state,
/// sorted by name for stable rendering.
pub(crate) fn collect() -> MetricSnapshot {
    let reg = registry();
    let mut counters: Vec<(String, u64)> =
        reg.counters.iter().map(|c| (c.name.to_string(), c.value())).collect();
    let mut gauges: Vec<(String, f64)> =
        reg.gauges.iter().filter_map(|g| g.value().map(|v| (g.name.to_string(), v))).collect();
    let mut hists: Vec<(String, crate::report::HistSummary)> = reg
        .histograms
        .iter()
        .filter_map(|h| h.summary().map(|s| (h.name.to_string(), s)))
        .collect();
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    gauges.sort_by(|a, b| a.0.cmp(&b.0));
    hists.sort_by(|a, b| a.0.cmp(&b.0));
    (counters, gauges, hists)
}

/// Like [`collect`], but *consumes* counter and histogram values: counters
/// are atomically swapped to zero (an increment lands either in this drain
/// or the next — never lost, never doubled), histograms have their fields
/// cleared (field-by-field, so a sample racing the drain may split its
/// count and sum across two windows — documented best-effort), and gauges
/// keep their last value (they are levels, not flows). Registrations are
/// kept, so drained metrics reappear in the next window without a
/// re-registration race.
pub(crate) fn drain_collect() -> MetricSnapshot {
    let reg = registry();
    let mut counters: Vec<(String, u64)> = reg
        .counters
        .iter()
        .map(|c| (c.name.to_string(), c.value.swap(0, Ordering::Relaxed)))
        .collect();
    let mut gauges: Vec<(String, f64)> =
        reg.gauges.iter().filter_map(|g| g.value().map(|v| (g.name.to_string(), v))).collect();
    let mut hists: Vec<(String, crate::report::HistSummary)> = reg
        .histograms
        .iter()
        .filter_map(|h| {
            let count = h.count.swap(0, Ordering::Relaxed);
            let sum = f64::from_bits(h.sum_bits.swap(0, Ordering::Relaxed));
            let min = ordered_to_f64(h.min_key.swap(u64::MAX, Ordering::Relaxed));
            let max = ordered_to_f64(h.max_key.swap(0, Ordering::Relaxed));
            (count > 0)
                .then(|| (h.name.to_string(), crate::report::HistSummary { count, sum, min, max }))
        })
        .collect();
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    gauges.sort_by(|a, b| a.0.cmp(&b.0));
    hists.sort_by(|a, b| a.0.cmp(&b.0));
    (counters, gauges, hists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn counter_aggregates_across_threads() {
        let _guard = test_lock::hold();
        crate::enable();
        crate::reset();
        static MT: Counter = Counter::new("metric.mt_counter");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        MT.incr();
                    }
                });
            }
        });
        assert_eq!(MT.value(), 8000);
        assert_eq!(crate::snapshot().counter("metric.mt_counter"), Some(8000));
        crate::disable();
        crate::reset();
    }

    #[test]
    fn gauge_keeps_latest_value() {
        let _guard = test_lock::hold();
        crate::enable();
        crate::reset();
        static G: Gauge = Gauge::new("metric.gauge");
        assert_eq!(G.value(), None);
        G.set(1.25);
        G.set(-3.5);
        assert_eq!(G.value(), Some(-3.5));
        assert_eq!(crate::snapshot().gauge("metric.gauge"), Some(-3.5));
        crate::disable();
        crate::reset();
    }

    #[test]
    fn histogram_summarises_including_negatives() {
        let _guard = test_lock::hold();
        crate::enable();
        crate::reset();
        static H: Histogram = Histogram::new("metric.hist");
        for v in [2.0, -1.0, 5.5, 0.0] {
            H.record(v);
        }
        H.record(f64::NAN); // dropped
        let s = H.summary().expect("recorded");
        assert_eq!(s.count, 4);
        assert!((s.sum - 6.5).abs() < 1e-12);
        assert_eq!(s.min, -1.0);
        assert_eq!(s.max, 5.5);
        crate::disable();
        crate::reset();
    }

    #[test]
    fn reset_zeroes_and_unregisters() {
        let _guard = test_lock::hold();
        crate::enable();
        crate::reset();
        static R: Counter = Counter::new("metric.reset_counter");
        R.add(7);
        assert!(R.is_registered());
        crate::reset();
        assert!(!R.is_registered(), "reset must unregister so stale zeros don't linger");
        assert_eq!(R.value(), 0);
        assert_eq!(crate::snapshot().counter("metric.reset_counter"), None);
        // The static re-registers on its next enabled record.
        R.add(2);
        assert_eq!(crate::snapshot().counter("metric.reset_counter"), Some(2));
        crate::disable();
        crate::reset();
    }

    #[test]
    fn ordered_key_roundtrip() {
        for v in [-1e300, -1.0, -0.0, 0.0, 1.0, 1e300] {
            assert_eq!(ordered_to_f64(f64_to_ordered(v)), v);
        }
        assert!(f64_to_ordered(-1.0) < f64_to_ordered(0.0));
        assert!(f64_to_ordered(0.0) < f64_to_ordered(1.0));
    }
}
