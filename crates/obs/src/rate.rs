//! Rolling-window rate gauges.
//!
//! A [`RateWindow`] answers "how many per second, lately?" — the req/s
//! figure a live `stats --watch` view or a Prometheus scrape wants —
//! without storing timestamps. It keeps a small ring of per-second slots;
//! [`RateWindow::tick`] bumps the slot for the current wall-clock second
//! (lazily reclaiming slots that have aged out of the ring), and
//! [`RateWindow::per_sec`] averages over the *completed* seconds still in
//! the ring, excluding the second in progress so a fresh scrape never
//! under-reports a half-elapsed second.
//!
//! Accuracy note: slot reclamation is a benign race — two threads entering
//! a brand-new second can interleave the stamp swap and the zeroing so a
//! handful of ticks from the slot's previous life survive, and `per_sec`
//! reads the ring without stopping writers. This is a *gauge* feeding
//! dashboards, not an invariant; the error is bounded by one slot and
//! vanishes in steady state. Ticks are dropped while the recorder is
//! disabled, and `per_sec` then reads 0.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Ring size: rates average over up to this many completed seconds.
const SLOTS: u64 = 16;

/// One per-second slot: which second it counts for, and the count.
#[derive(Debug)]
struct Slot {
    /// The 1-based second index this slot currently holds (0 = never used).
    stamp: AtomicU64,
    count: AtomicU64,
}

/// A lock-free events-per-second gauge over a rolling ~15 s window.
#[derive(Debug)]
pub struct RateWindow {
    /// First-tick anchor; seconds are measured from here.
    epoch: OnceLock<Instant>,
    slots: [Slot; SLOTS as usize],
}

impl Default for RateWindow {
    fn default() -> Self {
        Self::new()
    }
}

impl RateWindow {
    /// An empty window. `const`, so it can initialise a `static` or field.
    #[must_use]
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const EMPTY: Slot = Slot { stamp: AtomicU64::new(0), count: AtomicU64::new(0) };
        Self { epoch: OnceLock::new(), slots: [EMPTY; SLOTS as usize] }
    }

    /// The 1-based index of the current second (0 is reserved for "slot
    /// never used").
    fn current_second(&self) -> u64 {
        let epoch = *self.epoch.get_or_init(Instant::now);
        epoch.elapsed().as_secs() + 1
    }

    /// Counts `n` events in the current second. No-op while the recorder is
    /// disabled.
    pub fn tick(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        let sec = self.current_second();
        let slot = &self.slots[(sec % SLOTS) as usize];
        let seen = slot.stamp.load(Ordering::Relaxed);
        if seen != sec
            && slot.stamp.compare_exchange(seen, sec, Ordering::Relaxed, Ordering::Relaxed).is_ok()
        {
            slot.count.store(0, Ordering::Relaxed);
        }
        slot.count.fetch_add(n, Ordering::Relaxed);
    }

    /// Mean events/second over the completed seconds still inside the ring
    /// (at most [`SLOTS`] − 1 of them; the in-progress second is excluded).
    /// 0 until one full second has elapsed past the first tick.
    #[must_use]
    pub fn per_sec(&self) -> f64 {
        let Some(epoch) = self.epoch.get() else { return 0.0 };
        let sec = epoch.elapsed().as_secs() + 1;
        let completed = (sec - 1).min(SLOTS - 1);
        if completed == 0 {
            return 0.0;
        }
        let oldest = sec - completed;
        let total: u64 = self
            .slots
            .iter()
            .filter(|s| {
                let stamp = s.stamp.load(Ordering::Relaxed);
                stamp >= oldest && stamp < sec
            })
            .map(|s| s.count.load(Ordering::Relaxed))
            .sum();
        #[allow(clippy::cast_precision_loss)]
        {
            total as f64 / completed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn rate_counts_completed_seconds_only() {
        let _guard = test_lock::hold();
        crate::enable();
        let w = RateWindow::new();
        w.tick(5); // anchors the epoch; second 1 is in progress
        assert!(w.per_sec().abs() < f64::EPSILON, "in-progress second must not count");
        // Force the clock forward by waiting out the first second.
        std::thread::sleep(std::time::Duration::from_millis(1050));
        let r = w.per_sec();
        assert!(r > 0.0, "completed second with 5 ticks must show a rate, got {r}");
        assert!(r <= 5.0 + f64::EPSILON, "rate cannot exceed ticks recorded, got {r}");
        crate::disable();
    }

    #[test]
    fn disabled_window_stays_silent() {
        let _guard = test_lock::hold();
        crate::disable();
        let w = RateWindow::new();
        w.tick(100);
        assert!(w.per_sec().abs() < f64::EPSILON);
    }
}
