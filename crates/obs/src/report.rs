//! Telemetry snapshots and their renderings.
//!
//! [`Telemetry::capture`] freezes the recorder's current state — completed
//! span aggregates, registered metrics, the event log — into a plain value
//! that can be queried, rendered for humans ([`Telemetry::render_pretty`])
//! or serialised as JSONL ([`Telemetry::to_jsonl`]). The JSONL lines are
//! plain JSON objects parsed by `mosc-analyze`'s reader; that format feeds
//! the `M05x` telemetry lints and `BENCH_obs.json`.

use crate::event::FieldValue;
use std::fmt::Write as _;
use std::time::Duration;

/// Aggregated statistics for one span call path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStats {
    /// Slash-joined path from root, e.g. `"ao.solve/ao.sweep_m"`.
    pub path: String,
    /// Leaf name, e.g. `"ao.sweep_m"`.
    pub name: String,
    /// Nesting depth (0 for roots).
    pub depth: usize,
    /// Completed calls through this path.
    pub calls: u64,
    /// Total wall time across those calls.
    pub total: Duration,
    /// Total minus time attributed to child spans.
    pub self_time: Duration,
}

/// Streaming summary of one histogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl HistSummary {
    /// Mean sample value.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One recorded decision event.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Event name, e.g. `"ao.m_selected"`.
    pub name: String,
    /// Typed fields in emission order.
    pub fields: Vec<(String, FieldValue)>,
}

/// An immutable snapshot of the recorder, taken by [`crate::snapshot`].
#[derive(Debug, Clone)]
pub struct Telemetry {
    spans: Vec<SpanStats>,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, HistSummary)>,
    events: Vec<EventRecord>,
    events_dropped: u64,
}

impl Telemetry {
    /// Captures the current recorder state.
    #[must_use]
    pub fn capture() -> Self {
        let spans = crate::span::collect();
        let (counters, gauges, histograms) = crate::metric::collect();
        let (events, events_dropped) = crate::event::collect();
        Self { spans, counters, gauges, histograms, events, events_dropped }
    }

    /// Captures and *consumes* the current recorder state (see
    /// [`crate::drain`] for the window semantics per store).
    #[must_use]
    pub fn capture_drain() -> Self {
        let spans = crate::span::drain_collect();
        let (counters, gauges, histograms) = crate::metric::drain_collect();
        let (events, events_dropped) = crate::event::drain_collect();
        Self { spans, counters, gauges, histograms, events, events_dropped }
    }

    /// Completed spans in preorder (parents before children).
    #[must_use]
    pub fn spans(&self) -> &[SpanStats] {
        &self.spans
    }

    /// The stats for an exact span path (`"ao.solve/ao.sweep_m"`), if any.
    #[must_use]
    pub fn span_path(&self, path: &str) -> Option<&SpanStats> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Registered counters sorted by name.
    #[must_use]
    pub fn counters(&self) -> &[(String, u64)] {
        &self.counters
    }

    /// A counter's value by name; `None` when never registered.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Set gauges sorted by name.
    #[must_use]
    pub fn gauges(&self) -> &[(String, f64)] {
        &self.gauges
    }

    /// A gauge's latest value by name; `None` when never set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Recorded histograms sorted by name.
    #[must_use]
    pub fn histograms(&self) -> &[(String, HistSummary)] {
        &self.histograms
    }

    /// A histogram's summary by name; `None` when never recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<HistSummary> {
        self.histograms.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Recorded events in emission order.
    #[must_use]
    pub fn events(&self) -> &[EventRecord] {
        &self.events
    }

    /// Events discarded after the [`crate::MAX_EVENTS`] cap.
    #[must_use]
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// `true` when nothing at all was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.events.is_empty()
    }

    /// Renders the snapshot as a human-readable report: indented span tree
    /// with total/self times and call counts, metric tables, decision log.
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        out.push_str("== telemetry ==\n");
        if self.is_empty() {
            out.push_str("(no records; was the recorder enabled?)\n");
            return out;
        }
        if !self.spans.is_empty() {
            out.push_str("spans (total / self / calls):\n");
            for s in &self.spans {
                let _ = writeln!(
                    out,
                    "  {:indent$}{name:<w$} {total:>10} {selft:>10} {calls:>8}",
                    "",
                    indent = s.depth * 2,
                    name = s.name,
                    w = 28usize.saturating_sub(s.depth * 2),
                    total = fmt_duration(s.total),
                    selft = fmt_duration(s.self_time),
                    calls = s.calls,
                );
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "  {name:<32} {v:>12}");
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "  {name:<32} {v:>12.6}");
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (count / mean / min / max):\n");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name:<32} {count:>8} {mean:>12.6} {min:>12.6} {max:>12.6}",
                    count = h.count,
                    mean = h.mean(),
                    min = h.min,
                    max = h.max,
                );
            }
        }
        if !self.events.is_empty() {
            out.push_str("events:\n");
            for e in &self.events {
                let _ = write!(out, "  {}", e.name);
                for (k, v) in &e.fields {
                    let _ = write!(out, " {k}={}", fmt_field(v));
                }
                out.push('\n');
            }
            if self.events_dropped > 0 {
                let _ = writeln!(out, "  ({} events dropped past cap)", self.events_dropped);
            }
        }
        out
    }

    /// Serialises the snapshot as JSONL: one JSON object per line with a
    /// `"type"` discriminator (`span`, `counter`, `gauge`, `hist`,
    /// `event`). Every line parses with `mosc-analyze`'s JSON reader.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.spans {
            let _ = writeln!(
                out,
                "{{\"type\":\"span\",\"path\":{},\"name\":{},\"depth\":{},\"calls\":{},\"total_s\":{},\"self_s\":{}}}",
                json_str(&s.path),
                json_str(&s.name),
                s.depth,
                s.calls,
                json_f64(s.total.as_secs_f64()),
                json_f64(s.self_time.as_secs_f64()),
            );
        }
        for (name, v) in &self.counters {
            let _ =
                writeln!(out, "{{\"type\":\"counter\",\"name\":{},\"value\":{v}}}", json_str(name));
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(
                out,
                "{{\"type\":\"gauge\",\"name\":{},\"value\":{}}}",
                json_str(name),
                json_f64(*v)
            );
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "{{\"type\":\"hist\",\"name\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
                json_str(name),
                h.count,
                json_f64(h.sum),
                json_f64(h.min),
                json_f64(h.max),
            );
        }
        for e in &self.events {
            let mut fields = String::new();
            for (i, (k, v)) in e.fields.iter().enumerate() {
                if i > 0 {
                    fields.push(',');
                }
                let _ = write!(fields, "{}:{}", json_str(k), json_field(v));
            }
            let _ = writeln!(
                out,
                "{{\"type\":\"event\",\"name\":{},\"fields\":{{{fields}}}}}",
                json_str(&e.name)
            );
        }
        if self.events_dropped > 0 {
            let _ = writeln!(
                out,
                "{{\"type\":\"meta\",\"name\":\"events_dropped\",\"value\":{}}}",
                self.events_dropped
            );
        }
        out
    }
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

fn fmt_field(v: &FieldValue) -> String {
    match v {
        FieldValue::U64(x) => x.to_string(),
        FieldValue::I64(x) => x.to_string(),
        FieldValue::F64(x) => format!("{x:.6}"),
        FieldValue::Str(s) => (*s).to_string(),
        FieldValue::Bool(b) => b.to_string(),
    }
}

fn json_field(v: &FieldValue) -> String {
    match v {
        FieldValue::U64(x) => x.to_string(),
        FieldValue::I64(x) => x.to_string(),
        FieldValue::F64(x) => json_f64(*x),
        FieldValue::Str(s) => json_str(s),
        FieldValue::Bool(b) => b.to_string(),
    }
}

/// Formats an `f64` as a valid JSON number. Non-finite values have no JSON
/// representation and render as `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // `{:?}` keeps a decimal point or exponent, so the value reads back
        // as a float, and round-trips exactly.
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// JSON string literal with the mandatory escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn pretty_report_lists_all_sections() {
        let _guard = test_lock::hold();
        crate::enable();
        crate::reset();
        static C: crate::Counter = crate::Counter::new("rep.counter");
        static G: crate::Gauge = crate::Gauge::new("rep.gauge");
        static H: crate::Histogram = crate::Histogram::new("rep.hist");
        {
            let _root = crate::span("rep.root");
            let _leaf = crate::span("rep.leaf");
            C.incr();
            G.set(2.5);
            H.record(1.0);
            crate::event("rep.done", &[("why", "test".into())]);
        }
        let text = crate::snapshot().render_pretty();
        for needle in
            ["rep.root", "rep.leaf", "rep.counter", "rep.gauge", "rep.hist", "rep.done", "why=test"]
        {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        crate::disable();
        crate::reset();
    }

    #[test]
    fn empty_snapshot_renders_hint() {
        let _guard = test_lock::hold();
        crate::disable();
        crate::reset();
        let t = crate::snapshot();
        assert!(t.is_empty());
        assert!(t.render_pretty().contains("no records"));
        assert!(t.to_jsonl().is_empty());
    }

    #[test]
    fn jsonl_lines_are_well_formed() {
        let _guard = test_lock::hold();
        crate::enable();
        crate::reset();
        static C: crate::Counter = crate::Counter::new("jl.counter");
        {
            let _root = crate::span("jl.root");
            C.add(3);
            crate::event(
                "jl.event",
                &[
                    ("s", "a\"b\\c".into()),
                    ("f", 0.5.into()),
                    ("n", 7u64.into()),
                    ("b", false.into()),
                ],
            );
        }
        let jsonl = crate::snapshot().to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(lines.len() >= 3);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "bad line: {line}");
        }
        assert!(jsonl.contains("\"type\":\"span\""));
        assert!(jsonl.contains("\"type\":\"counter\""));
        assert!(jsonl.contains("\"s\":\"a\\\"b\\\\c\""));
        assert!(jsonl.contains("\"b\":false"));
        crate::disable();
        crate::reset();
    }

    #[test]
    fn json_f64_always_reads_as_float() {
        assert_eq!(json_f64(1.0), "1.0");
        assert_eq!(json_f64(0.5), "0.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }
}
