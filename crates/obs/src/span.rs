//! Nested timing spans.
//!
//! A [`SpanGuard`] opens a node in a **thread-local** tree keyed by span
//! name under the currently open parent; dropping the guard closes the node
//! and adds the elapsed wall time. When the *root* guard of a thread closes
//! (the open stack empties), the whole thread tree is merged into a global
//! aggregate under a mutex — one lock acquisition per root span, not per
//! span, so instrumenting hot loops stays cheap. Repeated calls through the
//! same call path fold into one aggregated node carrying a call count and
//! total time; self time (total minus children) is derived at snapshot.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One node of a span tree (thread-local and global trees share the shape).
#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub name: &'static str,
    /// Index of the parent node, `None` for roots.
    pub parent: Option<usize>,
    /// Indices of child nodes, in first-seen order.
    pub children: Vec<usize>,
    /// Completed calls through this exact path.
    pub calls: u64,
    /// Total wall time across those calls.
    pub total: Duration,
}

impl Node {
    fn new(name: &'static str, parent: Option<usize>) -> Self {
        Self { name, parent, children: Vec::new(), calls: 0, total: Duration::ZERO }
    }
}

/// An arena-backed span tree plus the stack of currently open nodes.
#[derive(Debug, Default)]
pub(crate) struct TreeState {
    nodes: Vec<Node>,
    open: Vec<usize>,
}

impl TreeState {
    /// Finds or creates the child named `name` under the innermost open
    /// node (or at the root level) and pushes it onto the open stack.
    fn open(&mut self, name: &'static str) {
        let parent = self.open.last().copied();
        let slot = self
            .children_of(parent)
            .iter()
            .copied()
            .find(|&i| self.nodes[i].name == name)
            .unwrap_or_else(|| {
                let idx = self.nodes.len();
                self.nodes.push(Node::new(name, parent));
                match parent {
                    Some(p) => self.nodes[p].children.push(idx),
                    None => self.roots_cache_invalidate(),
                }
                idx
            });
        self.open.push(slot);
    }

    /// Closes the innermost open node, attributing `elapsed` to it. Returns
    /// `true` when this closed the last open node (a root completed).
    fn close(&mut self, elapsed: Duration) -> bool {
        if let Some(idx) = self.open.pop() {
            self.nodes[idx].calls += 1;
            self.nodes[idx].total += elapsed;
        }
        self.open.is_empty()
    }

    fn children_of(&self, parent: Option<usize>) -> Vec<usize> {
        match parent {
            Some(p) => self.nodes[p].children.clone(),
            None => (0..self.nodes.len()).filter(|&i| self.nodes[i].parent.is_none()).collect(),
        }
    }

    fn roots_cache_invalidate(&self) {
        // Roots are recomputed on demand; nothing cached today. Kept as a
        // seam so a root list can be added without touching `open`.
    }

    /// Merges `other` into `self` by (path, name): equal-named children of
    /// equal parents are folded together.
    pub(crate) fn merge(&mut self, other: &TreeState) {
        fn merge_level(
            dst: &mut TreeState,
            dst_parent: Option<usize>,
            src: &TreeState,
            src_ids: &[usize],
        ) {
            for &s in src_ids {
                let src_node = src.nodes[s].clone();
                let existing = dst
                    .children_of(dst_parent)
                    .iter()
                    .copied()
                    .find(|&i| dst.nodes[i].name == src_node.name);
                let idx = existing.unwrap_or_else(|| {
                    let idx = dst.nodes.len();
                    dst.nodes.push(Node::new(src_node.name, dst_parent));
                    if let Some(p) = dst_parent {
                        dst.nodes[p].children.push(idx);
                    }
                    idx
                });
                dst.nodes[idx].calls += src_node.calls;
                dst.nodes[idx].total += src_node.total;
                merge_level(dst, Some(idx), src, &src_node.children);
            }
        }
        let roots: Vec<usize> =
            (0..other.nodes.len()).filter(|&i| other.nodes[i].parent.is_none()).collect();
        merge_level(self, None, other, &roots);
    }
}

thread_local! {
    static LOCAL: std::cell::RefCell<TreeState> = std::cell::RefCell::new(TreeState::default());
}

/// The global aggregate: thread trees merged in as their root spans close.
static GLOBAL: Mutex<Option<TreeState>> = Mutex::new(None);

/// Opens a span named `name`, returning the guard that closes it on drop.
/// When the recorder is disabled the guard is inert (no thread-local or
/// global state is touched, at creation or at drop).
#[must_use = "a span records nothing unless the guard lives to the end of the timed scope"]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { start: None, name };
    }
    LOCAL.with(|s| s.borrow_mut().open(name));
    SpanGuard { start: Some(Instant::now()), name }
}

/// RAII guard for one span. Created by [`span`] / [`crate::span!`]; closing
/// happens on drop. Guards must drop in reverse creation order (normal
/// scope nesting guarantees this).
#[derive(Debug)]
pub struct SpanGuard {
    /// `Some` when the guard was armed (recorder enabled at creation).
    start: Option<Instant>,
    name: &'static str,
}

impl SpanGuard {
    /// The span's name (diagnostics / tests).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// `true` when this guard is actually recording (the recorder was
    /// enabled when it was created). Used by the disabled-overhead guard
    /// test; instrumented code never needs to check.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed();
        let root_closed = LOCAL.with(|s| s.borrow_mut().close(elapsed));
        if root_closed {
            LOCAL.with(|s| {
                let mut local = s.borrow_mut();
                {
                    let mut global =
                        GLOBAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    global.get_or_insert_with(TreeState::default).merge(&local);
                }
                // An active request capture on this thread gets its own copy
                // of the completed tree (see `crate::trace`).
                crate::trace::on_root_tree(&local);
                *local = TreeState::default();
            });
        }
    }
}

/// Clears the global aggregate. Open spans on any thread keep their
/// thread-local state and merge whenever their root closes.
pub(crate) fn reset() {
    let mut global = GLOBAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *global = None;
}

/// Snapshot of the completed-span aggregate as flat per-path stats, parents
/// before children (preorder), children in first-seen order.
pub(crate) fn collect() -> Vec<crate::report::SpanStats> {
    let global = GLOBAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let Some(tree) = global.as_ref() else { return Vec::new() };
    stats_of(tree)
}

/// Like [`collect`], but *takes* the aggregate: the tree is removed inside
/// a single lock acquisition, so a root-span merge racing the drain lands
/// entirely in this window or entirely in the next — never split, lost, or
/// double-counted.
pub(crate) fn drain_collect() -> Vec<crate::report::SpanStats> {
    let tree = GLOBAL.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take();
    tree.as_ref().map(stats_of).unwrap_or_default()
}

/// Flattens any span tree into per-path stats, parents before children
/// (preorder), children in first-seen order. Shared by the global aggregate
/// snapshot and per-request [`crate::TraceContext`] captures.
pub(crate) fn stats_of(tree: &TreeState) -> Vec<crate::report::SpanStats> {
    let mut out = Vec::new();
    fn walk(
        tree: &TreeState,
        ids: &[usize],
        path: &str,
        depth: usize,
        out: &mut Vec<crate::report::SpanStats>,
    ) {
        for &i in ids {
            let node = &tree.nodes[i];
            let full = if path.is_empty() {
                node.name.to_string()
            } else {
                format!("{path}/{}", node.name)
            };
            let child_total: Duration = node.children.iter().map(|&c| tree.nodes[c].total).sum();
            out.push(crate::report::SpanStats {
                path: full.clone(),
                name: node.name.to_string(),
                depth,
                calls: node.calls,
                total: node.total,
                self_time: node.total.saturating_sub(child_total),
            });
            walk(tree, &node.children, &full, depth + 1, out);
        }
    }
    let roots: Vec<usize> =
        (0..tree.nodes.len()).filter(|&i| tree.nodes[i].parent.is_none()).collect();
    walk(tree, &roots, "", 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    fn spin(min: Duration) {
        let start = Instant::now();
        while start.elapsed() < min {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn nesting_builds_paths_and_folds_repeats() {
        let _guard = test_lock::hold();
        crate::enable();
        crate::reset();
        for _ in 0..3 {
            let _root = span("t.root");
            {
                let _a = span("t.a");
                let _aa = span("t.aa");
            }
            let _b = span("t.b");
        }
        let t = crate::snapshot();
        let root = t.span_path("t.root").expect("root");
        assert_eq!(root.calls, 3);
        assert_eq!(root.depth, 0);
        let a = t.span_path("t.root/t.a").expect("a");
        assert_eq!(a.calls, 3);
        assert_eq!(a.depth, 1);
        assert!(t.span_path("t.root/t.a/t.aa").is_some());
        assert!(t.span_path("t.root/t.b").is_some());
        // `t.a` is not a root path.
        assert!(t.span_path("t.a").is_none());
        crate::disable();
        crate::reset();
    }

    #[test]
    fn timing_is_monotone_parent_covers_children() {
        let _guard = test_lock::hold();
        crate::enable();
        crate::reset();
        {
            let _root = span("m.root");
            {
                let _c1 = span("m.child1");
                spin(Duration::from_millis(2));
            }
            {
                let _c2 = span("m.child2");
                spin(Duration::from_millis(1));
            }
        }
        let t = crate::snapshot();
        let root = t.span_path("m.root").unwrap();
        let c1 = t.span_path("m.root/m.child1").unwrap();
        let c2 = t.span_path("m.root/m.child2").unwrap();
        assert!(root.total >= c1.total + c2.total, "parent total must cover children");
        assert_eq!(root.total, root.self_time + c1.total + c2.total, "self = total - children");
        assert!(c1.total >= Duration::from_millis(2));
        assert!(c2.total >= Duration::from_millis(1));
        crate::disable();
        crate::reset();
    }

    #[test]
    fn trees_from_multiple_threads_merge() {
        let _guard = test_lock::hold();
        crate::enable();
        crate::reset();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let _root = span("mt.root");
                    let _leaf = span("mt.leaf");
                });
            }
        });
        let t = crate::snapshot();
        assert_eq!(t.span_path("mt.root").unwrap().calls, 4);
        assert_eq!(t.span_path("mt.root/mt.leaf").unwrap().calls, 4);
        crate::disable();
        crate::reset();
    }

    #[test]
    fn open_spans_are_invisible_until_root_closes() {
        let _guard = test_lock::hold();
        crate::enable();
        crate::reset();
        let root = span("open.root");
        {
            let _inner = span("open.inner");
        }
        // Root still open: nothing flushed to the global aggregate yet.
        assert!(crate::snapshot().span_path("open.root").is_none());
        drop(root);
        assert!(crate::snapshot().span_path("open.root/open.inner").is_some());
        crate::disable();
        crate::reset();
    }
}
