//! Windowed timeline sampling: a run becomes a time series, not one number.
//!
//! A summary quantile hides *when* latency went bad: a saturation knee, a
//! cache warm-up, a queue excursion all average away. A [`Timeline`] slices
//! a run into fixed-width windows and accumulates, per window, the request
//! count, a full log-bucketed latency histogram (same fixed layout as
//! [`crate::LogHistogram`], so per-window quantiles carry the same one-
//! bucket error bar), the cache-hit count, and the peak queue depth seen.
//! Closed windows render as JSONL `{"type":"timeline",...}` lines — the
//! shape `mosc-analyze` stream lints and the bench trajectory tooling read.
//!
//! Unlike the recorder-gated primitives, a `Timeline` is **explicitly
//! owned** (like [`crate::CounterCell`]): constructing one is the opt-in,
//! so recording is unconditional and the disabled-recorder fast path of the
//! process is unaffected — a process that never builds a timeline pays
//! nothing.
//!
//! Two clock styles:
//!
//! * [`Timeline::record_at`] / [`Timeline::depth_at`] take an explicit
//!   timestamp in seconds since the run started — fully deterministic, what
//!   the open-loop load generator and the unit tests use.
//! * [`Timeline::record`] / [`Timeline::note_depth`] stamp against the
//!   timeline's own creation [`Instant`] — what `mosc-serve` uses.
//!
//! Windows close lazily when a later-window sample arrives; [`Timeline::
//! drain_closed`] hands closed windows to a writer incrementally and
//! [`Timeline::finish`] flushes the in-progress window at shutdown. Gaps
//! are preserved: up to [`MAX_GAP_WINDOWS`] empty windows are emitted
//! between two active ones so an idle spell shows as zeros instead of
//! silently compressing the time axis.

use crate::histo::{bucket_index, HistoSnapshot};
use crate::LOG_BUCKETS;
use std::fmt::Write as _;
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Longest run of empty windows emitted to bridge an idle gap; beyond this
/// the timeline jumps (the window indices stay truthful, so a gap is still
/// visible as non-consecutive `window` values).
pub const MAX_GAP_WINDOWS: usize = 16;

/// One closed window of a [`Timeline`]: plain data, renderable as JSONL.
#[derive(Debug, Clone)]
pub struct TimelineWindow {
    /// 0-based window index since the timeline started.
    pub index: u64,
    /// Window start, seconds since the timeline started.
    pub start_s: f64,
    /// Window width, seconds.
    pub len_s: f64,
    /// Latency histogram of the samples completed in this window.
    pub histo: HistoSnapshot,
    /// Samples flagged as cache hits.
    pub hits: u64,
    /// Highest queue depth noted during the window (0 when never noted).
    pub queue_depth_peak: u64,
}

impl TimelineWindow {
    /// Completed samples in this window.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.histo.count
    }

    /// Completions per second over the window.
    #[must_use]
    pub fn req_per_s(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        {
            self.histo.count as f64 / self.len_s.max(1e-12)
        }
    }

    /// Fraction of samples flagged as cache hits (0 while empty).
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        if self.histo.count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.hits as f64 / self.histo.count as f64
            }
        }
    }

    /// Renders the window as one JSONL line (no trailing newline).
    /// Quantiles are reported in milliseconds, 0 while the window is empty.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let q = |p: f64| self.histo.quantile(p).map_or(0.0, |s| s * 1e3);
        let max_ms = if self.histo.count > 0 { self.histo.max * 1e3 } else { 0.0 };
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"type\":\"timeline\",\"window\":{},\"start_s\":{:?},\"len_s\":{:?},\
             \"count\":{},\"req_per_s\":{:?},\"hits\":{},\"cache_hit_rate\":{:?},\
             \"queue_depth_peak\":{},\"p50_ms\":{:?},\"p90_ms\":{:?},\"p99_ms\":{:?},\
             \"p999_ms\":{:?},\"max_ms\":{max_ms:?}}}",
            self.index,
            self.start_s,
            self.len_s,
            self.histo.count,
            self.req_per_s(),
            self.hits,
            self.cache_hit_rate(),
            self.queue_depth_peak,
            q(0.5),
            q(0.9),
            q(0.99),
            q(0.999),
        );
        out
    }
}

/// The in-progress window's accumulator.
struct Open {
    index: u64,
    counts: [u64; LOG_BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    hits: u64,
    queue_depth_peak: u64,
}

impl Open {
    fn new(index: u64) -> Self {
        Self {
            index,
            counts: [0; LOG_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            hits: 0,
            queue_depth_peak: 0,
        }
    }

    fn close(&self, window_s: f64) -> TimelineWindow {
        #[allow(clippy::cast_precision_loss)]
        TimelineWindow {
            index: self.index,
            start_s: self.index as f64 * window_s,
            len_s: window_s,
            histo: HistoSnapshot {
                counts: self.counts,
                count: self.count,
                sum: self.sum,
                min: self.min,
                max: self.max,
            },
            hits: self.hits,
            queue_depth_peak: self.queue_depth_peak,
        }
    }
}

struct Inner {
    cur: Open,
    closed: Vec<TimelineWindow>,
}

/// A windowed run timeline (see the module docs). Thread-safe: samples from
/// many worker threads serialize on one internal mutex, which is fine at
/// the per-request cadence this measures.
pub struct Timeline {
    window_s: f64,
    start: Instant,
    inner: Mutex<Inner>,
}

impl Timeline {
    /// Creates a timeline with `window_s`-second windows.
    ///
    /// # Panics
    /// Panics unless `window_s` is finite and positive.
    #[must_use]
    pub fn new(window_s: f64) -> Self {
        assert!(window_s.is_finite() && window_s > 0.0, "window must be positive");
        Self {
            window_s,
            start: Instant::now(),
            inner: Mutex::new(Inner { cur: Open::new(0), closed: Vec::new() }),
        }
    }

    /// The configured window width in seconds.
    #[must_use]
    pub fn window_s(&self) -> f64 {
        self.window_s
    }

    /// Seconds elapsed since this timeline was created (the implicit clock
    /// behind [`record`](Self::record)).
    #[must_use]
    pub fn elapsed_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Advances `inner` to the window containing `t_s`, closing earlier
    /// windows (bridging gaps with up to [`MAX_GAP_WINDOWS`] empty ones).
    /// Samples timestamped before the current window clamp into it — a
    /// completion racing a window edge lands one window late at worst.
    fn advance(&self, inner: &mut Inner, t_s: f64) {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let idx = (t_s.max(0.0) / self.window_s).floor() as u64;
        while inner.cur.index < idx {
            let closed = inner.cur.close(self.window_s);
            let next = inner.cur.index + 1;
            // Jump over pathological idle gaps instead of materializing
            // thousands of zero windows.
            let gap_cap = closed.index + MAX_GAP_WINDOWS as u64;
            inner.closed.push(closed);
            inner.cur = Open::new(if idx > gap_cap { idx } else { next });
        }
    }

    /// Records one completed sample: `t_s` seconds since the run started,
    /// `latency_s` the sample's latency, `cache_hit` whether it was served
    /// from cache.
    pub fn record_at(&self, t_s: f64, latency_s: f64, cache_hit: bool) {
        if !latency_s.is_finite() || latency_s < 0.0 {
            return;
        }
        let mut inner = self.lock();
        self.advance(&mut inner, t_s);
        let cur = &mut inner.cur;
        cur.counts[bucket_index(latency_s)] += 1;
        cur.count += 1;
        cur.sum += latency_s;
        cur.min = cur.min.min(latency_s);
        cur.max = cur.max.max(latency_s);
        if cache_hit {
            cur.hits += 1;
        }
    }

    /// Notes the instantaneous queue depth at `t_s`; windows report the
    /// peak of the depths noted inside them.
    pub fn depth_at(&self, t_s: f64, depth: u64) {
        let mut inner = self.lock();
        self.advance(&mut inner, t_s);
        inner.cur.queue_depth_peak = inner.cur.queue_depth_peak.max(depth);
    }

    /// [`record_at`](Self::record_at) against the timeline's own clock.
    pub fn record(&self, latency_s: f64, cache_hit: bool) {
        self.record_at(self.elapsed_s(), latency_s, cache_hit);
    }

    /// [`depth_at`](Self::depth_at) against the timeline's own clock.
    pub fn note_depth(&self, depth: u64) {
        self.depth_at(self.elapsed_s(), depth);
    }

    /// Takes every window closed so far (the in-progress window stays).
    /// A writer thread can call this periodically and append the lines.
    #[must_use]
    pub fn drain_closed(&self) -> Vec<TimelineWindow> {
        std::mem::take(&mut self.lock().closed)
    }

    /// Closes the in-progress window and returns everything not yet
    /// drained. The timeline stays usable; subsequent samples for the same
    /// wall-clock window open a fresh accumulator under the next index.
    #[must_use]
    pub fn finish(&self) -> Vec<TimelineWindow> {
        let mut inner = self.lock();
        let closed = inner.cur.close(self.window_s);
        inner.cur = Open::new(closed.index + 1);
        inner.closed.push(closed);
        std::mem::take(&mut inner.closed)
    }

    /// Renders windows as a JSONL document (one line per window).
    #[must_use]
    pub fn render_jsonl(windows: &[TimelineWindow]) -> String {
        let mut out = String::new();
        for w in windows {
            out.push_str(&w.to_json_line());
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Debug for Timeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Timeline").field("window_s", &self.window_s).finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_accumulate_and_close_deterministically() {
        let t = Timeline::new(1.0);
        t.record_at(0.1, 0.010, false);
        t.record_at(0.2, 0.020, true);
        t.depth_at(0.5, 7);
        t.record_at(1.3, 0.030, false); // closes window 0
        let closed = t.drain_closed();
        assert_eq!(closed.len(), 1);
        let w = &closed[0];
        assert_eq!((w.index, w.count(), w.hits, w.queue_depth_peak), (0, 2, 1, 7));
        assert!((w.start_s - 0.0).abs() < 1e-12 && (w.len_s - 1.0).abs() < 1e-12);
        assert!((w.cache_hit_rate() - 0.5).abs() < 1e-12);
        assert!((w.req_per_s() - 2.0).abs() < 1e-9);
        // Quantiles never under-report and stay clamped to the max.
        let p50 = w.histo.quantile(0.5).unwrap();
        assert!((0.010..=0.030).contains(&p50), "p50 {p50}");

        let rest = t.finish();
        assert_eq!(rest.len(), 1);
        assert_eq!((rest[0].index, rest[0].count()), (1, 1));
    }

    #[test]
    fn gaps_emit_bounded_empty_windows() {
        let t = Timeline::new(1.0);
        t.record_at(0.5, 0.001, false);
        t.record_at(3.5, 0.001, false); // gap: windows 1 and 2 are empty
        let closed = t.drain_closed();
        assert_eq!(closed.iter().map(|w| w.index).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(closed[1].count(), 0);
        assert_eq!(closed[1].queue_depth_peak, 0);

        // A pathological gap jumps instead of materializing every window.
        let t = Timeline::new(1.0);
        t.record_at(0.5, 0.001, false);
        t.record_at(10_000.5, 0.001, false);
        let closed = t.drain_closed();
        assert!(closed.len() <= MAX_GAP_WINDOWS + 1, "emitted {} windows", closed.len());
        let rest = t.finish();
        assert_eq!(rest.last().unwrap().index, 10_000);
    }

    #[test]
    fn out_of_order_samples_clamp_into_the_current_window() {
        let t = Timeline::new(1.0);
        t.record_at(1.5, 0.001, false);
        t.record_at(0.2, 0.002, false); // late completion: folds into window 1
        let all = t.finish();
        let w1 = all.iter().find(|w| w.index == 1).unwrap();
        assert_eq!(w1.count(), 2);
    }

    #[test]
    fn json_line_is_well_formed_and_zeroes_empty_quantiles() {
        let t = Timeline::new(0.5);
        let all = t.finish(); // one empty window
        assert_eq!(all.len(), 1);
        let line = all[0].to_json_line();
        assert!(line.starts_with("{\"type\":\"timeline\",\"window\":0,"), "{line}");
        assert!(line.contains("\"count\":0"), "{line}");
        assert!(line.contains("\"p999_ms\":0.0"), "{line}");
        assert!(line.contains("\"max_ms\":0.0"), "{line}");
        assert!(!line.contains("inf") && !line.contains("NaN"), "{line}");
        let rendered = Timeline::render_jsonl(&all);
        assert_eq!(rendered.lines().count(), 1);
    }

    #[test]
    fn leading_empty_windows_are_emitted() {
        let t = Timeline::new(1.0);
        t.record_at(2.5, 0.001, false); // the run starts idle: 0 and 1 close empty
        let all = t.finish();
        assert_eq!(all.iter().map(|w| w.index).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!((all[0].count(), all[1].count(), all[2].count()), (0, 0, 1));
        assert!(all[0].start_s.abs() < 1e-12);
        assert!((all[0].req_per_s()).abs() < 1e-12);
    }

    #[test]
    fn trailing_empty_window_closes_at_finish() {
        let t = Timeline::new(1.0);
        t.record_at(0.5, 0.001, false);
        t.depth_at(2.7, 0); // the run goes quiet; the clock advance closes 0 and 1
        let all = t.finish();
        assert_eq!(all.iter().map(|w| w.index).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(all[2].count(), 0); // trailing idle window is present, empty
        let line = all[2].to_json_line();
        assert!(!line.contains("inf") && !line.contains("NaN"), "{line}");
    }

    #[test]
    fn boundary_exact_samples_open_the_next_window() {
        let t = Timeline::new(0.5);
        t.record_at(0.0, 0.001, false);
        t.record_at(0.5, 0.002, false); // exactly on the edge: first instant of window 1
        t.record_at(1.0, 0.003, false);
        let all = t.finish();
        let counts: Vec<(u64, u64)> = all.iter().map(|w| (w.index, w.count())).collect();
        assert_eq!(counts, vec![(0, 1), (1, 1), (2, 1)]);
        assert!((all[1].start_s - 0.5).abs() < 1e-12);
    }

    #[test]
    fn backwards_clocks_never_panic_or_lose_samples() {
        mosc_testutil::propcheck("timeline monotonic-clock regressions", |rng| {
            let window_s = rng.gen_range(0.01..=1.0);
            let t = Timeline::new(window_s);
            let n = rng.gen_range(1..40usize);
            let mut clock = 0.0f64;
            let mut recorded = 0u64;
            for _ in 0..n {
                // A wobbling wall clock: mostly forward, sometimes a
                // regression, occasionally a long stall. Stamps saturate at
                // zero — a monotonic source never hands out negative time.
                let delta = match rng.gen_range(0..10usize) {
                    0..=5 => rng.gen_range(0.0..0.2),
                    6 | 7 => -rng.gen_range(0.0..0.3),
                    _ => rng.gen_range(1.0..40.0),
                };
                clock = (clock + delta).max(0.0);
                if rng.gen_range(0..8usize) == 0 {
                    t.depth_at(clock, rng.gen_range(0..32usize) as u64);
                } else {
                    t.record_at(clock, rng.gen_range(0.0..0.1), rng.gen_range(0..2usize) == 1);
                    recorded += 1;
                }
            }
            let all = t.finish();
            // Backdated samples clamp forward, so none are ever dropped...
            assert_eq!(all.iter().map(TimelineWindow::count).sum::<u64>(), recorded);
            // ...and the window sequence never runs backwards.
            for pair in all.windows(2) {
                assert!(pair[0].index < pair[1].index, "indices must stay strictly increasing");
            }
            for w in &all {
                assert!(w.count() == 0 || w.histo.max.is_finite());
                let line = w.to_json_line();
                assert!(!line.contains("inf") && !line.contains("NaN"), "{line}");
            }
        });
    }

    #[test]
    fn invalid_latencies_are_dropped() {
        let t = Timeline::new(1.0);
        t.record_at(0.1, f64::NAN, false);
        t.record_at(0.1, -1.0, false);
        t.record_at(0.1, f64::INFINITY, false);
        assert_eq!(t.finish()[0].count(), 0);
    }
}
