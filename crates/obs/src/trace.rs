//! Request-scoped trace capture.
//!
//! The global span aggregate answers "where does this *process* spend
//! time"; a server also needs "what did *this request* do" — the solver
//! span tree and kernel-counter increments attributable to one queued job,
//! which runs on a worker thread far from the connection that accepted it.
//!
//! A [`TraceContext`] is a small shared handle created at request ingress
//! and handed (via its `Clone`) to whichever thread executes the work. The
//! worker wraps the work in [`TraceContext::observe`]; while the closure
//! runs, a thread-local capture slot points at the context, and:
//!
//! * when a **root span** closes on that thread, the completed thread tree
//!   is merged into the context *in addition to* the global aggregate;
//! * every enabled [`crate::Counter`] increment on that thread is also
//!   accumulated into the context, keyed by counter name — these are the
//!   per-request deltas (`expm.calls` etc.) for access logging.
//!
//! Captures nest: `observe` saves and restores any previously installed
//! slot, so an observed region inside an observed region attributes to the
//! inner context only. The capture is **thread-local by design** — work a
//! solver fans out to its own scoped threads merges into the global
//! aggregate but not into the context (those threads have no capture
//! slot); the root `*.solve` span always runs on the observed thread, so
//! request attribution keeps the full call-path skeleton.
//!
//! While the recorder is disabled, [`TraceContext::observe`] runs the
//! closure directly — no thread-local writes, no locks — and snapshots are
//! empty.

use crate::report::SpanStats;
use crate::span::TreeState;
use std::cell::RefCell;
use std::sync::{Arc, Mutex, PoisonError};

/// State accumulated for one request: its span trees and counter deltas.
#[derive(Default)]
struct TraceInner {
    tree: TreeState,
    /// Counter increments observed in the capture, in first-seen order.
    counters: Vec<(&'static str, u64)>,
}

thread_local! {
    /// The capture slot: set while a thread is inside `observe`.
    static CAPTURE: RefCell<Option<Arc<Mutex<TraceInner>>>> = const { RefCell::new(None) };
}

/// A shareable handle that collects the span trees and counter increments
/// produced inside [`TraceContext::observe`] calls, across threads.
#[derive(Clone, Default)]
pub struct TraceContext {
    inner: Arc<Mutex<TraceInner>>,
}

impl std::fmt::Debug for TraceContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceContext").finish_non_exhaustive()
    }
}

impl TraceContext {
    /// An empty context, ready to observe work.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f` with this context installed as the thread's capture target:
    /// root span trees completing during `f` and counter increments made by
    /// `f`'s thread accumulate into the context. Restores any previously
    /// installed capture on exit (captures nest); panics in `f` unwind past
    /// the restore safely. When the recorder is disabled this is exactly
    /// `f()` — no state is touched.
    pub fn observe<R>(&self, f: impl FnOnce() -> R) -> R {
        if !crate::enabled() {
            return f();
        }
        let prev = CAPTURE.with(|slot| slot.borrow_mut().replace(Arc::clone(&self.inner)));
        let _restore = RestoreOnDrop(prev);
        f()
    }

    /// Freezes what the context has captured so far.
    #[must_use]
    pub fn snapshot(&self) -> TraceSnapshot {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        TraceSnapshot {
            spans: crate::span::stats_of(&inner.tree),
            counters: inner.counters.iter().map(|&(n, v)| (n.to_string(), v)).collect(),
        }
    }

    /// A captured counter's accumulated delta, 0 when never seen.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.counters.iter().find(|(n, _)| *n == name).map_or(0, |&(_, v)| v)
    }
}

/// Restores the previous capture slot even if the observed closure panics.
struct RestoreOnDrop(Option<Arc<Mutex<TraceInner>>>);

impl Drop for RestoreOnDrop {
    fn drop(&mut self) {
        let _ = CAPTURE.try_with(|slot| *slot.borrow_mut() = self.0.take());
    }
}

/// Plain data captured by a [`TraceContext`].
#[derive(Debug, Clone)]
pub struct TraceSnapshot {
    /// Captured span stats, preorder (same shape as [`crate::Telemetry::spans`]).
    pub spans: Vec<SpanStats>,
    /// Captured counter deltas in first-seen order.
    pub counters: Vec<(String, u64)>,
}

impl TraceSnapshot {
    /// `true` when nothing was captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty()
    }
}

/// Span-module hook: a root span tree just completed on this thread; fold
/// it into the active capture, if any. (`try_with`: a span closing during
/// thread teardown must not panic on destroyed TLS.)
pub(crate) fn on_root_tree(tree: &TreeState) {
    let _ = CAPTURE.try_with(|slot| {
        if let Some(inner) = slot.borrow().as_ref() {
            inner.lock().unwrap_or_else(PoisonError::into_inner).tree.merge(tree);
        }
    });
}

/// Metric-module hook: an enabled counter just added `n` on this thread.
pub(crate) fn on_counter(name: &'static str, n: u64) {
    let _ = CAPTURE.try_with(|slot| {
        if let Some(inner) = slot.borrow().as_ref() {
            let mut inner = inner.lock().unwrap_or_else(PoisonError::into_inner);
            match inner.counters.iter_mut().find(|(k, _)| *k == name) {
                Some(entry) => entry.1 += n,
                None => inner.counters.push((name, n)),
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_lock;

    #[test]
    fn observe_captures_spans_and_counters_per_context() {
        let _guard = test_lock::hold();
        crate::enable();
        crate::reset();
        static TICKS: crate::Counter = crate::Counter::new("trace.ticks");
        let ctx = TraceContext::new();
        ctx.observe(|| {
            let _root = crate::span("trace.root");
            let _leaf = crate::span("trace.leaf");
            TICKS.add(3);
        });
        // Outside the capture: neither tree nor counter lands in `ctx`.
        {
            let _root = crate::span("trace.outside");
            TICKS.add(10);
        }
        let snap = ctx.snapshot();
        assert_eq!(snap.counters, vec![("trace.ticks".to_string(), 3)]);
        assert_eq!(ctx.counter("trace.ticks"), 3);
        let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, ["trace.root", "trace.root/trace.leaf"]);
        // The global aggregate still sees everything.
        let t = crate::snapshot();
        assert!(t.span_path("trace.outside").is_some());
        assert_eq!(t.counter("trace.ticks"), Some(13));
        crate::disable();
        crate::reset();
    }

    #[test]
    fn observe_hands_across_threads_and_nests() {
        let _guard = test_lock::hold();
        crate::enable();
        crate::reset();
        let outer = TraceContext::new();
        let inner_ctx = TraceContext::new();
        outer.observe(|| {
            let _root = crate::span("nest.outer");
            drop(crate::span("nest.outer_leaf"));
            // The worker thread gets its own clone of a different context.
            let worker_ctx = inner_ctx.clone();
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    worker_ctx.observe(|| {
                        let _r = crate::span("nest.worker");
                    });
                });
            });
        });
        assert!(outer.snapshot().spans.iter().any(|s| s.path == "nest.outer"));
        assert!(!outer.snapshot().spans.iter().any(|s| s.path.contains("worker")));
        assert!(inner_ctx.snapshot().spans.iter().any(|s| s.path == "nest.worker"));
        crate::disable();
        crate::reset();
    }

    #[test]
    fn disabled_observe_is_transparent() {
        let _guard = test_lock::hold();
        crate::disable();
        let ctx = TraceContext::new();
        let out = ctx.observe(|| {
            let _root = crate::span("trace.disabled");
            41 + 1
        });
        assert_eq!(out, 42);
        assert!(ctx.snapshot().is_empty());
    }
}
