//! Stress test pinning the `snapshot()` + `reset()` race fix.
//!
//! A long-lived server carves telemetry into windows. Doing that with
//! `snapshot()` followed by `reset()` loses whatever merges between the two
//! calls; `drain()` removes each store inside one critical section, so
//! concurrent recording lands entirely in one window. This test hammers the
//! recorder from many threads while the main thread drains in a loop, then
//! checks global conservation: every counter increment and every completed
//! root span is seen exactly once across all windows.
//!
//! This file is its own test binary and holds exactly one `#[test]`, so the
//! process-global recorder is not shared with any concurrent test.

use mosc_obs::Counter;

const THREADS: usize = 8;
const SPANS_PER_THREAD: u64 = 400;
const ADDS_PER_SPAN: u64 = 16;

#[test]
fn concurrent_drains_neither_lose_nor_double_count() {
    static HITS: Counter = Counter::new("stress.hits");
    mosc_obs::enable();

    let mut windows = Vec::new();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..SPANS_PER_THREAD {
                    // Each iteration completes one root span (merging the
                    // thread tree into the global aggregate) and adds to a
                    // counter — both racing the main thread's drains.
                    let _root = mosc_obs::span("stress.root");
                    let _leaf = mosc_obs::span("stress.leaf");
                    HITS.add(ADDS_PER_SPAN);
                }
            });
        }
        // Drain continuously while the writers run.
        loop {
            windows.push(mosc_obs::drain());
            let done = windows
                .iter()
                .filter_map(|t| t.span_path("stress.root").map(|s| s.calls))
                .sum::<u64>()
                >= THREADS as u64 * SPANS_PER_THREAD;
            if done {
                break;
            }
            std::thread::yield_now();
        }
    });
    // One final drain for anything recorded after the loop exited.
    windows.push(mosc_obs::drain());

    let total_adds: u64 = windows.iter().filter_map(|t| t.counter("stress.hits")).sum();
    let total_roots: u64 =
        windows.iter().filter_map(|t| t.span_path("stress.root").map(|s| s.calls)).sum();
    let total_leaves: u64 = windows
        .iter()
        .filter_map(|t| t.span_path("stress.root/stress.leaf").map(|s| s.calls))
        .sum();

    let expected_spans = THREADS as u64 * SPANS_PER_THREAD;
    assert_eq!(
        total_adds,
        expected_spans * ADDS_PER_SPAN,
        "counter increments lost or double-counted across {} windows",
        windows.len()
    );
    assert_eq!(total_roots, expected_spans, "root-span merges split across drains");
    assert_eq!(total_leaves, expected_spans, "child spans must travel with their root");

    mosc_obs::disable();
    let leftover = mosc_obs::drain();
    assert_eq!(leftover.counter("stress.hits").unwrap_or(0), 0, "everything was drained");
}
