//! Property tests for [`mosc_obs::HistoSnapshot`] merge algebra and
//! quantile monotonicity — the two invariants the PR 7 bench pipeline
//! leans on. Merge must be associative and commutative (the serve
//! daemon folds per-op histograms in whatever order the scrape happens
//! to visit them) and the quantile chain `p50 ≤ p90 ≤ p99 ≤ p999 ≤ max`
//! must hold against the sorted-sample oracle (the `M101` lint fails
//! artifacts that violate it, so the source had better be incapable of
//! producing one).
//!
//! This file is its own test binary and holds exactly one `#[test]`, so
//! the process-global recorder is not shared with any concurrent test.

use mosc_obs::{HistoSnapshot, LogHistogram};
use mosc_testutil::propcheck;

/// Exact `q`-quantile of a sorted sample set, rank `ceil(q * n)` (the same
/// rank definition the histogram uses).
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Structural equality up to float addition order: exact on bucket counts,
/// count, min and max; tolerant on the running sum, which is accumulated
/// in whatever order the merges happened.
fn assert_equivalent(a: &HistoSnapshot, b: &HistoSnapshot, what: &str) {
    assert_eq!(a.counts, b.counts, "{what}: bucket counts differ");
    assert_eq!(a.count, b.count, "{what}: totals differ");
    assert_eq!(a.min, b.min, "{what}: minima differ");
    assert_eq!(a.max, b.max, "{what}: maxima differ");
    assert!(
        (a.sum - b.sum).abs() <= 1e-9 * a.sum.abs().max(1.0),
        "{what}: sums diverge beyond reassociation tolerance ({} vs {})",
        a.sum,
        b.sum
    );
}

#[test]
fn merge_is_associative_commutative_and_quantiles_are_monotone() {
    mosc_obs::enable();
    propcheck("histogram merge algebra and quantile monotonicity", |rng| {
        // Three independent shards with disjoint random samples, as if
        // three ops' histograms were being folded into one summary.
        let names = ["prop.merge.a", "prop.merge.b", "prop.merge.c"];
        let mut all: Vec<f64> = Vec::new();
        let snaps: Vec<HistoSnapshot> = names
            .iter()
            .map(|name| {
                let hist = LogHistogram::new(name);
                // A shard may be empty — merge must tolerate identity
                // elements anywhere in the fold.
                let n = rng.gen_range(0..120usize);
                for _ in 0..n {
                    let v = 10f64.powf(rng.gen_range(-6.0..3.0));
                    all.push(v);
                    hist.record(v);
                }
                hist.snapshot()
            })
            .collect();
        let (a, b, c) = (&snaps[0], &snaps[1], &snaps[2]);

        let fold = |parts: &[&HistoSnapshot]| {
            let mut out = HistoSnapshot::empty();
            for p in parts {
                out.merge(p);
            }
            out
        };
        // Associativity: (a ∪ b) ∪ c == a ∪ (b ∪ c).
        let left = {
            let mut ab = fold(&[a, b]);
            ab.merge(c);
            ab
        };
        let right = {
            let bc = fold(&[b, c]);
            let mut out = HistoSnapshot::empty();
            out.merge(a);
            out.merge(&bc);
            out
        };
        assert_equivalent(&left, &right, "associativity");
        // Commutativity: every visit order folds to the same summary.
        assert_equivalent(&fold(&[a, b, c]), &fold(&[c, b, a]), "commutativity");
        assert_equivalent(&fold(&[a, b, c]), &fold(&[b, a, c]), "commutativity");

        // Quantile chain on the merged summary, pinned to the sorted
        // oracle: each estimate is monotone in q and stays within one
        // bucket of the exact value (never below it).
        if all.is_empty() {
            assert!(left.quantile(0.5).is_none(), "empty merge must have no quantiles");
            return;
        }
        all.sort_by(f64::total_cmp);
        let chain = [0.5, 0.9, 0.99, 0.999, 1.0];
        let mut prev = 0.0_f64;
        for q in chain {
            let est = left.quantile(q).expect("non-empty merge");
            let exact = exact_quantile(&all, q);
            assert!(
                est >= prev,
                "quantile chain regressed at q{q}: {est} < {prev} (n={})",
                all.len()
            );
            assert!(
                est >= exact * (1.0 - 1e-12),
                "q{q}: estimate {est} under-reports exact {exact}"
            );
            prev = est;
        }
        // p100 tops out at the true maximum the snapshot tracked.
        assert!(
            left.quantile(1.0).expect("non-empty") >= left.max * (1.0 - 1e-12),
            "p100 must cover the maximum"
        );
    });
    mosc_obs::disable();
}
