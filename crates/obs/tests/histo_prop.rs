//! Property test: [`mosc_obs::LogHistogram`] quantile estimates against an
//! exact sorted-sample oracle. The log layout guarantees the estimate never
//! under-reports and overshoots by at most one bucket ratio (10^(1/8)), so
//! the property pins `exact <= estimate <= exact * ratio` for every sample
//! set and quantile inside the bucketed range.
//!
//! This file is its own test binary and holds exactly one `#[test]`, so the
//! process-global recorder is not shared with any concurrent test.

use mosc_obs::{HistoSnapshot, LogHistogram};
use mosc_testutil::propcheck;

/// One bucket's relative width: 8 buckets per decade.
const BUCKET_RATIO: f64 = 1.333_521_432_163_324_1; // 10^(1/8)

/// Exact `q`-quantile of a sorted sample set, rank `ceil(q * n)` (the same
/// rank definition the histogram uses).
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[test]
fn quantile_estimate_is_bounded_by_bucket_width() {
    mosc_obs::enable();
    propcheck("histogram quantiles vs sorted oracle", |rng| {
        let n = rng.gen_range(1..400usize);
        let hist = LogHistogram::new("prop.latency");
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            // Log-uniform over the bucketed range [1e-6, 1e3): exercises
            // every decade instead of piling into the top one.
            let exponent = rng.gen_range(-6.0..3.0);
            let v = 10f64.powf(exponent);
            samples.push(v);
            hist.record(v);
        }
        samples.sort_by(f64::total_cmp);

        let snap = hist.snapshot();
        assert_eq!(snap.count, n as u64);
        for q in [0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let exact = exact_quantile(&samples, q);
            let est = snap.quantile(q).expect("non-empty histogram");
            assert!(
                est >= exact * (1.0 - 1e-12),
                "q{q}: estimate {est} under-reports exact {exact} (n={n})"
            );
            assert!(
                est <= exact * BUCKET_RATIO * (1.0 + 1e-12),
                "q{q}: estimate {est} beyond one bucket above exact {exact} (n={n})"
            );
        }

        // Merging a random split of the same samples gives the identical
        // snapshot (mergeability is what lets per-op histograms fold into
        // one service-wide quantile).
        let left = LogHistogram::new("prop.left");
        let right = LogHistogram::new("prop.right");
        for &v in &samples {
            if rng.gen_range(0..2usize) == 0 {
                left.record(v);
            } else {
                right.record(v);
            }
        }
        let mut merged = HistoSnapshot::empty();
        merged.merge(&left.snapshot());
        merged.merge(&right.snapshot());
        assert_eq!(merged.counts, snap.counts, "merge must equal concatenation (n={n})");
        assert_eq!(merged.quantile(0.5), snap.quantile(0.5));
    });
    mosc_obs::disable();
}
