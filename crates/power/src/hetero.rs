//! Per-core power heterogeneity.
//!
//! The paper assumes one `(α, β, γ)` triple for the whole chip. Real silicon
//! has process variation (die-to-die and within-die), and heterogeneous
//! designs mix core types outright. [`CorePowerTable`] carries one
//! [`PowerModel`] per core; the [`PowerLike`] trait lets the thermal
//! evaluation machinery accept either the uniform or the per-core form, so a
//! schedule certified against the nominal model can be re-evaluated against
//! variation samples (the `robustness` experiment).

use crate::{PowerError, PowerModel};

/// Anything that can turn a per-core voltage assignment into per-core
/// temperature-independent power. Implemented by the chip-uniform
/// [`PowerModel`] and the per-core [`CorePowerTable`].
pub trait PowerLike {
    /// ψ for one core at voltage `v`.
    fn psi_core(&self, core: usize, v: f64) -> f64;

    /// ψ evaluated over a voltage slice.
    fn psi_profile_of(&self, voltages: &[f64]) -> Vec<f64> {
        voltages.iter().enumerate().map(|(i, &v)| self.psi_core(i, v)).collect()
    }

    /// Leakage temperature sensitivity of one core (W/K).
    fn beta_core(&self, core: usize) -> f64;
}

impl PowerLike for PowerModel {
    fn psi_core(&self, _core: usize, v: f64) -> f64 {
        self.psi(v)
    }

    fn beta_core(&self, _core: usize) -> f64 {
        self.beta
    }
}

/// One power model per core.
#[derive(Debug, Clone, PartialEq)]
pub struct CorePowerTable {
    models: Vec<PowerModel>,
}

impl CorePowerTable {
    /// Builds a table from explicit per-core models.
    ///
    /// # Errors
    /// Rejects an empty list.
    pub fn from_models(models: Vec<PowerModel>) -> Result<Self, PowerError> {
        if models.is_empty() {
            return Err(PowerError::InvalidParameter { what: "need at least one core model" });
        }
        Ok(Self { models })
    }

    /// `n` copies of one model (equivalent to the uniform chip).
    ///
    /// # Errors
    /// Rejects `n == 0`.
    pub fn uniform(model: PowerModel, n: usize) -> Result<Self, PowerError> {
        Self::from_models(vec![model; n])
    }

    /// A variation sample around a nominal model: per-core `γ` and `α`
    /// scaled by the given multipliers (e.g. drawn from ±10 %).
    ///
    /// # Errors
    /// Rejects mismatched lengths or multipliers producing invalid models.
    pub fn with_variation(
        nominal: PowerModel,
        gamma_scale: &[f64],
        alpha_scale: &[f64],
    ) -> Result<Self, PowerError> {
        if gamma_scale.len() != alpha_scale.len() || gamma_scale.is_empty() {
            return Err(PowerError::InvalidParameter {
                what: "variation slices must be non-empty and equal-length",
            });
        }
        let models = gamma_scale
            .iter()
            .zip(alpha_scale)
            .map(|(&gs, &as_)| {
                PowerModel::new(nominal.alpha * as_, nominal.beta, nominal.gamma * gs)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Self::from_models(models)
    }

    /// Number of cores.
    #[must_use]
    pub fn n_cores(&self) -> usize {
        self.models.len()
    }

    /// The model of one core.
    #[must_use]
    pub fn model(&self, core: usize) -> &PowerModel {
        &self.models[core]
    }

    /// Per-core β values, in core order (for the thermal state matrix).
    #[must_use]
    pub fn betas(&self) -> Vec<f64> {
        self.models.iter().map(|m| m.beta).collect()
    }
}

impl PowerLike for CorePowerTable {
    fn psi_core(&self, core: usize, v: f64) -> f64 {
        self.models[core].psi(v)
    }

    fn beta_core(&self, core: usize) -> f64 {
        self.models[core].beta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nominal() -> PowerModel {
        PowerModel::new(1.0, 0.03, 8.0).unwrap()
    }

    #[test]
    fn uniform_table_matches_single_model() {
        let t = CorePowerTable::uniform(nominal(), 3).unwrap();
        assert_eq!(t.n_cores(), 3);
        for v in [0.6, 1.0, 1.3] {
            assert_eq!(t.psi_core(2, v), nominal().psi(v));
        }
        let profile = t.psi_profile_of(&[0.6, 1.0, 1.3]);
        let direct = nominal().psi_profile(&[0.6, 1.0, 1.3]);
        assert_eq!(profile, direct);
    }

    #[test]
    fn variation_scales_each_core() {
        let t = CorePowerTable::with_variation(nominal(), &[0.9, 1.1], &[1.0, 1.0]).unwrap();
        assert!(t.psi_core(0, 1.0) < t.psi_core(1, 1.0));
        assert_eq!(t.betas(), vec![0.03, 0.03]);
        // Trait default profile uses the per-core models.
        let p = t.psi_profile_of(&[1.0, 1.0]);
        assert!(p[0] < p[1]);
    }

    #[test]
    fn construction_validation() {
        assert!(CorePowerTable::from_models(vec![]).is_err());
        assert!(CorePowerTable::uniform(nominal(), 0).is_err());
        assert!(CorePowerTable::with_variation(nominal(), &[1.0], &[]).is_err());
        // Negative multiplier invalidates the model.
        assert!(CorePowerTable::with_variation(nominal(), &[-1.0], &[1.0]).is_err());
    }

    #[test]
    fn power_model_implements_power_like() {
        let m = nominal();
        assert_eq!(PowerLike::psi_core(&m, 5, 1.0), m.psi(1.0));
        assert_eq!(PowerLike::beta_core(&m, 0), 0.03);
        assert_eq!(m.psi_profile_of(&[0.6, 1.3]), m.psi_profile(&[0.6, 1.3]));
    }
}
