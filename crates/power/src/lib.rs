//! Power and DVFS modeling for temperature-constrained scheduling.
//!
//! Implements eq. (1) of Sha et al. (ICPP 2016): the total power of core *i*
//! running at supply voltage `v` and temperature `T` is
//!
//! ```text
//! P_i(t) = α(v) + β·T_i(t) + γ(v)·v³
//! ```
//!
//! where the `β·T` term is the temperature-dependent leakage (folded into the
//! thermal state matrix by `mosc-thermal`) and `ψ(v) = α + γ·v³` is the
//! temperature-independent part this crate computes. Following the paper, the
//! supply voltage doubles as the normalized processing speed (*"we use v and f
//! interchangeably"*), so a core's throughput contribution over an interval is
//! simply `v · length`.
//!
//! The crate provides:
//! * [`PowerModel`] — the `(α, β, γ)` parameterization with presets abstracted
//!   from McPAT-class numbers for a 65 nm, 4×4 mm core.
//! * [`ModeTable`] — discrete voltage levels with neighbor lookup, including
//!   the paper's Table IV level sets.
//! * [`TransitionOverhead`] — the DVFS stall model `τ`, the compensation time
//!   `δ_i = (v_H + v_L)·τ / (v_H − v_L)` and the oscillation bound
//!   `M_i = ⌊t_L / (δ_i + τ)⌋` of Section V.

#![deny(missing_docs)]
#![warn(clippy::all)]

mod hetero;
mod model;
mod modes;
mod overhead;
mod params;

pub use hetero::{CorePowerTable, PowerLike};
pub use model::PowerModel;
pub use modes::{ModeTable, NeighborModes};
pub use overhead::TransitionOverhead;
pub use params::{Params65nm, PlatformParams};

/// Errors produced by the power crate.
#[derive(Debug, Clone, PartialEq)]
pub enum PowerError {
    /// A voltage was outside the table's supported range.
    VoltageOutOfRange {
        /// The offending voltage.
        voltage: f64,
        /// Supported range.
        range: (f64, f64),
    },
    /// A mode table needs at least one level.
    EmptyModeTable,
    /// Parameters failed validation (non-positive step, NaN, ...).
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        what: &'static str,
    },
}

impl std::fmt::Display for PowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::VoltageOutOfRange { voltage, range } => write!(
                f,
                "voltage {voltage} V outside supported range [{}, {}] V",
                range.0, range.1
            ),
            Self::EmptyModeTable => write!(f, "mode table must contain at least one level"),
            Self::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
        }
    }
}

impl std::error::Error for PowerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = PowerError::VoltageOutOfRange { voltage: 2.0, range: (0.6, 1.3) };
        assert!(e.to_string().contains("2"));
        assert!(PowerError::EmptyModeTable.to_string().contains("at least one"));
    }
}
