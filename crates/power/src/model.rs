//! The `(α, β, γ)` power model of eq. (1).

use crate::PowerError;

/// Per-core power model `P(v, T) = ψ(v) + β·T` with `ψ(v) = α + γ·v³`.
///
/// Temperatures are measured **relative to ambient** throughout the
/// workspace, so the constant leakage floor `β·T_amb` is considered part of
/// `α`. An inactive core (`v = 0`) draws no power, matching the paper's
/// convention that `v = f = 0` for a powered-down core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Voltage-independent active power floor (W). Includes the
    /// ambient-temperature leakage `β·T_amb`.
    pub alpha: f64,
    /// Leakage temperature sensitivity (W/K), the `β` of eq. (1).
    pub beta: f64,
    /// Dynamic power coefficient (W/V³), the `γ` of eq. (1).
    pub gamma: f64,
}

impl PowerModel {
    /// Creates a model after validating that all coefficients are finite and
    /// non-negative.
    ///
    /// # Errors
    /// Returns [`PowerError::InvalidParameter`] for NaN/∞ or negative values.
    pub fn new(alpha: f64, beta: f64, gamma: f64) -> Result<Self, PowerError> {
        for (v, what) in [
            (alpha, "alpha must be finite and >= 0"),
            (beta, "beta must be finite and >= 0"),
            (gamma, "gamma must be finite and >= 0"),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(PowerError::InvalidParameter { what });
            }
        }
        Ok(Self { alpha, beta, gamma })
    }

    /// Temperature-independent power `ψ(v) = α + γ·v³`, zero for an inactive
    /// core (`v = 0`).
    #[inline]
    #[must_use]
    pub fn psi(&self, v: f64) -> f64 {
        if v == 0.0 {
            0.0
        } else {
            self.alpha + self.gamma * v * v * v
        }
    }

    /// Total power at relative temperature `t` (K above ambient).
    #[inline]
    #[must_use]
    pub fn total(&self, v: f64, t: f64) -> f64 {
        if v == 0.0 {
            0.0
        } else {
            self.psi(v) + self.beta * t
        }
    }

    /// Inverts `ψ` for an active core: the voltage whose
    /// temperature-independent power equals `psi`. Returns `None` when
    /// `psi < α` (no active voltage can draw that little).
    #[must_use]
    pub fn voltage_for_psi(&self, psi: f64) -> Option<f64> {
        if psi < self.alpha || self.gamma == 0.0 {
            return None;
        }
        Some(((psi - self.alpha) / self.gamma).cbrt())
    }

    /// ψ evaluated over a voltage slice — the per-core power vector that
    /// `mosc-thermal` turns into the input matrix `B(v)`.
    #[must_use]
    pub fn psi_profile(&self, voltages: &[f64]) -> Vec<f64> {
        voltages.iter().map(|&v| self.psi(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PowerModel {
        PowerModel::new(1.0, 0.03, 8.0).unwrap()
    }

    #[test]
    fn psi_is_cubic_plus_floor() {
        let m = model();
        assert!((m.psi(1.0) - 9.0).abs() < 1e-12);
        assert!((m.psi(0.5) - (1.0 + 8.0 * 0.125)).abs() < 1e-12);
    }

    #[test]
    fn inactive_core_draws_nothing() {
        let m = model();
        assert_eq!(m.psi(0.0), 0.0);
        assert_eq!(m.total(0.0, 50.0), 0.0);
    }

    #[test]
    fn total_adds_leakage() {
        let m = model();
        assert!((m.total(1.0, 10.0) - (9.0 + 0.3)).abs() < 1e-12);
    }

    #[test]
    fn voltage_for_psi_inverts_psi() {
        let m = model();
        for v in [0.6, 0.8, 1.0, 1.3] {
            let back = m.voltage_for_psi(m.psi(v)).unwrap();
            assert!((back - v).abs() < 1e-12, "v={v}");
        }
        assert!(m.voltage_for_psi(0.5).is_none()); // below alpha
    }

    #[test]
    fn psi_is_monotone_in_voltage() {
        let m = model();
        let mut prev = m.psi(0.1);
        for i in 2..=13 {
            let v = 0.1 * i as f64;
            let p = m.psi(v);
            assert!(p > prev);
            prev = p;
        }
    }

    #[test]
    fn psi_profile_maps_each_core() {
        let m = model();
        let p = m.psi_profile(&[0.0, 1.0]);
        assert_eq!(p.len(), 2);
        assert_eq!(p[0], 0.0);
        assert!((p[1] - 9.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_invalid_coefficients() {
        assert!(PowerModel::new(f64::NAN, 0.0, 1.0).is_err());
        assert!(PowerModel::new(1.0, -0.1, 1.0).is_err());
        assert!(PowerModel::new(1.0, 0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn psi_convexity_discrete_check() {
        // ψ is convex in v: midpoint rule on a few triples. This is the fact
        // Theorem 3's proof leans on.
        let m = model();
        for (lo, hi) in [(0.6, 1.3), (0.7, 1.0), (0.9, 1.2)] {
            let mid = 0.5 * (lo + hi);
            assert!(m.psi(mid) <= 0.5 * (m.psi(lo) + m.psi(hi)) + 1e-12);
        }
    }
}
