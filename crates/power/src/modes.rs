//! Discrete DVFS mode tables.

use crate::PowerError;

/// The two discrete levels bracketing a continuous target voltage, plus the
/// execution-time ratios that preserve its throughput (eq. 11 of the paper):
///
/// ```text
/// v_H·r_H + v_L·r_L = v_target,   r_H + r_L = 1.
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NeighborModes {
    /// Lower neighboring level (`v_L`).
    pub v_low: f64,
    /// Upper neighboring level (`v_H`).
    pub v_high: f64,
    /// Fraction of time at `v_high`.
    pub ratio_high: f64,
}

impl NeighborModes {
    /// Fraction of time at `v_low`.
    #[inline]
    #[must_use]
    pub fn ratio_low(&self) -> f64 {
        1.0 - self.ratio_high
    }

    /// `true` when the target voltage coincided with an available level and no
    /// oscillation is needed.
    #[inline]
    #[must_use]
    pub fn is_single_mode(&self) -> bool {
        self.v_low == self.v_high || self.ratio_high == 0.0 || self.ratio_high == 1.0
    }

    /// The throughput-equivalent constant voltage this pair realizes.
    #[inline]
    #[must_use]
    pub fn equivalent_voltage(&self) -> f64 {
        self.v_high * self.ratio_high + self.v_low * self.ratio_low()
    }
}

/// An ordered set of available discrete supply-voltage levels.
///
/// The paper's platforms use levels in `[0.6 V, 1.3 V]`; its Table IV defines
/// the specific 2/3/4/5-level subsets used in the evaluation, exposed here as
/// [`ModeTable::table_iv`].
#[derive(Debug, Clone, PartialEq)]
pub struct ModeTable {
    levels: Vec<f64>,
}

impl ModeTable {
    /// Builds a table from explicit levels. Levels are sorted and deduplicated.
    ///
    /// # Errors
    /// * [`PowerError::EmptyModeTable`] when no level is given.
    /// * [`PowerError::InvalidParameter`] for non-finite or non-positive levels.
    pub fn from_levels(levels: &[f64]) -> Result<Self, PowerError> {
        if levels.is_empty() {
            return Err(PowerError::EmptyModeTable);
        }
        if levels.iter().any(|v| !v.is_finite() || *v <= 0.0) {
            return Err(PowerError::InvalidParameter {
                what: "voltage levels must be finite and positive",
            });
        }
        let mut sorted = levels.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite by validation"));
        sorted.dedup_by(|a, b| (*a - *b).abs() < 1e-12);
        Ok(Self { levels: sorted })
    }

    /// Builds the uniform grid `{lo, lo+step, …, hi}` (inclusive of `hi` when
    /// it lands on the grid, which the paper's 0.6:0.05:1.3 range does).
    ///
    /// # Errors
    /// Returns [`PowerError::InvalidParameter`] for a degenerate range/step.
    pub fn uniform(lo: f64, hi: f64, step: f64) -> Result<Self, PowerError> {
        if !(lo.is_finite() && hi.is_finite() && step.is_finite())
            || lo <= 0.0
            || hi < lo
            || step <= 0.0
        {
            return Err(PowerError::InvalidParameter {
                what: "uniform grid requires 0 < lo <= hi and step > 0",
            });
        }
        let n = ((hi - lo) / step).round() as usize;
        let mut levels: Vec<f64> = (0..=n).map(|i| lo + step * i as f64).collect();
        if let Some(last) = levels.last_mut() {
            if (*last - hi).abs() < step * 0.5 {
                *last = hi;
            }
        }
        Self::from_levels(&levels)
    }

    /// The paper's Table IV level sets: `count` ∈ {2, 3, 4, 5}.
    ///
    /// | count | levels (V) |
    /// |---|---|
    /// | 2 | 0.6, 1.3 |
    /// | 3 | 0.6, 0.8, 1.3 |
    /// | 4 | 0.6, 0.8, 1.0, 1.3 |
    /// | 5 | 0.6, 0.8, 1.0, 1.2, 1.3 |
    ///
    /// # Panics
    /// Panics for a `count` outside 2..=5.
    #[must_use]
    pub fn table_iv(count: usize) -> Self {
        let levels: &[f64] = match count {
            2 => &[0.6, 1.3],
            3 => &[0.6, 0.8, 1.3],
            4 => &[0.6, 0.8, 1.0, 1.3],
            5 => &[0.6, 0.8, 1.0, 1.2, 1.3],
            _ => panic!("Table IV defines 2..=5 levels, got {count}"),
        };
        Self::from_levels(levels).expect("static levels are valid")
    }

    /// The sorted level list.
    #[inline]
    #[must_use]
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }

    /// Number of levels.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// `false` by construction (an empty table cannot be built).
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Lowest available level.
    #[inline]
    #[must_use]
    pub fn lowest(&self) -> f64 {
        self.levels[0]
    }

    /// Highest available level.
    #[inline]
    #[must_use]
    pub fn highest(&self) -> f64 {
        *self.levels.last().expect("non-empty by construction")
    }

    /// Largest level `≤ v` — the **LNS** (lower neighboring speed) rounding.
    /// Returns `None` when `v` is below the lowest level.
    #[must_use]
    pub fn floor(&self, v: f64) -> Option<f64> {
        let mut best = None;
        for &l in &self.levels {
            if l <= v + 1e-12 {
                best = Some(l);
            } else {
                break;
            }
        }
        best
    }

    /// Smallest level `≥ v`, or `None` above the highest level.
    #[must_use]
    pub fn ceil(&self, v: f64) -> Option<f64> {
        self.levels.iter().copied().find(|&l| l >= v - 1e-12)
    }

    /// The two neighboring levels around a continuous target and the
    /// time-ratio realizing it (eq. 11). Targets outside the table clamp to
    /// the nearest single level.
    ///
    /// ```
    /// use mosc_power::ModeTable;
    /// let table = ModeTable::table_iv(2); // {0.6, 1.3} V
    /// let nb = table.neighbors(0.95);
    /// assert_eq!((nb.v_low, nb.v_high), (0.6, 1.3));
    /// assert!((nb.equivalent_voltage() - 0.95).abs() < 1e-12);
    /// assert!((nb.ratio_high - 0.5).abs() < 1e-12);
    /// ```
    #[must_use]
    pub fn neighbors(&self, v_target: f64) -> NeighborModes {
        let lo_level = self.lowest();
        let hi_level = self.highest();
        let clamped = v_target.clamp(lo_level, hi_level);
        let low = self.floor(clamped).expect("clamped into range");
        let high = self.ceil(clamped).expect("clamped into range");
        if (high - low).abs() < 1e-12 {
            return NeighborModes { v_low: low, v_high: high, ratio_high: 1.0 };
        }
        let ratio_high = (clamped - low) / (high - low);
        NeighborModes { v_low: low, v_high: high, ratio_high }
    }

    /// Iterator over every assignment of one level per core — the EXS search
    /// space of Algorithm 1 (`len()^n` candidates, emitted in odometer order).
    #[must_use]
    pub fn assignments(&self, n_cores: usize) -> AssignmentIter<'_> {
        AssignmentIter { levels: &self.levels, indices: vec![0; n_cores], done: n_cores == 0 }
    }
}

/// Odometer iterator over per-core level assignments. See
/// [`ModeTable::assignments`].
#[derive(Debug)]
pub struct AssignmentIter<'a> {
    levels: &'a [f64],
    indices: Vec<usize>,
    done: bool,
}

impl Iterator for AssignmentIter<'_> {
    type Item = Vec<f64>;

    fn next(&mut self) -> Option<Vec<f64>> {
        if self.done {
            return None;
        }
        let out: Vec<f64> = self.indices.iter().map(|&i| self.levels[i]).collect();
        // Advance the odometer.
        let mut k = self.indices.len();
        loop {
            if k == 0 {
                self.done = true;
                break;
            }
            k -= 1;
            self.indices[k] += 1;
            if self.indices[k] < self.levels.len() {
                break;
            }
            self.indices[k] = 0;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_grid_matches_paper_range() {
        let t = ModeTable::uniform(0.6, 1.3, 0.05).unwrap();
        assert_eq!(t.len(), 15);
        assert!((t.lowest() - 0.6).abs() < 1e-12);
        assert!((t.highest() - 1.3).abs() < 1e-12);
        assert!((t.levels()[1] - 0.65).abs() < 1e-12);
    }

    #[test]
    fn table_iv_level_sets() {
        assert_eq!(ModeTable::table_iv(2).levels(), &[0.6, 1.3]);
        assert_eq!(ModeTable::table_iv(5).len(), 5);
        assert_eq!(ModeTable::table_iv(4).levels()[2], 1.0);
    }

    #[test]
    #[should_panic(expected = "Table IV")]
    fn table_iv_rejects_bad_count() {
        let _ = ModeTable::table_iv(7);
    }

    #[test]
    fn from_levels_sorts_and_dedups() {
        let t = ModeTable::from_levels(&[1.3, 0.6, 0.6, 1.0]).unwrap();
        assert_eq!(t.levels(), &[0.6, 1.0, 1.3]);
    }

    #[test]
    fn construction_validation() {
        assert!(matches!(ModeTable::from_levels(&[]), Err(PowerError::EmptyModeTable)));
        assert!(ModeTable::from_levels(&[0.0]).is_err());
        assert!(ModeTable::from_levels(&[f64::NAN]).is_err());
        assert!(ModeTable::uniform(1.0, 0.5, 0.1).is_err());
        assert!(ModeTable::uniform(0.5, 1.0, -0.1).is_err());
    }

    #[test]
    fn floor_and_ceil() {
        let t = ModeTable::table_iv(4); // 0.6 0.8 1.0 1.3
        assert_eq!(t.floor(0.9), Some(0.8));
        assert_eq!(t.floor(0.6), Some(0.6));
        assert_eq!(t.floor(0.5), None);
        assert_eq!(t.ceil(0.9), Some(1.0));
        assert_eq!(t.ceil(1.3), Some(1.3));
        assert_eq!(t.ceil(1.4), None);
        // Exact hits return the level itself on both sides.
        assert_eq!(t.floor(1.0), Some(1.0));
        assert_eq!(t.ceil(1.0), Some(1.0));
    }

    #[test]
    fn neighbors_preserve_throughput() {
        let t = ModeTable::table_iv(2);
        let nb = t.neighbors(0.95);
        assert_eq!(nb.v_low, 0.6);
        assert_eq!(nb.v_high, 1.3);
        assert!((nb.equivalent_voltage() - 0.95).abs() < 1e-12);
        assert!((nb.ratio_high + nb.ratio_low() - 1.0).abs() < 1e-12);
        assert!(!nb.is_single_mode());
    }

    #[test]
    fn neighbors_clamp_out_of_range_targets() {
        let t = ModeTable::table_iv(2);
        let hi = t.neighbors(2.0);
        assert!(hi.is_single_mode());
        assert_eq!(hi.equivalent_voltage(), 1.3);
        let lo = t.neighbors(0.1);
        assert!(lo.is_single_mode());
        assert_eq!(lo.equivalent_voltage(), 0.6);
    }

    #[test]
    fn neighbors_exact_level_is_single_mode() {
        let t = ModeTable::table_iv(3);
        let nb = t.neighbors(0.8);
        assert!(nb.is_single_mode());
        assert!((nb.equivalent_voltage() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn assignments_enumerate_full_space() {
        let t = ModeTable::table_iv(2);
        let all: Vec<_> = t.assignments(3).collect();
        assert_eq!(all.len(), 8);
        assert_eq!(all[0], vec![0.6, 0.6, 0.6]);
        assert_eq!(all[7], vec![1.3, 1.3, 1.3]);
        // All distinct.
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i], all[j]);
            }
        }
    }

    #[test]
    fn assignments_zero_cores_is_empty() {
        let t = ModeTable::table_iv(2);
        assert_eq!(t.assignments(0).count(), 0);
    }
}
