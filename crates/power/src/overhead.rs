//! DVFS transition-overhead model of Section V.

use crate::PowerError;

/// Models the cost of a DVFS mode switch: the clock halts for `τ` seconds per
/// transition. To keep the throughput of an oscillating schedule unchanged,
/// each high/low pair must extend its high-voltage interval by
///
/// ```text
/// δ = (v_H + v_L)·τ / (v_H − v_L)
/// ```
///
/// and the low-voltage interval must stay long enough to absorb both the
/// compensation and the stall, which bounds the oscillation factor to
/// `M = ⌊t_L / (δ + τ)⌋` per core (chip-wide `M = min_i M_i`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransitionOverhead {
    /// Clock-halt duration per transition, seconds. The paper's evaluation
    /// uses 5 µs.
    pub tau: f64,
}

impl TransitionOverhead {
    /// Creates the overhead model.
    ///
    /// # Errors
    /// Returns [`PowerError::InvalidParameter`] for negative or non-finite τ.
    pub fn new(tau: f64) -> Result<Self, PowerError> {
        if !tau.is_finite() || tau < 0.0 {
            return Err(PowerError::InvalidParameter { what: "tau must be finite and >= 0" });
        }
        Ok(Self { tau })
    }

    /// The zero-overhead model (ideal instantaneous DVFS).
    #[must_use]
    pub fn zero() -> Self {
        Self { tau: 0.0 }
    }

    /// The paper's evaluation setting, τ = 5 µs.
    #[must_use]
    pub fn paper_default() -> Self {
        Self { tau: 5e-6 }
    }

    /// Throughput lost per transition pair on a core oscillating between
    /// `v_low` and `v_high`: `(v_H + v_L)·τ` work units.
    #[inline]
    #[must_use]
    pub fn throughput_loss(&self, v_low: f64, v_high: f64) -> f64 {
        (v_high + v_low) * self.tau
    }

    /// Compensation time `δ` (seconds of low-interval converted to high) that
    /// restores the lost throughput. Returns `None` for a degenerate pair
    /// (`v_high ≤ v_low`), where oscillation is meaningless.
    #[must_use]
    pub fn delta(&self, v_low: f64, v_high: f64) -> Option<f64> {
        if v_high <= v_low {
            return None;
        }
        Some((v_high + v_low) * self.tau / (v_high - v_low))
    }

    /// Per-core upper bound `M_i = ⌊t_low / (δ + τ)⌋` on the oscillation
    /// factor, given that core's per-period low-voltage time `t_low`.
    /// Always at least 1 (the un-oscillated schedule is always feasible);
    /// returns 1 for single-mode cores and for τ = 0 callers should use
    /// [`TransitionOverhead::is_zero`] to skip the bound entirely.
    #[must_use]
    pub fn max_m(&self, v_low: f64, v_high: f64, t_low: f64) -> usize {
        if self.tau == 0.0 {
            return usize::MAX;
        }
        match self.delta(v_low, v_high) {
            None => 1,
            Some(delta) => {
                let m = (t_low / (delta + self.tau)).floor();
                if m.is_finite() && m >= 1.0 {
                    m as usize
                } else {
                    1
                }
            }
        }
    }

    /// `true` for the ideal zero-overhead model.
    #[inline]
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.tau == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_5us() {
        assert!((TransitionOverhead::paper_default().tau - 5e-6).abs() < 1e-18);
    }

    #[test]
    fn delta_formula() {
        let o = TransitionOverhead::new(5e-6).unwrap();
        // δ = (1.3+0.6)·5e-6 / (1.3−0.6) = 9.5e-6/0.7
        let d = o.delta(0.6, 1.3).unwrap();
        assert!((d - 9.5e-6 / 0.7).abs() < 1e-15);
        assert!(o.delta(1.3, 1.3).is_none());
        assert!(o.delta(1.3, 0.6).is_none());
    }

    #[test]
    fn throughput_loss_per_pair() {
        let o = TransitionOverhead::new(1e-5).unwrap();
        assert!((o.throughput_loss(0.6, 1.3) - 1.9e-5).abs() < 1e-18);
    }

    #[test]
    fn max_m_bounds() {
        let o = TransitionOverhead::new(5e-6).unwrap();
        let d = o.delta(0.6, 1.3).unwrap();
        let t_low = 10.0 * (d + o.tau);
        assert_eq!(o.max_m(0.6, 1.3, t_low), 10);
        // Tiny low interval still allows m = 1.
        assert_eq!(o.max_m(0.6, 1.3, 1e-9), 1);
        // Degenerate pair.
        assert_eq!(o.max_m(1.3, 1.3, 1.0), 1);
    }

    #[test]
    fn zero_overhead_is_unbounded() {
        let o = TransitionOverhead::zero();
        assert!(o.is_zero());
        assert_eq!(o.max_m(0.6, 1.3, 0.001), usize::MAX);
    }

    #[test]
    fn validation() {
        assert!(TransitionOverhead::new(-1.0).is_err());
        assert!(TransitionOverhead::new(f64::NAN).is_err());
        assert!(TransitionOverhead::new(0.0).is_ok());
    }

    #[test]
    fn larger_tau_lowers_max_m() {
        let small = TransitionOverhead::new(1e-6).unwrap();
        let large = TransitionOverhead::new(1e-4).unwrap();
        let t_low = 0.01;
        assert!(small.max_m(0.6, 1.3, t_low) > large.max_m(0.6, 1.3, t_low));
    }
}
