//! Calibrated parameter presets.

use crate::{ModeTable, PowerModel, TransitionOverhead};

/// Bundle of power-side parameters describing one processor family.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformParams {
    /// Power-model coefficients.
    pub power: PowerModel,
    /// Supported continuous voltage range (V), `[v_min, v_max]`.
    pub v_range: (f64, f64),
    /// Grid step for the full DVFS table (V).
    pub v_step: f64,
    /// DVFS transition overhead.
    pub overhead: TransitionOverhead,
    /// Ambient temperature in °C, used when converting the workspace's
    /// relative temperatures for display.
    pub t_ambient_c: f64,
}

impl PlatformParams {
    /// The full uniform DVFS table of this platform
    /// (`v_min : v_step : v_max`, 15 levels for the 65 nm preset).
    ///
    /// # Panics
    /// Panics if the preset's range is invalid (cannot happen for the
    /// built-in presets, which are covered by tests).
    #[must_use]
    pub fn full_mode_table(&self) -> ModeTable {
        ModeTable::uniform(self.v_range.0, self.v_range.1, self.v_step)
            .expect("preset ranges are valid")
    }

    /// Converts a workspace-relative temperature (K above ambient) to °C.
    #[inline]
    #[must_use]
    pub fn to_celsius(&self, t_rel: f64) -> f64 {
        t_rel + self.t_ambient_c
    }

    /// Converts a °C threshold to the workspace-relative scale.
    #[inline]
    #[must_use]
    pub fn from_celsius(&self, t_c: f64) -> f64 {
        t_c - self.t_ambient_c
    }
}

/// The 65 nm preset used throughout the evaluation, abstracted from
/// McPAT-class numbers for a 4×4 mm out-of-order core:
///
/// * `ψ(0.6 V) ≈ 2.7 W`, `ψ(1.3 V) ≈ 18.6 W` — spanning the near-threshold to
///   high-performance operating points of a mid-2000s 65 nm core;
/// * leakage sensitivity `β = 0.03 W/K`;
/// * voltages 0.6–1.3 V in 0.05 V steps (15 modes), τ = 5 µs, ambient 35 °C —
///   exactly the ranges stated in Section VI of the paper.
#[derive(Debug, Clone, Copy, Default)]
pub struct Params65nm;

impl Params65nm {
    /// Materializes the preset.
    ///
    /// # Panics
    /// Never panics in practice; the hard-coded constants validate.
    #[must_use]
    pub fn params() -> PlatformParams {
        PlatformParams {
            power: PowerModel::new(1.0, 0.03, 8.0).expect("valid constants"),
            v_range: (0.6, 1.3),
            v_step: 0.05,
            overhead: TransitionOverhead::paper_default(),
            t_ambient_c: 35.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_produces_15_modes() {
        let p = Params65nm::params();
        assert_eq!(p.full_mode_table().len(), 15);
    }

    #[test]
    fn preset_power_operating_points() {
        let p = Params65nm::params();
        let lo = p.power.psi(0.6);
        let hi = p.power.psi(1.3);
        assert!(lo > 2.0 && lo < 3.5, "psi(0.6)={lo}");
        assert!(hi > 15.0 && hi < 20.0, "psi(1.3)={hi}");
    }

    #[test]
    fn celsius_roundtrip() {
        let p = Params65nm::params();
        assert!((p.to_celsius(p.from_celsius(65.0)) - 65.0).abs() < 1e-12);
        assert!((p.from_celsius(35.0)).abs() < 1e-12);
    }

    #[test]
    fn overhead_is_paper_value() {
        assert!((Params65nm::params().overhead.tau - 5e-6).abs() < 1e-18);
    }
}
