//! Property-based tests for the power/DVFS models.

use mosc_power::{ModeTable, PowerModel, TransitionOverhead};
use mosc_testutil::{propcheck_cases, Rng64};

const CASES: usize = 128;

fn level_set(rng: &mut Rng64) -> Vec<f64> {
    let n = rng.gen_range(2..8usize);
    (0..n).map(|_| rng.gen_range(0.5..1.5)).collect()
}

#[test]
fn psi_is_monotone_and_convex() {
    propcheck_cases("psi_is_monotone_and_convex", CASES, |rng| {
        let alpha = rng.gen_range(0.0..5.0);
        let gamma = rng.gen_range(0.1..20.0);
        let a = rng.gen_range(0.2..1.0);
        let m = PowerModel::new(alpha, 0.0, gamma).unwrap();
        let b = a + rng.gen_range(0.01..0.3);
        let c = b + rng.gen_range(0.01..0.3);
        assert!(m.psi(a) < m.psi(b) && m.psi(b) < m.psi(c));
        // Convexity: slope increases.
        let s1 = (m.psi(b) - m.psi(a)) / (b - a);
        let s2 = (m.psi(c) - m.psi(b)) / (c - b);
        assert!(s2 >= s1 - 1e-12);
    });
}

#[test]
fn voltage_for_psi_is_left_inverse() {
    propcheck_cases("voltage_for_psi_is_left_inverse", CASES, |rng| {
        let alpha = rng.gen_range(0.0..5.0);
        let gamma = rng.gen_range(0.1..20.0);
        let v = rng.gen_range(0.1..2.0);
        let m = PowerModel::new(alpha, 0.02, gamma).unwrap();
        let back = m.voltage_for_psi(m.psi(v)).unwrap();
        assert!((back - v).abs() < 1e-10);
    });
}

#[test]
fn mode_table_is_sorted_and_bracketing() {
    propcheck_cases("mode_table_is_sorted_and_bracketing", CASES, |rng| {
        let levels = level_set(rng);
        let v = rng.gen_range(0.4..1.6);
        let t = ModeTable::from_levels(&levels).unwrap();
        // Sorted.
        for w in t.levels().windows(2) {
            assert!(w[0] < w[1]);
        }
        // floor <= v <= ceil when both exist.
        if let (Some(f), Some(c)) = (t.floor(v), t.ceil(v)) {
            assert!(f <= v + 1e-12);
            assert!(c >= v - 1e-12);
            assert!(f <= c);
        }
    });
}

#[test]
fn neighbors_preserve_equivalent_voltage() {
    propcheck_cases("neighbors_preserve_equivalent_voltage", CASES, |rng| {
        let levels = level_set(rng);
        let v = rng.gen_range(0.4..1.6);
        let t = ModeTable::from_levels(&levels).unwrap();
        let nb = t.neighbors(v);
        let clamped = v.clamp(t.lowest(), t.highest());
        assert!((nb.equivalent_voltage() - clamped).abs() < 1e-10);
        assert!(nb.v_low <= nb.v_high);
        assert!((0.0..=1.0).contains(&nb.ratio_high));
        assert!((nb.ratio_high + nb.ratio_low() - 1.0).abs() < 1e-12);
    });
}

#[test]
fn neighbors_are_adjacent_levels() {
    propcheck_cases("neighbors_are_adjacent_levels", CASES, |rng| {
        let levels = level_set(rng);
        let v = rng.gen_range(0.4..1.6);
        let t = ModeTable::from_levels(&levels).unwrap();
        let nb = t.neighbors(v);
        // No table level lies strictly between the pair.
        for &l in t.levels() {
            assert!(
                !(l > nb.v_low + 1e-9 && l < nb.v_high - 1e-9),
                "level {l} strictly inside ({}, {})",
                nb.v_low,
                nb.v_high
            );
        }
    });
}

#[test]
fn overhead_delta_and_bound_are_consistent() {
    propcheck_cases("overhead_delta_and_bound_are_consistent", CASES, |rng| {
        let tau = rng.gen_range(1e-7..1e-3);
        let vl = rng.gen_range(0.4..1.0);
        let vh = vl + rng.gen_range(0.05..0.6);
        let t_low = rng.gen_range(1e-4..1.0);
        let o = TransitionOverhead::new(tau).unwrap();
        let delta = o.delta(vl, vh).unwrap();
        // The compensation exactly repays the stall loss.
        assert!(((vh - vl) * delta - o.throughput_loss(vl, vh)).abs() < 1e-15);
        // The m bound leaves room for the stall in each repetition — except
        // for the documented clamp to m = 1 (the un-oscillated schedule is
        // always representable even when no oscillation fits).
        let m = o.max_m(vl, vh, t_low);
        if (2..usize::MAX).contains(&m) {
            assert!(t_low / m as f64 >= delta + tau - 1e-12);
        }
        if t_low < delta + tau {
            assert_eq!(m, 1);
        }
        // Monotone: more low-time allows more oscillation.
        assert!(o.max_m(vl, vh, 2.0 * t_low) >= m);
    });
}

#[test]
fn assignments_count_is_levels_pow_cores() {
    propcheck_cases("assignments_count_is_levels_pow_cores", CASES, |rng| {
        let levels = level_set(rng);
        let n = rng.gen_range(1..4usize);
        let t = ModeTable::from_levels(&levels).unwrap();
        let count = t.assignments(n).count();
        assert_eq!(count, t.len().pow(n as u32));
    });
}
