//! Property-based tests for the power/DVFS models.

use mosc_power::{ModeTable, PowerModel, TransitionOverhead};
use proptest::prelude::*;

fn level_set() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.5f64..1.5, 2..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn psi_is_monotone_and_convex(alpha in 0.0f64..5.0, gamma in 0.1f64..20.0,
                                  a in 0.2f64..1.0, d1 in 0.01f64..0.3, d2 in 0.01f64..0.3) {
        let m = PowerModel::new(alpha, 0.0, gamma).unwrap();
        let b = a + d1;
        let c = b + d2;
        prop_assert!(m.psi(a) < m.psi(b) && m.psi(b) < m.psi(c));
        // Convexity: slope increases.
        let s1 = (m.psi(b) - m.psi(a)) / (b - a);
        let s2 = (m.psi(c) - m.psi(b)) / (c - b);
        prop_assert!(s2 >= s1 - 1e-12);
    }

    #[test]
    fn voltage_for_psi_is_left_inverse(alpha in 0.0f64..5.0, gamma in 0.1f64..20.0, v in 0.1f64..2.0) {
        let m = PowerModel::new(alpha, 0.02, gamma).unwrap();
        let back = m.voltage_for_psi(m.psi(v)).unwrap();
        prop_assert!((back - v).abs() < 1e-10);
    }

    #[test]
    fn mode_table_is_sorted_and_bracketing(levels in level_set(), v in 0.4f64..1.6) {
        let t = ModeTable::from_levels(&levels).unwrap();
        // Sorted.
        for w in t.levels().windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        // floor <= v <= ceil when both exist.
        if let (Some(f), Some(c)) = (t.floor(v), t.ceil(v)) {
            prop_assert!(f <= v + 1e-12);
            prop_assert!(c >= v - 1e-12);
            prop_assert!(f <= c);
        }
    }

    #[test]
    fn neighbors_preserve_equivalent_voltage(levels in level_set(), v in 0.4f64..1.6) {
        let t = ModeTable::from_levels(&levels).unwrap();
        let nb = t.neighbors(v);
        let clamped = v.clamp(t.lowest(), t.highest());
        prop_assert!((nb.equivalent_voltage() - clamped).abs() < 1e-10);
        prop_assert!(nb.v_low <= nb.v_high);
        prop_assert!((0.0..=1.0).contains(&nb.ratio_high));
        prop_assert!((nb.ratio_high + nb.ratio_low() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn neighbors_are_adjacent_levels(levels in level_set(), v in 0.4f64..1.6) {
        let t = ModeTable::from_levels(&levels).unwrap();
        let nb = t.neighbors(v);
        // No table level lies strictly between the pair.
        for &l in t.levels() {
            prop_assert!(
                !(l > nb.v_low + 1e-9 && l < nb.v_high - 1e-9),
                "level {l} strictly inside ({}, {})", nb.v_low, nb.v_high
            );
        }
    }

    #[test]
    fn overhead_delta_and_bound_are_consistent(tau in 1e-7f64..1e-3,
                                               vl in 0.4f64..1.0, dv in 0.05f64..0.6,
                                               t_low in 1e-4f64..1.0) {
        let o = TransitionOverhead::new(tau).unwrap();
        let vh = vl + dv;
        let delta = o.delta(vl, vh).unwrap();
        // The compensation exactly repays the stall loss.
        prop_assert!(((vh - vl) * delta - o.throughput_loss(vl, vh)).abs() < 1e-15);
        // The m bound leaves room for the stall in each repetition — except
        // for the documented clamp to m = 1 (the un-oscillated schedule is
        // always representable even when no oscillation fits).
        let m = o.max_m(vl, vh, t_low);
        if (2..usize::MAX).contains(&m) {
            prop_assert!(t_low / m as f64 >= delta + tau - 1e-12);
        }
        if t_low < delta + tau {
            prop_assert_eq!(m, 1);
        }
        // Monotone: more low-time allows more oscillation.
        prop_assert!(o.max_m(vl, vh, 2.0 * t_low) >= m);
    }

    #[test]
    fn assignments_count_is_levels_pow_cores(levels in level_set(), n in 1usize..4) {
        let t = ModeTable::from_levels(&levels).unwrap();
        let count = t.assignments(n).count();
        prop_assert_eq!(count, t.len().pow(n as u32));
    }
}
