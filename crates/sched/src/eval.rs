//! Thermal evaluation of periodic schedules: steady state, traces, peaks.
//!
//! Implements eqs. (3) and (4) of the paper. A periodic schedule with state
//! intervals `I_q` (length `l_q`, voltage vector `v_q`) advances the
//! temperature affinely across each interval:
//!
//! ```text
//! T(t_q) = Φ_q·T(t_{q−1}) + (I − Φ_q)·T_q^∞,     Φ_q = e^{A·l_q}
//! ```
//!
//! Composing one period gives `T(t_p) = K·T(0) + r` with `K = Π Φ_q`; the
//! thermal stable status is the fixed point `T_ss(0) = (I − K)⁻¹·r`
//! (`I − K` is invertible because every eigenvalue of `A` is negative, so
//! `‖K‖ < 1`).
//!
//! Since all `Φ_q` are exponentials of the same `A`, the whole composition
//! diagonalizes in `A`'s eigenbasis: [`SteadyState::compute`] routes through
//! the [`crate::period_map`] kernel, which composes the period map
//! elementwise in modal coordinates (no `expm`, no dense products, no LU)
//! and exponentiates repeated blocks by binary squaring. The historical
//! interval-by-interval dense path is retained as [`compute_dense`] for
//! property tests and the bench comparison.

use crate::period_map::{self, PeriodMap};
use crate::schedule::EPS;
use crate::{Result, SchedError, Schedule};
use mosc_linalg::{Lu, Matrix, Vector};
use mosc_power::PowerLike;
use mosc_thermal::{ThermalModel, Trace};
use std::sync::Arc;

/// Periodic steady-state computations ([`SteadyState::compute`]): one full
/// propagator composition plus an `(I − K)` solve each.
static STEADY_STATE_CALLS: mosc_obs::Counter = mosc_obs::Counter::new("steady_state.calls");
/// Peak-temperature evaluations ([`peak_temperature`]) — the unit of work
/// every solver's inner loop is measured in.
static PEAK_EVAL_CALLS: mosc_obs::Counter = mosc_obs::Counter::new("peak_eval.calls");
/// Of the peak evaluations, how many took the exact Theorem-1 step-up path
/// (the rest fell back to sampling + golden-section refinement).
static PEAK_EVAL_EXACT: mosc_obs::Counter = mosc_obs::Counter::new("peak_eval.exact_path");

/// Default number of samples per period for the sampling-based peak search
/// on non-step-up schedules.
pub const DEFAULT_SAMPLES_PER_PERIOD: usize = 400;

/// One block state interval of the stable status, in modal coordinates.
#[derive(Debug, Clone)]
struct IntervalState {
    /// Start time within the block (s).
    start: f64,
    /// Interval length (s).
    len: f64,
    /// Modal steady state of the interval's power profile.
    y_inf: Arc<Vector>,
    /// Modal temperatures at the interval start (stable status).
    y_at_start: Vector,
}

/// The periodic thermal stable status of a schedule on a model: the
/// start-of-period temperature fixed point plus the per-interval modal data
/// needed to reconstruct the trace anywhere inside the repeating block (the
/// stable trace of a repeated schedule is block-periodic).
#[derive(Debug, Clone)]
pub struct SteadyState {
    /// Start-of-period node temperatures in the stable status.
    t_start: Vector,
    /// Per-interval modal data for one repeating block.
    intervals: Vec<IntervalState>,
    /// Node temperatures at each interval end (stable status), aligned with
    /// `intervals`.
    at_ends: Vec<Vector>,
    /// Repetition factor carried from the schedule.
    repetitions: usize,
    n_cores: usize,
}

impl SteadyState {
    /// Computes the stable status of `schedule` on `model` with `power`
    /// (either the chip-uniform [`mosc_power::PowerModel`] or a per-core
    /// [`mosc_power::CorePowerTable`]; with the latter, the model's per-core
    /// β values must have been built to match).
    ///
    /// Runs entirely through the [`crate::period_map`] modal kernel: cost is
    /// `O(d·n²)` in the block's interval count `d` and *independent* of the
    /// schedule's repetition factor up to an `O(n·log m)` squaring term —
    /// compare [`compute_dense`].
    ///
    /// # Errors
    /// Core-count mismatches or (for pathological models) solver failures.
    pub fn compute<P: PowerLike + ?Sized>(
        model: &ThermalModel,
        power: &P,
        schedule: &Schedule,
    ) -> Result<Self> {
        STEADY_STATE_CALLS.incr();
        let pm = PeriodMap::build(model, power, schedule)?;
        let y0 = pm.steady_start()?;
        let t_start = period_map::from_modal(model, &y0)?;

        let mut intervals = Vec::with_capacity(pm.intervals().len());
        let mut at_ends = Vec::with_capacity(pm.intervals().len());
        let mut y = y0;
        for iv in pm.intervals() {
            let y_at_start = y.clone();
            y = Vector::from_fn(y.len(), |k| iv.decay[k] * (y[k] - iv.y_inf[k]) + iv.y_inf[k]);
            at_ends.push(period_map::from_modal(model, &y)?);
            intervals.push(IntervalState {
                start: iv.start,
                len: iv.len,
                y_inf: Arc::clone(&iv.y_inf),
                y_at_start,
            });
        }
        Ok(Self {
            t_start,
            intervals,
            at_ends,
            repetitions: pm.repetitions(),
            n_cores: model.n_cores(),
        })
    }

    /// Duration of the repeating block covered by the per-interval data.
    fn block_period(&self) -> f64 {
        self.intervals.iter().map(|iv| iv.len).sum()
    }

    /// Start-of-period temperatures (all nodes).
    #[must_use]
    pub fn t_start(&self) -> &Vector {
        &self.t_start
    }

    /// Temperatures at the end of each state interval.
    #[must_use]
    pub fn at_interval_ends(&self) -> &[Vector] {
        &self.at_ends
    }

    /// Largest core temperature observed at any interval boundary (start of
    /// period included). For step-up schedules this *is* the peak
    /// (Theorem 1); for arbitrary schedules it is a lower bound.
    #[must_use]
    pub fn peak_at_boundaries(&self) -> PeakReport {
        let mut best = PeakReport { temp: f64::NEG_INFINITY, core: 0, time: 0.0, exact: false };
        let period = self.block_period();
        let consider = |t: &Vector, time: f64, best: &mut PeakReport| {
            for c in 0..self.n_cores {
                if t[c] > best.temp {
                    *best = PeakReport { temp: t[c], core: c, time, exact: false };
                }
            }
        };
        consider(&self.t_start, 0.0, &mut best);
        for (iv, t) in self.intervals.iter().zip(&self.at_ends) {
            consider(t, (iv.start + iv.len).min(period), &mut best);
        }
        best
    }

    /// Samples the stable-status trace at (at least) `samples` points over
    /// one repeating block (= the full period for unrepeated schedules; the
    /// stable trace of a repeated schedule is block-periodic), always
    /// including interval boundaries. Each sample costs one elementwise
    /// modal step plus one basis change — no propagator builds.
    ///
    /// # Errors
    /// Solver failures only (cannot occur for a constructed model).
    pub fn trace(&self, model: &ThermalModel, samples: usize) -> Result<Trace> {
        let period = self.block_period();
        let dt_target = period / samples.max(1) as f64;
        let mut trace = Trace::with_capacity(self.n_cores, samples + self.intervals.len() + 2);
        trace.push(0.0, self.t_start.clone());
        for iv in &self.intervals {
            let n_steps = (iv.len / dt_target).ceil().max(1.0) as usize;
            let h = iv.len / n_steps as f64;
            let d = model.modal_decay(h)?;
            let mut y = iv.y_at_start.clone();
            for s in 1..=n_steps {
                y = Vector::from_fn(y.len(), |k| d[k] * (y[k] - iv.y_inf[k]) + iv.y_inf[k]);
                trace.push(iv.start + h * s as f64, period_map::from_modal(model, &y)?);
            }
        }
        Ok(trace)
    }

    /// Peak core temperature over a sampled stable-status trace.
    ///
    /// # Errors
    /// Propagates trace-construction failures.
    pub fn peak_sampled(&self, model: &ThermalModel, samples: usize) -> Result<PeakReport> {
        let trace = self.trace(model, samples)?;
        let p = trace.peak().expect("trace has at least the start sample");
        Ok(PeakReport { temp: p.temp, core: p.core, time: p.time, exact: false })
    }

    /// Temperature vector at an arbitrary time within the period (stable
    /// status): one elementwise modal step from the enclosing interval's
    /// start plus a basis change — no propagator build, so golden-section
    /// refinement and PCO's sampled peaks stay `expm`-free.
    ///
    /// Times beyond the first block (repeated schedules) are folded modulo
    /// the block period, which the stable trace is periodic in.
    ///
    /// # Errors
    /// Rejects times outside `[0, period]`; propagates solver failures.
    pub fn at_time(&self, model: &ThermalModel, t: f64) -> Result<Vector> {
        let block = self.block_period();
        let period = block * self.repetitions as f64;
        if !(0.0..=period + EPS).contains(&t) {
            return Err(SchedError::Invalid {
                what: format!("time {t} outside the period [0, {period}]"),
            });
        }
        let t = if t > block + EPS { t % block } else { t };
        for iv in &self.intervals {
            if t <= iv.start + iv.len + EPS {
                let d = model.modal_decay((t - iv.start).max(0.0))?;
                let y = Vector::from_fn(d.len(), |k| {
                    d[k] * (iv.y_at_start[k] - iv.y_inf[k]) + iv.y_inf[k]
                });
                return period_map::from_modal(model, &y);
            }
        }
        Ok(self.at_ends.last().expect("non-empty schedule").clone())
    }

    /// Sampled peak refined by golden-section search around the hottest
    /// sample. Within one state interval each core's temperature is a sum of
    /// decaying exponentials toward `T∞` and is unimodal between samples at
    /// any reasonable sampling density — but the `±1` sample window around
    /// the hottest sample can straddle a state-interval boundary, where the
    /// temperature kinks and is *not* unimodal. The window is therefore
    /// split at every interior interval boundary, each boundary point is
    /// evaluated explicitly (a kink maximum sits exactly there), and the
    /// golden-section search runs per sub-bracket.
    ///
    /// # Errors
    /// Propagates solver failures.
    pub fn peak_refined(
        &self,
        model: &ThermalModel,
        samples: usize,
        tol: f64,
    ) -> Result<PeakReport> {
        let coarse = self.peak_sampled(model, samples)?;
        let period = self.block_period();
        let window = period / samples.max(1) as f64;
        let lo = (coarse.time - window).max(0.0);
        let hi = (coarse.time + window).min(period);
        let core = coarse.core;
        let f = |t: f64| -> Result<f64> { Ok(self.at_time(model, t)?[core]) };

        // Split the window at the state-interval boundaries inside it.
        let mut cuts = vec![lo];
        for iv in &self.intervals {
            for b in [iv.start, iv.start + iv.len] {
                if b > lo + EPS && b < hi - EPS {
                    cuts.push(b);
                }
            }
        }
        cuts.push(hi);
        cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        cuts.dedup_by(|a, b| (*a - *b).abs() < EPS);

        let mut best = coarse;
        // Boundary points first: a kink maximum is exactly there and no
        // interior search would converge onto it.
        for &c in &cuts {
            let v = f(c)?;
            if v > best.temp {
                best = PeakReport { temp: v, core, time: c, exact: false };
            }
        }
        // Golden-section maximization inside each sub-bracket, where the
        // temperature is a smooth sum of exponentials and unimodal.
        const INV_PHI: f64 = 0.618_033_988_749_894_9;
        for w in cuts.windows(2) {
            let (mut lo, mut hi) = (w[0], w[1]);
            let mut a = hi - INV_PHI * (hi - lo);
            let mut b = lo + INV_PHI * (hi - lo);
            let mut fa = f(a)?;
            let mut fb = f(b)?;
            let mut guard = 0;
            while hi - lo > tol && guard < 200 {
                guard += 1;
                if fa >= fb {
                    hi = b;
                    b = a;
                    fb = fa;
                    a = hi - INV_PHI * (hi - lo);
                    fa = f(a)?;
                } else {
                    lo = a;
                    a = b;
                    fa = fb;
                    b = lo + INV_PHI * (hi - lo);
                    fb = f(b)?;
                }
            }
            let t_best = 0.5 * (lo + hi);
            let refined = f(t_best)?;
            if refined > best.temp {
                best = PeakReport { temp: refined, core, time: t_best, exact: false };
            }
        }
        Ok(best)
    }
}

/// Where and how hot the peak is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeakReport {
    /// Peak core temperature, relative to ambient (K).
    pub temp: f64,
    /// Core attaining the peak.
    pub core: usize,
    /// Time within the period at which the peak occurs (s).
    pub time: f64,
    /// `true` when produced by the exact Theorem-1 path (step-up schedules),
    /// `false` for sampled estimates.
    pub exact: bool,
}

/// Peak temperature of `schedule` in the thermal stable status.
///
/// Step-up schedules take the exact Theorem-1 fast path (the peak is the
/// period-end = period-start stable temperature). Arbitrary schedules fall
/// back to dense sampling with `samples` points per period
/// ([`DEFAULT_SAMPLES_PER_PERIOD`] when `None`).
///
/// # Errors
/// Core-count mismatches or solver failures.
pub fn peak_temperature<P: PowerLike + ?Sized>(
    model: &ThermalModel,
    power: &P,
    schedule: &Schedule,
    samples: Option<usize>,
) -> Result<PeakReport> {
    PEAK_EVAL_CALLS.incr();
    let ss = SteadyState::compute(model, power, schedule)?;
    // Theorem 1 applies per repeating block: the stable trace is
    // block-periodic, so a step-up *block* peaks at the block boundary even
    // when the repeated full-period schedule is not globally step-up.
    if schedule.block_is_step_up() {
        PEAK_EVAL_EXACT.incr();
        let t = ss.t_start();
        let mut best = PeakReport { temp: f64::NEG_INFINITY, core: 0, time: 0.0, exact: true };
        for c in 0..model.n_cores() {
            if t[c] > best.temp {
                best = PeakReport { temp: t[c], core: c, time: 0.0, exact: true };
            }
        }
        Ok(best)
    } else {
        // Sample, then polish the winning sample with a golden-section local
        // search — one extra core's trajectory, so nearly free.
        let samples = samples.unwrap_or(DEFAULT_SAMPLES_PER_PERIOD);
        let tol = schedule.block_period() / samples as f64 * 1e-3;
        ss.peak_refined(model, samples, tol)
    }
}

/// Interval-by-interval dense reference for [`SteadyState::compute`]: walks
/// every materialized state interval of the *full* period (all repetitions),
/// composing `K = Π Φ_q` with dense products and solving `(I − K)·T = r` by
/// LU — `O(m·d·n³)` for a block of `d` intervals repeated `m` times. Returns
/// the start-of-period fixed point and the temperatures at every interval
/// end. Retained as the property-test oracle and the "before" side of the
/// period-map bench comparison.
///
/// # Errors
/// Core-count mismatches or solver failures.
pub fn compute_dense<P: PowerLike + ?Sized>(
    model: &ThermalModel,
    power: &P,
    schedule: &Schedule,
) -> Result<(Vector, Vec<Vector>)> {
    if schedule.n_cores() != model.n_cores() {
        return Err(SchedError::CoreCountMismatch {
            schedule: schedule.n_cores(),
            model: model.n_cores(),
        });
    }
    let n = model.n_nodes();
    let ivs = schedule.state_intervals();

    // Per-interval steady states and propagators; compose the period map.
    let mut k = Matrix::identity(n);
    let mut r = Vector::zeros(n);
    let mut interval_data = Vec::with_capacity(ivs.len());
    for (voltages, len) in &ivs {
        let psi = power.psi_profile_of(voltages);
        let t_inf = model.steady_state(&psi)?;
        let phi = model.propagator(*len)?;
        // r ← Φ·r + (I − Φ)·T∞;  K ← Φ·K
        let phir = phi.matvec(&r)?;
        let phit = phi.matvec(&t_inf)?;
        r = &(&phir + &t_inf) - &phit;
        k = phi.matmul(&k)?;
        interval_data.push((*len, t_inf));
    }

    // Fixed point (I − K)·T_ss(0) = r.
    let i_minus_k = &Matrix::identity(n) - &k;
    let t_start = Lu::new(&i_minus_k)?.solve_vec(&r)?;

    // Temperatures at interval ends.
    let mut at_ends = Vec::with_capacity(interval_data.len());
    let mut cur = t_start.clone();
    for (len, t_inf) in &interval_data {
        let phi = model.propagator(*len)?;
        let diff = &cur - t_inf;
        cur = &phi.matvec(&diff)? + t_inf;
        at_ends.push(cur.clone());
    }
    Ok((t_start, at_ends))
}

/// Energy drawn per period in the thermal stable status (J): the
/// temperature-independent part `Σ_q Σ_i ψ(v_{i,q})·l_q` plus the leakage
/// part `β·Σ_i ∫ T_i dt`, the latter integrated by trapezoid over a sampled
/// stable trace. Pure DVFS analyses often ignore the leakage term; here it
/// is where frequency oscillation's energy cost (hotter average silicon)
/// shows up.
///
/// # Errors
/// Core-count mismatches or solver failures.
pub fn stable_energy_per_period<P: PowerLike + ?Sized>(
    model: &ThermalModel,
    power: &P,
    schedule: &Schedule,
    samples: usize,
) -> Result<f64> {
    let ss = SteadyState::compute(model, power, schedule)?;
    // ψ part: exact.
    let mut energy = 0.0;
    for (voltages, len) in schedule.state_intervals() {
        energy += power.psi_profile_of(&voltages).iter().sum::<f64>() * len;
    }
    // β·∫T: trapezoid over the sampled stable trace (core nodes only, and
    // only while the core is active — inactive cores leak nothing in this
    // model).
    // The trace covers one repeating block and the stable status is
    // block-periodic, so the full-period leakage integral is the block
    // integral times the repetition count.
    let any_leak = (0..schedule.n_cores()).any(|c| power.beta_core(c) > 0.0);
    if any_leak {
        let trace = ss.trace(model, samples.max(8))?;
        let times = trace.times();
        let temps = trace.temps();
        let mut integral = 0.0;
        #[allow(clippy::needless_range_loop)]
        for w in 0..times.len() - 1 {
            let dt = times[w + 1] - times[w];
            let mid_t = 0.5 * (times[w] + times[w + 1]);
            for c in 0..schedule.n_cores() {
                if schedule.core(c).voltage_at(mid_t) > 0.0 {
                    integral += power.beta_core(c) * 0.5 * (temps[w][c] + temps[w + 1][c]) * dt;
                }
            }
        }
        energy += integral * schedule.repetitions() as f64;
    }
    Ok(energy)
}

/// Transient trace: starts from `t0` (e.g. ambient = zeros) and plays the
/// schedule for `n_periods` periods, sampling `samples_per_period` points in
/// each. Used by the Fig. 4 reproduction (step-up warm-up from ambient).
///
/// # Errors
/// Core-count mismatches, dimension mismatches, or solver failures.
pub fn transient_trace<P: PowerLike + ?Sized>(
    model: &ThermalModel,
    power: &P,
    schedule: &Schedule,
    t0: &Vector,
    n_periods: usize,
    samples_per_period: usize,
) -> Result<Trace> {
    if schedule.n_cores() != model.n_cores() {
        return Err(SchedError::CoreCountMismatch {
            schedule: schedule.n_cores(),
            model: model.n_cores(),
        });
    }
    if t0.len() != model.n_nodes() {
        return Err(SchedError::Thermal(mosc_thermal::ThermalError::DimensionMismatch {
            expected: model.n_nodes(),
            actual: t0.len(),
            op: "transient_trace",
        }));
    }
    let ivs = schedule.state_intervals();
    let period = schedule.period();
    let dt_target = period / samples_per_period.max(1) as f64;

    let mut trace =
        Trace::with_capacity(model.n_cores(), n_periods * (samples_per_period + ivs.len()) + 2);
    trace.push(0.0, t0.clone());
    let mut cur = t0.clone();
    let mut time = 0.0;
    for _ in 0..n_periods {
        for (voltages, len) in &ivs {
            if *len <= EPS {
                continue;
            }
            let psi = power.psi_profile_of(voltages);
            let t_inf = model.steady_state(&psi)?;
            let n_steps = (len / dt_target).ceil().max(1.0) as usize;
            let h = len / n_steps as f64;
            let phi = model.propagator(h)?;
            for _ in 0..n_steps {
                let diff = &cur - &t_inf;
                cur = &phi.matvec(&diff)? + &t_inf;
                time += h;
                trace.push(time, cur.clone());
            }
        }
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoreSchedule, Platform, PlatformSpec, Segment};

    fn platform() -> Platform {
        Platform::build(&PlatformSpec::paper(1, 2, 2, 65.0)).unwrap()
    }

    fn two_mode_schedule(period: f64) -> Schedule {
        Schedule::two_mode(&[0.6, 0.6], &[1.3, 1.3], &[0.4, 0.6], period).unwrap()
    }

    #[test]
    fn constant_schedule_steady_state_matches_t_inf() {
        let p = platform();
        let s = Schedule::constant(&[1.0, 1.2], 0.1).unwrap();
        let ss = SteadyState::compute(p.thermal(), p.power(), &s).unwrap();
        let direct = p.thermal().steady_state(&p.psi_profile(&[1.0, 1.2])).unwrap();
        assert!(ss.t_start().max_abs_diff(&direct) < 1e-8);
        // Peak of a constant schedule = max core steady temp, exact path.
        let peak = p.peak(&s).unwrap();
        assert!(peak.exact);
        assert!((peak.temp - direct[0].max(direct[1])).abs() < 1e-8);
    }

    #[test]
    fn periodicity_fixed_point_holds() {
        let p = platform();
        let s = two_mode_schedule(0.05);
        let ss = SteadyState::compute(p.thermal(), p.power(), &s).unwrap();
        // Advancing one full period from T_ss(0) returns to T_ss(0).
        let ends = ss.at_interval_ends();
        let last = ends.last().unwrap();
        assert!(last.max_abs_diff(ss.t_start()) < 1e-8);
    }

    #[test]
    fn trace_covers_period_and_matches_boundaries() {
        let p = platform();
        let s = two_mode_schedule(0.05);
        let ss = SteadyState::compute(p.thermal(), p.power(), &s).unwrap();
        let trace = ss.trace(p.thermal(), 50).unwrap();
        assert!((trace.times().last().unwrap() - 0.05).abs() < 1e-12);
        // First sample is the start fixed point.
        assert!((trace.temps()[0][0] - ss.t_start()[0]).abs() < 1e-12);
    }

    #[test]
    fn stepup_peak_is_at_period_boundary() {
        let p = platform();
        let s = two_mode_schedule(0.5);
        assert!(s.is_step_up());
        let exact = p.peak(&s).unwrap();
        assert!(exact.exact);
        // Dense sampling agrees with the Theorem-1 value.
        let ss = SteadyState::compute(p.thermal(), p.power(), &s).unwrap();
        let sampled = ss.peak_sampled(p.thermal(), 2000).unwrap();
        assert!(
            (exact.temp - sampled.temp).abs() < 1e-6,
            "exact {} vs sampled {}",
            exact.temp,
            sampled.temp
        );
        assert!(sampled.temp <= exact.temp + 1e-9, "sampled cannot exceed the boundary peak");
    }

    #[test]
    fn non_stepup_uses_sampling() {
        let p = platform();
        // High first, low second: a step-down schedule.
        let s = Schedule::new(vec![
            CoreSchedule::new(vec![Segment::new(1.3, 0.2), Segment::new(0.6, 0.3)]).unwrap(),
            CoreSchedule::constant(0.6, 0.5).unwrap(),
        ])
        .unwrap();
        assert!(!s.is_step_up());
        let peak = p.peak(&s).unwrap();
        assert!(!peak.exact);
        // The peak of a step-down schedule happens at the end of the high
        // block (time ≈ 0.2), not at the period boundary.
        assert!((peak.time - 0.2).abs() < 0.02, "peak at {}", peak.time);
        assert_eq!(peak.core, 0);
    }

    #[test]
    fn oscillation_reduces_peak_of_stepup() {
        // Theorem 5 smoke test (full validation lives in tests/theorems.rs).
        let p = platform();
        let s = two_mode_schedule(1.0);
        let p1 = p.peak(&s).unwrap().temp;
        let p4 = p.peak(&s.oscillated(4)).unwrap().temp;
        let p16 = p.peak(&s.oscillated(16)).unwrap().temp;
        assert!(p4 <= p1 + 1e-9, "m=4 {p4} vs m=1 {p1}");
        assert!(p16 <= p4 + 1e-9, "m=16 {p16} vs m=4 {p4}");
    }

    #[test]
    fn transient_approaches_stable_status() {
        let p = platform();
        let s = two_mode_schedule(1.0);
        let ss = SteadyState::compute(p.thermal(), p.power(), &s).unwrap();
        let t0 = Vector::zeros(p.thermal().n_nodes());
        let trace = transient_trace(p.thermal(), p.power(), &s, &t0, 400, 4).unwrap();
        let last = trace.temps().last().unwrap();
        // After many periods the trajectory is within a whisker of T_ss(0).
        assert!(last.max_abs_diff(ss.t_start()) < 1e-3, "diff {}", last.max_abs_diff(ss.t_start()));
    }

    #[test]
    fn at_time_matches_trace_samples() {
        let p = platform();
        let s = two_mode_schedule(0.2);
        let ss = SteadyState::compute(p.thermal(), p.power(), &s).unwrap();
        let trace = ss.trace(p.thermal(), 40).unwrap();
        for (&t, sample) in trace.times().iter().zip(trace.temps()) {
            let direct = ss.at_time(p.thermal(), t).unwrap();
            assert!(
                direct.max_abs_diff(sample) < 1e-9,
                "mismatch at t={t}: {}",
                direct.max_abs_diff(sample)
            );
        }
        assert!(ss.at_time(p.thermal(), -0.1).is_err());
        assert!(ss.at_time(p.thermal(), 0.3).is_err());
    }

    #[test]
    fn refined_peak_dominates_sampled_peak() {
        let p = platform();
        // A step-down schedule whose true peak lies strictly inside the
        // period (end of the high block), invisible to coarse sampling.
        let s = Schedule::new(vec![
            CoreSchedule::new(vec![Segment::new(1.3, 0.123), Segment::new(0.6, 0.377)]).unwrap(),
            CoreSchedule::constant(0.6, 0.5).unwrap(),
        ])
        .unwrap();
        let ss = SteadyState::compute(p.thermal(), p.power(), &s).unwrap();
        let coarse = ss.peak_sampled(p.thermal(), 20).unwrap();
        let refined = ss.peak_refined(p.thermal(), 20, 1e-7).unwrap();
        let dense = ss.peak_sampled(p.thermal(), 20_000).unwrap();
        assert!(refined.temp >= coarse.temp - 1e-12);
        assert!(
            (refined.temp - dense.temp).abs() < 1e-4,
            "refined {} vs dense reference {}",
            refined.temp,
            dense.temp
        );
        // The peak sits at the mode-switch instant.
        assert!((refined.time - 0.123).abs() < 1e-3, "peak at {}", refined.time);
    }

    #[test]
    fn refined_peak_tracks_switch_instant_under_oscillation() {
        // Regression: the golden-section bracket around the hottest sample
        // can straddle a state-interval boundary; without splitting at the
        // kink the search could converge into the wrong sub-interval.
        // Oscillating a step-down schedule compresses the block, so the
        // kink sits at 0.123/m — well inside a single coarse sample window.
        let p = platform();
        let s = Schedule::new(vec![
            CoreSchedule::new(vec![Segment::new(1.3, 0.123), Segment::new(0.6, 0.377)]).unwrap(),
            CoreSchedule::constant(0.6, 0.5).unwrap(),
        ])
        .unwrap()
        .oscillated(4);
        assert!(!s.block_is_step_up());
        let peak = p.peak(&s).unwrap();
        assert!(!peak.exact);
        // The peak sits at the compressed switch instant.
        let switch = 0.123 / 4.0;
        assert!((peak.time - switch).abs() < 1e-3, "peak at {} vs kink {switch}", peak.time);
        // And matches a brute-force dense scan of the stable trace.
        let ss = SteadyState::compute(p.thermal(), p.power(), &s).unwrap();
        let dense = ss.peak_sampled(p.thermal(), 20_000).unwrap();
        assert!(
            (peak.temp - dense.temp).abs() < 1e-5,
            "refined {} vs dense reference {}",
            peak.temp,
            dense.temp
        );
    }

    #[test]
    fn core_count_mismatch_rejected() {
        let p = platform();
        let s = Schedule::constant(&[1.0, 1.0, 1.0], 0.1).unwrap();
        assert!(matches!(p.peak(&s), Err(SchedError::CoreCountMismatch { schedule: 3, model: 2 })));
        let t0 = Vector::zeros(3);
        let s2 = Schedule::constant(&[1.0, 1.0], 0.1).unwrap();
        assert!(transient_trace(p.thermal(), p.power(), &s2, &t0, 1, 4).is_err());
    }

    #[test]
    fn stable_energy_matches_closed_form_for_constant_schedule() {
        let p = platform();
        let s = Schedule::constant(&[1.0, 1.2], 0.25).unwrap();
        let e = stable_energy_per_period(p.thermal(), p.power(), &s, 200).unwrap();
        // Constant schedule: E = Σ_i (ψ(v_i) + β·T∞_i) · t_p.
        let psi = p.psi_profile(&[1.0, 1.2]);
        let t_inf = p.thermal().steady_state_cores(&psi).unwrap();
        let expected = (psi.iter().sum::<f64>() + p.power().beta * (t_inf[0] + t_inf[1])) * 0.25;
        assert!((e - expected).abs() / expected < 1e-4, "energy {e} vs closed form {expected}");
    }

    #[test]
    fn oscillating_schedule_costs_more_energy_than_equivalent_constant() {
        // Same work, two modes vs constant: the oscillating schedule runs
        // hotter on average (Theorem 3) and ψ is convex, so it burns more.
        let p = platform();
        let constant = Schedule::constant(&[0.95, 0.95], 0.2).unwrap();
        let r = (1.3 - 0.95) / (1.3 - 0.6);
        let split = Schedule::two_mode(&[0.6, 0.6], &[1.3, 1.3], &[1.0 - r, 1.0 - r], 0.2).unwrap();
        assert!((constant.throughput() - split.throughput()).abs() < 1e-12);
        let e_const = stable_energy_per_period(p.thermal(), p.power(), &constant, 400).unwrap();
        let e_split = stable_energy_per_period(p.thermal(), p.power(), &split, 400).unwrap();
        assert!(e_const < e_split, "constant {e_const} must beat oscillating {e_split}");
    }

    #[test]
    fn is_thermally_safe_thresholds() {
        let p = platform();
        let cool = Schedule::constant(&[0.6, 0.6], 0.1).unwrap();
        assert!(p.is_thermally_safe(&cool).unwrap());
        // 2-core at 65 °C: all-max is safe on the default cooler.
        let hot = Schedule::constant(&[1.3, 1.3], 0.1).unwrap();
        assert!(p.is_thermally_safe(&hot).unwrap());
        // But a 9-core platform at 55 °C cannot run all-max.
        let p9 = Platform::build(&PlatformSpec::paper(3, 3, 2, 55.0)).unwrap();
        let hot9 = Schedule::constant(&[1.3; 9], 0.1).unwrap();
        assert!(!p9.is_thermally_safe(&hot9).unwrap());
    }
}
