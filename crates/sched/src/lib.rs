//! Periodic multi-core DVFS schedules and their thermal analysis.
//!
//! This crate carries the paper's two structural concepts and the machinery
//! to evaluate them against a thermal model:
//!
//! * [`Schedule`] — a periodic, per-core piecewise-constant voltage timeline.
//!   Transforms implement Definition 2 (**step-up reordering**: sort each
//!   core's intervals by voltage) and Definition 3 (**m-Oscillating**:
//!   compress every interval by `m`, repeat `m` times — represented here by
//!   the compressed schedule, whose periodic steady state is identical), plus
//!   the per-core cyclic phase shifts the PCO variant searches over.
//! * [`Platform`] — bundle of thermal model, power model, mode table,
//!   transition-overhead model and the peak-temperature threshold.
//! * [`eval`] — eq. (3)/(4) machinery: periodic steady state
//!   `T_ss(0) = (I−K)⁻¹·r`, stable-status traces, and peak temperature with
//!   two paths: the Theorem-1 fast path for step-up schedules (peak = period
//!   end, computed exactly) and dense sampling for arbitrary schedules.
//!
//! Theorems 1–5 of the paper are exercised end-to-end in this crate's test
//! suite (`tests/theorems.rs`).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod eval;
pub mod period_map;
mod platform;
mod schedule;
pub mod sprint;
pub mod text;

pub use eval::{PeakReport, SteadyState};
pub use period_map::{ModalMap, PeriodMap};
pub use platform::{Platform, PlatformSpec};
pub use schedule::{CoreSchedule, Schedule, Segment};

/// Numerical slack used when *accepting* a candidate schedule against
/// `T_max` inside solver search loops: peaks up to `T_max + ACCEPT_EPS` are
/// treated as meeting the constraint, absorbing float noise in the
/// steady-state evaluation without admitting physically hotter schedules.
pub const ACCEPT_EPS: f64 = 1e-9;

/// Wider slack used when *stamping or auditing* the feasibility of a
/// finished solution (`Solution::feasible`, safety checks, analyzer lints).
/// Strictly larger than [`ACCEPT_EPS`] so that any candidate a solver
/// accepted is also reported — and audited — as feasible; solvers accepting
/// at `1e-9` while stamping at `1e-6` used to rely on two unrelated
/// literals agreeing by luck.
pub const FEASIBILITY_EPS: f64 = 1e-6;

/// Errors produced by schedule construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// A schedule was structurally invalid (mismatched periods, negative
    /// durations, empty core list…).
    Invalid {
        /// Human-readable description.
        what: String,
    },
    /// Schedule core count does not match the thermal model.
    CoreCountMismatch {
        /// Cores in the schedule.
        schedule: usize,
        /// Cores in the model.
        model: usize,
    },
    /// An underlying thermal-model operation failed.
    Thermal(mosc_thermal::ThermalError),
    /// An underlying linear-algebra kernel failed.
    Linalg(mosc_linalg::LinalgError),
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Invalid { what } => write!(f, "invalid schedule: {what}"),
            Self::CoreCountMismatch { schedule, model } => {
                write!(f, "schedule has {schedule} cores but the model has {model}")
            }
            Self::Thermal(e) => write!(f, "thermal evaluation failed: {e}"),
            Self::Linalg(e) => write!(f, "linear algebra failure: {e}"),
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Thermal(e) => Some(e),
            Self::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mosc_thermal::ThermalError> for SchedError {
    fn from(e: mosc_thermal::ThermalError) -> Self {
        Self::Thermal(e)
    }
}

impl From<mosc_linalg::LinalgError> for SchedError {
    fn from(e: mosc_linalg::LinalgError) -> Self {
        Self::Linalg(e)
    }
}

/// Result alias for schedule operations.
pub type Result<T> = std::result::Result<T, SchedError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        let e = SchedError::Invalid { what: "negative duration".into() };
        assert!(e.to_string().contains("negative duration"));
        let e = SchedError::CoreCountMismatch { schedule: 2, model: 3 };
        assert!(e.to_string().contains('2') && e.to_string().contains('3'));
        let e: SchedError = mosc_linalg::LinalgError::Singular { pivot: 1 }.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
