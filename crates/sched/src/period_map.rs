//! The period-map kernel: modal-coordinate evaluation of periodic schedules.
//!
//! Every interval propagator `Φ(l) = e^{A·l}` is an exponential of the *same*
//! state matrix, so all of them share the eigenbasis of
//! `S = C^{-1/2}·G_eff·C^{-1/2}`. In modal coordinates `y = Vᵀ·C^{1/2}·T`
//! the affine interval update of eq. (3) diagonalizes:
//!
//! ```text
//! y(t_q) = d_q ∘ y(t_{q−1}) + (1 − d_q) ∘ y_q^∞,    d_q = e^{−λ·l_q}
//! ```
//!
//! so composing the period map `T(t_p) = K·T(0) + r` needs no `expm`, no
//! dense products and no `(I − K)` LU solve: a [`ModalMap`] is just two
//! vectors `(d, r̂)`, composition is elementwise (`O(n)`), a block repeated
//! `m` times is exponentiated by binary squaring ([`ModalMap::repeated`],
//! `O(n·log m)`), and the periodic fixed point is `ŷ_ss = r̂ / (1 − d)`
//! elementwise. The only dense work left per evaluation is the handful of
//! basis changes in and out of modal coordinates, counted on the
//! `period_map.matmuls` counter; per-interval steady states are memoized by
//! voltage-vector key inside [`ThermalModel::modal_steady_state`]
//! (`steady_state.cache_hits`).
//!
//! For a schedule with `d` distinct block intervals and repetition factor
//! `m`, the old interval-by-interval path cost `O(m·d·n³)`; this kernel
//! costs `O((d + log m)·n + d·n²)` — the reduction `mosc-cli profile`'s
//! period-map section measures.

use crate::{Result, SchedError, Schedule};
use mosc_linalg::Vector;
use mosc_power::PowerLike;
use mosc_thermal::ThermalModel;
use std::sync::Arc;

/// Dense `O(n²)` basis changes (modal transforms) performed by the kernel —
/// the only super-linear work left; everything else is elementwise. Stays
/// flat in the oscillation factor `m`, which is what the `ci.sh` profile
/// smoke asserts.
static PERIOD_MAP_MATMULS: mosc_obs::Counter = mosc_obs::Counter::new("period_map.matmuls");
/// Elementwise modal-map compositions (interval chaining plus the binary
/// squaring steps of [`ModalMap::repeated`]).
static PERIOD_MAP_COMPOSES: mosc_obs::Counter = mosc_obs::Counter::new("period_map.composes");

/// Counted basis change back to node temperatures.
pub(crate) fn from_modal(model: &ThermalModel, y: &Vector) -> Result<Vector> {
    PERIOD_MAP_MATMULS.incr();
    Ok(model.from_modal(y)?)
}

/// An affine map `y ↦ decay ∘ y + offset` on modal coordinates — the
/// diagonalized form of one (or a composition of several) interval
/// propagation steps `T ↦ Φ·T + (I−Φ)·T∞`.
#[derive(Debug, Clone, PartialEq)]
pub struct ModalMap {
    decay: Vector,
    offset: Vector,
}

impl ModalMap {
    /// The identity map (empty composition) on `n` modes.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        Self { decay: Vector::filled(n, 1.0), offset: Vector::zeros(n) }
    }

    /// The map of a single interval: decay factors `d = e^{−λ·l}` and the
    /// interval's modal steady state `y∞`, giving `y ↦ d∘y + (1−d)∘y∞`.
    ///
    /// # Panics
    /// Panics when the two vectors disagree in length.
    #[must_use]
    pub fn interval(decay: &Vector, y_inf: &Vector) -> Self {
        assert_eq!(decay.len(), y_inf.len(), "modal dimensions must agree");
        let offset = Vector::from_fn(decay.len(), |k| (1.0 - decay[k]) * y_inf[k]);
        Self { decay: decay.clone(), offset }
    }

    /// Composition `later ∘ self`: apply `self` first, then `later`.
    ///
    /// # Panics
    /// Panics when the two maps disagree in dimension.
    #[must_use]
    pub fn then(&self, later: &Self) -> Self {
        assert_eq!(self.decay.len(), later.decay.len(), "modal dimensions must agree");
        PERIOD_MAP_COMPOSES.incr();
        let n = self.decay.len();
        Self {
            decay: Vector::from_fn(n, |k| later.decay[k] * self.decay[k]),
            offset: Vector::from_fn(n, |k| later.decay[k] * self.offset[k] + later.offset[k]),
        }
    }

    /// The `m`-fold self-composition, by binary squaring — `O(n·log m)`
    /// instead of `O(n·m)`. This is how a repeated block (an m-oscillated
    /// two-mode schedule in particular) becomes `K = K_block^m` in
    /// `O(log m)` compositions.
    ///
    /// # Panics
    /// Panics when `m == 0` (an empty composition of a concrete map has no
    /// meaningful decay).
    #[must_use]
    pub fn repeated(&self, m: usize) -> Self {
        assert!(m > 0, "repetition count must be at least 1");
        let mut result: Option<Self> = None;
        let mut square = self.clone();
        let mut m = m;
        loop {
            if m & 1 == 1 {
                result = Some(match result {
                    None => square.clone(),
                    Some(r) => r.then(&square),
                });
            }
            m >>= 1;
            if m == 0 {
                break;
            }
            square = square.then(&square);
        }
        result.expect("m >= 1 always yields a factor")
    }

    /// Applies the map to a modal vector.
    ///
    /// # Panics
    /// Panics when the dimension disagrees.
    #[must_use]
    pub fn apply(&self, y: &Vector) -> Vector {
        assert_eq!(self.decay.len(), y.len(), "modal dimensions must agree");
        Vector::from_fn(y.len(), |k| self.decay[k] * y[k] + self.offset[k])
    }

    /// The fixed point `ŷ = offset / (1 − decay)`, elementwise — the modal
    /// periodic steady state when this map spans one full period. Replaces
    /// the dense `(I − K)` LU solve of the interval-by-interval path.
    ///
    /// # Errors
    /// Returns [`SchedError::Invalid`] when some mode does not contract
    /// (`decay ≥ 1`), which cannot happen for a stable model and a positive
    /// period.
    pub fn fixed_point(&self) -> Result<Vector> {
        let n = self.decay.len();
        for k in 0..n {
            if self.decay[k] >= 1.0 || self.decay[k].is_nan() {
                return Err(SchedError::Invalid {
                    what: format!(
                        "period map does not contract in mode {k} (decay {})",
                        self.decay[k]
                    ),
                });
            }
        }
        Ok(Vector::from_fn(n, |k| self.offset[k] / (1.0 - self.decay[k])))
    }

    /// The decay factors (diagonal of `K` in modal coordinates).
    #[must_use]
    pub fn decay(&self) -> &Vector {
        &self.decay
    }

    /// The affine offset (`r` in modal coordinates).
    #[must_use]
    pub fn offset(&self) -> &Vector {
        &self.offset
    }
}

/// One state interval of the repeating block, in modal coordinates.
#[derive(Debug, Clone)]
pub struct ModalInterval {
    /// Start time within the block (s).
    pub start: f64,
    /// Interval length (s).
    pub len: f64,
    /// Decay factors over the full interval, `e^{−λ·len}`.
    pub decay: Vector,
    /// Modal steady state of the interval's power profile (shared with the
    /// model's memo).
    pub y_inf: Arc<Vector>,
}

/// The composed period map of a schedule: per-interval modal data for one
/// repeating block, the block map, and the full-period map
/// `block^repetitions` (by binary squaring).
#[derive(Debug, Clone)]
pub struct PeriodMap {
    intervals: Vec<ModalInterval>,
    block_map: ModalMap,
    full_map: ModalMap,
    repetitions: usize,
}

impl PeriodMap {
    /// Builds the period map of `schedule` on `model` with `power`: one
    /// [`ModalInterval`] per block state interval (steady states memoized by
    /// voltage-vector key), composed left-to-right into the block map and
    /// exponentiated to the full period.
    ///
    /// # Errors
    /// Core-count mismatches or (for pathological models) solver failures.
    pub fn build<P: PowerLike + ?Sized>(
        model: &ThermalModel,
        power: &P,
        schedule: &Schedule,
    ) -> Result<Self> {
        if schedule.n_cores() != model.n_cores() {
            return Err(SchedError::CoreCountMismatch {
                schedule: schedule.n_cores(),
                model: model.n_cores(),
            });
        }
        let n = model.n_nodes();
        let ivs = schedule.block_intervals();
        let mut intervals = Vec::with_capacity(ivs.len());
        let mut block_map = ModalMap::identity(n);
        let mut start = 0.0;
        for (voltages, len) in &ivs {
            let psi = power.psi_profile_of(voltages);
            let y_inf = model.modal_steady_state(&psi)?;
            let decay = model.modal_decay(*len)?;
            block_map = block_map.then(&ModalMap::interval(&decay, &y_inf));
            intervals.push(ModalInterval { start, len: *len, decay, y_inf });
            start += len;
        }
        let repetitions = schedule.repetitions();
        let full_map = block_map.repeated(repetitions);
        Ok(Self { intervals, block_map, full_map, repetitions })
    }

    /// The block's state intervals in modal coordinates.
    #[must_use]
    pub fn intervals(&self) -> &[ModalInterval] {
        &self.intervals
    }

    /// The map of one repeating block.
    #[must_use]
    pub fn block_map(&self) -> &ModalMap {
        &self.block_map
    }

    /// The map of the full period (`block^repetitions`).
    #[must_use]
    pub fn full_map(&self) -> &ModalMap {
        &self.full_map
    }

    /// The repetition factor carried from the schedule.
    #[must_use]
    pub fn repetitions(&self) -> usize {
        self.repetitions
    }

    /// The modal periodic steady state at the start of the period. The fixed
    /// point of the full map and of the block map coincide (the full map is
    /// a power of the block map), but the full map is the better-conditioned
    /// contraction.
    ///
    /// # Errors
    /// See [`ModalMap::fixed_point`].
    pub fn steady_start(&self) -> Result<Vector> {
        self.full_map.fixed_point()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(d: &[f64], r: &[f64]) -> ModalMap {
        ModalMap { decay: Vector::from_slice(d), offset: Vector::from_slice(r) }
    }

    #[test]
    fn identity_and_composition() {
        let id = ModalMap::identity(2);
        let m = map(&[0.5, 0.25], &[1.0, 2.0]);
        assert_eq!(id.then(&m), m);
        assert_eq!(m.then(&id), m);
        // (then) applies left first: y → m1 → m2.
        let m2 = map(&[0.1, 0.2], &[3.0, 4.0]);
        let y = Vector::from_slice(&[10.0, 20.0]);
        let composed = m.then(&m2).apply(&y);
        let stepwise = m2.apply(&m.apply(&y));
        assert!(composed.max_abs_diff(&stepwise) < 1e-15);
    }

    #[test]
    fn repeated_matches_naive_composition() {
        let m = map(&[0.9, 0.3], &[0.5, -1.0]);
        for reps in [1usize, 2, 3, 7, 17, 64, 255] {
            let fast = m.repeated(reps);
            let mut naive = m.clone();
            for _ in 1..reps {
                naive = naive.then(&m);
            }
            assert!(fast.decay().max_abs_diff(naive.decay()) < 1e-12, "reps {reps}");
            assert!(fast.offset().max_abs_diff(naive.offset()) < 1e-10, "reps {reps}");
        }
    }

    #[test]
    #[should_panic(expected = "repetition count")]
    fn repeated_rejects_zero() {
        let _ = ModalMap::identity(1).repeated(0);
    }

    #[test]
    fn fixed_point_is_fixed() {
        let m = map(&[0.8, 0.1], &[2.0, 0.9]);
        let y = m.fixed_point().unwrap();
        assert!(m.apply(&y).max_abs_diff(&y) < 1e-12);
        // The block and any power of it share the fixed point.
        let y8 = m.repeated(8).fixed_point().unwrap();
        assert!(y8.max_abs_diff(&y) < 1e-10);
        // Non-contracting maps are rejected.
        assert!(map(&[1.0], &[0.1]).fixed_point().is_err());
    }
}
