//! The platform bundle: thermal model + power model + DVFS table + limits.

use crate::{eval, PeakReport, Result, SchedError, Schedule};
use mosc_power::{ModeTable, Params65nm, PowerModel, TransitionOverhead};
use mosc_thermal::{Floorplan, RcConfig, RcNetwork, ThermalModel};

/// Declarative description of a platform, from which [`Platform::build`]
/// assembles the thermal network and solvers. Mirrors the paper's Section VI
/// experimental setup.
#[derive(Debug, Clone)]
pub struct PlatformSpec {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Number of stacked die layers (1 = planar).
    pub layers: usize,
    /// Available discrete voltage levels.
    pub modes: ModeTable,
    /// Peak-temperature threshold in °C.
    pub t_max_c: f64,
    /// RC network parameters.
    pub rc: RcConfig,
    /// DVFS transition overhead.
    pub overhead: TransitionOverhead,
}

impl PlatformSpec {
    /// The paper's setup: `rows × cols` grid of 4×4 mm cores, Table IV level
    /// set with `n_levels` levels, τ = 5 µs, default cooler.
    ///
    /// # Panics
    /// Panics for `n_levels` outside 2..=5 (Table IV's domain).
    #[must_use]
    pub fn paper(rows: usize, cols: usize, n_levels: usize, t_max_c: f64) -> Self {
        Self {
            rows,
            cols,
            layers: 1,
            modes: ModeTable::table_iv(n_levels),
            t_max_c,
            rc: RcConfig::default(),
            overhead: TransitionOverhead::paper_default(),
        }
    }

    /// Section III's motivating 3-core platform: budget cooler, two modes
    /// {0.6 V, 1.3 V}, `T_max` = 65 °C.
    #[must_use]
    pub fn motivation() -> Self {
        Self {
            rows: 1,
            cols: 3,
            layers: 1,
            modes: ModeTable::table_iv(2),
            t_max_c: 65.0,
            rc: RcConfig::budget_cooler(),
            overhead: TransitionOverhead::zero(),
        }
    }
}

/// A fully-assembled multi-core platform: the thermal model, the power
/// model, the discrete mode table, the transition-overhead model, and the
/// peak-temperature threshold. This is the object every scheduling algorithm
/// in `mosc-core` operates on.
#[derive(Debug)]
pub struct Platform {
    thermal: ThermalModel,
    power: PowerModel,
    modes: ModeTable,
    overhead: TransitionOverhead,
    /// Threshold relative to ambient (K).
    t_max: f64,
    t_ambient_c: f64,
}

impl Platform {
    /// Assembles a platform from a spec using the 65 nm power preset.
    ///
    /// # Errors
    /// Propagates floorplan/network/model construction failures.
    pub fn build(spec: &PlatformSpec) -> Result<Self> {
        let params = Params65nm::params();
        let floorplan = if spec.layers <= 1 {
            Floorplan::grid(spec.rows, spec.cols, 4.0e-3, 4.0e-3)?
        } else {
            Floorplan::stack3d(spec.layers, spec.rows, spec.cols, 4.0e-3, 4.0e-3)?
        };
        let network = RcNetwork::build(&floorplan, &spec.rc)?;
        let thermal = ThermalModel::new(network, params.power.beta)?;
        Ok(Self {
            thermal,
            power: params.power,
            modes: spec.modes.clone(),
            overhead: spec.overhead,
            t_max: spec.t_max_c - params.t_ambient_c,
            t_ambient_c: params.t_ambient_c,
        })
    }

    /// Assembles a platform from explicit parts (for custom floorplans,
    /// heterogeneous power models, tests).
    #[must_use]
    pub fn from_parts(
        thermal: ThermalModel,
        power: PowerModel,
        modes: ModeTable,
        overhead: TransitionOverhead,
        t_max_c: f64,
        t_ambient_c: f64,
    ) -> Self {
        Self { thermal, power, modes, overhead, t_max: t_max_c - t_ambient_c, t_ambient_c }
    }

    /// The thermal model.
    #[must_use]
    pub fn thermal(&self) -> &ThermalModel {
        &self.thermal
    }

    /// The power model.
    #[must_use]
    pub fn power(&self) -> &PowerModel {
        &self.power
    }

    /// The discrete mode table.
    #[must_use]
    pub fn modes(&self) -> &ModeTable {
        &self.modes
    }

    /// The transition-overhead model.
    #[must_use]
    pub fn overhead(&self) -> &TransitionOverhead {
        &self.overhead
    }

    /// Peak-temperature threshold, relative to ambient (K).
    #[must_use]
    pub fn t_max(&self) -> f64 {
        self.t_max
    }

    /// Peak-temperature threshold in °C.
    #[must_use]
    pub fn t_max_c(&self) -> f64 {
        self.t_max + self.t_ambient_c
    }

    /// Ambient temperature (°C).
    #[must_use]
    pub fn t_ambient_c(&self) -> f64 {
        self.t_ambient_c
    }

    /// Converts a relative temperature to °C.
    #[must_use]
    pub fn to_celsius(&self, t_rel: f64) -> f64 {
        t_rel + self.t_ambient_c
    }

    /// Number of cores.
    #[must_use]
    pub fn n_cores(&self) -> usize {
        self.thermal.n_cores()
    }

    /// Per-core temperature-independent power for a voltage assignment.
    #[must_use]
    pub fn psi_profile(&self, voltages: &[f64]) -> Vec<f64> {
        self.power.psi_profile(voltages)
    }

    /// Steady-state peak core temperature for a constant voltage assignment
    /// (the quantity EXS checks per candidate, `max(T∞)`).
    ///
    /// # Errors
    /// Dimension mismatches.
    pub fn steady_peak(&self, voltages: &[f64]) -> Result<f64> {
        if voltages.len() != self.n_cores() {
            return Err(SchedError::CoreCountMismatch {
                schedule: voltages.len(),
                model: self.n_cores(),
            });
        }
        let t = self.thermal.steady_state_cores(&self.psi_profile(voltages))?;
        Ok(t.max())
    }

    /// Peak temperature of a periodic schedule in the thermal stable status
    /// — the Theorem-1 fast path for step-up schedules, dense sampling
    /// otherwise. See [`eval::peak_temperature`].
    ///
    /// # Errors
    /// Propagates evaluation failures.
    pub fn peak(&self, schedule: &Schedule) -> Result<PeakReport> {
        eval::peak_temperature(&self.thermal, &self.power, schedule, None)
    }

    /// `true` when `schedule` keeps the peak temperature within `t_max`
    /// (with a small numerical slack).
    ///
    /// # Errors
    /// Propagates evaluation failures.
    pub fn is_thermally_safe(&self, schedule: &Schedule) -> Result<bool> {
        Ok(self.peak(schedule)?.temp <= self.t_max + crate::FEASIBILITY_EPS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_paper_platform() {
        let p = Platform::build(&PlatformSpec::paper(1, 3, 2, 65.0)).unwrap();
        assert_eq!(p.n_cores(), 3);
        assert_eq!(p.modes().len(), 2);
        assert!((p.t_max() - 30.0).abs() < 1e-12);
        assert!((p.t_max_c() - 65.0).abs() < 1e-12);
        assert!((p.to_celsius(0.0) - 35.0).abs() < 1e-12);
    }

    #[test]
    fn motivation_platform_is_constrained_at_1_3v() {
        let p = Platform::build(&PlatformSpec::motivation()).unwrap();
        let peak = p.steady_peak(&[1.3, 1.3, 1.3]).unwrap();
        assert!(peak > p.t_max(), "all-high must violate 65C: {peak} K rise");
        let low = p.steady_peak(&[0.6, 0.6, 0.6]).unwrap();
        assert!(low < p.t_max(), "all-low must be safe: {low} K rise");
    }

    #[test]
    fn steady_peak_validates_length() {
        let p = Platform::build(&PlatformSpec::paper(1, 2, 2, 55.0)).unwrap();
        assert!(p.steady_peak(&[1.0]).is_err());
    }

    #[test]
    fn two_core_all_max_safe_at_55() {
        // The Fig. 7 plateau: a 2-core chip sustains v_max below 55 °C.
        let p = Platform::build(&PlatformSpec::paper(1, 2, 2, 55.0)).unwrap();
        let peak = p.steady_peak(&[1.3, 1.3]).unwrap();
        assert!(peak < p.t_max(), "2-core all-max rise {} must be < {}", peak, p.t_max());
    }

    #[test]
    fn nine_core_all_max_unsafe_at_55() {
        let p = Platform::build(&PlatformSpec::paper(3, 3, 2, 55.0)).unwrap();
        let peak = p.steady_peak(&[1.3; 9]).unwrap();
        assert!(peak > p.t_max());
    }

    #[test]
    fn build_3d_stack() {
        let spec = PlatformSpec { layers: 2, ..PlatformSpec::paper(1, 2, 2, 65.0) };
        let p = Platform::build(&spec).unwrap();
        assert_eq!(p.n_cores(), 4);
        // Upper-layer core is hotter under uniform power.
        let t = p.thermal().steady_state_cores(&p.psi_profile(&[1.0, 1.0, 1.0, 1.0])).unwrap();
        assert!(t[2] > t[0]);
    }
}
